package ringlang

import (
	"errors"
	"reflect"
	"testing"
)

// TestRecognizeBatchMatchesRecognize pins the facade-level batch contract:
// RecognizeBatch returns, in order, exactly the reports per-word Recognize
// calls produce — for every schedule and worker count.
func TestRecognizeBatchMatchesRecognize(t *testing.T) {
	words := []Word{
		WordFromString("001122"),
		WordFromString("010212"),
		WordFromString("000111222"),
		WordFromString("012"),
		WordFromString("001122001122"),
	}
	for _, schedule := range []string{"", "round-robin", "random", "concurrent"} {
		opts := Options{Schedule: schedule, Seed: 9}
		want := make([]*Report, len(words))
		for i, w := range words {
			r, err := Recognize("three-counters", "", w, opts)
			if err != nil {
				t.Fatalf("schedule %q word %q: %v", schedule, w.String(), err)
			}
			want[i] = r
		}
		for _, workers := range []int{0, 1, 3} {
			opts.Workers = workers
			got, err := RecognizeBatch("three-counters", "", words, opts)
			if err != nil {
				t.Fatalf("schedule %q workers=%d: %v", schedule, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("schedule %q workers=%d: batch reports differ from serial Recognize", schedule, workers)
			}
		}
	}
}

func TestRecognizeBatchErrors(t *testing.T) {
	if _, err := RecognizeBatch("no-such-algorithm", "", []Word{WordFromString("01")}, Options{}); err == nil {
		t.Error("unknown algorithm did not error")
	}
	words := []Word{WordFromString("001122"), nil}
	_, err := RecognizeBatch("three-counters", "", words, Options{})
	var bwe *BatchWordError
	if !errors.As(err, &bwe) || bwe.Index != 1 {
		t.Errorf("batch error does not name the failing word: %v", err)
	}
	if got, err := RecognizeBatch("three-counters", "", nil, Options{}); err != nil || len(got) != 0 {
		t.Errorf("empty batch = %v, %v", got, err)
	}
}
