package ringlang

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// testWords is a mixed member/non-member workload for the three-counters
// recognizer.
func testWords() []Word {
	return []Word{
		WordFromString("001122"),
		WordFromString("010212"),
		WordFromString("000111222"),
		WordFromString("012"),
		WordFromString("001122001122"),
		WordFromString("000011112222"),
	}
}

// bigWord is a member word large enough that a batch of them takes a
// schedulable amount of time, so cancellation tests have something to cancel.
func bigWord(k int) Word {
	w := make(Word, 0, 3*k)
	for _, letter := range []rune{'0', '1', '2'} {
		for i := 0; i < k; i++ {
			w = append(w, letter)
		}
	}
	return w
}

// TestClientMatchesV1Wrappers is the compatibility property test: across
// every schedule (and seeds for the randomized one), the v2 Client produces
// reports byte-identical to the v1 wrappers, for single runs and batches.
func TestClientMatchesV1Wrappers(t *testing.T) {
	ctx := context.Background()
	words := testWords()
	for _, schedule := range ScheduleNames() {
		for _, seed := range []int64{0, 7} {
			opts := Options{Schedule: schedule, Seed: seed}
			client, err := NewClient("three-counters", "", WithSchedule(schedule), WithSeed(seed))
			if err != nil {
				t.Fatalf("schedule %q: %v", schedule, err)
			}
			if ScheduleDeliveryGuarantee(schedule) != DeliveryExactlyOnce {
				// Both surfaces refuse a raw recognizer under weaker-than-
				// exactly-once delivery with the same typed error.
				_, v1Err := Recognize("three-counters", "", words[0], opts)
				_, v2Err := client.Recognize(ctx, words[0])
				if !errors.Is(v1Err, ErrDeliveryNotTolerated) || !errors.Is(v2Err, ErrDeliveryNotTolerated) {
					t.Errorf("%q/%d: v1=%v v2=%v, want ErrDeliveryNotTolerated from both", schedule, seed, v1Err, v2Err)
				}
				for i, r := range client.Batch(ctx, words) {
					if !errors.Is(r.Err, ErrDeliveryNotTolerated) {
						t.Errorf("%q/%d batch word %d: %v, want ErrDeliveryNotTolerated", schedule, seed, i, r.Err)
					}
				}
				continue
			}
			for _, w := range words {
				v1, err := Recognize("three-counters", "", w, opts)
				if err != nil {
					t.Fatalf("v1 %q/%d on %q: %v", schedule, seed, w.String(), err)
				}
				v2, err := client.Recognize(ctx, w)
				if err != nil {
					t.Fatalf("v2 %q/%d on %q: %v", schedule, seed, w.String(), err)
				}
				if !reflect.DeepEqual(v1, v2) {
					t.Errorf("%q/%d on %q: v1 and v2 reports differ:\n%+v\n%+v", schedule, seed, w.String(), v1, v2)
				}
			}
			v1Batch, err := RecognizeBatch("three-counters", "", words, opts)
			if err != nil {
				t.Fatalf("v1 batch %q/%d: %v", schedule, seed, err)
			}
			for i, r := range client.Batch(ctx, words) {
				if r.Err != nil {
					t.Fatalf("v2 batch %q/%d word %d: %v", schedule, seed, i, r.Err)
				}
				if !reflect.DeepEqual(v1Batch[i], r.Report) {
					t.Errorf("%q/%d word %d: batch reports differ", schedule, seed, i)
				}
			}
		}
	}
}

// TestClientBatchPerWordErrors pins the tentpole's no-fail-all contract: a
// malformed word gets its own error and the surrounding words keep their
// reports.
func TestClientBatchPerWordErrors(t *testing.T) {
	client, err := NewClient("three-counters", "")
	if err != nil {
		t.Fatal(err)
	}
	words := []Word{WordFromString("001122"), nil, WordFromString("012"), WordFromString("0a1")}
	results := client.Batch(context.Background(), words)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if results[0].Err != nil || results[0].Report == nil || results[0].Report.Verdict != VerdictAccept {
		t.Errorf("good word 0 = %+v", results[0])
	}
	if results[1].Err == nil || results[1].Report != nil {
		t.Errorf("empty word 1 should fail alone: %+v", results[1])
	}
	if results[2].Err != nil || results[2].Report == nil {
		t.Errorf("good word 2 = %+v", results[2])
	}
	if results[3].Err == nil {
		t.Errorf("word 3 is off-alphabet and should fail: %+v", results[3])
	}
	if client.Batch(context.Background(), nil) != nil {
		t.Error("empty batch should return nil")
	}
}

// TestV1BatchStillFailsAll is the regression pin on the deprecated wrapper:
// RecognizeBatch keeps the v1 all-or-nothing contract (first bad word fails
// the call) even though the client underneath now reports per word.
func TestV1BatchStillFailsAll(t *testing.T) {
	words := []Word{WordFromString("001122"), nil, WordFromString("012")}
	reports, err := RecognizeBatch("three-counters", "", words, Options{})
	if err == nil {
		t.Fatal("v1 batch with a malformed word did not fail")
	}
	if reports != nil {
		t.Errorf("v1 failed batch must discard all reports, got %v", reports)
	}
}

// TestClientStreamYieldsIncrementally proves Stream does not buffer the
// batch: under a 4-worker pool, the fast words' results are yielded while
// the gated word is still blocked inside its run, and the gate is only
// released by the consumer after the first yield — if Stream buffered, no
// yield could happen before every word (including the gated one) finished
// and the test would deadlock instead of passing.
func TestClientStreamYieldsIncrementally(t *testing.T) {
	release := make(chan struct{})
	gated := "000111222"
	rec := &gatedRecognizer{Recognizer: core.NewThreeCounters(), gate: release, gatedWord: gated}
	client, err := NewClientWith(rec, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	words := []Word{WordFromString(gated), WordFromString("001122"),
		WordFromString("010212"), WordFromString("001122001122")}
	var order []int
	for i, r := range client.Stream(context.Background(), words) {
		if r.Err != nil {
			t.Fatalf("word %d: %v", i, r.Err)
		}
		order = append(order, i)
		if len(order) == 1 {
			if i == 0 {
				t.Fatal("first yield is the gated word; a fast word should stream out first")
			}
			close(release) // only now may the gated word finish
		}
	}
	if len(order) != len(words) {
		t.Fatalf("yielded %d results, want %d", len(order), len(words))
	}
	// The gated word cannot have been yielded before the release, which
	// happened strictly after a fast word streamed out.
	if order[0] == 0 {
		t.Errorf("yield order = %v: the gated word 0 streamed before any fast word", order)
	}
}

// gatedRecognizer delays node construction for one specific word until the
// gate opens; used to pin streaming and cancellation behaviour.
type gatedRecognizer struct {
	Recognizer
	gate      <-chan struct{}
	gatedWord string
	builds    atomic.Int64
}

func (g *gatedRecognizer) NewNodes(w lang.Word) ([]ring.Node, error) {
	g.builds.Add(1)
	if w.String() == g.gatedWord {
		<-g.gate
	}
	return g.Recognizer.NewNodes(w)
}

// TestClientStreamEarlyBreak pins that breaking out of a Stream cancels the
// undispatched words and the iterator returns after the pool drains — no
// goroutine is left feeding a dead consumer.
func TestClientStreamEarlyBreak(t *testing.T) {
	client, err := NewClient("three-counters", "", WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	words := make([]Word, 64)
	for i := range words {
		words[i] = bigWord(16)
	}
	yields := 0
	for _, r := range client.Stream(context.Background(), words) {
		if r.Err != nil {
			t.Fatalf("unexpected error before break: %v", r.Err)
		}
		yields++
		break
	}
	if yields != 1 {
		t.Fatalf("yielded %d results after break, want 1", yields)
	}
}

// TestClientStreamCancelMidway cancels the stream's context after the first
// yield: the already-dispatched words finish or abort, the undispatched ones
// report ErrCanceled, and every word is still yielded exactly once.
func TestClientStreamCancelMidway(t *testing.T) {
	const n = 48
	client, err := NewClient("three-counters", "", WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	words := make([]Word, n)
	for i := range words {
		words[i] = bigWord(24)
	}
	seen := make(map[int]int)
	completed, canceled := 0, 0
	for i, r := range client.Stream(ctx, words) {
		seen[i]++
		switch {
		case r.Err == nil:
			completed++
			if completed == 1 {
				cancel()
			}
		case errors.Is(r.Err, ErrCanceled):
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("word %d: ErrCanceled result does not wrap context.Canceled: %v", i, r.Err)
			}
			canceled++
		default:
			t.Errorf("word %d: non-cancellation error: %v", i, r.Err)
		}
	}
	if len(seen) != n {
		t.Fatalf("yielded %d distinct words, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("word %d yielded %d times", i, c)
		}
	}
	if completed == 0 || canceled == 0 {
		t.Errorf("completed=%d canceled=%d: cancel midway should leave both kinds", completed, canceled)
	}
}

// TestClientBatchCancelKeepsPartialResults pins the serving-layer contract of
// the tentpole: canceling a batch returns promptly, keeps the reports that
// finished, marks the rest ErrCanceled, and leaks no worker goroutines.
func TestClientBatchCancelKeepsPartialResults(t *testing.T) {
	before := runtime.NumGoroutine()
	client, err := NewClient("three-counters", "", WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(5*time.Millisecond, cancel)
	words := make([]Word, 256)
	for i := range words {
		words[i] = bigWord(48)
	}
	start := time.Now()
	results := client.Batch(ctx, words)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("canceled batch took %v to return", elapsed)
	}
	completed, canceled := 0, 0
	for i, r := range results {
		switch {
		case r.Err == nil:
			completed++
			if r.Report.Verdict != VerdictAccept {
				t.Errorf("word %d verdict = %v", i, r.Report.Verdict)
			}
		case errors.Is(r.Err, ErrCanceled):
			canceled++
		default:
			t.Errorf("word %d: non-cancellation error: %v", i, r.Err)
		}
	}
	if completed+canceled != len(words) {
		t.Fatalf("completed=%d canceled=%d, want %d total", completed, canceled, len(words))
	}
	if canceled == 0 {
		t.Skip("batch finished before the cancel landed; nothing to assert")
	}
	// Closing the client must wind down every pool worker goroutine.
	client.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after canceled batch", before, now)
	}
}

// TestClientPreCanceledContext pins the cheapest path: a context canceled
// before the call runs nothing and reports ErrCanceled everywhere.
func TestClientPreCanceledContext(t *testing.T) {
	client, err := NewClient("three-counters", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Recognize(ctx, WordFromString("001122")); !errors.Is(err, ErrCanceled) {
		t.Errorf("Recognize under canceled ctx: %v", err)
	}
	for i, r := range client.Batch(ctx, testWords()) {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("Batch word %d under canceled ctx: %v", i, r.Err)
		}
	}
}

// TestSentinelErrors pins the error taxonomy: every lookup and cancellation
// failure is classifiable with errors.Is against the exported sentinels.
func TestSentinelErrors(t *testing.T) {
	if _, err := NewClient("no-such-algorithm", ""); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: %v", err)
	}
	if _, err := NewClient("regular-one-pass", "no-such-language"); !errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("unknown language: %v", err)
	}
	if _, err := NewClient("collect-all", "wcw", WithSchedule("bogus")); !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("unknown schedule: %v", err)
	}
	if _, err := NewClient("lg", "no-such-growth"); !errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("unknown growth function: %v", err)
	}
	if _, err := NewClient("parity-one-pass", "k=x"); !errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("malformed parity language: %v", err)
	}
	// The v1 wrappers surface the same sentinels.
	if _, err := Recognize("no-such-algorithm", "", WordFromString("01"), Options{}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("v1 unknown algorithm: %v", err)
	}
	if _, err := Recognize("three-counters", "", WordFromString("012"), Options{Schedule: "bogus"}); !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("v1 unknown schedule: %v", err)
	}
}

// TestClientTrace pins WithTrace: traced clients return the event sequence,
// untraced ones do not pay for it.
func TestClientTrace(t *testing.T) {
	traced, err := NewClient("three-counters", "", WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewClient("three-counters", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	word := WordFromString("001122")
	tr, err := traced.Recognize(ctx, word)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Trace) == 0 {
		t.Error("traced report has no trace")
	}
	pr, err := plain.Recognize(ctx, word)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Trace != nil {
		t.Error("untraced report has a trace")
	}
	// The batch path carries traces too.
	for i, r := range traced.Batch(ctx, []Word{word, word}) {
		if r.Err != nil {
			t.Fatalf("word %d: %v", i, r.Err)
		}
		if len(r.Report.Trace) == 0 {
			t.Errorf("batch word %d has no trace", i)
		}
	}
}

// TestClientCloseLifecycle pins the pool lifecycle: Batch and Stream share a
// persistent pool, Close releases its workers and retires the client, a
// second Close is a no-op, and every call after Close reports ErrClosed
// instead of panicking.
func TestClientCloseLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	client, err := NewClient("three-counters", "", WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	words := testWords()
	for i, r := range client.Batch(ctx, words) {
		if r.Err != nil {
			t.Fatalf("word %d: %v", i, r.Err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := client.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if _, err := client.Recognize(ctx, words[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Recognize after Close: %v", err)
	}
	results := client.Batch(ctx, words)
	if len(results) != len(words) {
		t.Fatalf("Batch after Close returned %d results, want %d", len(results), len(words))
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrClosed) {
			t.Errorf("Batch word %d after Close: %v", i, r.Err)
		}
	}
	streamed := 0
	for _, r := range client.Stream(ctx, words) {
		streamed++
		if !errors.Is(r.Err, ErrClosed) {
			t.Errorf("Stream result after Close: %v", r.Err)
		}
	}
	if streamed != len(words) {
		t.Errorf("Stream after Close yielded %d results, want %d", streamed, len(words))
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked after Close: %d before, %d after", before, now)
	}
}

// TestClientCloseConcurrentWithBatch races Close against in-flight Batch and
// Stream calls: no call may panic, every word reports either a normal result
// or ErrClosed, and Close waits for the in-flight work instead of yanking the
// pool out from under it. Run with -race in CI.
func TestClientCloseConcurrentWithBatch(t *testing.T) {
	client, err := NewClient("three-counters", "", WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	words := []Word{bigWord(24), bigWord(32), bigWord(40)}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range client.Batch(ctx, words) {
				if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
					t.Errorf("batch during Close: %v", r.Err)
				}
			}
			for _, r := range client.Stream(ctx, words) {
				if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
					t.Errorf("stream during Close: %v", r.Err)
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	if err := client.Close(); err != nil {
		t.Errorf("Close racing Batch/Stream: %v", err)
	}
	wg.Wait()
}

// TestWithEngineLabel pins that a pinned engine is authoritative: its name
// becomes the schedule label (any WithSchedule string is ignored, not left
// unvalidated) and UsedConcurrentRun tracks the engine actually used.
func TestWithEngineLabel(t *testing.T) {
	client, err := NewClientWith(core.NewThreeCounters(),
		WithSchedule("sequential"), WithEngine(ring.NewConcurrentEngine()))
	if err != nil {
		t.Fatal(err)
	}
	if client.ScheduleName() != "concurrent" {
		t.Errorf("ScheduleName = %q, want the pinned engine's name", client.ScheduleName())
	}
	report, err := client.Recognize(context.Background(), WordFromString("001122"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Schedule != "concurrent" || !report.UsedConcurrentRun {
		t.Errorf("report schedule/concurrent flag = %q/%v", report.Schedule, report.UsedConcurrentRun)
	}
}

// TestV1BatchErrorFormat pins the v1 wrapper's error shape: package prefix
// first, then the failing word, then the cause.
func TestV1BatchErrorFormat(t *testing.T) {
	_, err := RecognizeBatch("three-counters", "", []Word{WordFromString("001122"), nil}, Options{})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := err.Error(); len(got) < 9 || got[:9] != "ringlang:" {
		t.Errorf("v1 batch error does not carry the package prefix: %q", got)
	}
}

// TestClientAccessorsAndNilCtx covers the metadata accessors and the
// nil-context tolerance of every method.
func TestClientAccessorsAndNilCtx(t *testing.T) {
	client, err := NewClient("three-counters", "", WithSchedule("round-robin"))
	if err != nil {
		t.Fatal(err)
	}
	if client.AlgorithmName() != "three-counters" {
		t.Errorf("AlgorithmName = %q", client.AlgorithmName())
	}
	if client.LanguageName() != "0^k1^k2^k" {
		t.Errorf("LanguageName = %q", client.LanguageName())
	}
	if client.ScheduleName() != "round-robin" {
		t.Errorf("ScheduleName = %q", client.ScheduleName())
	}
	//nolint:staticcheck // nil ctx tolerance is part of the contract under test
	if _, err := client.Recognize(nil, WordFromString("001122")); err != nil {
		t.Errorf("nil ctx Recognize: %v", err)
	}
	//nolint:staticcheck
	for i, r := range client.Batch(nil, testWords()[:2]) {
		if r.Err != nil {
			t.Errorf("nil ctx Batch word %d: %v", i, r.Err)
		}
	}
	//nolint:staticcheck
	for i, r := range client.Stream(nil, testWords()[:2]) {
		if r.Err != nil {
			t.Errorf("nil ctx Stream word %d: %v", i, r.Err)
		}
	}
}

// TestClientPresize pins the scale-plumbing option: a presized client must
// produce reports identical to an unsized one, for single runs and for the
// pooled batch path, under both the default and the sharded schedule. The
// reservation itself (no growth reallocations on large rings) is pinned by
// the allocation guards in internal/ring; here the contract is that presizing
// is observationally invisible. Stats carry private shrink-policy bookkeeping
// that legitimately differs between a fresh and a reserved state, so reports
// are compared on their public surface.
func samePresizeReport(want, got *Report) bool {
	w, g := *want, *got
	w.Stats, g.Stats = nil, nil
	return reflect.DeepEqual(w, g) &&
		want.Stats.Bits == got.Stats.Bits &&
		want.Stats.Messages == got.Stats.Messages &&
		want.Stats.MaxMessageBits == got.Stats.MaxMessageBits &&
		reflect.DeepEqual(want.Stats.Links(), got.Stats.Links())
}

func TestClientPresize(t *testing.T) {
	ctx := context.Background()
	words := testWords()
	for _, schedule := range []string{"sequential", "sharded"} {
		plain, err := NewClient("three-counters", "", WithSchedule(schedule))
		if err != nil {
			t.Fatal(err)
		}
		sized, err := NewClient("three-counters", "", WithSchedule(schedule), WithPresize(1<<12))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			want, err := plain.Recognize(ctx, w)
			if err != nil {
				t.Fatalf("%s plain on %q: %v", schedule, w.String(), err)
			}
			got, err := sized.Recognize(ctx, w)
			if err != nil {
				t.Fatalf("%s presized on %q: %v", schedule, w.String(), err)
			}
			if !samePresizeReport(want, got) {
				t.Errorf("%s on %q: presized report differs:\n%+v\n%+v", schedule, w.String(), want, got)
			}
		}
		wantBatch := plain.Batch(ctx, words)
		for i, r := range sized.Batch(ctx, words) {
			if r.Err != nil {
				t.Fatalf("%s presized batch word %d: %v", schedule, i, r.Err)
			}
			if !samePresizeReport(wantBatch[i].Report, r.Report) {
				t.Errorf("%s presized batch word %d: report differs", schedule, i)
			}
		}
	}
}
