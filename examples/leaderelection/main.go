// Leader election: the paper assumes a ring *with a leader*. This example
// shows the full pipeline: elect a leader with Dolev–Klawe–Rodeh (O(n log n)
// messages), re-index the ring so the winner is processor 0, and then run a
// recognition algorithm initiated by that leader through a ringlang.Client.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ringlang"
	"ringlang/internal/election"
	"ringlang/internal/lang"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	const n = 24
	rng := rand.New(rand.NewSource(42))

	// Step 1: a ring of n processors with distinct identities but no leader.
	ids := election.RandomIDs(n, rng)
	outcome, err := election.Run(election.DolevKlaweRodeh, ids, nil)
	if err != nil {
		return err
	}
	fmt.Printf("ring size          : %d\n", n)
	fmt.Printf("elected leader     : processor %d (id %d)\n", outcome.WinnerIndex, outcome.WinnerID)
	fmt.Printf("election cost      : %d messages, %d bits (O(n log n))\n",
		outcome.Stats.Messages, outcome.Stats.Bits)

	// For contrast: Chang–Roberts on its adversarial arrangement.
	worst, err := election.Run(election.ChangRoberts, election.DescendingIDs(n), nil)
	if err != nil {
		return err
	}
	fmt.Printf("chang-roberts worst: %d messages (Θ(n²))\n", worst.Stats.Messages)

	// Step 2: the pattern on the ring. The paper reads the word starting at
	// the leader, so we rotate the letters to the elected leader's position.
	letters, _ := lang.NewAnBnCn().GenerateMember(n, rng)
	rotated := make(ringlang.Word, 0, n)
	rotated = append(rotated, letters[outcome.WinnerIndex:]...)
	rotated = append(rotated, letters[:outcome.WinnerIndex]...)

	// Step 3: the elected leader initiates recognition.
	client, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		return err
	}
	report, err := client.Recognize(ctx, rotated)
	if err != nil {
		return err
	}
	fmt.Printf("\npattern (from leader): %q\n", rotated.String())
	fmt.Printf("recognition          : verdict %s with %d bits (three counters, O(n log n))\n",
		report.Verdict, report.Bits)
	fmt.Println("\nNote: the rotated pattern is generally no longer of the form 0^k1^k2^k —")
	fmt.Println("the language the leader decides always reads the ring starting at itself.")
	return nil
}
