// Turing: reproduce the Section 8 transformation — a one-tape TM with time
// t(n) becomes a ring algorithm whose bit complexity is at most
// t(n)·⌈log|Q|⌉ (plus a one-bit frame per message). The example runs the
// palindrome machine both directly and distributed over the ring, the ring
// side through a ringlang.Client batch wrapping the transformed recognizer.
package main

import (
	"context"
	"fmt"
	"log"

	"ringlang"
	"ringlang/internal/lang"
	"ringlang/internal/tm"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	machine := tm.NewPalindromeMachine()
	language := lang.NewPalindrome()
	rec, err := tm.NewRingRecognizer(machine, language)
	if err != nil {
		return err
	}
	// The transformed recognizer is not in the name catalog, so the client
	// wraps the constructed value directly.
	client, err := ringlang.NewClientWith(rec)
	if err != nil {
		return err
	}

	inputs := []string{"abba", "abab", "abaabaaba", "aabbaabbaa"}
	words := make([]ringlang.Word, len(inputs))
	for i, s := range inputs {
		words[i] = ringlang.WordFromString(s)
	}
	fmt.Printf("machine: %s (|Q| = %d, %d bits per head message)\n\n",
		machine.Name, machine.NumStates, rec.StateBits())
	results := client.Batch(ctx, words)
	for i, r := range results {
		if r.Err != nil {
			return r.Err
		}
		s := inputs[i]
		direct, err := machine.Run([]rune(s), 1<<20)
		if err != nil {
			return err
		}
		bound := direct.Steps*(rec.StateBits()+1) + 2*len(words[i])
		fmt.Printf("word %-12q  TM: accepted=%-5v steps=%-4d   ring: verdict=%-7s bits=%-5d (bound %d)\n",
			s, direct.Accepted, direct.Steps, r.Report.Verdict, r.Report.Bits, bound)
	}
	fmt.Println("\nEvery ring execution stays below the t(n)·(⌈log|Q|⌉+1) + 2n bound of Section 8.")
	return nil
}
