// Turing: reproduce the Section 8 transformation — a one-tape TM with time
// t(n) becomes a ring algorithm whose bit complexity is at most
// t(n)·⌈log|Q|⌉ (plus a one-bit frame per message). The example runs the
// palindrome machine both directly and distributed over the ring.
package main

import (
	"fmt"
	"log"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/tm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	machine := tm.NewPalindromeMachine()
	language := lang.NewPalindrome()
	rec, err := tm.NewRingRecognizer(machine, language)
	if err != nil {
		return err
	}

	words := []string{"abba", "abab", "abaabaaba", "aabbaabbaa"}
	fmt.Printf("machine: %s (|Q| = %d, %d bits per head message)\n\n",
		machine.Name, machine.NumStates, rec.StateBits())
	for _, s := range words {
		word := lang.WordFromString(s)
		direct, err := machine.Run([]rune(s), 1<<20)
		if err != nil {
			return err
		}
		res, err := core.Run(rec, word, core.RunOptions{})
		if err != nil {
			return err
		}
		bound := direct.Steps*(rec.StateBits()+1) + 2*len(word)
		fmt.Printf("word %-12q  TM: accepted=%-5v steps=%-4d   ring: verdict=%-7s bits=%-5d (bound %d)\n",
			s, direct.Accepted, direct.Steps, res.Verdict, res.Stats.Bits, bound)
	}
	fmt.Println("\nEvery ring execution stays below the t(n)·(⌈log|Q|⌉+1) + 2n bound of Section 8.")
	return nil
}
