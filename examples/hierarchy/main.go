// Hierarchy: reproduce Section 7 note 3 — for every growth function g between
// n·log n and n² the language L_g costs Θ(g(n)) bits. The example sweeps the
// standard growth functions and prints bits, bits/g(n) and the fitted log-log
// slope, with and without knowledge of n (note 4).
//
// The sweeps fan out over all CPUs through bench's pooled path (which runs a
// ringlang.Client batch underneath), and Ctrl-C cancels the remaining sweep
// cells cleanly via the signal context installed with SetDefaultContext.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"ringlang/internal/bench"
	"ringlang/internal/core"
	"ringlang/internal/lang"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	bench.SetDefaultContext(ctx)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sizes := []int{64, 256, 1024}
	opts := bench.MeasureOptions{Workers: -1} // one pool worker per CPU
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "g(n)\tn\tperiod p(n)\tbits (n unknown)\tbits (n known)\tknown/g(n)")
	for _, growth := range lang.StandardGrowthFuncs() {
		language := lang.NewLg(growth)
		unknown := core.NewLgRecognizer(language)
		known := core.NewLgRecognizerKnownN(language)
		unknownPts, err := bench.MeasureRecognizer(unknown, sizes, opts)
		if err != nil {
			return err
		}
		knownPts, err := bench.MeasureRecognizer(known, sizes, opts)
		if err != nil {
			return err
		}
		for i := range unknownPts {
			n := unknownPts[i].N
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\n",
				growth.Name, n, language.Period(n), unknownPts[i].Bits, knownPts[i].Bits,
				float64(knownPts[i].Bits)/growth.F(n))
		}
		fmt.Fprintf(w, "%s\t\t\tlog-log slope %.2f\tlog-log slope %.2f\t\n",
			growth.Name, bench.FitLogLogSlope(unknownPts), bench.FitLogLogSlope(knownPts))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nThe slope climbs from ≈1 (n·log n) to ≈2 (n²) exactly as the paper's hierarchy predicts;")
	fmt.Println("with n known the n·log n counting floor disappears (Section 7 note 4).")
	return nil
}
