// Passes vs bits: reproduce Section 7 note 5. The parity-index language over
// 2^k letters can be recognized in two passes with (2k+1)·n bits or in one
// pass with (k+2^k−1)·n bits; the example sweeps k and shows the crossover.
//
// The sweep runs under a signal context (bench.SetDefaultContext), so
// Ctrl-C cancels the remaining cells instead of hanging the run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"ringlang/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	bench.SetDefaultContext(ctx)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Section 7 note 5: trading passes for bits on a unidirectional ring")
	fmt.Println()
	table, err := bench.ExperimentE7([]int{1, 2, 3, 4, 5, 6, 7, 8}, 128)
	if err != nil {
		return err
	}
	return table.Render(os.Stdout)
}
