// Quickstart: recognize a regular language on a ring with a leader using the
// Theorem 1 one-pass algorithm, and compare its cost with the collect-all
// baseline and with a non-regular recognizer — all through the ringlang
// facade: one context-aware Client per algorithm.
package main

import (
	"context"
	"fmt"
	"log"

	"ringlang"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	// The language: words over {a,b} ending in "abb" (a regular language with
	// a 4-state minimal DFA, "ends-abb" in the catalog).
	//
	// The ring: one processor per letter, processor 0 (the leader) holding
	// the first letter.
	word := ringlang.WordFromString("abaabb")

	// Theorem 1: one pass, ⌈log|Q|⌉ bits per message.
	onePass, err := ringlang.NewClient("regular-one-pass", "ends-abb")
	if err != nil {
		return err
	}
	res, err := onePass.Recognize(ctx, word)
	if err != nil {
		return err
	}
	fmt.Printf("ring pattern        : %q (n = %d processors)\n", word.String(), len(word))
	fmt.Printf("one-pass verdict    : %s\n", res.Verdict)
	fmt.Printf("one-pass cost       : %d messages, %d bits (%d bits per message)\n",
		res.Messages, res.Bits, res.MaxMessageBits)

	// The universal baseline: the leader collects the entire word, Θ(n²) bits.
	baseline, err := ringlang.NewClient("collect-all", "ends-abb")
	if err != nil {
		return err
	}
	baseRes, err := baseline.Recognize(ctx, word)
	if err != nil {
		return err
	}
	fmt.Printf("collect-all cost    : %d messages, %d bits\n", baseRes.Messages, baseRes.Bits)

	// A non-regular language for contrast: {0^k 1^k 2^k} with three counters,
	// Θ(n log n) bits (the best possible for any non-regular language).
	three, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		return err
	}
	csWord := ringlang.WordFromString("000111222")
	csRes, err := three.Recognize(ctx, csWord)
	if err != nil {
		return err
	}
	collect, err := ringlang.NewClient("collect-all", "anbncn")
	if err != nil {
		return err
	}
	collectRes, err := collect.Recognize(ctx, csWord)
	if err != nil {
		return err
	}
	fmt.Printf("\nnon-regular pattern : %q\n", csWord.String())
	fmt.Printf("three-counters      : verdict %s, %d bits (vs %d bits for collect-all)\n",
		csRes.Verdict, csRes.Bits, collectRes.Bits)
	return nil
}
