// Quickstart: recognize a regular language on a ring with a leader using the
// Theorem 1 one-pass algorithm, and compare its cost with the collect-all
// baseline and with a non-regular recognizer.
package main

import (
	"fmt"
	"log"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The language: words over {a,b} ending in "abb" (a regular language with
	// a 4-state minimal DFA).
	language, err := lang.NewRegularFromRegex("ends-abb", "(a|b)*abb")
	if err != nil {
		return err
	}

	// The ring: one processor per letter, processor 0 (the leader) holding
	// the first letter.
	word := lang.WordFromString("abaabb")

	// Theorem 1: one pass, ⌈log|Q|⌉ bits per message.
	onePass := core.NewRegularOnePass(language)
	res, err := core.Run(onePass, word, core.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("ring pattern        : %q (n = %d processors)\n", word.String(), len(word))
	fmt.Printf("one-pass verdict    : %s\n", res.Verdict)
	fmt.Printf("one-pass cost       : %d messages, %d bits (%d bits per message)\n",
		res.Stats.Messages, res.Stats.Bits, onePass.StateBits())

	// The universal baseline: the leader collects the entire word, Θ(n²) bits.
	baseline := core.NewCollectAll(language)
	baseRes, err := core.Run(baseline, word, core.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("collect-all cost    : %d messages, %d bits\n", baseRes.Stats.Messages, baseRes.Stats.Bits)

	// A non-regular language for contrast: {0^k 1^k 2^k} with three counters,
	// Θ(n log n) bits (the best possible for any non-regular language).
	three := core.NewThreeCounters()
	csWord := lang.WordFromString("000111222")
	csRes, err := core.Run(three, csWord, core.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nnon-regular pattern : %q\n", csWord.String())
	fmt.Printf("three-counters      : verdict %s, %d bits (vs %d bits for collect-all)\n",
		csRes.Verdict, csRes.Stats.Bits, mustBits(core.NewCollectAll(lang.NewAnBnCn()), csWord))
	return nil
}

func mustBits(rec core.Recognizer, word lang.Word) int {
	res, err := core.Run(rec, word, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats.Bits
}
