package ringlang_test

import (
	"fmt"
	"log"

	"ringlang"
)

// ExampleRecognize runs the Theorem 1 one-pass algorithm for a regular
// language on a six-processor ring and prints the exact bit cost.
func ExampleRecognize() {
	report, err := ringlang.Recognize("regular-one-pass", "even-ones",
		ringlang.WordFromString("011010"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict=%s bits=%d messages=%d\n", report.Verdict, report.Bits, report.Messages)
	// Output: verdict=reject bits=6 messages=6
}

// ExampleRecognize_nonRegular shows a non-regular language recognized with
// counters: {0^k 1^k 2^k} costs Θ(n log n) bits, the minimum possible for any
// non-regular language (Theorem 4).
func ExampleRecognize_nonRegular() {
	report, err := ringlang.Recognize("three-counters", "",
		ringlang.WordFromString("000111222"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict=%s member=%v messages=%d\n", report.Verdict, report.Member, report.Messages)
	// Output: verdict=accept member=true messages=9
}

// ExampleRecognize_quadratic shows the Section 7 note 1 language {wcw}: every
// algorithm needs Ω(n²) bits, and the streaming comparison meets that bound.
func ExampleRecognize_quadratic() {
	accept, err := ringlang.Recognize("compare-wcw", "", ringlang.WordFromString("abcab"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	reject, err := ringlang.Recognize("compare-wcw", "", ringlang.WordFromString("abcba"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wcw(abcab)=%s wcw(abcba)=%s\n", accept.Verdict, reject.Verdict)
	// Output: wcw(abcab)=accept wcw(abcba)=reject
}
