package ringlang_test

import (
	"context"
	"fmt"
	"log"

	"ringlang"
)

// ExampleNewClient shows the v2 surface: a long-lived client bound to one
// algorithm and schedule, driven with a context, with per-word results.
func ExampleNewClient() {
	client, err := ringlang.NewClient("three-counters", "",
		ringlang.WithSchedule("round-robin"), ringlang.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close() // releases the Batch/Stream worker pool
	ctx := context.Background()
	report, err := client.Recognize(ctx, ringlang.WordFromString("001122"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single: verdict=%s bits=%d\n", report.Verdict, report.Bits)

	words := []ringlang.Word{
		ringlang.WordFromString("001122"),
		ringlang.WordFromString("010212"),
	}
	for i, res := range client.Batch(ctx, words) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("batch[%d]: verdict=%s member=%v\n", i, res.Report.Verdict, res.Report.Member)
	}
	// Output:
	// single: verdict=accept bits=72
	// batch[0]: verdict=accept member=true
	// batch[1]: verdict=reject member=false
}

// ExampleClient_Stream consumes reports as workers finish: the iterator
// yields (word index, Result) pairs in completion order, and collecting them
// by index reassembles the batch.
func ExampleClient_Stream() {
	client, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	words := []ringlang.Word{
		ringlang.WordFromString("001122"),
		ringlang.WordFromString("000111222"),
	}
	verdicts := make([]ringlang.Verdict, len(words))
	for i, res := range client.Stream(context.Background(), words) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		verdicts[i] = res.Report.Verdict
	}
	fmt.Println(verdicts[0], verdicts[1])
	// Output: accept accept
}

// ExampleRecognize runs the Theorem 1 one-pass algorithm for a regular
// language on a six-processor ring and prints the exact bit cost.
func ExampleRecognize() {
	report, err := ringlang.Recognize("regular-one-pass", "even-ones",
		ringlang.WordFromString("011010"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict=%s bits=%d messages=%d\n", report.Verdict, report.Bits, report.Messages)
	// Output: verdict=reject bits=6 messages=6
}

// ExampleRecognize_nonRegular shows a non-regular language recognized with
// counters: {0^k 1^k 2^k} costs Θ(n log n) bits, the minimum possible for any
// non-regular language (Theorem 4).
func ExampleRecognize_nonRegular() {
	report, err := ringlang.Recognize("three-counters", "",
		ringlang.WordFromString("000111222"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict=%s member=%v messages=%d\n", report.Verdict, report.Member, report.Messages)
	// Output: verdict=accept member=true messages=9
}

// ExampleRecognize_quadratic shows the Section 7 note 1 language {wcw}: every
// algorithm needs Ω(n²) bits, and the streaming comparison meets that bound.
func ExampleRecognize_quadratic() {
	accept, err := ringlang.Recognize("compare-wcw", "", ringlang.WordFromString("abcab"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	reject, err := ringlang.Recognize("compare-wcw", "", ringlang.WordFromString("abcba"), ringlang.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wcw(abcab)=%s wcw(abcba)=%s\n", accept.Verdict, reject.Verdict)
	// Output: wcw(abcab)=accept wcw(abcba)=reject
}
