// Package ringlang is the public facade of the reproduction of Mansour &
// Zaks, "On the Bit Complexity of Distributed Computations in a Ring with a
// Leader" (PODC 1986 / Information and Computation 75, 1987).
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// full inventory):
//
//	internal/ring      — the scheduler-pluggable ring-with-a-leader
//	                     simulator with exact bit accounting
//	internal/automata  — DFA/NFA/regex substrate for Theorem 1
//	internal/lang      — the paper's languages and word generators
//	internal/core      — the recognition algorithms and the declarative
//	                     token-pass framework
//	internal/bits      — bit-exact payload strings and counter codes
//	internal/exec      — the batch-execution worker pool behind Batch/Stream
//	internal/trace     — information-state and token analyses
//	internal/election  — the leader-election substrate
//	internal/tm        — the Section 8 TM → ring transformation
//	internal/bench     — the experiment harness behind cmd/ringbench
//	internal/memo      — the serving tier's sharded memoization cache
//	internal/server    — the HTTP serving layer behind cmd/ringserve
//
// The entry point is the Client: a long-lived, concurrency-safe handle on
// one algorithm under one delivery schedule, built with functional options
// and driven with a context.Context —
//
//	client, err := ringlang.NewClient("three-counters", "",
//		ringlang.WithSchedule("random"), ringlang.WithSeed(7))
//	defer client.Close()
//	report, err := client.Recognize(ctx, ringlang.WordFromString("001122"))
//	for i, res := range client.Stream(ctx, words) { … }
//
// Client.Batch and Client.Stream report per-word Results (a bad word never
// fails its neighbours), cancellation propagates down to the engines, and
// every failure wraps one of the package's typed sentinel errors
// (ErrUnknownAlgorithm, ErrUnknownLanguage, ErrUnknownSchedule, ErrCanceled,
// ErrClosed). Close is idempotent and safe under concurrent calls; a closed
// client reports ErrClosed instead of panicking. CurrentCatalog exposes the
// algorithm/language/schedule name catalogs in one value — what `ringbench
// -list` prints and ringserve serves at /v1/catalog. The package-level
// Recognize and RecognizeBatch functions are the deprecated v1 surface, kept
// as thin wrappers over a per-call client.
package ringlang

import (
	"context"
	"errors"
	"fmt"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/memo"
	"ringlang/internal/ring"
)

// Re-exported core types. The aliases keep the facade thin: values returned
// here interoperate directly with the internal packages used by the examples.
type (
	// Word is the pattern on the ring, one letter per processor, leader first.
	Word = lang.Word
	// Language is a decidable language with word generators.
	Language = lang.Language
	// Recognizer is a distributed recognition algorithm.
	Recognizer = core.Recognizer
	// Engine executes an algorithm on a ring; see WithEngine.
	Engine = ring.Engine
	// Verdict is the leader's accept/reject decision.
	Verdict = ring.Verdict
	// Stats is the exact per-execution bit and message accounting.
	Stats = ring.Stats
	// Trace is the recorded event sequence of a run (see WithTrace).
	Trace = ring.Trace
	// PrefixCache reuses shared-prefix computation across runs; build one
	// with NewPrefixCache and attach it with WithSharedPrefixCache (or let
	// WithPrefixCache build a client-private one).
	PrefixCache = core.PrefixCache
	// PrefixStats is a PrefixCache's hit/miss/eviction counters.
	PrefixStats = memo.PrefixStats
	// FaultReport is the injected-fault accounting of a run under a fault
	// schedule: drops and retransmitted bits (lossy), duplicates and their
	// bits (duplicating), crashed processors plus rerouted or deferred frames
	// (crash-repair / crash-restart). See Report.Faults.
	FaultReport = ring.FaultReport
	// DeliveryGuarantee classifies what a schedule still promises about
	// delivery: exactly-once, at-least-once, or crash-prone (see
	// ring.ScheduleDeliveryGuarantee).
	DeliveryGuarantee = ring.DeliveryGuarantee
)

// NewPrefixCache builds a prefix-checkpoint cache bounded to roughly
// maxBytes of retained checkpoint state, for sharing across clients with
// WithSharedPrefixCache. See WithPrefixCache for what the cache does.
func NewPrefixCache(maxBytes int64) *PrefixCache {
	return core.NewPrefixCache(maxBytes)
}

// Verdict values.
const (
	VerdictAccept = ring.VerdictAccept
	VerdictReject = ring.VerdictReject
)

// WordFromString converts a Go string into a ring pattern.
func WordFromString(s string) Word {
	return lang.WordFromString(s)
}

// Report is the outcome of one recognition run.
type Report struct {
	// Algorithm and LanguageName identify what ran.
	Algorithm    string
	LanguageName string
	// Verdict is the leader's decision; Member is the language's own answer.
	Verdict Verdict
	Member  bool
	// Messages and Bits are the execution totals; BitsPerProcessor is
	// Bits / n, the quantity whose asymptotics the paper classifies.
	Messages         int
	Bits             int
	BitsPerProcessor float64
	MaxMessageBits   int
	ProcessorCount   int
	// Schedule is the delivery schedule the run executed under.
	Schedule          string
	UsedConcurrentRun bool
	// Stats is the full accounting snapshot (per-link traffic included). It
	// is independent of any pooled run state and safe to retain.
	Stats *Stats
	// Faults is the injected-fault accounting: nil under reliable schedules,
	// always non-nil (even when all-zero) under the fault schedules "lossy",
	// "duplicating", "crash-restart" and "crash-repair". Fault overhead lives
	// here, never in Stats — Bits counts what the algorithm sent, so verdict
	// and Stats stay identical across every exactly-once schedule.
	Faults *FaultReport
	// Trace is the recorded event sequence; nil unless the client was built
	// with WithTrace.
	Trace Trace
}

// Options configures the deprecated package-level Recognize and
// RecognizeBatch wrappers. New code should build a Client with functional
// options instead.
type Options struct {
	// Concurrent runs the goroutine-per-processor engine instead of the
	// deterministic sequential one. Shorthand for Schedule == "concurrent".
	Concurrent bool
	// Schedule selects the delivery schedule by name — one of
	// ScheduleNames(): "sequential", "random", "round-robin", "adversarial",
	// "concurrent", "sharded", "lossy", "duplicating", "crash-restart",
	// "crash-repair". Empty means sequential (or concurrent when Concurrent is
	// set). The paper's bounds hold under every exactly-once schedule;
	// sweeping this knob is how that is checked.
	Schedule string
	// Seed drives randomized schedules (Schedule == "random").
	Seed int64
	// Workers is the number of worker goroutines RecognizeBatch fans words
	// across; values < 1 mean one worker per CPU (runtime.GOMAXPROCS).
	// Single-word Recognize calls ignore it.
	Workers int
}

// schedule resolves the effective schedule name.
func (o Options) schedule() string {
	if o.Schedule != "" {
		return o.Schedule
	}
	if o.Concurrent {
		return "concurrent"
	}
	return "sequential"
}

// clientOptions maps the v1 Options onto the Client's functional options.
func (o Options) clientOptions() []Option {
	return []Option{
		WithSchedule(o.schedule()),
		WithSeed(o.Seed),
		WithWorkers(o.Workers),
	}
}

// Recognize builds the named algorithm (see AlgorithmNames) and runs it on
// the ring labelled with word.
//
// Deprecated: build a Client with NewClient and call Client.Recognize, which
// takes a context.Context and reuses the resolved algorithm and engine
// across calls. This wrapper constructs a fresh client per call and runs it
// under context.Background.
func Recognize(algorithm, language string, word Word, opts Options) (*Report, error) {
	c, err := NewClient(algorithm, language, opts.clientOptions()...)
	if err != nil {
		return nil, err
	}
	return c.Recognize(context.Background(), word)
}

// RecognizeWith runs an already constructed recognizer.
//
// Deprecated: build a Client with NewClientWith and call Client.Recognize.
func RecognizeWith(rec Recognizer, word Word, opts Options) (*Report, error) {
	c, err := NewClientWith(rec, opts.clientOptions()...)
	if err != nil {
		return nil, err
	}
	return c.Recognize(context.Background(), word)
}

// RecognizeBatch builds the named algorithm once and runs it on every word
// across a worker pool. Reports are returned in word order and are exactly
// what per-word Recognize calls would produce, under every schedule. The
// first failing word fails the whole batch and discards the other words'
// reports — the v1 contract this wrapper preserves.
//
// Deprecated: build a Client with NewClient and call Client.Batch (per-word
// Results, no fail-all) or Client.Stream (results as workers finish), both
// of which take a context.Context.
func RecognizeBatch(algorithm, language string, words []Word, opts Options) ([]*Report, error) {
	c, err := NewClient(algorithm, language, opts.clientOptions()...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return failAll(c.Batch(context.Background(), words), words)
}

// RecognizeBatchWith runs an already constructed recognizer on every word in
// parallel; see RecognizeBatch.
//
// Deprecated: build a Client with NewClientWith and call Client.Batch or
// Client.Stream.
func RecognizeBatchWith(rec Recognizer, words []Word, opts Options) ([]*Report, error) {
	c, err := NewClientWith(rec, opts.clientOptions()...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return failAll(c.Batch(context.Background(), words), words)
}

// BatchWordError is the error the v1 all-or-nothing batch calls
// (RecognizeBatch, RecognizeBatchWith) return when a word fails: it names
// the failing word and its index as fields, so callers classify the failure
// with errors.As instead of parsing the message, and the cause stays
// reachable through Unwrap (errors.Is against the package sentinels keeps
// working through it).
type BatchWordError struct {
	// Index is the failing word's position in the batch.
	Index int
	// Word is the failing word's string form.
	Word string
	// Err is the underlying cause.
	Err error
}

// Error implements error with the v1 message format.
func (e *BatchWordError) Error() string {
	return fmt.Sprintf("ringlang: word %d (%q): %v", e.Index, e.Word, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *BatchWordError) Unwrap() error { return e.Err }

// failAll converts per-word Results into the v1 all-or-nothing shape: the
// first word with an error fails the batch with a BatchWordError — the
// client's own "ringlang:" wrap is peeled off so the prefix is not doubled.
func failAll(results []Result, words []Word) ([]*Report, error) {
	reports := make([]*Report, len(results))
	for i, r := range results {
		if r.Err != nil {
			cause := r.Err
			if inner := errors.Unwrap(cause); inner != nil {
				cause = inner
			}
			return nil, &BatchWordError{Index: i, Word: words[i].String(), Err: cause}
		}
		reports[i] = r.Report
	}
	return reports, nil
}

// Catalog is the package's run surface in one value: every algorithm,
// language and schedule name the constructors accept. It is what
// `ringbench -list` prints and what ringserve serves at /v1/catalog, so the
// CLI, the HTTP API and the docs-drift CI check all describe the same set.
type Catalog struct {
	// Algorithms are the names accepted by NewClient and Recognize.
	Algorithms []string
	// Languages are the names accepted by algorithms that take one.
	Languages []string
	// Schedules are the names accepted by WithSchedule and Options.Schedule.
	Schedules []string
}

// CurrentCatalog returns the algorithm/language/schedule catalogs. The
// slices are freshly built per call and safe to retain or mutate.
func CurrentCatalog() Catalog {
	return Catalog{
		Algorithms: AlgorithmNames(),
		Languages:  LanguageNames(),
		Schedules:  ScheduleNames(),
	}
}

// AlgorithmNames lists the algorithms accepted by NewClient and Recognize.
func AlgorithmNames() []string {
	return core.AlgorithmNames()
}

// LanguageNames lists the language names accepted by NewClient and Recognize
// for the algorithms that take one.
func LanguageNames() []string {
	return lang.CatalogNames()
}

// ScheduleNames lists the delivery schedules accepted by WithSchedule and
// Options.Schedule.
func ScheduleNames() []string {
	return ring.ScheduleNames()
}

// Delivery guarantees, re-exported for classifying ScheduleNames entries.
const (
	// DeliveryExactlyOnce: every message arrives exactly once, in per-link
	// order — the paper's model. All verdicts and bit totals are identical
	// across these schedules.
	DeliveryExactlyOnce = ring.ExactlyOnce
	// DeliveryAtLeastOnce: messages may be duplicated ("duplicating").
	DeliveryAtLeastOnce = ring.AtLeastOnce
	// DeliveryCrashProne: a processor may fail permanently ("crash-repair").
	DeliveryCrashProne = ring.CrashProne
)

// ScheduleDeliveryGuarantee classifies what the named schedule still promises
// about delivery. Schedules weaker than DeliveryExactlyOnce refuse to run raw
// algorithms with ErrDeliveryNotTolerated unless WithAllowFaults opts in.
func ScheduleDeliveryGuarantee(name string) DeliveryGuarantee {
	return ring.ScheduleDeliveryGuarantee(name)
}

// ScheduleUsesSeed reports whether the named schedule's delivery order or
// fault pattern is driven by WithSeed / Options.Seed ("random" and the fault
// schedules). Seedless schedules ignore the seed — callers building cache
// keys or validating flags should branch on this instead of enumerating
// names.
func ScheduleUsesSeed(name string) bool {
	return ring.ScheduleUsesSeed(name)
}
