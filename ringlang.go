// Package ringlang is the public facade of the reproduction of Mansour &
// Zaks, "On the Bit Complexity of Distributed Computations in a Ring with a
// Leader" (PODC 1986 / Information and Computation 75, 1987).
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// full inventory):
//
//	internal/ring      — the ring-with-a-leader simulator (sequential and
//	                     concurrent engines) with exact bit accounting
//	internal/automata  — DFA/NFA/regex substrate for Theorem 1
//	internal/lang      — the paper's languages and word generators
//	internal/core      — the paper's recognition algorithms
//	internal/trace     — information-state and token analyses
//	internal/election  — the leader-election substrate
//	internal/tm        — the Section 8 TM → ring transformation
//	internal/bench     — the experiment harness behind EXPERIMENTS.md
//
// This package re-exports the handful of entry points a downstream user
// needs to run a recognition on a ring and read off its bit complexity; the
// cmd/ tools and examples/ directories show complete usage.
package ringlang

import (
	"fmt"

	"ringlang/internal/core"
	"ringlang/internal/exec"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// Re-exported core types. The aliases keep the facade thin: values returned
// here interoperate directly with the internal packages used by the examples.
type (
	// Word is the pattern on the ring, one letter per processor, leader first.
	Word = lang.Word
	// Language is a decidable language with word generators.
	Language = lang.Language
	// Recognizer is a distributed recognition algorithm.
	Recognizer = core.Recognizer
	// Verdict is the leader's accept/reject decision.
	Verdict = ring.Verdict
	// Stats is the exact per-execution bit and message accounting.
	Stats = ring.Stats
)

// Verdict values.
const (
	VerdictAccept = ring.VerdictAccept
	VerdictReject = ring.VerdictReject
)

// WordFromString converts a Go string into a ring pattern.
func WordFromString(s string) Word {
	return lang.WordFromString(s)
}

// Report is the outcome of one recognition run.
type Report struct {
	// Algorithm and LanguageName identify what ran.
	Algorithm    string
	LanguageName string
	// Verdict is the leader's decision; Member is the language's own answer.
	Verdict Verdict
	Member  bool
	// Messages and Bits are the execution totals; BitsPerProcessor is
	// Bits / n, the quantity whose asymptotics the paper classifies.
	Messages         int
	Bits             int
	BitsPerProcessor float64
	MaxMessageBits   int
	ProcessorCount   int
	// Schedule is the delivery schedule the run executed under.
	Schedule          string
	UsedConcurrentRun bool
}

// Options configures Recognize.
type Options struct {
	// Concurrent runs the goroutine-per-processor engine instead of the
	// deterministic sequential one. Shorthand for Schedule == "concurrent".
	Concurrent bool
	// Schedule selects the delivery schedule by name — one of
	// ScheduleNames(): "sequential", "random", "round-robin", "adversarial",
	// "concurrent". Empty means sequential (or concurrent when Concurrent is
	// set). The paper's bounds hold under every schedule; sweeping this knob
	// is how that is checked.
	Schedule string
	// Seed drives randomized schedules (Schedule == "random").
	Seed int64
	// Workers is the number of worker goroutines RecognizeBatch fans words
	// across; values < 1 mean one worker per CPU (runtime.GOMAXPROCS).
	// Single-word Recognize calls ignore it.
	Workers int
}

// schedule resolves the effective schedule name.
func (o Options) schedule() string {
	if o.Schedule != "" {
		return o.Schedule
	}
	if o.Concurrent {
		return "concurrent"
	}
	return "sequential"
}

// Recognize builds the named algorithm (see AlgorithmNames) and runs it on
// the ring labelled with word. The language argument is required only by
// algorithms that are parameterized by a language (for example
// "regular-one-pass" with "even-ones", or "lg" with "n^1.5").
func Recognize(algorithm, language string, word Word, opts Options) (*Report, error) {
	rec, err := core.NewRecognizerByName(algorithm, language)
	if err != nil {
		return nil, err
	}
	return RecognizeWith(rec, word, opts)
}

// RecognizeWith runs an already constructed recognizer.
func RecognizeWith(rec Recognizer, word Word, opts Options) (*Report, error) {
	schedule := opts.schedule()
	res, err := core.Run(rec, word, core.RunOptions{Schedule: schedule, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("ringlang: %w", err)
	}
	return newReport(rec, word, res.Verdict, res.Stats, schedule), nil
}

// newReport assembles a Report from one execution's verdict and accounting.
func newReport(rec Recognizer, word Word, verdict Verdict, stats *ring.Stats, schedule string) *Report {
	return &Report{
		Algorithm:         rec.Name(),
		LanguageName:      rec.Language().Name(),
		Verdict:           verdict,
		Member:            rec.Language().Contains(word),
		Messages:          stats.Messages,
		Bits:              stats.Bits,
		BitsPerProcessor:  stats.BitsPerProcessor(),
		MaxMessageBits:    stats.MaxMessageBits,
		ProcessorCount:    stats.Processors,
		Schedule:          schedule,
		UsedConcurrentRun: schedule == "concurrent",
	}
}

// RecognizeBatch builds the named algorithm once and runs it on every word,
// fanning the executions across a worker pool (internal/exec) whose workers
// reuse their run state — engine, scheduler queues, stats — from word to
// word. Reports are returned in word order and are exactly what per-word
// Recognize calls would produce, under every schedule. The first failing
// word fails the batch.
func RecognizeBatch(algorithm, language string, words []Word, opts Options) ([]*Report, error) {
	rec, err := core.NewRecognizerByName(algorithm, language)
	if err != nil {
		return nil, err
	}
	return RecognizeBatchWith(rec, words, opts)
}

// RecognizeBatchWith runs an already constructed recognizer on every word in
// parallel; see RecognizeBatch.
func RecognizeBatchWith(rec Recognizer, words []Word, opts Options) ([]*Report, error) {
	schedule := opts.schedule()
	jobs := make([]exec.Job, len(words))
	for i, w := range words {
		jobs[i] = exec.Job{Rec: rec, Word: w, Schedule: schedule, Seed: opts.Seed}
	}
	results := exec.RunBatch(jobs, exec.Options{Workers: opts.Workers})
	reports := make([]*Report, len(words))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("ringlang: word %d (%q): %w", i, words[i].String(), r.Err)
		}
		reports[i] = newReport(rec, words[i], r.Verdict, r.Stats, schedule)
	}
	return reports, nil
}

// AlgorithmNames lists the algorithms accepted by Recognize.
func AlgorithmNames() []string {
	return core.AlgorithmNames()
}

// LanguageNames lists the language names accepted by Recognize for the
// algorithms that take one.
func LanguageNames() []string {
	return lang.CatalogNames()
}

// ScheduleNames lists the delivery schedules accepted by Options.Schedule.
func ScheduleNames() []string {
	return ring.ScheduleNames()
}
