package ringlang_test

// One testing.B benchmark per core experiment (E1–E10) plus the design
// ablations (A1–A3) and engine micro-benchmarks. Each benchmark runs a
// reduced but representative sweep per iteration and reports the normalized
// quantity the corresponding paper claim is about (bits/n, bits/(n·log n),
// bits/n², overhead factors) as a custom metric, so `go test -bench=.`
// regenerates the shape of every result.
//
// This file lives in the external test package: internal/bench's pooled
// sweeps run through the ringlang.Client, so an in-package import of bench
// would be a cycle.

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"ringlang/internal/bench"
	"ringlang/internal/core"
	"ringlang/internal/election"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
	"ringlang/internal/tm"
)

// benchSizes are deliberately smaller than the full cmd/ringbench sweeps so
// a full -bench=. run stays fast; cmd/ringbench runs the full versions.
var (
	benchLinearSizes    = []int{64, 256, 1024}
	benchQuadraticSizes = []int{65, 129, 257}
	benchHierarchySizes = []int{64, 256}
	benchTMSizes        = []int{8, 16, 32}
)

func reportSlope(b *testing.B, points []bench.Point) {
	b.Helper()
	slope := bench.FitLogLogSlope(points)
	if !math.IsNaN(slope) {
		b.ReportMetric(slope, "loglog-slope")
	}
}

func measureOrFatal(b *testing.B, rec core.Recognizer, sizes []int, opts bench.MeasureOptions) []bench.Point {
	b.Helper()
	points, err := bench.MeasureRecognizer(rec, sizes, opts)
	if err != nil {
		b.Fatal(err)
	}
	return points
}

// BenchmarkE1RegularLinear — Theorem 1/6: regular languages in ⌈log|Q|⌉·n bits.
func BenchmarkE1RegularLinear(b *testing.B) {
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		b.Fatal(err)
	}
	var points []bench.Point
	for i := 0; i < b.N; i++ {
		points = points[:0]
		for _, reg := range regs {
			rec := core.NewRegularOnePass(reg)
			points = append(points, measureOrFatal(b, rec, benchLinearSizes, bench.MeasureOptions{Kind: bench.RandomWords})...)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(float64(last.Bits)/float64(last.N), "bits/n")
	reportSlope(b, points)
}

// BenchmarkE2NonRegularNLogN — Theorem 4/5: non-regular recognizers at n·log n.
func BenchmarkE2NonRegularNLogN(b *testing.B) {
	var points []bench.Point
	for i := 0; i < b.N; i++ {
		points = points[:0]
		points = append(points, measureOrFatal(b, core.NewSquareCount(), benchLinearSizes, bench.MeasureOptions{Kind: bench.RandomWords})...)
		points = append(points, measureOrFatal(b, core.NewThreeCounters(), benchLinearSizes, bench.MeasureOptions{})...)
	}
	last := points[len(points)-1]
	b.ReportMetric(float64(last.Bits)/(float64(last.N)*math.Log2(float64(last.N))), "bits/nlogn")
	reportSlope(b, points)
}

// BenchmarkE2bInfoStates — the information-state counting behind Theorems 2/4.
func BenchmarkE2bInfoStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExperimentE2b([]int{32, 64, 128}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Quadratic — Section 7 note 1: {wcw} at Θ(n²) bits.
func BenchmarkE3Quadratic(b *testing.B) {
	var streaming, baseline []bench.Point
	for i := 0; i < b.N; i++ {
		streaming = measureOrFatal(b, core.NewCompareWcW(), benchQuadraticSizes, bench.MeasureOptions{})
		baseline = measureOrFatal(b, core.NewCollectAll(lang.NewWcW()), benchQuadraticSizes, bench.MeasureOptions{})
	}
	last := streaming[len(streaming)-1]
	b.ReportMetric(float64(last.Bits)/(float64(last.N)*float64(last.N)), "bits/n2")
	b.ReportMetric(float64(baseline[len(baseline)-1].Bits)/float64(last.Bits), "collectall/streaming")
	reportSlope(b, streaming)
}

// BenchmarkE4ThreeCounters — Section 7 note 2: {0^k1^k2^k} at O(n log n) bits.
func BenchmarkE4ThreeCounters(b *testing.B) {
	var points []bench.Point
	for i := 0; i < b.N; i++ {
		points = measureOrFatal(b, core.NewThreeCounters(), benchLinearSizes, bench.MeasureOptions{})
	}
	last := points[len(points)-1]
	b.ReportMetric(float64(last.Bits)/(float64(last.N)*math.Log2(float64(last.N))), "bits/nlogn")
	reportSlope(b, points)
}

// BenchmarkE5Hierarchy — Section 7 note 3: the Θ(g(n)) hierarchy.
func BenchmarkE5Hierarchy(b *testing.B) {
	for _, growth := range lang.StandardGrowthFuncs() {
		growth := growth
		b.Run(growth.Name, func(b *testing.B) {
			language := lang.NewLg(growth)
			rec := core.NewLgRecognizer(language)
			var points []bench.Point
			for i := 0; i < b.N; i++ {
				points = measureOrFatal(b, rec, benchHierarchySizes, bench.MeasureOptions{})
			}
			last := points[len(points)-1]
			b.ReportMetric(float64(last.Bits)/growth.F(last.N), "bits/g(n)")
			reportSlope(b, points)
		})
	}
}

// BenchmarkE6KnownN — Section 7 note 4: knowing n removes the n·log n term.
func BenchmarkE6KnownN(b *testing.B) {
	language := lang.NewLg(lang.GrowthN15)
	var unknown, known []bench.Point
	for i := 0; i < b.N; i++ {
		unknown = measureOrFatal(b, core.NewLgRecognizer(language), benchHierarchySizes, bench.MeasureOptions{})
		known = measureOrFatal(b, core.NewLgRecognizerKnownN(language), benchHierarchySizes, bench.MeasureOptions{})
	}
	u, k := unknown[len(unknown)-1], known[len(known)-1]
	b.ReportMetric(float64(u.Bits-k.Bits), "saved-bits")
	b.ReportMetric(float64(k.Bits)/lang.GrowthN15.F(k.N), "known-bits/g(n)")
}

// BenchmarkE7PassTradeoff — Section 7 note 5: passes vs bits.
func BenchmarkE7PassTradeoff(b *testing.B) {
	const n = 128
	for _, k := range []int{1, 2, 4, 8} {
		k := k
		b.Run("k="+string(rune('0'+k)), func(b *testing.B) {
			language, err := lang.NewParityIndex(k)
			if err != nil {
				b.Fatal(err)
			}
			var two, one []bench.Point
			for i := 0; i < b.N; i++ {
				two = measureOrFatal(b, core.NewParityTwoPass(language), []int{n}, bench.MeasureOptions{})
				one = measureOrFatal(b, core.NewParityOnePass(language), []int{n}, bench.MeasureOptions{})
			}
			b.ReportMetric(float64(two[0].Bits)/float64(n), "twopass-bits/n")
			b.ReportMetric(float64(one[0].Bits)/float64(n), "onepass-bits/n")
		})
	}
}

// BenchmarkE8LineSimulation — Theorem 7 Stage 1: cut-link overhead.
func BenchmarkE8LineSimulation(b *testing.B) {
	inner := core.NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := core.NewLineSimulation(inner)
	if err != nil {
		b.Fatal(err)
	}
	var direct, simulated []bench.Point
	for i := 0; i < b.N; i++ {
		direct = measureOrFatal(b, inner, benchHierarchySizes, bench.MeasureOptions{Kind: bench.RandomWords})
		simulated = measureOrFatal(b, sim, benchHierarchySizes, bench.MeasureOptions{Kind: bench.RandomWords})
	}
	d, s := direct[len(direct)-1], simulated[len(simulated)-1]
	b.ReportMetric(float64(s.Bits)/float64(d.Bits), "overhead-factor")
	b.ReportMetric(float64(s.Bits-d.Bits)/float64(s.N), "overhead-bits/n")
}

// BenchmarkE9Election — the [DKR] substrate: message complexity of election.
func BenchmarkE9Election(b *testing.B) {
	protocols := []struct {
		name string
		p    election.Protocol
	}{
		{"chang-roberts-worst", election.ChangRoberts},
		{"dkr-worst", election.DolevKlaweRodeh},
	}
	for _, proto := range protocols {
		proto := proto
		b.Run(proto.name, func(b *testing.B) {
			var out *election.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = election.Run(proto.p, election.DescendingIDs(256), nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			n := 256.0
			b.ReportMetric(float64(out.Stats.Messages)/(n*math.Log2(n)), "msgs/nlogn")
		})
	}
}

// BenchmarkE10TMTransform — Section 8: TM time to ring bits.
func BenchmarkE10TMTransform(b *testing.B) {
	machines := []struct {
		name     string
		machine  *tm.Machine
		language lang.Language
	}{
		{"zeroes-ones", tm.NewZeroesOnesMachine(), lang.NewAnBn()},
		{"palindrome", tm.NewPalindromeMachine(), lang.NewPalindrome()},
	}
	for _, m := range machines {
		m := m
		b.Run(m.name, func(b *testing.B) {
			rec, err := tm.NewRingRecognizer(m.machine, m.language)
			if err != nil {
				b.Fatal(err)
			}
			var points []bench.Point
			for i := 0; i < b.N; i++ {
				points = measureOrFatal(b, rec, benchTMSizes, bench.MeasureOptions{})
			}
			last := points[len(points)-1]
			direct, err := m.machine.Run([]rune(mustMember(b, m.language, last.N).String()), 1<<24)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(last.Bits)/float64(direct.Steps), "bits/step")
		})
	}
}

// BenchmarkA1CounterCodings — ablation: δ vs γ vs unary counters.
func BenchmarkA1CounterCodings(b *testing.B) {
	language := lang.NewPerfectSquareLength()
	for _, coding := range []core.CounterCoding{core.CodingDelta, core.CodingGamma, core.CodingUnary} {
		coding := coding
		b.Run(coding.String(), func(b *testing.B) {
			rec := core.NewCountWithCoding(language, coding)
			var points []bench.Point
			for i := 0; i < b.N; i++ {
				points = measureOrFatal(b, rec, benchHierarchySizes, bench.MeasureOptions{Kind: bench.RandomWords})
			}
			last := points[len(points)-1]
			b.ReportMetric(float64(last.Bits)/(float64(last.N)*math.Log2(float64(last.N))), "bits/nlogn")
		})
	}
}

// BenchmarkA2Minimization — ablation: minimized vs subset-construction DFA.
func BenchmarkA2Minimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExperimentA2([]int{64, 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3EngineOverhead — ablation: sequential vs concurrent engine
// runtime cost for the same algorithm and input.
func BenchmarkA3EngineOverhead(b *testing.B) {
	word, _ := lang.NewAnBnCn().GenerateMember(300, rand.New(rand.NewSource(1)))
	engines := []struct {
		name   string
		engine ring.Engine
	}{
		{"sequential", ring.NewSequentialEngine()},
		{"concurrent", ring.NewConcurrentEngine()},
	}
	for _, e := range engines {
		e := e
		b.Run(e.name, func(b *testing.B) {
			rec := core.NewThreeCounters()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(rec, word, core.RunOptions{Engine: e.engine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicroBitsCodec — encoder/decoder hot path.
func BenchmarkMicroBitsCodec(b *testing.B) {
	rec := core.NewSquareCount()
	word := lang.RandomWord(rec.Language().Alphabet(), 1024, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(rec, word, core.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSuiteQuick runs the entire quick experiment suite once per
// iteration — the closest thing to "regenerate every table" under -bench.
func BenchmarkFullSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.RunAll(io.Discard, bench.SuiteQuick); err != nil {
			b.Fatal(err)
		}
	}
}

func mustMember(b *testing.B, language lang.Language, n int) lang.Word {
	b.Helper()
	w, _, err := lang.MemberOrSkip(language, n, 8, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	return w
}
