// Command ringvet runs the repo-specific static-analysis suite
// (internal/analysis) over the module: ringdeterminism, hotpathalloc,
// ctxflow and errsentinel. It is the static tier of the invariant
// enforcement the runtime guards (goldens, alloc-regression tests,
// cross-engine property tests) provide dynamically, and runs as a required
// CI step.
//
// Usage:
//
//	go run ./cmd/ringvet [-tests=false] [-list] [packages...]
//
// Packages default to ./... . Exit status 1 means findings were reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/load"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files (test-augmented package variants)")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ringvet [-tests=false] [-list] [packages...]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printSuite(flag.CommandLine.Output())
	}
	flag.Parse()

	if *list {
		printSuite(os.Stdout)
		return
	}

	pkgs, err := load.Load(".", *tests, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		os.Exit(2)
	}

	wd, _ := os.Getwd()
	suite := analysis.All()
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(analysis.Target{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		}, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringvet: %s: %v\n", pkg.ImportPath, err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings++
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if wd != "" {
				if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
					name = rel
				}
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ringvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func printSuite(w io.Writer) {
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "  %-16s %s\n", a.Name, a.Doc)
	}
}
