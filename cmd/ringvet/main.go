// Command ringvet runs the repo-specific static-analysis suite
// (internal/analysis) over the module: ringdeterminism, hotpathalloc, the
// interprocedural dataflow tier (allocflow, shardsafe, snapshotpure),
// ctxflow and errsentinel. It is the static face of the invariant
// enforcement the runtime guards (goldens, alloc-regression tests,
// cross-engine property tests) provide dynamically, and runs as a required
// CI step.
//
// All matched packages are type-checked and analyzed as ONE program, so the
// interprocedural analyzers see every cross-package call edge (a hot root
// in internal/exec propagates into internal/ring).
//
// Usage:
//
//	go run ./cmd/ringvet [-tests=false] [-list] [-json] \
//	    [-baseline file] [-write-baseline] [packages...]
//
// Packages default to ./... (testdata fixture packages are always skipped).
// A baseline file suppresses its recorded findings — matched by file,
// analyzer and message, independent of line numbers — so the suite can be
// adopted ratchet-style: existing debt is frozen, new findings still fail,
// and CI enforces that the checked-in baseline only ever shrinks.
// -write-baseline rewrites the file from the current findings.
//
// Exit status: 0 clean (or every finding baselined), 1 findings, 2 load or
// internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	tests := flag.Bool("tests", true, "also analyze _test.go files (test-augmented package variants)")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	jsonOut := flag.Bool("json", false, "emit the findings report as JSON on stdout")
	baselinePath := flag.String("baseline", "", "baseline file; findings recorded there (by file, analyzer, message) are suppressed")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit clean")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ringvet [-tests=false] [-list] [-json] [-baseline file] [-write-baseline] [packages...]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printSuite(flag.CommandLine.Output())
	}
	flag.Parse()

	if *list {
		printSuite(os.Stdout)
		return 0
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "ringvet: -write-baseline requires -baseline")
		return 2
	}

	pkgs, err := load.Load(".", *tests, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 2
	}
	targets := make([]analysis.Target, 0, len(pkgs))
	for _, pkg := range pkgs {
		targets = append(targets, analysis.Target{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		})
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "ringvet: no packages matched")
		return 2
	}
	diags, err := analysis.RunProgram(targets, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 2
	}

	wd, _ := os.Getwd()
	all := make([]finding, 0, len(diags))
	fset := targets[0].Fset // shared across every package of one Load call
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
				name = filepath.ToSlash(rel)
			}
		}
		all = append(all, finding{
			File:     name,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if *writeBaseline {
		if err := writeBaselineFile(*baselinePath, all); err != nil {
			fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ringvet: wrote %d finding(s) to %s\n", len(all), *baselinePath)
		return 0
	}

	report := report{Findings: []finding{}}
	allowed := make(map[baselineKey]int)
	if *baselinePath != "" {
		entries, err := readBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
			return 2
		}
		for _, e := range entries {
			n := e.Count
			if n <= 0 {
				n = 1
			}
			allowed[e.key()] += n
		}
	}
	for _, f := range all {
		k := f.key()
		if allowed[k] > 0 {
			allowed[k]--
			report.Baselined++
			continue
		}
		report.Findings = append(report.Findings, f)
	}
	for k, n := range allowed {
		for ; n > 0; n-- {
			report.Stale = append(report.Stale, baselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message})
		}
	}
	sortEntries(report.Stale)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range report.Findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	for _, e := range report.Stale {
		fmt.Fprintf(os.Stderr, "ringvet: stale baseline entry (finding no longer produced): %s [%s] %q\n", e.File, e.Analyzer, e.Message)
	}
	if len(report.Stale) > 0 {
		fmt.Fprintf(os.Stderr, "ringvet: shrink the baseline with -write-baseline (the ratchet only ever tightens)\n")
	}
	if report.Baselined > 0 {
		fmt.Fprintf(os.Stderr, "ringvet: %d finding(s) suppressed by baseline %s\n", report.Baselined, *baselinePath)
	}
	if n := len(report.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "ringvet: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// finding is one rendered diagnostic; the JSON field names are the CI
// artifact's schema.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the -json output: new findings, how many the baseline absorbed,
// and baseline entries nothing matched (debt that was paid off).
type report struct {
	Findings  []finding       `json:"findings"`
	Baselined int             `json:"baselined,omitempty"`
	Stale     []baselineEntry `json:"stale_baseline,omitempty"`
}

// baselineKey matches findings position-independently: edits that move a
// known finding around a file do not churn the baseline.
type baselineKey struct {
	file, analyzer, message string
}

func (f finding) key() baselineKey { return baselineKey{f.File, f.Analyzer, f.Message} }

// baselineEntry is one frozen finding; Count collapses duplicates (the same
// message at several lines of one file).
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"`
}

func (e baselineEntry) key() baselineKey { return baselineKey{e.File, e.Analyzer, e.Message} }

type baselineFile struct {
	Findings []baselineEntry `json:"findings"`
}

func readBaselineFile(path string) ([]baselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return bf.Findings, nil
}

func writeBaselineFile(path string, findings []finding) error {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[f.key()]++
	}
	bf := baselineFile{Findings: []baselineEntry{}}
	for k, n := range counts {
		e := baselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message}
		if n > 1 {
			e.Count = n
		}
		bf.Findings = append(bf.Findings, e)
	}
	sortEntries(bf.Findings)
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortEntries(entries []baselineEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func printSuite(w io.Writer) {
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "  %-16s %s\n", a.Name, a.Doc)
	}
}
