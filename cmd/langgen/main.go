// Command langgen generates member and non-member words of the paper's
// languages, for feeding to ringrun or to external tooling.
//
// Usage:
//
//	langgen -language wcw -n 21 -count 3
//	langgen -language anbncn -n 30 -nonmember
//	langgen -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ringlang/internal/lang"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "langgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("langgen", flag.ContinueOnError)
	var (
		language  = fs.String("language", "", "language name (see -list)")
		n         = fs.Int("n", 12, "word length (ring size)")
		count     = fs.Int("count", 1, "how many words to generate")
		nonMember = fs.Bool("nonmember", false, "generate non-members instead of members")
		seed      = fs.Int64("seed", 1, "random seed")
		list      = fs.Bool("list", false, "list language names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range lang.CatalogNames() {
			fmt.Println(name)
		}
		return nil
	}
	if *language == "" {
		return fmt.Errorf("-language is required (try -list)")
	}
	l, err := lang.ByName(*language)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *count; i++ {
		var word lang.Word
		var ok bool
		if *nonMember {
			word, ok = l.GenerateNonMember(*n, rng)
		} else {
			word, ok = l.GenerateMember(*n, rng)
		}
		if !ok {
			kind := "member"
			if *nonMember {
				kind = "non-member"
			}
			return fmt.Errorf("%s has no %s of length %d", l.Name(), kind, *n)
		}
		fmt.Println(word.String())
	}
	return nil
}
