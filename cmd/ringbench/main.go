// Command ringbench regenerates the experiment tables (E1–E17, A1–A3).
//
// Usage:
//
//	ringbench               # run every experiment (full sweep)
//	ringbench -quick        # run every experiment with reduced sizes
//	ringbench -e E3,E7      # run selected experiments
//	ringbench -e E13        # the full-factorial schedule sweep
//	ringbench -schedule adversarial -e E1   # rerun a sweep under another schedule
//	ringbench -workers 0 -e E13             # fan sweep cells over all CPUs
//	ringbench -e E17         # the fault axis: lossy/duplicating/crash + elect-then-recognize
//	ringbench -e E15,E16,E17 -json BENCH_engine.json  # engine sweeps, machine-readable
//	ringbench -list         # list experiments plus the algorithm/language/schedule catalogs
//
// -workers selects how many goroutines the sweeps fan their (size × schedule)
// cells across: 1 (the default) runs serially, 0 uses one worker per CPU, any
// other value that many workers. Results are bit-identical at every setting.
//
// Ctrl-C (or SIGTERM) cancels the run mid-sweep: the tables of the
// experiments that already completed stay on stdout, and the interrupted run
// exits with a "canceled" summary instead of half a table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ringlang"
	"ringlang/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	bench.SetDefaultContext(ctx)
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, ringlang.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "ringbench: canceled — the tables above are the experiments that completed")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ringbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	var (
		quick      = fs.Bool("quick", false, "use reduced sweep sizes")
		list       = fs.Bool("list", false, "list experiments and the algorithm/language/schedule catalogs, then exit")
		experiment = fs.String("e", "", "comma-separated experiment identifiers (default: all)")
		plot       = fs.Bool("plot", false, "render the headline log-log scaling figure and exit")
		schedule   = fs.String("schedule", "", "delivery schedule for sweeps that do not pin their own engine (see ringbench -list)")
		seed       = fs.Int64("seed", 0, "seed for seeded schedules (random and the fault schedules)")
		workers    = fs.Int("workers", 1, "worker goroutines for sweep fan-out (1 = serial, 0 = one per CPU)")
		jsonPath   = fs.String("json", "", "write the machine-readable records of the experiments that produce them (E15, E16, E17) to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed != 0 && !ringlang.ScheduleUsesSeed(*schedule) {
		return fmt.Errorf("-seed only takes effect with a seeded -schedule (random or a fault schedule; got %q)", *schedule)
	}
	if *schedule != "" {
		if err := bench.SetDefaultSchedule(*schedule, *seed); err != nil {
			return err
		}
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", *workers)
	}
	bench.SetDefaultWorkers(*workers)
	suite := bench.SuiteFull
	if *quick {
		suite = bench.SuiteQuick
	}
	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Description)
		}
		// The catalogs print from ringlang.CurrentCatalog — the same source
		// ringserve serves at /v1/catalog and CI diffs against the README
		// table, so none of the three can drift from the others.
		catalog := ringlang.CurrentCatalog()
		fmt.Println("algorithms:")
		for _, name := range catalog.Algorithms {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("languages:")
		for _, name := range catalog.Languages {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("schedules:")
		for _, name := range catalog.Schedules {
			fmt.Printf("  %s\n", name)
		}
		return nil
	}
	if *plot {
		sizes := []int{64, 128, 256, 512, 1024, 2048}
		if *quick {
			sizes = []int{32, 64, 128, 256}
		}
		figure, err := bench.ScalingFigure(sizes)
		if err != nil {
			return err
		}
		fmt.Println("Figure: the three complexity classes of the paper (log-log; slopes 1, ~1.1, 2)")
		fmt.Print(figure)
		return nil
	}
	var tables []*bench.Table
	if *experiment == "" {
		tables, err := bench.RunAllTables(os.Stdout, suite)
		if err != nil {
			return err
		}
		return writeRecords(*jsonPath, suite, tables)
	}
	for _, id := range strings.Split(*experiment, ",") {
		e, err := bench.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		table, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		tables = append(tables, table)
	}
	return writeRecords(*jsonPath, suite, tables)
}

// writeRecords writes the tables' machine-readable records to path as one
// JSON document (see bench.WriteRecordsJSON); an empty path means no output.
func writeRecords(path string, suite bench.Suite, tables []*bench.Table) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteRecordsJSON(f, suite, tables); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
