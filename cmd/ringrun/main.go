// Command ringrun executes one recognition algorithm on one word and prints
// the verdict together with the exact bit accounting.
//
// Usage:
//
//	ringrun -algorithm three-counters -word 001122
//	ringrun -algorithm regular-one-pass -language even-ones -word 0110
//	ringrun -algorithm compare-wcw -word abcab -engine concurrent -trace
//	ringrun -algorithm three-counters -word 001122 -schedule adversarial
//	ringrun -algorithm three-counters -word 001122 -schedule random -seed 7
//	ringrun -algorithm three-counters -words 001122,012012,001212 -workers 0
//	ringrun -list
//
// -words runs a whole batch (comma-separated) through the worker pool of
// internal/exec and prints one accounting line per word; -workers sets the
// pool size (0 = one worker per CPU, the default). Batch runs cannot record
// traces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ringlang/internal/core"
	"ringlang/internal/exec"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
	"ringlang/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("ringrun", flag.ContinueOnError)
	var (
		algorithm  = fs.String("algorithm", "", "algorithm name (see -list)")
		language   = fs.String("language", "", "language argument for algorithms that need one")
		word       = fs.String("word", "", "the pattern on the ring (one letter per processor, leader first)")
		engineName = fs.String("engine", "sequential", "delivery schedule / engine (see -list)")
		schedule   = fs.String("schedule", "", "synonym for -engine; takes precedence when both are set")
		seed       = fs.Int64("seed", 0, "seed for randomized schedules")
		withTrace  = fs.Bool("trace", false, "print per-execution analysis (passes, token property, information states)")
		list       = fs.Bool("list", false, "list algorithm, language and schedule names and exit")
		words      = fs.String("words", "", "comma-separated words to run as a parallel batch (instead of -word)")
		workers    = fs.Int("workers", 0, "worker goroutines for -words batches (0 = one per CPU)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "algorithms:")
		for _, name := range core.AlgorithmNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		fmt.Fprintln(out, "languages:")
		for _, name := range lang.CatalogNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		fmt.Fprintln(out, "schedules:")
		for _, name := range ring.ScheduleNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		return nil
	}
	if *algorithm == "" || (*word == "" && *words == "") {
		return fmt.Errorf("-algorithm plus -word or -words are required (try -list)")
	}
	if *word != "" && *words != "" {
		return fmt.Errorf("-word and -words are mutually exclusive")
	}
	rec, err := core.NewRecognizerByName(*algorithm, *language)
	if err != nil {
		return err
	}
	name := *engineName
	if *schedule != "" {
		name = *schedule
	}
	if *seed != 0 && name != "random" && name != "random-order" {
		return fmt.Errorf("-seed only takes effect with the random schedule (got %q)", name)
	}
	engine, err := ring.NewEngineByName(name, *seed)
	if err != nil {
		return err
	}
	if *words != "" {
		if *withTrace {
			return fmt.Errorf("-trace is not available for -words batches")
		}
		return runBatch(out, rec, engine, strings.Split(*words, ","), *workers)
	}
	w := lang.WordFromString(*word)
	res, err := core.Run(rec, w, core.RunOptions{Engine: engine, RecordTrace: *withTrace})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm : %s\n", rec.Name())
	fmt.Fprintf(out, "language  : %s\n", rec.Language().Name())
	fmt.Fprintf(out, "schedule  : %s\n", engine.Name())
	fmt.Fprintf(out, "word      : %q (n=%d)\n", w.String(), len(w))
	fmt.Fprintf(out, "verdict   : %s (language says member=%v)\n", res.Verdict, rec.Language().Contains(w))
	fmt.Fprintf(out, "messages  : %d\n", res.Stats.Messages)
	fmt.Fprintf(out, "bits      : %d  (bits/n = %.2f, max message = %d bits)\n",
		res.Stats.Bits, res.Stats.BitsPerProcessor(), res.Stats.MaxMessageBits)
	if *withTrace {
		report, err := trace.BuildReport(res, traceInputs(w))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "--- execution analysis ---")
		if err := report.Render(out); err != nil {
			return err
		}
	}
	return nil
}

// runBatch fans the words over the exec worker pool and prints one
// accounting line per word, in input order.
func runBatch(out *os.File, rec core.Recognizer, engine ring.Engine, raw []string, workers int) error {
	jobs := make([]exec.Job, len(raw))
	for i, s := range raw {
		jobs[i] = exec.Job{Rec: rec, Word: lang.WordFromString(strings.TrimSpace(s)), Engine: engine}
	}
	fmt.Fprintf(out, "algorithm : %s\n", rec.Name())
	fmt.Fprintf(out, "language  : %s\n", rec.Language().Name())
	fmt.Fprintf(out, "schedule  : %s\n", engine.Name())
	fmt.Fprintf(out, "%-20s %-8s %-8s %10s %10s %8s\n", "word", "verdict", "member", "messages", "bits", "bits/n")
	var firstErr error
	for i, r := range exec.RunBatch(jobs, exec.Options{Workers: workers}) {
		w := jobs[i].Word
		if r.Err != nil {
			fmt.Fprintf(out, "%-20q %v\n", w.String(), r.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("word %d (%q): %w", i, w.String(), r.Err)
			}
			continue
		}
		fmt.Fprintf(out, "%-20q %-8s %-8v %10d %10d %8.2f\n",
			w.String(), r.Verdict, rec.Language().Contains(w),
			r.Stats.Messages, r.Stats.Bits, r.Stats.BitsPerProcessor())
	}
	return firstErr
}

func traceInputs(w lang.Word) []string {
	out := make([]string, len(w))
	for i, letter := range w {
		out[i] = string(letter)
	}
	return out
}
