// Command ringrun executes one recognition algorithm on one word and prints
// the verdict together with the exact bit accounting.
//
// Usage:
//
//	ringrun -algorithm three-counters -word 001122
//	ringrun -algorithm regular-one-pass -language even-ones -word 0110
//	ringrun -algorithm compare-wcw -word abcab -engine concurrent -trace
//	ringrun -algorithm three-counters -word 001122 -schedule adversarial
//	ringrun -algorithm three-counters -word 001122 -schedule random -seed 7
//	ringrun -list
package main

import (
	"flag"
	"fmt"
	"os"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
	"ringlang/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("ringrun", flag.ContinueOnError)
	var (
		algorithm  = fs.String("algorithm", "", "algorithm name (see -list)")
		language   = fs.String("language", "", "language argument for algorithms that need one")
		word       = fs.String("word", "", "the pattern on the ring (one letter per processor, leader first)")
		engineName = fs.String("engine", "sequential", "delivery schedule / engine (see -list)")
		schedule   = fs.String("schedule", "", "synonym for -engine; takes precedence when both are set")
		seed       = fs.Int64("seed", 0, "seed for randomized schedules")
		withTrace  = fs.Bool("trace", false, "print per-execution analysis (passes, token property, information states)")
		list       = fs.Bool("list", false, "list algorithm, language and schedule names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "algorithms:")
		for _, name := range core.AlgorithmNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		fmt.Fprintln(out, "languages:")
		for _, name := range lang.CatalogNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		fmt.Fprintln(out, "schedules:")
		for _, name := range ring.ScheduleNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		return nil
	}
	if *algorithm == "" || *word == "" {
		return fmt.Errorf("both -algorithm and -word are required (try -list)")
	}
	rec, err := core.NewRecognizerByName(*algorithm, *language)
	if err != nil {
		return err
	}
	name := *engineName
	if *schedule != "" {
		name = *schedule
	}
	if *seed != 0 && name != "random" && name != "random-order" {
		return fmt.Errorf("-seed only takes effect with the random schedule (got %q)", name)
	}
	engine, err := ring.NewEngineByName(name, *seed)
	if err != nil {
		return err
	}
	w := lang.WordFromString(*word)
	res, err := core.Run(rec, w, core.RunOptions{Engine: engine, RecordTrace: *withTrace})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm : %s\n", rec.Name())
	fmt.Fprintf(out, "language  : %s\n", rec.Language().Name())
	fmt.Fprintf(out, "schedule  : %s\n", engine.Name())
	fmt.Fprintf(out, "word      : %q (n=%d)\n", w.String(), len(w))
	fmt.Fprintf(out, "verdict   : %s (language says member=%v)\n", res.Verdict, rec.Language().Contains(w))
	fmt.Fprintf(out, "messages  : %d\n", res.Stats.Messages)
	fmt.Fprintf(out, "bits      : %d  (bits/n = %.2f, max message = %d bits)\n",
		res.Stats.Bits, res.Stats.BitsPerProcessor(), res.Stats.MaxMessageBits)
	if *withTrace {
		report, err := trace.BuildReport(res, traceInputs(w))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "--- execution analysis ---")
		if err := report.Render(out); err != nil {
			return err
		}
	}
	return nil
}

func traceInputs(w lang.Word) []string {
	out := make([]string, len(w))
	for i, letter := range w {
		out[i] = string(letter)
	}
	return out
}
