// Command ringrun executes one recognition algorithm on one word and prints
// the verdict together with the exact bit accounting.
//
// Usage:
//
//	ringrun -algorithm three-counters -word 001122
//	ringrun -algorithm regular-one-pass -language even-ones -word 0110
//	ringrun -algorithm compare-wcw -word abcab -engine concurrent -trace
//	ringrun -algorithm three-counters -word 001122 -schedule adversarial
//	ringrun -algorithm three-counters -word 001122 -schedule random -seed 7
//	ringrun -algorithm three-counters -words 001122,012012,001212 -workers 0
//	ringrun -list
//
// -words runs a whole batch (comma-separated) through a ringlang.Client
// worker pool and prints one accounting line per word; -workers sets the
// pool size (0 = one worker per CPU, the default). Batch runs cannot record
// traces. -prefix-cache gives the client a prefix-checkpoint cache of that
// many bytes, so batch words sharing prefixes resume from stored engine
// checkpoints instead of recomputing them (prefix-stable schedules only;
// reports are bit-identical either way).
//
// Ctrl-C (or SIGTERM) cancels the run: a batch stops dispatching, the words
// already finished are still printed, and the canceled ones are marked.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ringlang"
	"ringlang/internal/ring"
	"ringlang/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, ringlang.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "ringrun: canceled")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ringrun:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("ringrun", flag.ContinueOnError)
	var (
		algorithm  = fs.String("algorithm", "", "algorithm name (see -list)")
		language   = fs.String("language", "", "language argument for algorithms that need one")
		word       = fs.String("word", "", "the pattern on the ring (one letter per processor, leader first)")
		engineName = fs.String("engine", "sequential", "delivery schedule / engine (see -list)")
		schedule   = fs.String("schedule", "", "synonym for -engine; takes precedence when both are set")
		seed       = fs.Int64("seed", 0, "seed for seeded schedules (random and the fault schedules)")
		withTrace  = fs.Bool("trace", false, "print per-execution analysis (passes, token property, information states)")
		list       = fs.Bool("list", false, "list algorithm, language and schedule names and exit")
		words      = fs.String("words", "", "comma-separated words to run as a parallel batch (instead of -word)")
		workers    = fs.Int("workers", 0, "worker goroutines for -words batches (0 = one per CPU)")
		prefix     = fs.Int64("prefix-cache", 0, "prefix-checkpoint cache budget in bytes (0 = off); batch words sharing prefixes resume from stored engine checkpoints")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "algorithms:")
		for _, name := range ringlang.AlgorithmNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		fmt.Fprintln(out, "languages:")
		for _, name := range ringlang.LanguageNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		fmt.Fprintln(out, "schedules:")
		for _, name := range ringlang.ScheduleNames() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		return nil
	}
	if *algorithm == "" || (*word == "" && *words == "") {
		return fmt.Errorf("-algorithm plus -word or -words are required (try -list)")
	}
	if *word != "" && *words != "" {
		return fmt.Errorf("-word and -words are mutually exclusive")
	}
	name := *engineName
	if *schedule != "" {
		name = *schedule
	}
	if *seed != 0 && !ringlang.ScheduleUsesSeed(name) {
		return fmt.Errorf("-seed only takes effect with a seeded schedule (random or a fault schedule; got %q)", name)
	}
	client, err := ringlang.NewClient(*algorithm, *language,
		ringlang.WithSchedule(name),
		ringlang.WithSeed(*seed),
		ringlang.WithWorkers(*workers),
		ringlang.WithTrace(*withTrace),
		ringlang.WithPrefixCache(*prefix))
	if err != nil {
		return err
	}
	if *words != "" {
		if *withTrace {
			return fmt.Errorf("-trace is not available for -words batches")
		}
		return runBatch(ctx, out, client, strings.Split(*words, ","))
	}
	w := ringlang.WordFromString(*word)
	report, err := client.Recognize(ctx, w)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm : %s\n", report.Algorithm)
	fmt.Fprintf(out, "language  : %s\n", report.LanguageName)
	fmt.Fprintf(out, "schedule  : %s\n", report.Schedule)
	fmt.Fprintf(out, "word      : %q (n=%d)\n", w.String(), len(w))
	fmt.Fprintf(out, "verdict   : %s (language says member=%v)\n", report.Verdict, report.Member)
	fmt.Fprintf(out, "messages  : %d\n", report.Messages)
	fmt.Fprintf(out, "bits      : %d  (bits/n = %.2f, max message = %d bits)\n",
		report.Bits, report.BitsPerProcessor, report.MaxMessageBits)
	if f := report.Faults; f != nil {
		// Fault schedules report the transport overhead the accounting above
		// deliberately excludes: the totals are what the algorithm sent.
		fmt.Fprintf(out, "faults    : dropped=%d retransmit=%db duplicates=%d (+%db) crashed=%v rerouted=%d deferred=%d\n",
			f.Dropped, f.RetransmitBits, f.Duplicates, f.DuplicateBits, f.Crashed, f.Rerouted, f.Deferred)
	}
	if *withTrace {
		res := &ring.Result{Verdict: report.Verdict, Stats: report.Stats, Trace: report.Trace}
		analysis, err := trace.BuildReport(res, traceInputs(w))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "--- execution analysis ---")
		if err := analysis.Render(out); err != nil {
			return err
		}
	}
	return nil
}

// runBatch fans the words over the client's worker pool and prints one
// accounting line per word, in input order. Canceled words (Ctrl-C) are
// marked, and the lines of the words that did complete are still printed.
func runBatch(ctx context.Context, out *os.File, client *ringlang.Client, raw []string) error {
	words := make([]ringlang.Word, len(raw))
	for i, s := range raw {
		words[i] = ringlang.WordFromString(strings.TrimSpace(s))
	}
	fmt.Fprintf(out, "algorithm : %s\n", client.AlgorithmName())
	fmt.Fprintf(out, "language  : %s\n", client.LanguageName())
	fmt.Fprintf(out, "schedule  : %s\n", client.ScheduleName())
	fmt.Fprintf(out, "%-20s %-8s %-8s %10s %10s %8s\n", "word", "verdict", "member", "messages", "bits", "bits/n")
	var firstErr error
	completed, canceled := 0, 0
	for i, r := range client.Batch(ctx, words) {
		w := words[i]
		if r.Err != nil {
			if errors.Is(r.Err, ringlang.ErrCanceled) {
				canceled++
				fmt.Fprintf(out, "%-20q canceled\n", w.String())
				continue
			}
			fmt.Fprintf(out, "%-20q %v\n", w.String(), r.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("word %d (%q): %w", i, w.String(), r.Err)
			}
			continue
		}
		completed++
		fmt.Fprintf(out, "%-20q %-8s %-8v %10d %10d %8.2f\n",
			w.String(), r.Report.Verdict, r.Report.Member,
			r.Report.Messages, r.Report.Bits, r.Report.BitsPerProcessor)
	}
	if canceled > 0 {
		fmt.Fprintf(out, "canceled: %d of %d words completed before the interrupt\n", completed, len(words))
		if firstErr == nil {
			firstErr = fmt.Errorf("%d of %d words canceled: %w", canceled, len(words), ringlang.ErrCanceled)
		}
	}
	if st, ok := client.PrefixStats(); ok {
		fmt.Fprintf(out, "prefix cache: %d hits, %d partial, %d misses (%d checkpoints, %d bytes)\n",
			st.Hits, st.PartialHits, st.Misses, st.Entries, st.Bytes)
	}
	return firstErr
}

func traceInputs(w ringlang.Word) []string {
	out := make([]string, len(w))
	for i, letter := range w {
		out[i] = string(letter)
	}
	return out
}
