// Command ringserve exposes the ringlang recognition engines over HTTP: the
// serving tier of the reproduction, with a sharded memoization cache in
// front of the Client worker pools.
//
// Usage:
//
//	ringserve                         # serve on :8420 with defaults
//	ringserve -addr 127.0.0.1:9000    # pick the listen address
//	ringserve -workers 0              # one engine worker per CPU (default)
//	ringserve -cache 65536            # memo cache capacity in entries
//	ringserve -cache -1               # disable memoization
//	ringserve -cache-shards 64        # lock-splitting shard count
//	ringserve -max-inflight 256       # 429 past this many live requests
//	ringserve -max-words 8192         # per-request batch/stream word cap
//	ringserve -max-word 65536         # per-word letter cap (largest ring)
//	ringserve -max-body 1048576       # request body byte cap
//	ringserve -max-clients 64         # cached client pools, LRU-evicted
//	ringserve -prefix-cache 33554432  # prefix-checkpoint cache bytes (-1 off)
//	ringserve -drain 10s              # graceful-shutdown budget
//	ringserve -lb-grace 3s            # healthz-drains-first window for LBs
//
// Endpoints (see README.md for the full operator guide with curl examples):
//
//	POST /v1/recognize   one word → one report
//	POST /v1/batch       many words → per-word results, word order
//	GET  /v1/stream      many words → NDJSON/SSE results, completion order
//	GET  /v1/catalog     algorithms, languages, schedules
//	GET  /healthz        liveness + cache/in-flight counters
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests get -drain to finish (their contexts cancel at the deadline, and
// the engines abort with ErrCanceled), the Clients are closed, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ringlang/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8420", "listen address")
		workers     = fs.Int("workers", 0, "engine workers per client pool (0 = one per CPU)")
		cache       = fs.Int("cache", server.DefaultCacheCapacity, "memo cache capacity in entries (negative disables)")
		cacheShards = fs.Int("cache-shards", 0, "memo cache shards, rounded up to a power of two (0 = default)")
		maxInflight = fs.Int("max-inflight", 0, "max concurrently served run requests before 429 (0 = 4x CPUs)")
		maxWords    = fs.Int("max-words", server.DefaultMaxBatchWords, "max words per batch/stream request")
		maxWord     = fs.Int("max-word", server.DefaultMaxWordLetters, "max letters per word (the largest ring a request may ask for)")
		maxBody     = fs.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes")
		maxClients  = fs.Int("max-clients", server.DefaultMaxClients, "max cached (algorithm, language, schedule, seed) clients; LRU-evicted past it")
		prefixCache = fs.Int64("prefix-cache", server.DefaultPrefixCacheBytes, "prefix-checkpoint cache budget in bytes, shared across all clients (negative disables); distinct words sharing prefixes resume from stored engine checkpoints")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		lbGrace     = fs.Duration("lb-grace", 0, "after SIGTERM, keep serving this long with /healthz answering 503 draining, so load balancers stop routing before the listener closes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Config{
		Workers:          *workers,
		CacheCapacity:    *cache,
		CacheShards:      *cacheShards,
		MaxInFlight:      *maxInflight,
		MaxBatchWords:    *maxWords,
		MaxWordLetters:   *maxWord,
		MaxBodyBytes:     *maxBody,
		MaxClients:       *maxClients,
		PrefixCacheBytes: *prefixCache,
	})
	// Request contexts descend from reqCtx, not the signal context: a
	// SIGTERM must let in-flight requests use the drain budget, and only
	// cancel the ones that outlive it.
	reqCtx, cancelReqs := context.WithCancel(context.Background())
	defer cancelReqs()
	httpServer := &http.Server{
		Addr:        *addr,
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("%s listening on %s", srv, *addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Flip /healthz to draining while still serving, then give load
	// balancers -lb-grace to notice before the listener closes.
	srv.BeginDrain()
	if *lbGrace > 0 {
		log.Printf("ringserve: advertising draining on /healthz, serving %s more for load-balancer drain", *lbGrace)
		time.Sleep(*lbGrace)
	}
	log.Printf("ringserve: draining (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err := httpServer.Shutdown(shutdownCtx)
	cancelReqs() // abort whatever outlived the budget; engines report ErrCanceled
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("ringserve: drained, bye")
	return nil
}
