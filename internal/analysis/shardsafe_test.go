package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

func TestShardSafe(t *testing.T) {
	vettest.Run(t, "shardsafe/a", analysis.ShardSafe)
}
