package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotPure enforces checkpoint purity: a type marked //ring:snapshot
// (ring.Checkpoint) freezes an execution, and one frozen value may serve
// any number of concurrent resumes — which is only sound if nothing inside
// it aliases mutable engine state. Every value stored into a snapshot
// type's fields (by assignment, append, or composite literal) must
// therefore be *fresh* in the aliasing.go sense: slices cloned out of the
// run's arenas, maps rebuilt, structs with their ref-carrying fields
// freshened. Storing a pointer that is not to freshly allocated memory is a
// finding outright — a pointer into a RunState arena is exactly the bug
// this analyzer exists for.
//
// Soundness limits: stores go through a first-class selector (cp.f = v,
// cp.f = append(cp.f, v), T{f: v}); a store through an intermediate alias
// (p := &cp.f; *p = v) is not seen. Freshness is flow-ordered and
// branch-insensitive, and unknown callees are assumed to alias — so the
// analyzer may demand a redundant clone, never bless an aliased one.
// Fields are only checkable from the package declaring the snapshot type;
// in this module Checkpoint's fields are unexported, so that is every
// store there is.
var SnapshotPure = &Analyzer{
	Name: "snapshotpure",
	Doc: "require values stored into //ring:snapshot types (ring.Checkpoint) to be freshly " +
		"allocated: cloned slices, rebuilt maps, no pointers into run state",
	Run: runSnapshotPure,
}

func runSnapshotPure(pass *Pass) error {
	snap, err := snapshotTypes(pass)
	if err != nil {
		return err
	}
	if len(snap) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSnapshotStores(pass, fd, snap)
		}
	}
	return nil
}

// snapshotTypes collects the package's //ring:snapshot-marked type names.
// The directive takes no attributes; anything trailing is an error, not a
// silent no-op.
func snapshotTypes(pass *Pass) (map[*types.TypeName]bool, error) {
	snap := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				found := false
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if !strings.HasPrefix(c.Text, "//ring:snapshot") {
							continue
						}
						if rest := strings.TrimSpace(strings.TrimPrefix(c.Text, "//ring:snapshot")); rest != "" {
							return nil, fmt.Errorf("%s: ring:snapshot takes no attributes, got %q",
								pass.Fset.Position(c.Pos()), rest)
						}
						found = true
					}
				}
				if found {
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						snap[tn] = true
					}
				}
			}
		}
	}
	return snap, nil
}

// checkSnapshotStores walks one function in source order, tracking
// freshness, and reports impure stores into snapshot-typed values.
func checkSnapshotStores(pass *Pass, fd *ast.FuncDecl, snap map[*types.TypeName]bool) {
	fs := newFreshState(pass.TypesInfo, pass.Prog)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if sel, field := snapshotField(pass, lhs, snap); sel != nil {
						checkStoredValue(pass, fs, sel, field, n.Rhs[i])
					}
				}
			} else if len(n.Rhs) == 1 {
				// Tuple assignment from one multi-valued RHS (cp.a, cp.b =
				// f(); v, ok = m[k]; v, ok = x.(T)): every snapshot-field
				// target shares the RHS's freshness, so each one is checked
				// — not just the first. Map reads and type assertions are
				// never fresh; calls defer to the callee's summary.
				for _, lhs := range n.Lhs {
					if sel, field := snapshotField(pass, lhs, snap); sel != nil {
						checkStoredValue(pass, fs, sel, field, n.Rhs[0])
					}
				}
			}
			fs.observeAssign(n)
		case *ast.CompositeLit:
			if tn := namedTypeName(pass.TypesInfo.TypeOf(n)); tn != nil && snap[tn] {
				checkSnapshotLiteral(pass, fs, n)
			}
		}
		return true
	})
}

// snapshotField matches an assignment target of the form x.f (or x[i].f)
// whose base resolves to a snapshot-marked type; it returns the selector
// and the field's variable.
func snapshotField(pass *Pass, lhs ast.Expr, snap map[*types.TypeName]bool) (*ast.SelectorExpr, *types.Var) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	tn := namedTypeName(pass.TypesInfo.TypeOf(sel.X))
	if tn == nil || !snap[tn] {
		return nil, nil
	}
	field, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if field == nil || !field.IsField() {
		return nil, nil
	}
	return sel, field
}

// checkStoredValue verifies one value headed into a snapshot field.
func checkStoredValue(pass *Pass, fs *freshState, sel *ast.SelectorExpr, field *types.Var, rhs ast.Expr) {
	if !typeHasMutableRefs(field.Type()) {
		return
	}
	rhs = ast.Unparen(rhs)
	// Appending to the snapshot's own field grows checkpoint-owned backing;
	// only the appended elements need to be fresh.
	if call, ok := rhs.(*ast.CallExpr); ok && isAppendToSelf(pass, call, sel) {
		for _, el := range call.Args[1:] {
			if !fs.freshExpr(el) {
				pass.Reportf(el.Pos(), "append stores %s into snapshot field %s: the element aliases mutable run state; clone its ref-carrying parts first (//ring:snapshot)",
					exprString(el), exprString(sel))
			}
		}
		return
	}
	if fs.freshExpr(rhs) {
		return
	}
	switch field.Type().Underlying().(type) {
	case *types.Pointer:
		pass.Reportf(rhs.Pos(), "stores pointer %s into snapshot field %s: a checkpoint must not point into run state; copy the pointed-to value (//ring:snapshot)",
			exprString(rhs), exprString(sel))
	case *types.Map:
		pass.Reportf(rhs.Pos(), "stores map %s into snapshot field %s without rebuilding it: the live map keeps mutating after capture; rebuild into a fresh map (//ring:snapshot)",
			exprString(rhs), exprString(sel))
	default:
		pass.Reportf(rhs.Pos(), "stores %s into snapshot field %s: the value aliases mutable run state; clone it (append to nil, make+copy, or .Clone) before storing (//ring:snapshot)",
			exprString(rhs), exprString(sel))
	}
}

// checkSnapshotLiteral verifies the field values of a snapshot-typed
// composite literal.
func checkSnapshotLiteral(pass *Pass, fs *freshState, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		v := el
		name := ""
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				name = id.Name
			}
		}
		if t := pass.TypesInfo.TypeOf(v); t != nil && !typeHasMutableRefs(t) {
			continue
		}
		if !fs.freshExpr(v) {
			pass.Reportf(v.Pos(), "snapshot literal field %s holds %s, which aliases mutable run state; clone it before constructing the checkpoint (//ring:snapshot)",
				name, exprString(v))
		}
	}
}

// isAppendToSelf reports whether call is append(sel, ...) growing the very
// field being assigned.
func isAppendToSelf(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return len(call.Args) > 0 && exprString(ast.Unparen(call.Args[0])) == exprString(sel)
}

// namedTypeName resolves t (through one pointer) to its defining TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin().Obj()
	}
	return nil
}
