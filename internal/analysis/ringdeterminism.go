package analysis

import (
	"go/ast"
	"go/types"
)

// RingDeterminism flags nondeterminism sources inside functions marked
// //ring:deterministic: the event loops, schedulers, the token framework and
// cache-key construction, where the paper's cost model demands bit-identical
// runs. It complements the runtime goldens (token_goldens.json) and the
// cross-schedule/cross-engine property tests: those catch a nondeterministic
// result on the paths they exercise; this rejects the construct everywhere.
//
// Flagged: range over a map or a channel, select over multiple live
// channels, launching a goroutine, time.Now/Since/Until, and the seedless
// global math/rand generator. Each has a sanctioned escape: //ring:ordered
// on the statement asserts the order cannot reach the result (sorted-key
// ranges, order-independent folds, deterministically merged workers).
var RingDeterminism = &Analyzer{
	Name: "ringdeterminism",
	Doc: "flag nondeterminism sources (map/channel iteration order, wall-clock time, " +
		"global math/rand, unordered goroutine collection) in //ring:deterministic functions",
	Run: runRingDeterminism,
}

// randConstructors are the math/rand functions that build seeded generators;
// calling them is how deterministic code is supposed to get randomness.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// wallClockFuncs are the time-package functions whose result differs between
// two identical runs.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runRingDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !pass.FuncMarks(n.Pos()).Deterministic {
				return true
			}
			switch n := n.(type) {
			case *ast.RangeStmt:
				switch pass.TypesInfo.TypeOf(n.X).Underlying().(type) {
				case *types.Map:
					if !pass.Ordered(n.Pos()) {
						pass.Reportf(n.Pos(), "deterministic code iterates over map %s in unspecified order; sort the keys first, or assert order-independence with //ring:ordered", exprString(n.X))
					}
				case *types.Chan:
					if !pass.Ordered(n.Pos()) {
						pass.Reportf(n.Pos(), "deterministic code ranges over channel %s, collecting results in completion order; merge deterministically, or assert order-independence with //ring:ordered", exprString(n.X))
					}
				}
			case *ast.GoStmt:
				if !pass.Ordered(n.Pos()) {
					pass.Reportf(n.Pos(), "deterministic code launches a goroutine; results must be merged order-independently — state the argument with //ring:ordered")
				}
			case *ast.SelectStmt:
				live := 0
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						live++
					}
				}
				if live >= 2 && !pass.Ordered(n.Pos()) {
					pass.Reportf(n.Pos(), "deterministic code selects over %d live channels; the runtime picks a ready case at random — restructure, or assert order-independence with //ring:ordered", live)
				}
			case *ast.CallExpr:
				pkg, name := calleePkgFunc(pass.TypesInfo, n)
				switch {
				case pkg == "time" && wallClockFuncs[name]:
					pass.Reportf(n.Pos(), "deterministic code reads the wall clock via time.%s; two identical runs will differ", name)
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
					pass.Reportf(n.Pos(), "deterministic code calls the global %s.%s generator; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", pkg, name)
				}
			}
			return true
		})
	}
	return nil
}
