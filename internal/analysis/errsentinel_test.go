package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

func TestErrSentinel(t *testing.T) {
	vettest.Run(t, "errsentinel/a", analysis.ErrSentinel)
}
