package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardSafe checks the two access disciplines the sharded engine's
// correctness rests on (internal/ring/sharded.go, concurrent.go):
//
//  1. Atomic discipline: a struct field that is accessed through sync/atomic
//     anywhere in the package (atomic.LoadInt64(&x.f), atomic.AddInt32, ...)
//     must be accessed through sync/atomic *everywhere*. One plain read of
//     such a field is a data race the race detector only catches on the
//     interleavings a test happens to drive; this rejects the construct on
//     every path. Fields declared with the atomic.* wrapper types are safe
//     by construction (their value is unexported) and are instead covered
//     by rule 2 where ownership matters.
//
//  2. SPSC ownership: a field carrying //ring:owner producer|consumer (the
//     head/tail counters and spill queues of the boundary rings) is half of
//     a single-producer single-consumer protocol. Mutations (plain writes,
//     or Store/Add/Swap/CompareAndSwap on an atomic.* field) are only legal
//     in functions marked with the matching //ring:producer or
//     //ring:consumer role; atomic Loads are legal from either role (the
//     consumer reads the producer's published tail and vice versa — that IS
//     the protocol) but not from unmarked functions; any access to a plain
//     (non-atomic) owned field requires the matching role, reads included.
//
// Soundness limits: both rules are per-package (owned fields here are
// unexported, so that covers every access); "single producer" itself —
// that only one goroutine runs the producer-marked functions per ring —
// remains the runtime architecture's contract, pinned by the race-enabled
// sharded tests. Setup code that legitimately touches both sides before
// the workers launch suppresses per line with //ringvet:ignore shardsafe.
var ShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc: "enforce atomic access discipline (no plain access to sync/atomic-managed fields) and " +
		"//ring:owner producer/consumer SPSC field ownership",
	Run: runShardSafe,
}

// atomicMutators are the atomic.* methods and function prefixes that write.
var atomicMutators = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true, "Or": true, "And": true,
}

func runShardSafe(pass *Pass) error {
	owners, err := ownerFields(pass)
	if err != nil {
		return err
	}
	atomicFields, sanctioned := atomicDisciplineIndex(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShardAccesses(pass, fd, owners, atomicFields, sanctioned)
		}
	}
	return nil
}

// ownerFields collects //ring:owner directives from struct field comments,
// mapping each field object to its declared role.
func ownerFields(pass *Pass) (map[*types.Var]string, error) {
	owners := make(map[*types.Var]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					role, pos, err := fieldOwnerRole(pass, field)
					if err != nil {
						return nil, err
					}
					if role == "" {
						continue
					}
					if len(field.Names) == 0 {
						return nil, fmt.Errorf("%s: ring:owner cannot mark an embedded field", pass.Fset.Position(pos))
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							owners[v] = role
						}
					}
				}
			}
		}
	}
	return owners, nil
}

// fieldOwnerRole parses a field's doc/trailing comments for
// "//ring:owner producer|consumer".
func fieldOwnerRole(pass *Pass, field *ast.Field) (string, token.Pos, error) {
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if !strings.HasPrefix(c.Text, "//ring:owner") {
				continue
			}
			role := strings.TrimSpace(strings.TrimPrefix(c.Text, "//ring:owner"))
			if role != "producer" && role != "consumer" {
				return "", c.Pos(), fmt.Errorf("%s: ring:owner wants producer or consumer, got %q",
					pass.Fset.Position(c.Pos()), role)
			}
			return role, c.Pos(), nil
		}
	}
	return "", token.NoPos, nil
}

// atomicDisciplineIndex finds every field whose address is passed to a
// sync/atomic function, and remembers those selector nodes as sanctioned so
// the enforcement walk does not flag the atomic sites themselves.
func atomicDisciplineIndex(pass *Pass) (map[*types.Var]token.Pos, map[*ast.SelectorExpr]bool) {
	fields := make(map[*types.Var]token.Pos)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, _ := calleePkgFunc(pass.TypesInfo, call); pkg != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldVar(pass, sel); v != nil {
					if _, seen := fields[v]; !seen {
						fields[v] = sel.Pos()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	return fields, sanctioned
}

// checkShardAccesses enforces both disciplines over one function body.
func checkShardAccesses(pass *Pass, fd *ast.FuncDecl, owners map[*types.Var]string,
	atomicFields map[*types.Var]token.Pos, sanctioned map[*ast.SelectorExpr]bool) {

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v := fieldVar(pass, sel)
		if v == nil {
			return true
		}

		// Rule 1: plain access to a sync/atomic-managed field.
		if firstPos, tracked := atomicFields[v]; tracked && !sanctioned[sel] {
			pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed via sync/atomic at %s; every access must go through sync/atomic",
				exprString(sel), pass.Fset.Position(firstPos))
		}

		// Rule 2: //ring:owner role discipline.
		role, owned := owners[v]
		if !owned {
			return true
		}
		marks := pass.FuncMarks(sel.Pos())
		kind := accessKind(pass, sel, stack, atomicFields, v)
		switch kind {
		case accessAtomicLoad:
			if !marks.Producer && !marks.Consumer {
				pass.Reportf(sel.Pos(), "%s reads %s-owned field %s but carries neither //ring:producer nor //ring:consumer; only the two SPSC sides may touch it",
					fd.Name.Name, role, exprString(sel))
			}
		case accessMutate:
			if !roleMatches(marks, role) {
				pass.Reportf(sel.Pos(), "%s mutates %s, which //ring:owner assigns to the %s side; mark the function //ring:%s or move the write",
					fd.Name.Name, exprString(sel), role, role)
			}
		case accessPlain:
			if !roleMatches(marks, role) {
				pass.Reportf(sel.Pos(), "%s accesses %s-owned field %s from outside its owning side (//ring:owner); only //ring:%s functions may touch it",
					fd.Name.Name, role, exprString(sel), role)
			}
		}
		return true
	})
}

type shardAccess int

const (
	accessPlain shardAccess = iota
	accessAtomicLoad
	accessMutate
)

// accessKind classifies how sel uses the field: an atomic Load, a mutation
// (plain assignment target, ++/--, atomic mutator method or sync/atomic
// mutator call on its address), or a plain use.
func accessKind(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node,
	atomicFields map[*types.Var]token.Pos, v *types.Var) shardAccess {

	isAtomicField := isAtomicWrapperType(v.Type())
	if _, tracked := atomicFields[v]; tracked {
		isAtomicField = true
	}
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// q.head.Load() — sel is parent.X, parent.Sel is the method.
			if parent.X == ast.Expr(sel) && isAtomicWrapperType(v.Type()) {
				name := parent.Sel.Name
				if name == "Load" {
					return accessAtomicLoad
				}
				for m := range atomicMutators {
					if strings.HasPrefix(name, m) {
						return accessMutate
					}
				}
			}
		case *ast.UnaryExpr:
			// &q.head handed to sync/atomic: classify by the called function.
			if parent.Op == token.AND && len(stack) > 1 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
					if pkg, name := calleePkgFunc(pass.TypesInfo, call); pkg == "sync/atomic" {
						if strings.HasPrefix(name, "Load") {
							return accessAtomicLoad
						}
						return accessMutate
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if ast.Unparen(lhs) == ast.Expr(sel) {
					return accessMutate
				}
			}
		case *ast.IncDecStmt:
			if ast.Unparen(parent.X) == ast.Expr(sel) {
				return accessMutate
			}
		}
	}
	if isAtomicField {
		// Touching an atomic field other than through Load/Store methods
		// (copying it, ranging it) counts as a plain access.
		return accessPlain
	}
	return accessPlain
}

// roleMatches reports whether the function's marks include the owning role.
func roleMatches(m Marks, role string) bool {
	return (role == "producer" && m.Producer) || (role == "consumer" && m.Consumer)
}

// isAtomicWrapperType reports whether t is one of sync/atomic's wrapper
// types (atomic.Int64, atomic.Pointer[T], ...).
func isAtomicWrapperType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldVar resolves a selector to the struct field it denotes, or nil.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	v, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}
