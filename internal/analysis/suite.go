package analysis

// All returns the full ringvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{RingDeterminism, HotpathAlloc, AllocFlow, ShardSafe, SnapshotPure, CtxFlow, ErrSentinel}
}

// knownAnalyzer validates //ringvet:ignore targets.
func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
