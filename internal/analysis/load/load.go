// Package load type-checks the module's packages for the ringvet analyzers
// without depending on golang.org/x/tools/go/packages: it drives `go list
// -export -deps -json` to enumerate packages and locate their compiled
// export data in the build cache, parses the target packages' sources, and
// type-checks them with the standard library's gc importer reading that
// export data. The module has zero third-party dependencies, so every
// import resolves to either the standard library or an in-module package —
// both covered by export data from one go list invocation.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// ImportPath is the go list import path; test variants keep their
	// bracketed form ("pkg [pkg.test]").
	ImportPath string
	// Dir is the package directory.
	Dir string
	// Fset is shared across every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types and Info are the full type-check results.
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ForTest    string
	Standard   bool
}

// Load enumerates, parses and type-checks the module packages matched by
// patterns (e.g. "./..."), rooted at dir. With tests true, in-package and
// external test units are included — each package is then analyzed as its
// test-augmented variant, so _test.go files are covered too. The build must
// be passing: Load surfaces go list / type-check failures as errors.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modPath, err := goList(dir, "-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, fmt.Errorf("resolving module path: %w", err)
	}
	module := strings.TrimSpace(modPath)

	args := []string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,ForTest,Standard"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	out, err := goRun(dir, args...)
	if err != nil {
		return nil, err
	}

	var listed []listedPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	// Exactly one variant per stripped import path is analyzed — two
	// variants share sources, so analyzing both would duplicate every
	// finding and break the baseline's multiset matching. The in-package
	// test variant ("p [p.test]") supersets its plain package and wins; a
	// dependency rebuilt inside another package's test build ("q [p.test]")
	// loses to the plain "q" listing. External test packages ("p_test
	// [p.test]") have their own stripped path and never collide.
	chosen := make(map[string]int)
	for i, p := range listed {
		if !isTarget(p, module) {
			continue
		}
		s := strippedPath(p.ImportPath)
		if j, ok := chosen[s]; !ok || variantRank(p) > variantRank(listed[j]) {
			chosen[s] = i
		}
	}
	keep := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		keep[i] = true
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for i, p := range listed {
		if !keep[i] {
			continue
		}
		pkg, err := typeCheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// variantRank orders the listed variants of one package: the in-package
// test variant carries the most sources, the plain package beats a
// same-source rebuild bracketed under some other package's test build.
func variantRank(p listedPkg) int {
	switch {
	case p.ForTest != "" && strippedPath(p.ImportPath) == p.ForTest:
		return 2 // "p [p.test]": plain sources plus in-package _test.go files
	case p.ForTest == "":
		return 1 // plain package
	default:
		return 0 // "q [p.test]": same sources as plain q, rebuilt against p's test build
	}
}

// isTarget decides whether a listed package gets analyzed: module packages
// only — no standard library, no synthesized test mains, no testdata
// fixtures (./... never matches those, but an explicit path argument can;
// fixture packages import "fixture/..." paths only vettest can resolve).
func isTarget(p listedPkg, module string) bool {
	if p.Standard || len(p.GoFiles) == 0 {
		return false
	}
	for _, seg := range strings.Split(filepath.ToSlash(p.Dir), "/") {
		if seg == "testdata" {
			return false
		}
	}
	if p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
		return false // generated test binary main; its sources live in the build cache
	}
	base := strippedPath(p.ImportPath)
	if p.ForTest != "" {
		base = p.ForTest // covers external test packages ("p_test [p.test]")
	}
	return base == module || strings.HasPrefix(base, module+"/")
}

// strippedPath removes the " [p.test]" variant suffix.
func strippedPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// typeCheck parses and checks one target package against the export data of
// its dependencies.
func typeCheck(fset *token.FileSet, p listedPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	// Inside a test build, go list rebuilds the package under test AND any
	// dependency that (transitively) imports it as bracketed variants
	// ("q [p.test]"). A package being analyzed as part of that build must
	// resolve its imports to those variants first: the package under test
	// may export extra API from its test files (the export_test.go idiom),
	// and a plain-package export may not even be listed when the pattern
	// didn't match it directly.
	variantSuffix := ""
	if p.ForTest != "" {
		variantSuffix = " [" + p.ForTest + ".test]"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if variantSuffix != "" {
			if exp, ok := exports[path+variantSuffix]; ok {
				return os.Open(exp)
			}
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (dependency of %s)", path, p.ImportPath)
		}
		return os.Open(exp)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect everything; first error returned below
	}
	tpkg, err := conf.Check(strippedPath(p.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// goList runs `go list` with the given extra args and returns stdout.
func goList(dir string, args ...string) (string, error) {
	out, err := goRun(dir, append([]string{"list"}, args...)...)
	return string(out), err
}

// goRun executes the go tool in dir, turning non-zero exits into errors
// carrying stderr (which is where go list explains what failed to build).
func goRun(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				msg = strings.TrimSpace(string(ee.Stderr))
			}
		}
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, msg)
	}
	return out, nil
}
