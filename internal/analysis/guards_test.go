package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotpathGuardsAreLiveTests pins the contract binding the static and
// dynamic tiers together: every //ring:hotpath directive in the module names
// at least one guard= alloc-regression test, and every named guard resolves
// to a Test function that exists somewhere in the module's test files. A
// directive whose guard was renamed or deleted fails here instead of silently
// pointing at nothing.
func TestHotpathGuardsAreLiveTests(t *testing.T) {
	root := moduleRootDir(t)
	fset := token.NewFileSet()

	type hotpathMark struct {
		fn     string
		pos    token.Position
		guards []string
	}
	var hotpaths []hotpathMark
	testFuncs := make(map[string]bool)
	// Syntactic call graph over the module's test files, by function name:
	// enough to check that each guard transitively reaches an AllocsPerRun
	// measurement. Names are merged module-wide, which over-approximates —
	// the sound direction for a liveness check that only ever relaxes.
	testCalls := make(map[string]map[string]bool)
	measures := make(map[string]bool)

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Fixture packages under testdata deliberately use fake guard
			// names; they are exercised by vettest, not by this contract.
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		isTest := strings.HasSuffix(path, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if isTest && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Test") {
				testFuncs[fd.Name.Name] = true
			}
			if isTest && fd.Body != nil {
				name := fd.Name.Name
				calls := testCalls[name]
				if calls == nil {
					calls = make(map[string]bool)
					testCalls[name] = calls
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						if id, ok := n.X.(*ast.Ident); ok && id.Name == "testing" && n.Sel.Name == "AllocsPerRun" {
							measures[name] = true
						}
						calls[n.Sel.Name] = true
					case *ast.Ident:
						calls[n.Name] = true
					}
					return true
				})
			}
			if fd.Doc == nil {
				continue
			}
			m, err := parseFuncMarks(fd.Doc)
			if err != nil {
				t.Errorf("%s: %s: %v", fset.Position(fd.Pos()), fd.Name.Name, err)
				continue
			}
			if m.Hotpath {
				hotpaths = append(hotpaths, hotpathMark{
					fn:     fd.Name.Name,
					pos:    fset.Position(fd.Pos()),
					guards: m.Guards,
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hotpaths) == 0 {
		t.Fatal("no //ring:hotpath directives found in the module; the annotation pass is missing")
	}

	if len(measures) == 0 {
		t.Fatal("no test in the module calls testing.AllocsPerRun; the dynamic alloc-guard tier is missing")
	}

	// A guard that exists but never measures is a dead sentinel: require each
	// one to reach testing.AllocsPerRun through the test-file call graph.
	reaches := func(name string) bool {
		seen := make(map[string]bool)
		var visit func(string) bool
		visit = func(fn string) bool {
			if measures[fn] {
				return true
			}
			if seen[fn] {
				return false
			}
			seen[fn] = true
			for callee := range testCalls[fn] {
				if _, isTestFn := testCalls[callee]; isTestFn && visit(callee) {
					return true
				}
			}
			return false
		}
		return visit(name)
	}

	for _, m := range hotpaths {
		if len(m.guards) == 0 {
			t.Errorf("%s: //ring:hotpath on %s names no guard= alloc-regression test", m.pos, m.fn)
			continue
		}
		for _, g := range m.guards {
			if !testFuncs[g] {
				t.Errorf("%s: %s names guard %s, which is not a Test function anywhere in the module", m.pos, m.fn, g)
				continue
			}
			if !reaches(g) {
				t.Errorf("%s: guard %s never calls testing.AllocsPerRun (directly or through test helpers); it cannot pin the alloc budget %s claims", m.pos, g, m.fn)
			}
		}
	}
}

// moduleRootDir walks up from the package directory to the go.mod root.
func moduleRootDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}
