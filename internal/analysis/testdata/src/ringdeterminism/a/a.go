// Package a is the ringdeterminism fixture: lines carrying want comments
// must be flagged, every other line asserts silence.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// shuffle is unmarked: every construct below is legal off the deterministic
// paths.
func shuffle(m map[string]int, ch chan int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	go func() { ch <- rand.Intn(10) }()
	for v := range ch {
		total += v
	}
	return total + int(time.Now().UnixNano())
}

// merge folds worker results.
//
//ring:deterministic
func merge(m map[string]int, ch, a, b chan int) int {
	total := 0
	for _, v := range m { // want "iterates over map"
		total += v
	}
	//ring:ordered -- addition commutes
	for _, v := range m {
		total += v
	}
	keys := make([]string, 0, len(m))
	//ring:ordered -- keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total += m[k]
	}
	for v := range ch { // want "ranges over channel"
		total += v
	}
	go drain(ch) // want "launches a goroutine"
	//ring:ordered -- workers write disjoint result slots
	go drain(ch)
	select { // want "selects over 2 live channels"
	case v := <-a:
		total += v
	case v := <-b:
		total += v
	}
	select {
	case v := <-a:
		total += v
	default:
	}
	return total
}

// stamp reads clocks and global randomness.
//
//ring:deterministic
func stamp(seed int64, start time.Time) int64 {
	n := time.Now().UnixNano() // want "reads the wall clock via time.Now"
	d := time.Since(start)     // want "reads the wall clock via time.Since"
	r := int64(rand.Intn(100)) // want "calls the global math/rand.Intn generator"
	rng := rand.New(rand.NewSource(seed))
	return n + int64(d) + r + int64(rng.Intn(100))
}

// fold shows function literals inheriting the enclosing declaration's mark.
//
//ring:deterministic
func fold(m map[int]int) func() int {
	return func() int {
		t := 0
		for _, v := range m { // want "iterates over map"
			t += v
		}
		return t
	}
}

func drain(ch chan int) {
	for range ch {
	}
}
