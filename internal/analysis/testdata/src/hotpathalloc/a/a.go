// Package a is the hotpathalloc fixture: lines carrying want comments must
// be flagged, every other line asserts silence.
package a

import "fmt"

type ring struct {
	slots []int
	buf   []byte
}

func sink(x any)              {}
func sinks(xs ...any)         {}
func runHot(f func() int) int { return f() }

// cold is unmarked: allocation-heavy code is fine off the hot path.
func cold(v int) string {
	s := fmt.Sprintf("v=%d", v)
	m := map[string]int{"v": v}
	sink(m)
	return s + "!"
}

// push is the annotated hot path exercising the call-shaped rules.
//
//ring:hotpath guard=TestPushAllocs
func (r *ring) push(v int, label string) error {
	_ = fmt.Sprintf("v=%d", v) // want "fmt.Sprintf allocates"
	msg := label + "!"         // want "string concatenation allocates"
	msg += "?"                 // want "string concatenation"
	_ = msg
	m := map[string]int{} // want "map literal allocates"
	_ = m
	lut := make(map[int]int) // want "make(map) allocates"
	_ = lut
	ch := make(chan int) // want "make(chan) allocates"
	_ = ch
	r.slots = append(r.slots, v) // want "append may grow"
	r.buf = append(r.buf[:0], byte(v))
	//ring:prealloc -- slots are presized to ring capacity at construction
	r.slots = append(r.slots, v)
	sink(v) // want "boxes it on the hot path"
	vals := []any{v}
	sinks(vals...)
	_ = any(v) // want "conversion to interface any boxes its operand"
	//ringvet:ignore hotpathalloc -- one-time diagnostic on the failure path
	_ = fmt.Sprintf("fail %d", v)
	if v < 0 {
		err := fmt.Errorf("stash %d", v) // want "fmt.Errorf allocates"
		_ = err
	}
	if v > cap(r.slots) {
		return fmt.Errorf("overflow at %d", v)
	}
	return nil
}

// scan exercises the closure rules.
//
//ring:hotpath guard=TestScanAllocs
func (r *ring) scan(base int) int {
	total := 0
	add := func(v int) { total += v }
	for _, v := range r.slots {
		add(v)
	}
	total += runHot(func() int { return base }) // want "passed as a call argument"
	for range r.slots {
		f := func() int { return base } // want "built inside a loop"
		total += f()
	}
	runHot(func() int { return 1 })
	return total
}
