// Package a is the ctxflow fixture: lines carrying want comments must be
// flagged, every other line asserts silence.
package a

import "context"

type job struct{ id int }

func doWork(ctx context.Context, j job) error { return nil }

// Run propagates the caller's context: the contract, verbatim.
func Run(ctx context.Context, j job) error {
	return doWork(ctx, j)
}

// RunDefault defaults a nil context — the sanctioned pattern.
func RunDefault(ctx context.Context, j job) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return doWork(ctx, j)
}

// RunFresh mints a fresh root even though it received a context.
func RunFresh(ctx context.Context, j job) error {
	return doWork(context.Background(), j) // want "received a context but calls context.Background"
}

// RunLate buries the context behind the payload.
func RunLate(j job, ctx context.Context) error { // want "context.Context should be the first parameter"
	return doWork(ctx, j)
}

// RunDetached is an exported API that silently severs cancellation.
func RunDetached(j job) error {
	return doWork(context.Background(), j) // want "discards the caller's context"
}

// RunTodo does the same through context.TODO.
func RunTodo(j job) error {
	err := doWork(context.TODO(), j) // want "discards the caller's context"
	return err
}

// RunV1 keeps the frozen pre-context signature.
//
// Deprecated: use Run.
func RunV1(j job) error {
	return doWork(context.Background(), j)
}

// runDetached is unexported: internal plumbing may root a context.
func runDetached(j job) error {
	return doWork(context.Background(), j)
}

// RunAsync launches detached work; function literals may outlive the caller
// and are exempt from the discard rule.
func RunAsync(j job) error {
	go func() {
		_ = doWork(context.Background(), j)
	}()
	return nil
}
