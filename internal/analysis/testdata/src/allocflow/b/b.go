// Package b carries the hot root of the cross-package allocflow fixture;
// the allocating callee lives in fixture/allocflow/lib.
package b

import "fixture/allocflow/lib"

// relay is hot; allocflow must follow the edge into lib.Emit.
//
//ring:hotpath guard=TestRelayAllocs
func relay(n int) {
	for i := 0; i < n; i++ {
		lib.Emit(i)
	}
}
