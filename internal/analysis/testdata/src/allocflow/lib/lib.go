// Package lib holds the allocating helpers for the cross-package allocflow
// fixture: the hot root lives in fixture/allocflow/b, so every finding here
// exists only because propagation crossed the package boundary.
package lib

import "fmt"

var buf []byte

// Emit is reached from b.relay's //ring:hotpath root.
func Emit(v int) {
	buf = append(buf, byte(v)) // want "append may grow" "hot via"
}

// Describe is exported but never called from a hot root; its allocation
// stays silent (cross-package true negative).
func Describe(v int) string {
	return fmt.Sprint(v)
}
