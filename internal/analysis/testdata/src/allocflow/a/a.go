// Package a is the in-package allocflow fixture: a //ring:hotpath root
// propagates the allocation rules into every callee it statically reaches —
// plain calls, methods, interface dispatch — and stops at //ring:coldpath
// functions and //ringvet:ignore allocflow call sites. Lines carrying want
// comments must be flagged; every other line asserts silence.
package a

import "fmt"

func use(f func())  {}
func ints() []int   { return nil }
func fill(xs []int) {}
func format(v int)  { _ = fmt.Sprintf("v=%d", v) } // want "fmt.Sprintf allocates" "hot via"
func grow(xs []int) []int {
	return append(xs, 1) // want "append may grow"
}

var total int

// capture builds a closure over its parameter in a hot callee — the
// regression class where the profiler, not an analyzer, used to be the only
// catch.
func capture(v int) {
	use(func() { total += v }) // want "capturing closure"
}

// Handler dispatches dynamically: loop calls it through the interface, so
// every implementation in the program is considered reachable.
type Handler interface {
	Handle(v int)
}

type mapHandler struct{ m map[int]int }

func (h *mapHandler) Handle(v int) {
	h.m = map[int]int{v: v} // want "map literal allocates"
}

type cleanHandler struct{ total int }

func (h *cleanHandler) Handle(v int) {
	h.total += v
}

// diagnostics is excluded from propagation: it shares code with the loop but
// only runs when a run fails.
//
//ring:coldpath -- failure reporting, never runs per-message
func diagnostics(v int) string {
	return fmt.Sprintf("failed at %d", v)
}

// loop is the hot root. It is itself left to hotpathalloc (the directive
// marks it); allocflow checks everything it reaches.
//
//ring:hotpath guard=TestLoopAllocs
func loop(h Handler, n int) {
	for v := 0; v < n; v++ {
		format(v)
		_ = grow(ints())
		capture(v)
		h.Handle(v)
		if v < 0 {
			_ = diagnostics(v)
			//ringvet:ignore allocflow -- setup helper, runs before the loop in production
			fill(setup())
		}
	}
}

// setup allocates freely: the only edge into it is suppressed, so the
// propagation never reaches it.
func setup() []int {
	out := make([]int, 0)
	out = append(out, len(fmt.Sprint("sized")))
	return out
}

// Emitter is embedded in sink below: emitAll's s.Emit(v) resolves to the
// *interface's* method (the selection's receiver is the struct, so the
// plain interface-value test misses it) and must still be treated as
// dynamic dispatch, reaching every implementation in the program.
type Emitter interface {
	Emit(v int)
}

type sink struct {
	Emitter
}

type sliceEmitter struct{ xs []int }

func (s *sliceEmitter) Emit(v int) {
	s.xs = append(s.xs, v) // want "append may grow" "emitAll"
}

// emitAll is hot; the only path to sliceEmitter.Emit is the method promoted
// from sink's embedded interface field.
//
//ring:hotpath guard=TestEmitAllocs
func emitAll(s sink, n int) {
	for v := 0; v < n; v++ {
		s.Emit(v)
	}
}
