// Package a is the snapshotpure fixture: a //ring:snapshot type, one
// capture path that aliases live engine state in every way the analyzer
// rejects, and one that clones everything — the idioms checkpoint capture
// actually uses — as true negatives.
package a

// Checkpoint freezes an execution; any number of resumes may share one
// value, so nothing inside it may alias the engine.
//
//ring:snapshot
type Checkpoint struct {
	states  [][]byte
	pending []int32
	meta    map[string]int
	owner   *engine
	count   int
}

type engine struct {
	buf     []byte
	pending []int32
	labels  map[string]int
	n       int
}

// capture is the impure path: every ref-carrying store aliases live state.
func (e *engine) capture(cp *Checkpoint) {
	cp.states = append(cp.states, e.buf) // want "aliases mutable run state"
	cp.pending = e.pending               // want "clone it"
	cp.meta = e.labels                   // want "without rebuilding it"
	cp.owner = e                         // want "must not point into run state"
	cp.count = e.n                       // scalar: nothing to alias
}

// captureClean clones everything first (true negatives throughout): the
// variadic append-onto-nil idiom, make+copy-by-range for maps, and a local
// proven fresh feeding the snapshot's own append.
func (e *engine) captureClean(cp *Checkpoint) {
	buf := append([]byte(nil), e.buf...)
	cp.states = append(cp.states, buf)
	cp.pending = append([]int32(nil), e.pending...)
	meta := make(map[string]int, len(e.labels))
	for k, v := range e.labels {
		meta[k] = v
	}
	cp.meta = meta
	cp.count = e.n
}

// snapshot builds the checkpoint as a composite literal; literal fields are
// held to the same freshness rule.
func (e *engine) snapshot() Checkpoint {
	return Checkpoint{
		pending: e.pending, // want "aliases mutable run state"
		count:   e.n,
	}
}
