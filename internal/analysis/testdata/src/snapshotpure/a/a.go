// Package a is the snapshotpure fixture: a //ring:snapshot type, one
// capture path that aliases live engine state in every way the analyzer
// rejects, and one that clones everything — the idioms checkpoint capture
// actually uses — as true negatives.
package a

// Checkpoint freezes an execution; any number of resumes may share one
// value, so nothing inside it may alias the engine.
//
//ring:snapshot
type Checkpoint struct {
	states  [][]byte
	pending []int32
	meta    map[string]int
	owner   *engine
	count   int
}

type engine struct {
	buf     []byte
	pending []int32
	labels  map[string]int
	n       int
}

// capture is the impure path: every ref-carrying store aliases live state.
func (e *engine) capture(cp *Checkpoint) {
	cp.states = append(cp.states, e.buf) // want "aliases mutable run state"
	cp.pending = e.pending               // want "clone it"
	cp.meta = e.labels                   // want "without rebuilding it"
	cp.owner = e                         // want "must not point into run state"
	cp.count = e.n                       // scalar: nothing to alias
}

// captureClean clones everything first (true negatives throughout): the
// variadic append-onto-nil idiom, make+copy-by-range for maps, and a local
// proven fresh feeding the snapshot's own append.
func (e *engine) captureClean(cp *Checkpoint) {
	buf := append([]byte(nil), e.buf...)
	cp.states = append(cp.states, buf)
	cp.pending = append([]int32(nil), e.pending...)
	meta := make(map[string]int, len(e.labels))
	for k, v := range e.labels {
		meta[k] = v
	}
	cp.meta = meta
	cp.count = e.n
}

// snapshot builds the checkpoint as a composite literal; literal fields are
// held to the same freshness rule.
func (e *engine) snapshot() Checkpoint {
	return Checkpoint{
		pending: e.pending, // want "aliases mutable run state"
		count:   e.n,
	}
}

// staging is a scratch value capture paths assemble into before committing
// to the checkpoint; it carries no //ring:snapshot mark of its own.
type staging struct {
	pending []int32
	notes   []byte
}

// captureStaged routes live state through a freshly allocated temporary: the
// temporary's own freshness must not bless a field that was overwritten with
// an alias (tmp.pending below still points into the engine), while a field
// explicitly freshened stays storable even after the base is contaminated.
func (e *engine) captureStaged(cp *Checkpoint) {
	tmp := &staging{}
	tmp.notes = append([]byte(nil), e.buf...)
	tmp.pending = e.pending
	cp.pending = tmp.pending                 // want "clone it"
	cp.states = append(cp.states, tmp.notes) // freshened field: silent despite the stale sibling store
}

// aliasedPair hands out views into live state; neither result is fresh.
func (e *engine) aliasedPair() ([]int32, map[string]int) {
	return e.pending, e.labels
}

// freshPair clones both results; the returns-fresh summary proves it.
func (e *engine) freshPair() ([]int32, map[string]int) {
	m := make(map[string]int, len(e.labels))
	for k, v := range e.labels {
		m[k] = v
	}
	return append([]int32(nil), e.pending...), m
}

// captureTuple stores one multi-result call into two snapshot fields: every
// target of the tuple is checked, not just the first.
func (e *engine) captureTuple(cp, cp2 *Checkpoint) {
	cp.pending, cp2.meta = e.aliasedPair() // want "clone it" "without rebuilding it"
	cp.pending, cp2.meta = e.freshPair()   // both results proven fresh: silent
}
