// Package a is the shardsafe fixture: a miniature SPSC boundary ring with
// both disciplines seeded — a plain read of a sync/atomic-managed field
// (rule 1), role violations against //ring:owner fields (rule 2), and the
// sanctioned setup idiom as true negatives.
package a

import "sync/atomic"

type boundary struct {
	head  atomic.Int64 //ring:owner consumer
	tail  atomic.Int64 //ring:owner producer
	spill []int64      //ring:owner producer
	seq   int64        // managed through sync/atomic in push/pop
	size  int
}

// push is the producer side: it owns tail and spill, and may read the
// consumer's head atomically — that handshake IS the protocol.
//
//ring:producer
func (q *boundary) push(v int64) {
	t := q.tail.Load()
	q.tail.Store(t + 1)
	q.spill = append(q.spill, v)
	atomic.AddInt64(&q.seq, 1)
	_ = q.head.Load()
}

// pop is the consumer side.
//
//ring:consumer
func (q *boundary) pop() int64 {
	h := q.head.Load()
	q.head.Store(h + 1)
	_ = q.tail.Load()
	return atomic.LoadInt64(&q.seq)
}

// depth reads seq without going through sync/atomic: the race rule 1 exists
// to reject on every interleaving, not just the ones a test drives.
func (q *boundary) depth() int64 {
	return q.seq // want "plain access to field"
}

// observe carries no role, so even an atomic read of an owned counter is
// out of protocol.
func (q *boundary) observe() int64 {
	return q.tail.Load() // want "neither //ring:producer nor //ring:consumer"
}

// steal is marked consumer but writes the producer's counter.
//
//ring:consumer
func (q *boundary) steal() {
	q.tail.Store(0) // want "mutates"
}

// spillDepth touches a plain owned field from outside the owning side;
// plain fields need the matching role even for reads.
func (q *boundary) spillDepth() int {
	return len(q.spill) // want "from outside its owning side"
}

// reset legitimately touches both sides — it runs before the worker
// goroutines exist, and says so per line (true negative).
func (q *boundary) reset() {
	//ringvet:ignore shardsafe -- reset runs before the worker goroutines launch
	q.head.Store(0)
	//ringvet:ignore shardsafe -- reset runs before the worker goroutines launch
	q.tail.Store(0)
	//ringvet:ignore shardsafe -- reset runs before the worker goroutines launch
	q.spill = q.spill[:0]
}
