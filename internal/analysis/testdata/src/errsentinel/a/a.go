// Package a is the errsentinel fixture: lines carrying want comments must be
// flagged, every other line asserts silence.
package a

import (
	"errors"
	"fmt"
	"strings"
)

// errRingFull is the typed sentinel callers classify against.
var errRingFull = errors.New("ring full")

func produce(n int) error {
	if n > 8 {
		return fmt.Errorf("produce: %w", errRingFull)
	}
	return nil
}

// classify exercises the comparison shapes.
func classify(err error) int {
	if err == nil || errors.Is(err, errRingFull) {
		return 0
	}
	if err == errRingFull { // want "error values compared with =="
		return 1
	}
	if err != errRingFull { // want "error values compared with !="
		return 2
	}
	switch err {
	case nil:
		return 3
	case errRingFull: // want "switching on an error value"
		return 4
	}
	return 5
}

// classifyText exercises the message-matching shapes.
func classifyText(err error) bool {
	if err.Error() == "ring full" { // want "comparing err.Error() text"
		return true
	}
	if strings.Contains(err.Error(), "full") { // want "matching err.Error() text with strings.Contains"
		return true
	}
	return strings.HasPrefix(err.Error(), "ring") // want "strings.HasPrefix"
}

// classifyLegacy shows the sanctioned suppression for an upstream error that
// exposes no sentinel.
func classifyLegacy(err error) bool {
	//ringvet:ignore errsentinel -- upstream library exposes no sentinel, only message text
	return strings.Contains(err.Error(), "connection reset")
}
