package analysis

import (
	"go/ast"
	"slices"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text    string
		names   []string
		reason  string
		wantErr bool
	}{
		{
			text:   "//ringvet:ignore errsentinel -- upstream exposes no sentinel",
			names:  []string{"errsentinel"},
			reason: "upstream exposes no sentinel",
		},
		{
			text:   "//ringvet:ignore hotpathalloc,ctxflow -- shutdown path, never hot",
			names:  []string{"hotpathalloc", "ctxflow"},
			reason: "shutdown path, never hot",
		},
		{text: "//ringvet:ignore errsentinel", wantErr: true},       // no reason
		{text: "//ringvet:ignore errsentinel --", wantErr: true},    // empty reason
		{text: "//ringvet:ignore -- because", wantErr: true},        // no analyzer
		{text: "//ringvet:ignore nosuch -- because", wantErr: true}, // unknown analyzer
	}
	for _, c := range cases {
		names, reason, err := parseIgnore(c.text)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseIgnore(%q): expected error, got names=%v", c.text, names)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseIgnore(%q): %v", c.text, err)
			continue
		}
		if !slices.Equal(names, c.names) || reason != c.reason {
			t.Errorf("parseIgnore(%q) = %v, %q; want %v, %q", c.text, names, reason, c.names, c.reason)
		}
	}
}

func TestParseFuncMarks(t *testing.T) {
	doc := func(lines ...string) *ast.CommentGroup {
		cg := &ast.CommentGroup{}
		for _, l := range lines {
			cg.List = append(cg.List, &ast.Comment{Text: l})
		}
		return cg
	}

	m, err := parseFuncMarks(doc("// push is hot.", "//ring:hotpath guard=TestPushAllocs"))
	if err != nil {
		t.Fatalf("hotpath with guard: %v", err)
	}
	if !m.Hotpath || m.Deterministic || !slices.Equal(m.Guards, []string{"TestPushAllocs"}) {
		t.Fatalf("hotpath with guard: got %+v", m)
	}

	m, err = parseFuncMarks(doc("//ring:hotpath guard=TestA,TestB"))
	if err != nil {
		t.Fatalf("guard list: %v", err)
	}
	if !slices.Equal(m.Guards, []string{"TestA", "TestB"}) {
		t.Fatalf("guard list: got %v", m.Guards)
	}

	m, err = parseFuncMarks(doc("//ring:deterministic"))
	if err != nil || !m.Deterministic || m.Hotpath {
		t.Fatalf("deterministic: got %+v, %v", m, err)
	}

	if _, err := parseFuncMarks(doc("//ring:hotpath gaurd=TestTypo")); err == nil {
		t.Fatal("misspelled attribute should be an error, not a silent no-op")
	}
	if _, err := parseFuncMarks(doc("//ring:deterministic guard=TestX")); err == nil {
		t.Fatal("ring:deterministic takes no attributes")
	}
}
