package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the dataflow tier's alias machinery: a conservative,
// flow-ordered notion of *freshness*. An expression is fresh when every
// piece of mutable memory it can reach was allocated inside the current
// function (or inside a callee the summary pass proved allocates its
// result): make, new, composite literals with fresh elements, append onto
// nil or fresh backing, []byte(string) conversions (strings are immutable,
// the conversion copies), and calls to functions whose every ref-carrying
// result is fresh (Clone and friends — proved from their bodies, not their
// names).
//
// The analysis is deliberately modest: assignments are processed in source
// order with no branch sensitivity (an identifier is fresh if its last
// textual assignment was fresh), aliasing through pointers to locals is not
// tracked, and anything unrecognized is NOT fresh. That bias is the sound
// one for snapshotpure, which reports stores of non-fresh values: the
// analyzer may demand an unnecessary clone, it will not bless an aliased
// one.

// freshState is the per-function flow state: which locals currently hold
// fresh values, and which fields of a local struct value were overwritten
// with fresh values (the d.Payload = d.Payload.Clone() idiom).
type freshState struct {
	info *types.Info
	prog *Program

	vars   map[types.Object]bool
	fields map[fieldRef]bool
}

type fieldRef struct {
	base  types.Object
	field string
}

func newFreshState(info *types.Info, prog *Program) *freshState {
	return &freshState{
		info:   info,
		prog:   prog,
		vars:   make(map[types.Object]bool),
		fields: make(map[fieldRef]bool),
	}
}

// observeAssign folds one assignment (or short declaration) into the state.
func (fs *freshState) observeAssign(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			fs.setLhs(lhs, fs.freshExpr(as.Rhs[i]))
		}
		return
	}
	// Tuple assignment from a single call: every result is fresh when the
	// callee's summary says so (the error result of (T, error) shapes is an
	// interface nobody snapshots).
	fresh := false
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			fresh = fs.freshCall(call)
		}
	}
	for _, lhs := range as.Lhs {
		fs.setLhs(lhs, fresh)
	}
}

// setLhs records the freshness of one assignment target.
func (fs *freshState) setLhs(lhs ast.Expr, fresh bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := fs.objOf(l); obj != nil {
			fs.vars[obj] = fresh
			// A whole-value overwrite invalidates remembered field facts.
			for ref := range fs.fields {
				if ref.base == obj {
					delete(fs.fields, ref)
				}
			}
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if obj := fs.objOf(base); obj != nil {
				fs.fields[fieldRef{obj, l.Sel.Name}] = fresh
				// A stale store contaminates the whole base: tmp.f = e.buf
				// means tmp (and anything read through it) can now reach run
				// state, so the base's own freshness must not survive.
				if !fresh {
					fs.vars[obj] = false
				}
			}
		}
	}
}

func (fs *freshState) objOf(id *ast.Ident) types.Object {
	if o := fs.info.Uses[id]; o != nil {
		return o
	}
	return fs.info.Defs[id]
}

// freshExpr reports whether e is fresh in the current state. Expressions of
// types with no mutable references (ints, strings, ref-free structs) are
// vacuously fresh: there is nothing to alias.
func (fs *freshState) freshExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if t := fs.info.TypeOf(e); t != nil && !typeHasMutableRefs(t) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := fs.objOf(e)
		if obj == nil || !fs.vars[obj] {
			return fs.structFieldsFreshened(e)
		}
		return true
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if !fs.freshExpr(v) {
				return false
			}
		}
		return true
	case *ast.UnaryExpr:
		// &T{...} allocates; &x aliases x.
		if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			return fs.freshExpr(lit)
		}
		return false
	case *ast.CallExpr:
		return fs.freshCall(e)
	case *ast.SliceExpr:
		return fs.freshExpr(e.X)
	case *ast.StarExpr:
		return false
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if obj := fs.objOf(base); obj != nil {
				// An explicit field fact wins either way: a recorded stale
				// store (tmp.f = e.buf) must not be blessed by the base
				// having been fresh at some earlier point.
				if v, known := fs.fields[fieldRef{obj, e.Sel.Name}]; known {
					return v
				}
				return fs.vars[obj]
			}
		}
		return false
	}
	return false
}

// structFieldsFreshened reports whether every ref-carrying field of the
// struct-typed identifier was individually overwritten with a fresh value —
// the "freshen the payload, keep the rest" pattern checkpoint capture uses.
func (fs *freshState) structFieldsFreshened(id *ast.Ident) bool {
	obj := fs.objOf(id)
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	any := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !typeHasMutableRefs(f.Type()) {
			continue
		}
		if !fs.fields[fieldRef{obj, f.Name()}] {
			return false
		}
		any = true
	}
	return any
}

// freshCall reports whether a call expression yields fresh memory: builtins
// (make, new, append-onto-fresh), copying conversions, the clone helpers of
// the standard library, and program functions whose summary proves every
// ref-carrying result fresh.
func (fs *freshState) freshCall(call *ast.CallExpr) bool {
	// Conversions: []byte(s) and named-type conversions preserve or copy.
	if tv, ok := fs.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		arg := call.Args[0]
		if at := fs.info.TypeOf(arg); at != nil {
			if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return true // string -> []byte/[]rune copies out of immutable memory
			}
		}
		return fs.freshExpr(arg)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fs.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return true
			case "append":
				if !fs.freshExpr(call.Args[0]) {
					return false
				}
				rest := call.Args[1:]
				if call.Ellipsis.IsValid() && len(rest) > 0 {
					// append(fresh, xs...) copies the elements out of xs; if
					// the element type carries no references that copy is the
					// clone idiom (append([]int32(nil), src...)) and xs itself
					// need not be fresh.
					last := rest[len(rest)-1]
					rest = rest[:len(rest)-1]
					if t := fs.info.TypeOf(last); t != nil {
						if s, ok := t.Underlying().(*types.Slice); ok && !typeHasMutableRefs(s.Elem()) {
							last = nil
						}
					}
					if last != nil && !fs.freshExpr(last) {
						return false
					}
				}
				for _, a := range rest {
					if !fs.freshExpr(a) {
						return false
					}
				}
				return true
			case "min", "max", "len", "cap":
				return true
			}
			return false
		}
	}
	if pkg, name := calleePkgFunc(fs.info, call); name == "Clone" &&
		(pkg == "slices" || pkg == "maps" || pkg == "bytes" || pkg == "strings") {
		return true
	}
	if fn := calleeFunc(fs.info, call); fn != nil && fs.prog != nil {
		return fs.prog.returnsFresh(funcIDOf(fn))
	}
	return false
}

// returnsFresh reports whether every ref-carrying result of the identified
// program function is fresh memory. Summaries are computed once per
// Program by monotone fixpoint: start with nothing fresh, promote a
// function when every return statement proves out under the current
// summary set, repeat until stable. Functions outside the program (standard
// library) never qualify — the conservative direction.
func (prog *Program) returnsFresh(id FuncID) bool {
	if prog.fresh == nil {
		prog.fresh = make(map[FuncID]bool)
		for changed := true; changed; {
			changed = false
			for fid, pf := range prog.Funcs {
				if prog.fresh[fid] {
					continue
				}
				if prog.fnReturnsFresh(pf) {
					prog.fresh[fid] = true
					changed = true
				}
			}
		}
	}
	return prog.fresh[id]
}

// fnReturnsFresh evaluates one function body under the current summaries.
func (prog *Program) fnReturnsFresh(pf *ProgFunc) bool {
	results := pf.Decl.Type.Results
	if results == nil {
		return false
	}
	fs := newFreshState(pf.Target.Info, prog)
	ok := true
	returned := false
	// Named results participate as ordinary variables (bare returns).
	var named []types.Object
	for _, f := range results.List {
		for _, n := range f.Names {
			named = append(named, pf.Target.Info.Defs[n])
		}
	}
	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures have their own frame
		case *ast.AssignStmt:
			fs.observeAssign(n)
		case *ast.ReturnStmt:
			returned = true
			if len(n.Results) == 0 {
				for _, obj := range named {
					if obj != nil && typeHasMutableRefs(obj.Type()) && !fs.vars[obj] {
						ok = false
					}
				}
				return true
			}
			for _, r := range n.Results {
				if !fs.freshExpr(r) {
					ok = false
				}
			}
		}
		return true
	})
	return ok && returned
}

// typeHasMutableRefs reports whether values of t can reach mutable shared
// memory: slices, maps, pointers, channels, funcs and interfaces do;
// numbers, bools and strings do not; composites inherit from their
// elements.
func typeHasMutableRefs(t types.Type) bool {
	return typeRefs(t, make(map[types.Type]bool))
}

func typeRefs(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeRefs(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeRefs(u.Elem(), seen)
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return true // unknown shapes count as referencing — the conservative side
}
