package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

func TestRingDeterminism(t *testing.T) {
	vettest.Run(t, "ringdeterminism/a", analysis.RingDeterminism)
}
