package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

func TestCtxFlow(t *testing.T) {
	vettest.Run(t, "ctxflow/a", analysis.CtxFlow)
}
