// Package vettest runs ringvet analyzers over fixture packages and checks
// their diagnostics against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the standard
// library so the dependency-free module can test its own analyzers.
//
// Fixtures live under testdata/src/<dir>; every .go file in the directory is
// one package. A line expecting diagnostics carries a trailing comment:
//
//	for k := range m { // want "iterates over map"
//
// Each quoted string is a substring that one diagnostic reported on that
// line must contain; conversely every diagnostic must be matched by a want
// on its line, so fixture lines without a want assert silence.
package vettest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ringlang/internal/analysis"
)

// Run analyzes the fixture package at testdata/src/<dir> (relative to the
// test's working directory) with the given analyzers and reports any
// mismatch against the // want comments as test failures.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgDir := filepath.Join("testdata", "src", dir)
	target, err := loadFixture(pkgDir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgDir, err)
	}
	diags, err := analysis.RunAnalyzers(target, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgDir, err)
	}

	wants := collectWants(t, target)
	got := make(map[lineRef][]string)
	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		key := lineRef{file: pos.Filename, line: pos.Line}
		got[key] = append(got[key], d.Message)
	}

	// Every want must be satisfied by some diagnostic on its line.
	for key, subs := range wants {
		for _, sub := range subs {
			if !anyContains(got[key], sub) {
				t.Errorf("%s:%d: expected diagnostic containing %q, got %v", key.file, key.line, sub, got[key])
			}
		}
	}
	// Every diagnostic must be anticipated by some want on its line.
	for key, msgs := range got {
		for _, msg := range msgs {
			if !anyContained(wants[key], msg) {
				t.Errorf("%s:%d: unexpected diagnostic %q", key.file, key.line, msg)
			}
		}
	}
}

type lineRef struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans fixture comments for // want "..." expectations.
func collectWants(t *testing.T, target analysis.Target) map[lineRef][]string {
	t.Helper()
	wants := make(map[lineRef][]string)
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := target.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Fatalf(`%s: malformed want comment %q (want // want "substring"...)`, pos, c.Text)
				}
				key := lineRef{file: pos.Filename, line: pos.Line}
				for _, m := range matches {
					wants[key] = append(wants[key], strings.ReplaceAll(m[1], `\"`, `"`))
				}
			}
		}
	}
	return wants
}

func anyContains(msgs []string, sub string) bool {
	for _, m := range msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

func anyContained(subs []string, msg string) bool {
	for _, s := range subs {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// loadFixture parses and type-checks one fixture directory as a single
// package. Fixture imports are restricted to the standard library; their
// export data is resolved through one `go list -export` call.
func loadFixture(dir string) (analysis.Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return analysis.Target{}, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return analysis.Target{}, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return analysis.Target{}, fmt.Errorf("no fixture files in %s", dir)
	}

	imports := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports, err := stdlibExports(imports)
	if err != nil {
		return analysis.Target{}, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q: only standard-library imports are supported", path)
		}
		return os.Open(exp)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		return analysis.Target{}, fmt.Errorf("type-checking fixture: %w", err)
	}
	return analysis.Target{Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// stdlibExports locates build-cache export data for the fixture's imports
// (and their dependencies) via go list.
func stdlibExports(imports map[string]bool) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Export"}
	for imp := range imports {
		args = append(args, imp)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list for fixture imports: %v: %s", err, strings.TrimSpace(stderr.String()))
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
