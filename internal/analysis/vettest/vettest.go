// Package vettest runs ringvet analyzers over fixture packages and checks
// their diagnostics against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the standard
// library so the dependency-free module can test its own analyzers.
//
// A fixture rooted at testdata/src/<dir> is a tree of packages: the root
// directory and every subdirectory containing .go files are each one
// package, importable from sibling fixture packages as "fixture/<dir>" and
// "fixture/<dir>/<sub>". The whole tree is analyzed as one program
// (analysis.RunProgram), so interprocedural analyzers see cross-package
// edges exactly as cmd/ringvet does. A line expecting diagnostics carries a
// trailing comment:
//
//	for k := range m { // want "iterates over map"
//
// Each quoted string is a substring that one diagnostic reported on that
// line must contain; conversely every diagnostic must be matched by a want
// on its line, so fixture lines without a want assert silence.
package vettest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ringlang/internal/analysis"
)

// Run analyzes the fixture tree at testdata/src/<dir> (relative to the
// test's working directory) with the given analyzers and reports any
// mismatch against the // want comments as test failures.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	targets, err := loadFixtureTree(root, "fixture/"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", root, err)
	}
	diags, err := analysis.RunProgram(targets, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", root, err)
	}

	fset := targets[0].Fset // shared across every target of one load
	wants := make(map[lineRef][]string)
	for _, target := range targets {
		collectWants(t, fset, target, wants)
	}
	got := make(map[lineRef][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineRef{file: pos.Filename, line: pos.Line}
		got[key] = append(got[key], d.Message)
	}

	// Every want must be satisfied by some diagnostic on its line.
	for key, subs := range wants {
		for _, sub := range subs {
			if !anyContains(got[key], sub) {
				t.Errorf("%s:%d: expected diagnostic containing %q, got %v", key.file, key.line, sub, got[key])
			}
		}
	}
	// Every diagnostic must be anticipated by some want on its line.
	for key, msgs := range got {
		for _, msg := range msgs {
			if !anyContained(wants[key], msg) {
				t.Errorf("%s:%d: unexpected diagnostic %q", key.file, key.line, msg)
			}
		}
	}
}

type lineRef struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans one target's comments for // want "..." expectations.
func collectWants(t *testing.T, fset *token.FileSet, target analysis.Target, wants map[lineRef][]string) {
	t.Helper()
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Fatalf(`%s: malformed want comment %q (want // want "substring"...)`, pos, c.Text)
				}
				key := lineRef{file: pos.Filename, line: pos.Line}
				for _, m := range matches {
					wants[key] = append(wants[key], strings.ReplaceAll(m[1], `\"`, `"`))
				}
			}
		}
	}
}

func anyContains(msgs []string, sub string) bool {
	for _, m := range msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

func anyContained(subs []string, msg string) bool {
	for _, s := range subs {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// fixturePkg is one parsed-but-not-yet-checked fixture package.
type fixturePkg struct {
	importPath string
	files      []*ast.File
	fixture    []string        // imports of sibling fixture packages
	std        map[string]bool // standard-library imports
}

// loadFixtureTree parses and type-checks every package under root as one
// program. Fixture packages may import each other by their "fixture/..."
// paths (checked in dependency order) and the standard library (resolved
// through one `go list -export` call); anything else is an error.
func loadFixtureTree(root, rootImport string) ([]analysis.Target, error) {
	fset := token.NewFileSet()
	pkgs := make(map[string]*fixturePkg)
	stdImports := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		pkg, perr := parseFixtureDir(fset, path, fixtureImportPath(root, rootImport, path))
		if perr != nil {
			return perr
		}
		if pkg == nil {
			return nil // no .go files here
		}
		pkgs[pkg.importPath] = pkg
		for imp := range pkg.std {
			stdImports[imp] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no fixture files under %s", root)
	}

	order, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	exports, err := stdlibExports(stdImports)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q: only standard-library and fixture/... imports are supported", path)
		}
		return os.Open(exp)
	}

	checked := make(map[string]*types.Package)
	imp := &fixtureImporter{std: importer.ForCompiler(fset, "gc", lookup), fixture: checked}
	var targets []analysis.Target
	for _, pkg := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg.importPath, fset, pkg.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking fixture %s: %w", pkg.importPath, err)
		}
		checked[pkg.importPath] = tpkg
		targets = append(targets, analysis.Target{Fset: fset, Files: pkg.files, Pkg: tpkg, Info: info})
	}
	return targets, nil
}

// fixtureImporter resolves fixture/... imports to the already-checked
// sibling packages and everything else through export data.
type fixtureImporter struct {
	std     types.Importer
	fixture map[string]*types.Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.fixture[path]; ok {
		return p, nil
	}
	return im.std.Import(path)
}

// parseFixtureDir parses the .go files directly inside dir as one package;
// nil when the directory holds none.
func parseFixtureDir(fset *token.FileSet, dir, importPath string) (*fixturePkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{importPath: importPath, std: make(map[string]bool)}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.files = append(pkg.files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if strings.HasPrefix(path, "fixture/") {
				pkg.fixture = append(pkg.fixture, path)
			} else {
				pkg.std[path] = true
			}
		}
	}
	if len(pkg.files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// fixtureImportPath maps a fixture directory to its import path under the
// tree's root import.
func fixtureImportPath(root, rootImport, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return rootImport
	}
	return rootImport + "/" + filepath.ToSlash(rel)
}

// topoSort orders fixture packages so every package follows its fixture
// imports. Unknown imports are left to the type checker to reject; cycles
// are an error here.
func topoSort(pkgs map[string]*fixturePkg) ([]*fixturePkg, error) {
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int)
	var order []*fixturePkg
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("fixture import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range pkg.fixture {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// stdlibExports locates build-cache export data for the fixture's imports
// (and their dependencies) via go list.
func stdlibExports(imports map[string]bool) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Export"}
	for imp := range imports {
		args = append(args, imp)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list for fixture imports: %v: %s", err, strings.TrimSpace(stderr.String()))
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
