package analysis

import (
	"go/ast"
	"go/token"
)

// ErrSentinel enforces the typed-sentinel error contract the facade
// established in PR 4: failures are classified with errors.Is against
// ErrCanceled, ErrClosed, ErrUnknownAlgorithm and friends — never by
// pointer-comparing error values (breaks the moment a sentinel is wrapped
// with %w, which every layer here does) and never by matching err.Error()
// text (breaks when a message is reworded, and messages are not API).
//
// Flagged, everywhere (no directive needed):
//   - err == sentinel / err != sentinel (nil comparisons stay legal);
//   - switch err { case sentinel: } over an error value;
//   - err.Error() compared against or searched for a string
//     (==, !=, strings.Contains/HasPrefix/HasSuffix/EqualFold/Index).
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "require errors.Is against typed sentinels: no == on error values, " +
		"no string matching on err.Error()",
	Run: runErrSentinel,
}

// stringMatchFuncs are the strings-package predicates that, applied to
// err.Error(), amount to matching an error by its message.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

func runErrSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrComparison(pass, n)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrTextMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrComparison flags ==/!= between two error values.
func checkErrComparison(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isNilExpr(pass.TypesInfo, be.X) || isNilExpr(pass.TypesInfo, be.Y) {
		return
	}
	if errErrorCall(pass, be.X) != nil || errErrorCall(pass, be.Y) != nil {
		pass.Reportf(be.Pos(), "comparing err.Error() text; compare with errors.Is against a typed sentinel — messages are not API")
		return
	}
	if isErrorType(pass.TypesInfo.TypeOf(be.X)) && isErrorType(pass.TypesInfo.TypeOf(be.Y)) {
		pass.Reportf(be.Pos(), "error values compared with %s; use errors.Is, which sees through %%w wrapping", be.Op)
	}
}

// checkErrSwitch flags `switch err { case sentinel: }`.
func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.TypesInfo.TypeOf(sw.Tag)) {
		return
	}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isNilExpr(pass.TypesInfo, e) {
				pass.Reportf(e.Pos(), "switching on an error value compares with ==; use errors.Is, which sees through %%w wrapping")
			}
		}
	}
}

// checkErrTextMatch flags strings.Contains(err.Error(), ...) and friends.
func checkErrTextMatch(pass *Pass, call *ast.CallExpr) {
	pkg, name := calleePkgFunc(pass.TypesInfo, call)
	if pkg != "strings" || !stringMatchFuncs[name] {
		return
	}
	for _, arg := range call.Args {
		if errErrorCall(pass, arg) != nil {
			pass.Reportf(call.Pos(), "matching err.Error() text with strings.%s; classify with errors.Is against a typed sentinel — messages are not API", name)
			return
		}
	}
}

// errErrorCall returns the inner call if e is `<error value>.Error()`.
func errErrorCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return nil
	}
	if !isErrorType(pass.TypesInfo.TypeOf(sel.X)) {
		return nil
	}
	return call
}
