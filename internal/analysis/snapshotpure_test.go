package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

func TestSnapshotPure(t *testing.T) {
	vettest.Run(t, "snapshotpure/a", analysis.SnapshotPure)
}
