package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the dataflow tier's foundation: a conservative intra-module
// call graph built from the syntax and type information the loader already
// produces. The loader type-checks each package separately against export
// data, so a function seen from its defining package and the same function
// seen through an import are *different* go/types objects; the graph
// therefore keys every function by a stable textual FuncID
// ("pkgpath.(recv).Name") that both views render identically.
//
// Edges:
//   - static calls (functions, methods, generic instantiations) resolve
//     through the type checker;
//   - calls through an interface method resolve to every concrete method in
//     the program with the same name and parameter/result signature — an
//     over-approximation (two unrelated interfaces sharing a method shape
//     merge), which is the sound direction for reachability analyses;
//   - a function literal's body belongs to its enclosing declaration, which
//     is how the existing directive scoping already treats closures.
//
// Not modeled (documented soundness limits): calls through function-typed
// variables and fields (the token framework's Fold/Encode/Decode hooks),
// reflection, and linkname tricks. Analyzers built on the graph must state
// which side of that line they sit on.

// FuncID is the stable cross-package identity of a declared function:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for methods
// (pointerness dropped, type parameters stripped).
type FuncID string

// CallEdge is one resolved call site.
type CallEdge struct {
	Callee FuncID
	// Pos is the call position, used for per-edge //ringvet:ignore checks
	// and for explaining propagation chains in diagnostics.
	Pos token.Pos
	// Dynamic marks edges resolved through an interface method set rather
	// than a static callee.
	Dynamic bool
}

// ProgFunc is one declared function of the analyzed program.
type ProgFunc struct {
	ID     FuncID
	Decl   *ast.FuncDecl
	Target *Target
	Marks  Marks
	// TestFile reports whether the declaration lives in a _test.go file.
	TestFile bool
}

// Program is the whole-run view shared by the interprocedural analyzers:
// every target package, every declared function, and the call graph over
// them. Build it once per ringvet invocation with BuildProgram.
type Program struct {
	Targets []Target
	Funcs   map[FuncID]*ProgFunc
	Edges   map[FuncID][]CallEdge

	marks    map[*Target]*markIndex
	hotReach map[FuncID]*HotReach // cached HotReachable result
	fresh    map[FuncID]bool      // returns-fresh summaries; see aliasing.go
}

// BuildProgram indexes the targets' declarations and resolves the call
// graph. The per-target directive indexes are built here too, so RunProgram
// shares them with each Pass.
func BuildProgram(targets []Target) (*Program, error) {
	prog := &Program{
		Funcs: make(map[FuncID]*ProgFunc),
		Edges: make(map[FuncID][]CallEdge),
		marks: make(map[*Target]*markIndex),
	}
	prog.Targets = targets

	// Pass 1: declarations, marks, and the concrete-method index used to
	// resolve interface calls.
	type methodKey struct{ name, sig string }
	methods := make(map[methodKey][]FuncID)
	for i := range prog.Targets {
		t := &prog.Targets[i]
		idx, err := buildMarkIndex(t.Fset, t.Files)
		if err != nil {
			return nil, err
		}
		prog.marks[t] = idx
		for _, f := range t.Files {
			fname := t.Fset.Position(f.Pos()).Filename
			isTest := strings.HasSuffix(fname, "_test.go")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := t.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				id := funcIDOf(obj)
				var marks Marks
				if fd.Doc != nil {
					marks, _ = parseFuncMarks(fd.Doc) // malformed docs already failed buildMarkIndex
				}
				pf := &ProgFunc{ID: id, Decl: fd, Target: t, Marks: marks, TestFile: isTest}
				prog.Funcs[id] = pf
				if fd.Recv != nil {
					key := methodKey{fd.Name.Name, signatureString(obj.Type().(*types.Signature))}
					methods[key] = append(methods[key], id)
				}
			}
		}
	}

	// Pass 2: edges.
	for _, pf := range prog.Funcs {
		t := pf.Target
		ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(t.Info, call); fn != nil {
				// Static resolution — but a method reached through an
				// interface-typed receiver is still dynamic: resolve it
				// against the concrete method index below. That covers both
				// calls on interface values and methods promoted from a
				// struct-embedded interface field (s.M() where M comes from
				// an embedded interface): the selection's receiver is the
				// struct there, but the resolved *types.Func is still the
				// interface's method, whose ID names no declared body.
				if !isInterfaceMethodCall(t.Info, call) && !isInterfaceMethod(fn) {
					id := funcIDOf(fn)
					if _, inProg := prog.Funcs[id]; inProg {
						prog.Edges[pf.ID] = append(prog.Edges[pf.ID], CallEdge{Callee: id, Pos: call.Pos()})
					}
					return true
				}
				key := methodKey{fn.Name(), signatureString(fn.Type().(*types.Signature))}
				for _, impl := range methods[key] {
					prog.Edges[pf.ID] = append(prog.Edges[pf.ID], CallEdge{Callee: impl, Pos: call.Pos(), Dynamic: true})
				}
			}
			return true
		})
	}
	return prog, nil
}

// isInterfaceMethod reports whether fn is declared on an interface type —
// a method with no body of its own, dispatched dynamically no matter how
// the call site spells it.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type().Underlying())
}

// isInterfaceMethodCall reports whether call invokes a method through an
// interface value (the dynamic dispatch case the method index resolves).
func isInterfaceMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	return types.IsInterface(selection.Recv().Underlying())
}

// funcIDOf renders the stable identity of fn. Instantiated generics fold
// back to their origin declaration.
func funcIDOf(fn *types.Func) FuncID {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return FuncID(pkg + ".(" + recvTypeName(sig.Recv().Type()) + ")." + fn.Name())
	}
	return FuncID(pkg + "." + fn.Name())
}

// recvTypeName names a receiver type with pointerness and type parameters
// stripped.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin().Obj().Name()
	}
	return t.String()
}

// signatureString renders a signature with full package paths, without the
// receiver, and without parameter/result names (an interface may name its
// results while an implementation does not — the shapes still match), so
// the same method prints identically from its source package and through
// export data.
func signatureString(sig *types.Signature) string {
	plain := types.NewSignatureType(nil, nil, nil, unnamedTuple(sig.Params()), unnamedTuple(sig.Results()), sig.Variadic())
	return types.TypeString(plain, func(p *types.Package) string { return p.Path() })
}

// unnamedTuple copies a tuple with the variable names dropped.
func unnamedTuple(t *types.Tuple) *types.Tuple {
	vars := make([]*types.Var, t.Len())
	for i := 0; i < t.Len(); i++ {
		vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
	}
	return types.NewTuple(vars...)
}

// HotpathRoots returns the IDs of every //ring:hotpath function, sorted for
// deterministic traversal order.
func (prog *Program) HotpathRoots() []FuncID {
	var roots []FuncID
	for id, pf := range prog.Funcs {
		if pf.Marks.Hotpath {
			roots = append(roots, id)
		}
	}
	sortFuncIDs(roots)
	return roots
}

// HotReach is one function's membership in the hot-path reachable set, with
// the chain that put it there.
type HotReach struct {
	Fn *ProgFunc
	// Via is the shortest directive-to-here chain, root first, this
	// function last.
	Via []FuncID
}

// HotReachable computes the set of functions statically reachable from the
// //ring:hotpath roots, breadth-first so each chain recorded is shortest.
// An edge whose call line carries //ringvet:ignore allocflow is pruned: the
// suppression vocabulary that silences a finding also stops propagation.
func (prog *Program) HotReachable() map[FuncID]*HotReach {
	reach := make(map[FuncID]*HotReach)
	queue := make([]FuncID, 0, len(prog.Funcs))
	for _, root := range prog.HotpathRoots() {
		reach[root] = &HotReach{Fn: prog.Funcs[root], Via: []FuncID{root}}
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		cur := reach[id]
		marks := prog.marks[cur.Fn.Target]
		for _, e := range prog.Edges[id] {
			if _, seen := reach[e.Callee]; seen {
				continue
			}
			if marks.suppressed(cur.Fn.Target.Fset, e.Pos, allocFlowName) {
				continue
			}
			callee := prog.Funcs[e.Callee]
			if callee == nil || callee.Marks.Coldpath {
				continue
			}
			via := make([]FuncID, len(cur.Via)+1)
			copy(via, cur.Via)
			via[len(via)-1] = e.Callee
			reach[e.Callee] = &HotReach{Fn: callee, Via: via}
			queue = append(queue, e.Callee)
		}
	}
	return reach
}

func sortFuncIDs(ids []FuncID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
