package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

func TestHotpathAlloc(t *testing.T) {
	vettest.Run(t, "hotpathalloc/a", analysis.HotpathAlloc)
}
