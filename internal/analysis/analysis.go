// Package analysis is the repo-specific static-analysis suite behind
// cmd/ringvet. It enforces, at compile time, the two invariants every
// runtime guard in this tree defends dynamically: determinism (runs are
// bit-identical across engines and schedules) and an allocation-free hot
// loop. The suite is built directly on go/ast and go/types — the module is
// dependency-free by design, so it does not use golang.org/x/tools — but it
// mirrors the go/analysis API shape (Analyzer, Pass, Diagnostic) so the
// analyzers would port to a multichecker verbatim if the dependency ever
// became available.
//
// Analyzers are scoped by source directives (see directives.go):
//
//	//ring:deterministic           — ringdeterminism applies to this function
//	//ring:hotpath guard=TestName  — hotpathalloc applies; guard names the
//	                                 alloc-regression test covering it
//	//ring:ordered [-- reason]     — this range/go/select is deterministic
//	//ring:prealloc [-- reason]    — this append writes to presized backing
//	//ringvet:ignore name -- reason — suppress one analyzer on this line
//
// ctxflow and errsentinel need no directive: their rules are sound
// everywhere.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer so the suite reads familiarly and
// ports mechanically.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ringvet:ignore directives.
	Name string
	// Doc is the one-paragraph description printed by ringvet -help.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Target is one type-checked package to analyze: shared FileSet, parsed
// files (with comments), and full type information. The loader
// (internal/analysis/load) produces these for real packages; vettest builds
// them for fixtures.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's view of one package, plus the directive index
// shared by the whole run. Prog is the whole-program view (call graph,
// alias summaries) the interprocedural analyzers consume; it always covers
// at least the package of this Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	marks  *markIndex
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless a //ringvet:ignore directive
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.marks.suppressed(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// FuncMarks returns the directive marks of the innermost marked function
// declaration whose body encloses pos (function literals inherit the marks
// of the function they appear in). The zero Marks means "unannotated".
func (p *Pass) FuncMarks(pos token.Pos) Marks {
	return p.marks.enclosing(pos)
}

// Ordered reports whether pos's line (or the line above it) carries a
// //ring:ordered directive.
func (p *Pass) Ordered(pos token.Pos) bool {
	return p.marks.lineMarked(p.Fset, pos, markOrdered)
}

// Prealloc reports whether pos's line (or the line above it) carries a
// //ring:prealloc directive.
func (p *Pass) Prealloc(pos token.Pos) bool {
	return p.marks.lineMarked(p.Fset, pos, markPrealloc)
}

// RunAnalyzers runs every analyzer over one target and returns the combined
// diagnostics sorted by position. The program view the interprocedural
// analyzers need is built from the single target; use RunProgram when more
// than one package is in play so cross-package edges resolve.
func RunAnalyzers(t Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunProgram([]Target{t}, analyzers)
}

// RunProgram builds the whole-program view over the targets, runs every
// analyzer over every target, and returns the combined diagnostics sorted
// by position. Analyzer errors (not findings — failures to run) abort the
// whole call.
func RunProgram(targets []Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, err := BuildProgram(targets)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for i := range prog.Targets {
		t := &prog.Targets[i]
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      t.Fset,
				Files:     t.Files,
				Pkg:       t.Pkg,
				TypesInfo: t.Info,
				Prog:      prog,
				marks:     prog.marks[t],
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// walkStack is ast.Inspect with an ancestor stack: fn receives each node
// together with its ancestors, outermost first (the stack excludes n
// itself). Returning false skips n's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for calls through function-typed variables, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleePkgFunc returns the package path and name of a called package-level
// function, or "" when the call is not one (methods, builtins, locals).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method: the receiver, not the package, owns determinism
	}
	return fn.Pkg().Path(), fn.Name()
}

// isErrorType reports whether t implements the built-in error interface.
// Concrete error implementations count too: comparing them with == is
// exactly the anti-pattern errsentinel exists to catch.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// isNilExpr reports whether e is the untyped nil literal.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		_, isNil := info.Uses[id].(*types.Nil)
		return isNil
	}
	return false
}
