package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc flags allocation-prone constructs inside functions marked
// //ring:hotpath — the per-message code the 3-allocs-per-run budget of the
// large-ring engine depends on (fifoQueue push/pop, Stats.record, runLoop
// delivery, the memo hit path, the SPSC boundary handoff). It is the static
// face of the runtime guards named by each directive's guard= attribute
// (TestEngineLoopAllocRegressionGuard and friends): the guard measures the
// paths a test drives, the analyzer rejects the construct on every path.
//
// Flagged: fmt calls (except fmt.Errorf building a returned error — error
// construction ends the run), string concatenation, map/chan literals and
// makes, append into backing not visibly presized (first argument not a
// slice expression; assert managed growth with //ring:prealloc), implicit
// interface conversions at call sites, and capturing closures that escape
// or sit inside a loop.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocation-prone constructs (fmt, string concat, map literals, growing append, " +
		"interface conversions, escaping closures) in //ring:hotpath functions",
	Run: runHotpathAlloc,
}

// reportFn abstracts over who owns a finding: hotpathalloc reports through
// its own Pass, allocflow wraps the same checks to append the propagation
// chain and report under its own name (so //ringvet:ignore allocflow works).
type reportFn func(pos token.Pos, format string, args ...any)

func runHotpathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			if !pass.FuncMarks(n.Pos()).Hotpath {
				return true
			}
			checkAllocNode(pass, n, stack, pass.Reportf)
			return true
		})
	}
	return nil
}

// checkAllocNode applies the allocation rules to one node. It is the shared
// core of hotpathalloc (directive-scoped) and allocflow (call-graph-scoped).
func checkAllocNode(pass *Pass, n ast.Node, stack []ast.Node, rep reportFn) {
	switch n := n.(type) {
	case *ast.CallExpr:
		checkHotCall(pass, n, stack, rep)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringExpr(pass, n) && !isConstExpr(pass, n) {
			// a+b+c nests BinaryExprs sharing one position; report the chain
			// once, at its outermost node.
			if len(stack) > 0 {
				if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD && isStringExpr(pass, p) {
					return
				}
			}
			rep(n.Pos(), "string concatenation allocates on the hot path; use a preallocated buffer or the bits.Writer scratch")
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
			rep(n.Pos(), "string concatenation (+=) allocates on the hot path; use a preallocated buffer or the bits.Writer scratch")
		}
	case *ast.CompositeLit:
		if _, ok := pass.TypesInfo.TypeOf(n).Underlying().(*types.Map); ok {
			rep(n.Pos(), "map literal allocates on the hot path; hoist it to init-time state")
		}
	case *ast.FuncLit:
		checkHotClosure(pass, n, stack, rep)
	}
}

// checkHotCall handles the call-shaped rules: fmt, append, make(map/chan),
// explicit and implicit interface conversions.
func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node, rep reportFn) {
	// Explicit conversion T(x) to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 && isConcreteValue(pass, call.Args[0]) {
			rep(call.Pos(), "conversion to interface %s boxes its operand on the hot path", exprString(call.Fun))
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if _, presized := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !presized && !pass.Prealloc(call.Pos()) {
					rep(call.Pos(), "append may grow %s on the hot path; append into a re-sliced scratch buffer, or assert presized backing with //ring:prealloc", exprString(call.Args[0]))
				}
			case "make":
				switch pass.TypesInfo.TypeOf(call).Underlying().(type) {
				case *types.Map:
					rep(call.Pos(), "make(map) allocates on the hot path; hoist it to init-time state")
				case *types.Chan:
					rep(call.Pos(), "make(chan) allocates on the hot path; hoist it to init-time state")
				}
			}
			return
		}
	}

	pkg, name := calleePkgFunc(pass.TypesInfo, call)
	if pkg == "fmt" {
		if name == "Errorf" && inReturn(stack) {
			return // constructing the error that ends the run is fine
		}
		rep(call.Pos(), "fmt.%s allocates (formatting state and interface boxing) on the hot path", name)
		return
	}

	// Implicit interface conversions at the call boundary: a concrete
	// argument passed to an interface-typed parameter is boxed.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || len(call.Args) == 0 {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // the spread slice itself is not converted element-wise
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		if isConcreteValue(pass, arg) {
			rep(arg.Pos(), "passing concrete %s as interface parameter boxes it on the hot path", pass.TypesInfo.TypeOf(arg))
		}
	}
}

// checkHotClosure flags capturing closures that either escape (call
// argument, return value, go/defer, field/channel/global assignment) or are
// built inside a loop. A non-escaping closure bound to a local variable is
// stack-allocated and free — that is the shape memo.Key.hash and the loop's
// verdictSink rely on.
func checkHotClosure(pass *Pass, lit *ast.FuncLit, stack []ast.Node, rep reportFn) {
	if !capturesOuter(pass, lit) {
		return
	}
	if escapes, how := closureEscapes(pass, lit, stack); escapes {
		rep(lit.Pos(), "capturing closure %s on the hot path allocates its environment; pass state explicitly (see verdictSink)", how)
		return
	}
	for _, anc := range stack {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			rep(lit.Pos(), "capturing closure built inside a loop on the hot path allocates per iteration; hoist it out of the loop")
			return
		}
	}
}

// closureEscapes reports whether the closure's syntactic position lets it
// outlive the enclosing frame.
func closureEscapes(pass *Pass, lit *ast.FuncLit, stack []ast.Node) (bool, string) {
	if len(stack) == 0 {
		return false, ""
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if ast.Unparen(parent.Fun) == ast.Expr(lit) {
			return false, "" // immediately invoked
		}
		return true, "passed as a call argument"
	case *ast.ReturnStmt:
		return true, "returned"
	case *ast.GoStmt:
		return true, "launched as a goroutine"
	case *ast.DeferStmt:
		return true, "deferred"
	case *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return true, "stored"
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != ast.Expr(lit) || i >= len(parent.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(parent.Lhs[i]).(*ast.Ident); ok {
				if v, ok := objOf(pass, id).(*types.Var); ok && !v.IsField() && v.Parent() != pass.Pkg.Scope() {
					return false, "" // bound to a local: stays on the stack
				}
			}
			return true, "stored"
		}
	}
	return false, ""
}

// capturesOuter reports whether the literal references variables declared
// outside it (including the enclosing function's parameters and receiver).
func capturesOuter(pass *Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// inReturn reports whether the innermost statement on the stack is a return.
func inReturn(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// isStringExpr reports whether e's type is (an alias or named form of)
// string.
func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression folded to a constant (constant
// concatenation happens at compile time).
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isConcreteValue reports whether arg is a non-interface, non-nil value —
// the kind that gets boxed when handed to an interface parameter.
func isConcreteValue(pass *Pass, arg ast.Expr) bool {
	if isNilExpr(pass.TypesInfo, arg) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type.Underlying()) && !isTypeParam(tv.Type)
}

// isTypeParam reports whether t is a generic type parameter (its boxing
// behaviour depends on the instantiation, so we stay silent).
func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

// objOf resolves an identifier to its object (uses first, then defs).
func objOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
