package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces the facade's cancellation contract statically: context
// flows down from the caller, it is never minted mid-path. PR 4 plumbed
// ctx from Client.Recognize through exec.Pool into the event loop's
// delivery polling; a single context.Background() on that path silently
// disconnects everything below it from the caller's deadline — the
// disconnect-cancels-stream e2e test only notices when the server path
// regresses, this notices any path.
//
// Rules, sound everywhere (no directive needed):
//  1. a function that received a context.Context must not call
//     context.Background()/TODO(), except under an `if ctx == nil` default;
//  2. context.Context parameters come first (after the receiver);
//  3. an exported non-deprecated function outside package main and test
//     files must not feed context.Background()/TODO() straight into a
//     callee — that is an API that silently discards its caller's
//     cancellation. Deprecated v1 wrappers are exempt: freezing their
//     signature is their whole point.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "enforce context propagation: no context.Background() where a ctx was received, " +
		"ctx parameters first, exported APIs must not discard the caller's context",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		inTest := strings.HasSuffix(file, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(pass, fd)
			checkCtxParamFirst(pass, fd)
			if ctxParam != nil {
				checkNoFreshRoot(pass, fd, ctxParam)
			} else if !inTest && exportedAPI(pass, fd) {
				checkNoDiscardedCtx(pass, fd)
			}
		}
	}
	return nil
}

// contextParam returns the object of fd's context.Context parameter, if any.
func contextParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			return pass.TypesInfo.Defs[name]
		}
	}
	return nil
}

// checkCtxParamFirst flags context parameters that are not the first
// parameter.
func checkCtxParamFirst(pass *Pass, fd *ast.FuncDecl) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		isCtx := isContextType(pass.TypesInfo.TypeOf(field.Type))
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos > 0 {
			pass.Reportf(field.Pos(), "context.Context should be the first parameter of %s", fd.Name.Name)
		}
		pos += n
	}
}

// checkNoFreshRoot flags context.Background()/TODO() inside a function that
// already received a context, unless the call sits under an `if ctx == nil`
// default.
func checkNoFreshRoot(pass *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleePkgFunc(pass.TypesInfo, call)
		if pkg != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		if underNilGuard(pass, stack, ctxObj) {
			return true
		}
		pass.Reportf(call.Pos(), "%s received a context but calls context.%s; propagate the caller's context", fd.Name.Name, name)
		return true
	})
}

// underNilGuard reports whether the stack passes through an
// `if <ctx> == nil` (or `<ctx> == nil || ...`) condition — the sanctioned
// defaulting pattern for optional contexts.
func underNilGuard(pass *Pass, stack []ast.Node, ctxObj types.Object) bool {
	for _, anc := range stack {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.EQL {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if id, ok := ast.Unparen(side).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
					other := be.Y
					if side == be.Y {
						other = be.X
					}
					if isNilExpr(pass.TypesInfo, other) {
						guarded = true
					}
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// checkNoDiscardedCtx flags exported ctx-less APIs that pass a fresh root
// context straight into a callee.
func checkNoDiscardedCtx(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // goroutines may legitimately detach from the caller
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			pkg, name := calleePkgFunc(pass.TypesInfo, inner)
			if pkg == "context" && (name == "Background" || name == "TODO") {
				pass.Reportf(inner.Pos(), "exported %s discards the caller's context (context.%s fed straight to %s); accept a context.Context and pass it down", fd.Name.Name, name, exprString(call.Fun))
			}
		}
		return true
	})
}

// exportedAPI reports whether fd is part of the package's exported,
// non-deprecated API surface.
func exportedAPI(pass *Pass, fd *ast.FuncDecl) bool {
	if pass.Pkg.Name() == "main" || !fd.Name.IsExported() || fd.Name.Name == "init" {
		return false
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, "Deprecated:") {
				return false
			}
		}
	}
	return true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
