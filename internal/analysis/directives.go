package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Marks are the function-level directives of one declaration.
type Marks struct {
	// Hotpath means hotpathalloc checks the function (//ring:hotpath).
	Hotpath bool
	// Deterministic means ringdeterminism checks the function
	// (//ring:deterministic).
	Deterministic bool
	// Guards are the alloc-regression test names declared by the guard=
	// attribute of //ring:hotpath. The repo-level guard test
	// (TestHotpathGuardsAreLiveTests) asserts they exist and actually
	// measure allocations.
	Guards []string
	// Coldpath excludes the function from interprocedural hot-path
	// propagation (//ring:coldpath -- reason): the function is only ever
	// called off the steady-state path, so allocflow neither checks it nor
	// descends through it. The reason is mandatory.
	Coldpath bool
	// Producer / Consumer declare which side of an SPSC boundary the
	// function runs on (//ring:producer, //ring:consumer); shardsafe checks
	// //ring:owner field accesses against them.
	Producer bool
	Consumer bool
}

// line-scoped marker kinds.
const (
	markOrdered  = "ordered"
	markPrealloc = "prealloc"
)

// markedFunc is one annotated function declaration and its body span.
type markedFunc struct {
	pos, end token.Pos
	marks    Marks
}

// lineKey addresses one source line.
type lineKey struct {
	file string
	line int
}

// markIndex is the package-wide index of directives: annotated function
// spans, line markers (//ring:ordered, //ring:prealloc) and suppressions
// (//ringvet:ignore).
type markIndex struct {
	funcs    []markedFunc
	lines    map[lineKey]map[string]bool // marker kind set per line
	suppress map[lineKey]map[string]bool // analyzer set per line
}

// buildMarkIndex scans every comment in the files. Malformed directives are
// errors, not silent no-ops: a typo in an invariant annotation must not
// quietly disable the check.
func buildMarkIndex(fset *token.FileSet, files []*ast.File) (*markIndex, error) {
	idx := &markIndex{
		lines:    make(map[lineKey]map[string]bool),
		suppress: make(map[lineKey]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if err := idx.addComment(fset, c); err != nil {
					return nil, err
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil && fd.Body != nil {
				m, err := parseFuncMarks(fd.Doc)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", fset.Position(fd.Pos()), err)
				}
				if m.any() {
					idx.funcs = append(idx.funcs, markedFunc{pos: fd.Body.Pos(), end: fd.Body.End(), marks: m})
				}
			}
		}
	}
	return idx, nil
}

// addComment indexes one comment if it is a line-scoped directive.
func (idx *markIndex) addComment(fset *token.FileSet, c *ast.Comment) error {
	text := c.Text
	pos := fset.Position(c.Pos())
	key := lineKey{file: pos.Filename, line: pos.Line}
	switch {
	case strings.HasPrefix(text, "//ring:ordered"):
		addLineMark(idx.lines, key, markOrdered)
	case strings.HasPrefix(text, "//ring:prealloc"):
		addLineMark(idx.lines, key, markPrealloc)
	case strings.HasPrefix(text, "//ringvet:ignore"):
		names, reason, err := parseIgnore(text)
		if err != nil {
			return fmt.Errorf("%s: %w", pos, err)
		}
		_ = reason
		for _, n := range names {
			addLineMark(idx.suppress, key, n)
		}
	}
	return nil
}

func addLineMark(m map[lineKey]map[string]bool, key lineKey, kind string) {
	if m[key] == nil {
		m[key] = make(map[string]bool)
	}
	m[key][kind] = true
}

// parseIgnore parses "//ringvet:ignore name[,name...] -- reason". The reason
// is mandatory: a suppression without a stated justification is a finding in
// itself.
func parseIgnore(text string) (names []string, reason string, err error) {
	rest := strings.TrimPrefix(text, "//ringvet:ignore")
	list, reason, found := strings.Cut(rest, "--")
	reason = strings.TrimSpace(reason)
	if !found || reason == "" {
		return nil, "", fmt.Errorf("ringvet:ignore needs a reason: %q (want //ringvet:ignore <analyzer> -- <why>)", text)
	}
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !knownAnalyzer(n) {
			return nil, "", fmt.Errorf("ringvet:ignore names unknown analyzer %q", n)
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, "", fmt.Errorf("ringvet:ignore names no analyzer: %q", text)
	}
	return names, reason, nil
}

// parseFuncMarks extracts //ring:hotpath and //ring:deterministic from a
// declaration's doc comment.
func parseFuncMarks(doc *ast.CommentGroup) (Marks, error) {
	var m Marks
	for _, c := range doc.List {
		text := c.Text
		switch {
		case strings.HasPrefix(text, "//ring:hotpath"):
			m.Hotpath = true
			rest := strings.TrimSpace(strings.TrimPrefix(text, "//ring:hotpath"))
			for _, field := range strings.Fields(rest) {
				val, ok := strings.CutPrefix(field, "guard=")
				if !ok {
					return m, fmt.Errorf("ring:hotpath: unknown attribute %q (want guard=TestName)", field)
				}
				for _, g := range strings.Split(val, ",") {
					if g = strings.TrimSpace(g); g != "" {
						m.Guards = append(m.Guards, g)
					}
				}
			}
		case strings.HasPrefix(text, "//ring:deterministic"):
			if rest := strings.TrimSpace(strings.TrimPrefix(text, "//ring:deterministic")); rest != "" {
				return m, fmt.Errorf("ring:deterministic takes no attributes, got %q", rest)
			}
			m.Deterministic = true
		case strings.HasPrefix(text, "//ring:coldpath"):
			rest := strings.TrimSpace(strings.TrimPrefix(text, "//ring:coldpath"))
			if reason, ok := strings.CutPrefix(rest, "--"); !ok || strings.TrimSpace(reason) == "" {
				return m, fmt.Errorf("ring:coldpath needs a reason: %q (want //ring:coldpath -- <why this never runs per-message>)", text)
			}
			m.Coldpath = true
		case strings.HasPrefix(text, "//ring:producer"):
			if rest := strings.TrimSpace(strings.TrimPrefix(text, "//ring:producer")); rest != "" {
				return m, fmt.Errorf("ring:producer takes no attributes, got %q", rest)
			}
			m.Producer = true
		case strings.HasPrefix(text, "//ring:consumer"):
			if rest := strings.TrimSpace(strings.TrimPrefix(text, "//ring:consumer")); rest != "" {
				return m, fmt.Errorf("ring:consumer takes no attributes, got %q", rest)
			}
			m.Consumer = true
		}
	}
	return m, nil
}

// any reports whether any directive is set.
func (m Marks) any() bool {
	return m.Hotpath || m.Deterministic || m.Coldpath || m.Producer || m.Consumer
}

// enclosing returns the marks of the innermost annotated function body
// containing pos.
func (idx *markIndex) enclosing(pos token.Pos) Marks {
	var best *markedFunc
	for i := range idx.funcs {
		f := &idx.funcs[i]
		if pos < f.pos || pos >= f.end {
			continue
		}
		if best == nil || f.pos > best.pos {
			best = f
		}
	}
	if best == nil {
		return Marks{}
	}
	return best.marks
}

// lineMarked reports whether pos's line, or the line directly above it,
// carries the given marker kind — covering both trailing comments and
// comments on their own line before the statement.
func (idx *markIndex) lineMarked(fset *token.FileSet, pos token.Pos, kind string) bool {
	p := fset.Position(pos)
	return idx.lines[lineKey{p.Filename, p.Line}][kind] ||
		idx.lines[lineKey{p.Filename, p.Line - 1}][kind]
}

// suppressed reports whether a //ringvet:ignore for the analyzer covers
// pos's line or the line above it.
func (idx *markIndex) suppressed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	return idx.suppress[lineKey{p.Filename, p.Line}][analyzer] ||
		idx.suppress[lineKey{p.Filename, p.Line - 1}][analyzer]
}
