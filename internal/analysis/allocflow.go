package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllocFlow is the interprocedural face of hotpathalloc: every function
// statically reachable from a //ring:hotpath root — through the program
// call graph, including interface dispatch resolved against the module's
// method sets — is held to the same allocation rules as the roots
// themselves, without needing its own directive. PR 8 hand-hoisted a
// closure's captured letter check to a struct field because the profiler,
// not an analyzer, caught the per-run environment allocation in a hot
// callee; this analyzer makes that class of regression a compile-time
// finding.
//
// Scope and soundness:
//   - roots are the //ring:hotpath functions; functions they are proven to
//     reach are checked, functions already carrying the directive are left
//     to hotpathalloc (their findings and suppressions are unchanged);
//   - propagation stops at //ring:coldpath functions (setup, capture and
//     error paths that share code with hot loops but never run per-message)
//     and at call sites suppressed with //ringvet:ignore allocflow;
//   - calls through function-typed values (the token framework's
//     Fold/Encode/Decode hooks) are not resolved — those hook bodies are
//     covered by the //ring:hotpath marks on the recognizers instead;
//   - functions declared in _test.go files are never checked: the alloc
//     floor is a production invariant, and test doubles legitimately
//     allocate.
//
// Each finding names the shortest root→function chain so the reader can see
// why an unannotated function is considered hot.
// allocFlowName is referenced from HotReachable's suppression check; a
// named constant avoids an initialization cycle through the Analyzer value.
const allocFlowName = "allocflow"

var AllocFlow = &Analyzer{
	Name: allocFlowName,
	Doc: "propagate //ring:hotpath reachability through the call graph and apply the " +
		"hotpathalloc rules to every reached function; findings carry the root chain",
	Run: runAllocFlow,
}

func runAllocFlow(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	reach := pass.Prog.hotReachable()
	ids := make([]FuncID, 0, len(reach))
	for id := range reach {
		ids = append(ids, id)
	}
	sortFuncIDs(ids)
	for _, id := range ids {
		r := reach[id]
		fn := r.Fn
		// Only report into the package this Pass owns; the same Program is
		// shared across every target's Pass, so each function is checked
		// exactly once.
		if fn.Target.Pkg != pass.Pkg {
			continue
		}
		if fn.Marks.Hotpath || fn.TestFile {
			continue
		}
		chain := chainString(r.Via)
		rep := func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format+" [hot via %s]", append(args, chain)...)
		}
		walkStack(fn.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
			checkAllocNode(pass, n, stack, rep)
			return true
		})
	}
	return nil
}

// hotReachable caches the reachability computation on the Program: every
// target's allocflow Pass shares one traversal.
func (prog *Program) hotReachable() map[FuncID]*HotReach {
	if prog.hotReach == nil {
		prog.hotReach = prog.HotReachable()
	}
	return prog.hotReach
}

// chainString renders a Via chain compactly: package paths dropped, the
// module-unique function names kept.
func chainString(via []FuncID) string {
	parts := make([]string, len(via))
	for i, id := range via {
		s := string(id)
		if j := strings.LastIndexByte(s, '/'); j >= 0 {
			s = s[j+1:]
		}
		// s is now "pkg.(Recv).Name" or "pkg.Name"; keep it whole — the
		// package short name disambiguates cross-package chains.
		parts[i] = s
	}
	return strings.Join(parts, " → ")
}
