package analysis_test

import (
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/vettest"
)

// TestAllocFlow loads the whole allocflow fixture tree — the in-package
// propagation cases in a and the cross-package root-in-b, callee-in-lib
// chain — as one program, the same way cmd/ringvet sees the module.
func TestAllocFlow(t *testing.T) {
	vettest.Run(t, "allocflow", analysis.AllocFlow)
}
