package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/load"
)

// TestModuleIsRingvetClean runs the full analyzer suite over the whole
// module — the same gate CI applies via cmd/ringvet — so a finding
// introduced anywhere in the tree fails `go test ./...` even when nobody
// ran the command by hand.
func TestModuleIsRingvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	root := findModuleRoot(t)
	pkgs, err := load.Load(root, true, "./...")
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one variant per package: analyzing both plain "q" and a
	// bracketed rebuild "q [p.test]" would duplicate every finding in q and
	// break the baseline's multiset matching.
	seen := make(map[string]string)
	for _, pkg := range pkgs {
		stripped := pkg.ImportPath
		if i := strings.IndexByte(stripped, ' '); i >= 0 {
			stripped = stripped[:i]
		}
		if prev, dup := seen[stripped]; dup {
			t.Errorf("load analyzed two variants of %s: %q and %q", stripped, prev, pkg.ImportPath)
		}
		seen[stripped] = pkg.ImportPath
	}
	// One Program over every package: the interprocedural analyzers
	// (allocflow, snapshotpure) need the whole module in view — a hot root
	// in internal/ring reaches callees in internal/core and internal/bits,
	// and freshness summaries resolve cross-package (bits.String.Clone).
	targets := make([]analysis.Target, 0, len(pkgs))
	for _, pkg := range pkgs {
		targets = append(targets, analysis.Target{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		})
	}
	diags, err := analysis.RunProgram(targets, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", targets[0].Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// TestAllocFlowCoversSteadyStatePath pins the dataflow tier's acceptance
// bar: every function on the steady-state delivery path of a large-ring run
// (event loop → dispatch/routing → FIFO arena → token handlers → stats
// accounting → codec) must be reachable from the existing //ring:hotpath
// roots through the call graph alone — no per-function annotations.
func TestAllocFlowCoversSteadyStatePath(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	root := findModuleRoot(t)
	pkgs, err := load.Load(root, false, "./...")
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]analysis.Target, 0, len(pkgs))
	for _, pkg := range pkgs {
		targets = append(targets, analysis.Target{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		})
	}
	prog, err := analysis.BuildProgram(targets)
	if err != nil {
		t.Fatal(err)
	}
	reach := prog.HotReachable()
	for _, id := range []analysis.FuncID{
		"ringlang/internal/ring.runLoopFrom",
		"ringlang/internal/ring.routeSend",
		"ringlang/internal/ring.(fifoQueue).push",
		"ringlang/internal/ring.(fifoQueue).pop",
		"ringlang/internal/ring.(Stats).record",
		"ringlang/internal/ring.(roundRobinScheduler).Push",
		"ringlang/internal/ring.(roundRobinScheduler).Next",
		"ringlang/internal/ring.(adversarialScheduler).Push",
		"ringlang/internal/ring.(adversarialScheduler).Next",
		"ringlang/internal/core.(tokenPassNode).Receive",
		"ringlang/internal/core.(lineNode).Receive",
		"ringlang/internal/bits.(Writer).WriteUint",
		"ringlang/internal/bits.(Reader).ReadUint",
	} {
		if reach[id] == nil {
			t.Errorf("steady-state function %s is not reachable from any //ring:hotpath root", id)
		}
	}
}

// findModuleRoot walks up from the package directory to the go.mod root.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}
