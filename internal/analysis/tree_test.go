package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"ringlang/internal/analysis"
	"ringlang/internal/analysis/load"
)

// TestModuleIsRingvetClean runs the full analyzer suite over the whole
// module — the same gate CI applies via cmd/ringvet — so a finding
// introduced anywhere in the tree fails `go test ./...` even when nobody
// ran the command by hand.
func TestModuleIsRingvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	root := findModuleRoot(t)
	pkgs, err := load.Load(root, true, "./...")
	if err != nil {
		t.Fatal(err)
	}
	suite := analysis.All()
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(analysis.Target{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		}, suite)
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}

// findModuleRoot walks up from the package directory to the go.mod root.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}
