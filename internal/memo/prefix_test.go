package memo

import (
	"fmt"
	"sync"
	"testing"
)

// newTestStore builds a rune-keyed store whose values are their own sizes,
// which makes byte-budget arithmetic in the tests explicit.
func newTestStore(maxBytes int64) *PrefixStore[string, rune, int64] {
	return NewPrefixStore[string, rune, int64](maxBytes, func(v int64) int64 { return v })
}

func TestPrefixStoreDeepestPrefixWins(t *testing.T) {
	p := newTestStore(1 << 20)
	word := []rune("abcdefgh")
	p.Insert("ns", word, 2, 200)
	p.Insert("ns", word, 5, 500)
	p.Insert("ns", word, 8, 800)

	// A lookup bounded below the deepest entry returns the deepest within
	// bounds.
	if v, depth, ok := p.Lookup("ns", word, 6); !ok || depth != 5 || v != 500 {
		t.Fatalf("Lookup(maxLen=6) = (%d, %d, %v), want (500, 5, true)", v, depth, ok)
	}
	// The full word reaches the depth-8 entry: a full hit.
	if v, depth, ok := p.Lookup("ns", word, 8); !ok || depth != 8 || v != 800 {
		t.Fatalf("Lookup(maxLen=8) = (%d, %d, %v), want (800, 8, true)", v, depth, ok)
	}
	// A diverging word only shares the first three letters.
	if v, depth, ok := p.Lookup("ns", []rune("abcXXXXX"), 8); !ok || depth != 2 || v != 200 {
		t.Fatalf("diverging Lookup = (%d, %d, %v), want (200, 2, true)", v, depth, ok)
	}
	// A fully foreign word misses.
	if _, _, ok := p.Lookup("ns", []rune("zzzz"), 4); ok {
		t.Fatal("foreign word should miss")
	}
	st := p.Stats()
	if st.Hits != 1 || st.PartialHits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 2 partial, 1 miss", st)
	}
}

func TestPrefixStoreEdgeSplitting(t *testing.T) {
	p := newTestStore(1 << 20)
	// One compressed chain, then an insert that forces a split mid-edge.
	p.Insert("ns", []rune("abcdefgh"), 8, 1)
	p.Insert("ns", []rune("abcdXYZ"), 7, 2)
	p.Insert("ns", []rune("abcd"), 4, 3)

	for _, tc := range []struct {
		word  string
		depth int
		val   int64
	}{
		{"abcdefgh", 8, 1},
		{"abcdXYZ", 7, 2},
		{"abcdQQQ", 4, 3}, // diverges after the split point
	} {
		if v, depth, ok := p.Lookup("ns", []rune(tc.word), len(tc.word)); !ok || depth != tc.depth || v != tc.val {
			t.Errorf("Lookup(%q) = (%d, %d, %v), want (%d, %d, true)", tc.word, v, depth, ok, tc.val, tc.depth)
		}
	}
	if st := p.Stats(); st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}

func TestPrefixStoreNamespacesAreIsolated(t *testing.T) {
	p := newTestStore(1 << 20)
	word := []rune("shared")
	p.Insert("a", word, 6, 111)
	if _, _, ok := p.Lookup("b", word, 6); ok {
		t.Fatal("namespace b sees namespace a's entry")
	}
	if v, _, ok := p.Lookup("a", word, 6); !ok || v != 111 {
		t.Fatal("namespace a lost its own entry")
	}
}

func TestPrefixStoreReplaceExistingPrefix(t *testing.T) {
	p := newTestStore(1 << 20)
	word := []rune("abcd")
	p.Insert("ns", word, 4, 100)
	p.Insert("ns", word, 4, 900)
	if v, _, ok := p.Lookup("ns", word, 4); !ok || v != 900 {
		t.Fatalf("replacement not visible: got %d", v)
	}
	st := p.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d after replace, want 1", st.Entries)
	}
	// The budget accounts the new size, not the sum of both.
	wantBytes := int64(900) + 4*4 + prefixEntryOverhead
	if st.Bytes != wantBytes {
		t.Fatalf("bytes = %d after replace, want %d", st.Bytes, wantBytes)
	}
}

func TestPrefixStoreEvictsLRUOnBytesBudget(t *testing.T) {
	// Each entry costs 1000 (value) + 4*4 (edge) + overhead; a budget of
	// three such entries holds exactly three.
	per := int64(1000) + 16 + prefixEntryOverhead
	p := newTestStore(3 * per)
	words := make([][]rune, 4)
	for i := range words {
		words[i] = []rune(fmt.Sprintf("wrd%d", i))
		p.Insert("ns", words[i], 4, 1000)
	}
	st := p.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 entries and 1 eviction", st)
	}
	// words[0] was least recently used and must be gone.
	if _, _, ok := p.Lookup("ns", words[0], 4); ok {
		t.Fatal("oldest entry survived the budget")
	}
	// Touch words[1], insert a fresh word: words[2] is now the victim.
	if _, _, ok := p.Lookup("ns", words[1], 4); !ok {
		t.Fatal("words[1] missing")
	}
	p.Insert("ns", []rune("wrd4"), 4, 1000)
	if _, _, ok := p.Lookup("ns", words[1], 4); !ok {
		t.Fatal("recently used words[1] was evicted over stale words[2]")
	}
	if _, _, ok := p.Lookup("ns", words[2], 4); ok {
		t.Fatal("stale words[2] survived over recently used words[1]")
	}
}

func TestPrefixStoreZeroBudgetStoresNothing(t *testing.T) {
	p := newTestStore(0)
	p.Insert("ns", []rune("abcd"), 4, 10)
	st := p.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("zero-budget store retained %+v", st)
	}
}

func TestPrefixStoreInvalidDepthsIgnored(t *testing.T) {
	p := newTestStore(1 << 20)
	p.Insert("ns", []rune("ab"), 0, 1)
	p.Insert("ns", []rune("ab"), 3, 1)
	p.Insert("ns", []rune("ab"), -1, 1)
	if st := p.Stats(); st.Entries != 0 {
		t.Fatalf("invalid depths stored: %+v", p.Stats())
	}
}

// TestPrefixStoreLookupAllocRegressionGuard pins the hot path: a lookup —
// hit, partial hit or miss — performs zero allocations.
func TestPrefixStoreLookupAllocRegressionGuard(t *testing.T) {
	p := newTestStore(1 << 20)
	word := []rune("abcdefghijklmnop")
	p.Insert("ns", word, 8, 100)
	p.Insert("ns", word, 16, 200)
	diverging := []rune("abcdefghZZ") // shares the depth-8 entry, diverges before 16
	foreign := []rune("qqqq")
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := p.Lookup("ns", word, 16); !ok {
			t.Fatal("hit expected")
		}
		if _, _, ok := p.Lookup("ns", diverging, len(diverging)); !ok {
			t.Fatal("partial hit expected")
		}
		if _, _, ok := p.Lookup("ns", foreign, len(foreign)); ok {
			t.Fatal("miss expected")
		}
	})
	if allocs != 0 {
		t.Errorf("lookup path allocates %.0f/op, want 0", allocs)
	}
}

func TestPrefixStoreConcurrentAccess(t *testing.T) {
	p := newTestStore(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			word := []rune(fmt.Sprintf("worker%d-abcdefgh", g))
			for i := 0; i < 200; i++ {
				p.Insert("ns", word, len(word)-i%4, int64(100+i%7))
				p.Lookup("ns", word, len(word))
			}
		}(g)
	}
	wg.Wait()
	if st := p.Stats(); st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("corrupted accounting: %+v", st)
	}
}
