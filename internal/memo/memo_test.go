package memo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func wordKey(word string) Key {
	return Key{Algorithm: "three-counters", Schedule: "sequential", Word: word}
}

func TestGetPut(t *testing.T) {
	c := New[int](64, 0)
	k := wordKey("001122")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, 42)
	v, ok := c.Get(k)
	if !ok || v != 42 {
		t.Fatalf("Get = %d, %v; want 42, true", v, ok)
	}
	c.Put(k, 43) // replace
	if v, _ := c.Get(k); v != 43 {
		t.Fatalf("after replace Get = %d, want 43", v)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("Hits/Misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestSeedSeparatesEntries(t *testing.T) {
	c := New[string](64, 0)
	k7 := Key{Algorithm: "three-counters", Schedule: "random", Seed: 7, Word: "001122"}
	k9 := k7
	k9.Seed = 9
	c.Put(k7, "seed7")
	if _, ok := c.Get(k9); ok {
		t.Fatal("different seeds shared an entry")
	}
	c.Put(k9, "seed9")
	if v, _ := c.Get(k7); v != "seed7" {
		t.Errorf("seed 7 entry = %q", v)
	}
	if v, _ := c.Get(k9); v != "seed9" {
		t.Errorf("seed 9 entry = %q", v)
	}
}

// TestLRUEviction fills one logical shard beyond capacity and checks the
// oldest (least recently touched) entry is the one retired.
func TestLRUEviction(t *testing.T) {
	// One shard makes eviction order deterministic for the test.
	c := New[int](2, 1)
	a, b, d := wordKey("a"), wordKey("b"), wordKey("d")
	c.Put(a, 1)
	c.Put(b, 2)
	c.Get(a)    // a is now more recent than b
	c.Put(d, 3) // evicts b
	if _, ok := c.Get(b); ok {
		t.Error("b survived eviction but was least recently used")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("a was evicted but had been touched")
	}
	if _, ok := c.Get(d); !ok {
		t.Error("d missing right after Put")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("Evictions/Entries = %d/%d, want 1/2", st.Evictions, st.Entries)
	}
}

func TestNewRoundsShardsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		c := New[int](1024, tc.in)
		if got := len(c.shards); got != tc.want {
			t.Errorf("New(_, %d) built %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

// TestDoSingleflight is the serving tier's core guarantee: concurrent
// identical requests run the compute exactly once and everyone receives its
// value.
func TestDoSingleflight(t *testing.T) {
	c := New[int](64, 0)
	k := wordKey("001122")
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(k, func() (int, error) {
				computes.Add(1)
				<-gate // hold the compute open so every caller piles up
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	// Let one caller enter the compute, then release it. The others must
	// either be parked on the in-flight call or arrive later and hit.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key, want exactly 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (the single compute)", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("Hits = %d, want %d", st.Hits, callers-1)
	}
}

// TestPeekCountsHitsNotMisses pins the layered-lookup contract: Peek serves
// and counts hits like Get but leaves the miss accounting to the compute
// path behind it, so misses stay equal to computes.
func TestPeekCountsHitsNotMisses(t *testing.T) {
	c := New[int](64, 0)
	k := wordKey("001122")
	if _, ok := c.Peek(k); ok {
		t.Fatal("empty cache reported a Peek hit")
	}
	if st := c.Stats(); st.Misses != 0 {
		t.Errorf("Peek on absence recorded %d misses, want 0", st.Misses)
	}
	if _, _, err := c.Do(k, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Peek(k); !ok || v != 1 {
		t.Fatalf("Peek after Do = %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("Hits/Misses = %d/%d, want 1/1 (one compute, one Peek hit)", st.Hits, st.Misses)
	}
}

// TestDoPanicSafe pins the unwedging contract: a panicking compute releases
// its waiters with ErrComputePanicked, propagates the panic to its own
// caller, and leaves the key retryable.
func TestDoPanicSafe(t *testing.T) {
	c := New[int](64, 0)
	k := wordKey("kaboom")
	entered := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		// Started only once the main caller is registered as the computer,
		// so this either joins the in-flight panicking call (and gets
		// ErrComputePanicked) or arrives after the unwind and computes 3
		// itself — both legal; the test demands only that it never wedges.
		<-entered
		_, _, err := c.Do(k, func() (int, error) { return 3, nil })
		waited <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		c.Do(k, func() (int, error) {
			close(entered)
			time.Sleep(10 * time.Millisecond) // let the waiter latch on
			panic("engine exploded")
		})
	}()
	select {
	case err := <-waited:
		if err != nil && !errors.Is(err, ErrComputePanicked) {
			t.Errorf("waiter error = %v, want nil or ErrComputePanicked", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged on the panicked key")
	}
	// The key stays retryable and nothing from the panicked run was cached.
	v, _, err := c.Do(k, func() (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("retry after panic = %d, %v", v, err)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](64, 0)
	k := wordKey("boom")
	fail := errors.New("engine exploded")
	if _, cached, err := c.Do(k, func() (int, error) { return 0, fail }); !errors.Is(err, fail) || cached {
		t.Fatalf("failing Do = cached=%v err=%v", cached, err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("error result was cached")
	}
	// The next Do retries and can succeed.
	v, cached, err := c.Do(k, func() (int, error) { return 5, nil })
	if err != nil || cached || v != 5 {
		t.Fatalf("retry Do = %d cached=%v err=%v", v, cached, err)
	}
	if v, ok := c.Get(k); !ok || v != 5 {
		t.Fatalf("retry result not cached: %d %v", v, ok)
	}
}

// TestMemoHitAllocRegressionGuard pins the serving-tier hit path the way the
// engine-loop guards pin the run path: a cache hit performs zero allocations
// (and, by construction, zero engine work — Get never computes anything).
func TestMemoHitAllocRegressionGuard(t *testing.T) {
	c := New[*struct{ Bits int }](256, 0)
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = wordKey(fmt.Sprintf("word-%d", i))
		c.Put(keys[i], &struct{ Bits int }{Bits: i})
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := keys[i%len(keys)]
		if _, ok := c.Get(k); !ok {
			t.Fatal("hit path missed")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f times per Get, want 0", allocs)
	}
}

// TestConcurrentMixedTraffic hammers every entry point from many goroutines;
// its value is running under -race in CI.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := New[int](128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := wordKey(fmt.Sprintf("w%d", (g*7+i)%200))
				switch i % 3 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				default:
					if _, _, err := c.Do(k, func() (int, error) { return i, nil }); err != nil {
						t.Errorf("Do: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 128 {
		t.Errorf("cache grew past capacity: %d entries", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
}
