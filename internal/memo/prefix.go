package memo

import "sync"

// This file is the prefix tier of the memoization stack: where Cache stores
// one value per exact key, PrefixStore stores values keyed by *prefixes* of a
// symbol sequence and answers "what is the deepest stored prefix of this
// sequence?". The serving stack uses it to hold engine checkpoints — a
// lookup for a word finds the longest checkpointed prefix to resume from —
// but the store itself is generic: namespaces, symbols and values are type
// parameters, so it knows nothing about rings.
//
// Layout: one path-compressed trie (radix tree) per namespace, so a stored
// prefix of depth d costs O(d) symbol copies but O(1) nodes on a chain with
// no branch points — a million-letter prefix is one node, not a million.
// Entries across all namespaces share one LRU list accounted in bytes, so
// the budget is global and a hot namespace can evict a cold one.

// PrefixStats is a point-in-time snapshot of a PrefixStore's counters.
type PrefixStats struct {
	// Hits counts lookups whose deepest stored prefix reached the requested
	// maximum depth — the caller resumes with no cold suffix beyond what it
	// asked for.
	Hits uint64
	// PartialHits counts lookups that found a usable but shallower prefix.
	PartialHits uint64
	// Misses counts lookups that found no stored prefix at all.
	Misses uint64
	// Evictions counts entries dropped to bytes-budget pressure.
	Evictions uint64
	// Entries is the current number of stored prefixes.
	Entries int
	// Bytes is the current accounted size of the stored values.
	Bytes int64
}

// HitRatio is (Hits + PartialHits) / lookups, or zero before any lookup:
// the fraction of lookups that found something usable.
func (st PrefixStats) HitRatio() float64 {
	total := st.Hits + st.PartialHits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits+st.PartialHits) / float64(total)
}

// prefixEntry is one stored value on the LRU list.
type prefixEntry[NS comparable, S comparable, V any] struct {
	node       *prefixNode[NS, S, V]
	ns         NS
	depth      int
	val        V
	bytes      int64
	prev, next *prefixEntry[NS, S, V]
}

// prefixNode is one radix-tree node. edge is the compressed symbol run
// leading here from the parent (nil at a namespace root); children are keyed
// by the first symbol of their edge.
type prefixNode[NS comparable, S comparable, V any] struct {
	parent   *prefixNode[NS, S, V]
	edge     []S
	children map[S]*prefixNode[NS, S, V]
	entry    *prefixEntry[NS, S, V]
}

// prefixEntryOverhead approximates the fixed bookkeeping bytes per stored
// entry (entry struct, trie node, map slot) added on top of the caller's
// value size and the edge symbols.
const prefixEntryOverhead = 192

// PrefixStore is a bounded, concurrency-safe store of values keyed by
// (namespace, sequence prefix). Build one with NewPrefixStore; the zero
// value is not usable.
type PrefixStore[NS comparable, S comparable, V any] struct {
	mu       sync.Mutex
	maxBytes int64
	sizeOf   func(V) int64
	roots    map[NS]*prefixNode[NS, S, V]
	lru      prefixEntry[NS, S, V] // sentinel; next is most recent
	entries  int
	bytes    int64

	hits        uint64
	partialHits uint64
	misses      uint64
	evictions   uint64
}

// NewPrefixStore builds a store bounded to roughly maxBytes of accounted
// value bytes (plus fixed per-entry overhead). sizeOf reports the retained
// size of one value; nil counts every value as one byte, turning the budget
// into an entry count. A maxBytes of zero or less stores nothing usable —
// every insert is evicted immediately.
func NewPrefixStore[NS comparable, S comparable, V any](maxBytes int64, sizeOf func(V) int64) *PrefixStore[NS, S, V] {
	if sizeOf == nil {
		sizeOf = func(V) int64 { return 1 }
	}
	p := &PrefixStore[NS, S, V]{
		maxBytes: maxBytes,
		sizeOf:   sizeOf,
		roots:    make(map[NS]*prefixNode[NS, S, V]),
	}
	p.lru.prev = &p.lru
	p.lru.next = &p.lru
	return p
}

//ring:hotpath guard=TestPrefixStoreLookupAllocRegressionGuard
func (e *prefixEntry[NS, S, V]) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

//ring:hotpath guard=TestPrefixStoreLookupAllocRegressionGuard
func (p *PrefixStore[NS, S, V]) pushFront(e *prefixEntry[NS, S, V]) {
	e.prev = &p.lru
	e.next = p.lru.next
	e.prev.next = e
	e.next.prev = e
}

// Lookup walks seq up to maxLen symbols deep in ns's trie and returns the
// value of the deepest stored prefix, its depth, and whether anything was
// found. The found entry is marked most recently used. A hit allocates
// nothing.
//
//ring:hotpath guard=TestPrefixStoreLookupAllocRegressionGuard
func (p *PrefixStore[NS, S, V]) Lookup(ns NS, seq []S, maxLen int) (v V, depth int, ok bool) {
	if maxLen > len(seq) {
		maxLen = len(seq)
	}
	p.mu.Lock()
	var best *prefixEntry[NS, S, V]
	node := p.roots[ns]
	i := 0
walk:
	for node != nil && i < maxLen {
		child := node.children[seq[i]]
		if child == nil {
			break
		}
		// The whole compressed edge must match within the depth limit;
		// entries live at node boundaries, so a partial edge match holds no
		// deeper entry.
		if i+len(child.edge) > maxLen {
			break
		}
		for j, s := range child.edge {
			if seq[i+j] != s {
				break walk
			}
		}
		i += len(child.edge)
		node = child
		if child.entry != nil {
			best = child.entry
		}
	}
	if best == nil {
		p.misses++
		p.mu.Unlock()
		var zero V
		return zero, 0, false
	}
	if best.depth == maxLen {
		p.hits++
	} else {
		p.partialHits++
	}
	best.unlink()
	p.pushFront(best)
	v = best.val
	depth = best.depth
	p.mu.Unlock()
	return v, depth, true
}

// Insert stores v under the first depth symbols of seq in ns, replacing any
// existing value at that exact prefix, then evicts least-recently-used
// entries (across all namespaces) until the store fits its bytes budget.
// Depths outside [1, len(seq)] are ignored.
//
//ring:coldpath -- memoization insert runs on the cold capture path, at most once per distinct prefix
func (p *PrefixStore[NS, S, V]) Insert(ns NS, seq []S, depth int, v V) {
	if depth < 1 || depth > len(seq) {
		return
	}
	bytes := p.sizeOf(v) + int64(depth)*int64(sizeofSymbol[S]()) + prefixEntryOverhead
	p.mu.Lock()
	root := p.roots[ns]
	if root == nil {
		root = &prefixNode[NS, S, V]{children: make(map[S]*prefixNode[NS, S, V])}
		p.roots[ns] = root
	}
	node := p.descend(root, seq, depth)
	if e := node.entry; e != nil {
		p.bytes += bytes - e.bytes
		e.val = v
		e.bytes = bytes
		e.unlink()
		p.pushFront(e)
	} else {
		e := &prefixEntry[NS, S, V]{node: node, ns: ns, depth: depth, val: v, bytes: bytes}
		node.entry = e
		p.pushFront(e)
		p.entries++
		p.bytes += bytes
	}
	for p.bytes > p.maxBytes && p.lru.prev != &p.lru {
		p.evict(p.lru.prev)
	}
	p.mu.Unlock()
}

// descend walks (and builds, splitting compressed edges as needed) the trie
// path for seq[:depth] and returns its end node. Caller holds p.mu.
func (p *PrefixStore[NS, S, V]) descend(node *prefixNode[NS, S, V], seq []S, depth int) *prefixNode[NS, S, V] {
	i := 0
	for i < depth {
		child := node.children[seq[i]]
		if child == nil {
			// No edge starts with seq[i]: hang the whole remainder here as
			// one compressed leaf. The symbols are cloned so the store never
			// aliases the caller's sequence.
			leaf := &prefixNode[NS, S, V]{parent: node, edge: append([]S(nil), seq[i:depth]...)}
			if node.children == nil {
				node.children = make(map[S]*prefixNode[NS, S, V], 1)
			}
			node.children[seq[i]] = leaf
			return leaf
		}
		// Match the compressed edge against the remaining prefix.
		limit := len(child.edge)
		if rem := depth - i; rem < limit {
			limit = rem
		}
		m := 0
		for m < limit && child.edge[m] == seq[i+m] {
			m++
		}
		if m == len(child.edge) {
			node = child
			i += m
			continue
		}
		// The edge diverges (or overshoots the requested depth) after m
		// matched symbols: split it at m.
		mid := &prefixNode[NS, S, V]{
			parent:   node,
			edge:     child.edge[:m:m],
			children: map[S]*prefixNode[NS, S, V]{child.edge[m]: child},
		}
		child.edge = child.edge[m:]
		child.parent = mid
		node.children[seq[i]] = mid
		i += m
		if i == depth {
			return mid
		}
		leaf := &prefixNode[NS, S, V]{parent: mid, edge: append([]S(nil), seq[i:depth]...)}
		mid.children[seq[i]] = leaf
		return leaf
	}
	return node
}

// evict removes e and prunes its now-valueless trie path. Caller holds p.mu.
func (p *PrefixStore[NS, S, V]) evict(e *prefixEntry[NS, S, V]) {
	e.unlink()
	e.node.entry = nil
	p.entries--
	p.bytes -= e.bytes
	p.evictions++
	// Prune upward: a node with no entry and no children only existed to
	// reach e.
	for node := e.node; node.parent != nil && node.entry == nil && len(node.children) == 0; node = node.parent {
		delete(node.parent.children, node.edge[0])
	}
}

// Stats returns a snapshot of the store's counters.
func (p *PrefixStore[NS, S, V]) Stats() PrefixStats {
	p.mu.Lock()
	st := PrefixStats{
		Hits:        p.hits,
		PartialHits: p.partialHits,
		Misses:      p.misses,
		Evictions:   p.evictions,
		Entries:     p.entries,
		Bytes:       p.bytes,
	}
	p.mu.Unlock()
	return st
}

// sizeofSymbol approximates the in-memory size of one stored symbol for the
// bytes budget. Symbols are comparable scalars in practice (runes, bytes);
// anything larger is still dominated by the value sizes the budget tracks.
func sizeofSymbol[S comparable]() int {
	var s S
	switch any(s).(type) {
	case byte, int8, bool:
		return 1
	case int16, uint16:
		return 2
	case int64, uint64, int, uint, float64:
		return 8
	default:
		return 4
	}
}
