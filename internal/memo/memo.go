package memo

import (
	"errors"
	"sync"
)

// Key identifies one recognition result: the algorithm and language that ran,
// the delivery schedule, the seed (meaningful only for randomized schedules —
// callers should store zero for deterministic ones so equivalent runs share
// an entry), and the word labelling the ring.
type Key struct {
	Algorithm string
	Language  string
	Schedule  string
	Seed      int64
	Word      string
}

// hash is FNV-1a over every field, with a separator byte between strings so
// ("ab","c") and ("a","bc") do not collide. It allocates nothing.
//
//ring:deterministic
//ring:hotpath guard=TestMemoHitAllocRegressionGuard
func (k Key) hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	mix(k.Algorithm)
	mix(k.Language)
	mix(k.Schedule)
	seed := uint64(k.Seed)
	for i := 0; i < 8; i++ {
		h ^= seed & 0xff
		h *= prime
		seed >>= 8
	}
	mix(k.Word)
	return h
}

// entry is one cached value on a shard's intrusive LRU list.
type entry[V any] struct {
	key        Key
	val        V
	prev, next *entry[V]
}

// shard is one lock domain: a map for lookup, a circular LRU list threaded
// through the entries for eviction order (root.next is most recent), and the
// in-flight singleflight calls for Do.
type shard[V any] struct {
	mu       sync.Mutex
	entries  map[Key]*entry[V]
	root     entry[V] // sentinel of the circular LRU list
	capacity int
	calls    map[Key]*call[V]

	hits      uint64
	misses    uint64
	evictions uint64
}

// call is one in-flight Do computation that waiters latch onto.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a sharded, bounded memoization cache, safe for concurrent use.
// The zero value is not usable; build one with New.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64
}

// DefaultShards is the shard count New uses when given zero.
const DefaultShards = 16

// New builds a cache holding up to capacity entries (minimum one per shard)
// across the given number of shards, rounded up to a power of two; zero
// shards means DefaultShards. Capacity is enforced per shard — capacity/shards
// entries each, LRU-evicted independently — so a pathological key skew can
// retire a hot shard's entries while colder shards sit below their bound;
// with the default shard count and uniformly hashed words the difference is
// noise.
func New[V any](capacity, shards int) *Cache[V] {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := capacity / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[Key]*entry[V])
		s.calls = make(map[Key]*call[V])
		s.capacity = perShard
		s.root.prev = &s.root
		s.root.next = &s.root
	}
	return c
}

// shardFor picks the lock domain of a key.
//
//ring:hotpath guard=TestMemoHitAllocRegressionGuard
func (c *Cache[V]) shardFor(k Key) *shard[V] {
	return &c.shards[k.hash()&c.mask]
}

// unlink removes e from the LRU list.
//
//ring:hotpath guard=TestMemoHitAllocRegressionGuard
func (e *entry[V]) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// pushFront inserts e right after the sentinel (most recently used).
//
//ring:hotpath guard=TestMemoHitAllocRegressionGuard
func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = &s.root
	e.next = s.root.next
	e.prev.next = e
	e.next.prev = e
}

// Get returns the cached value for k, marking it most recently used. A hit
// performs zero allocations.
func (c *Cache[V]) Get(k Key) (V, bool) {
	return c.lookup(k, true)
}

// Peek is Get for layered lookups: a hit touches the LRU order and counts as
// a hit, but an absence records no miss — the caller is about to fall
// through to Do (or a Get-then-run path) which will record the authoritative
// miss, and counting both would break the misses == computes accounting.
func (c *Cache[V]) Peek(k Key) (V, bool) {
	return c.lookup(k, false)
}

// lookup is the shared read path of Get and Peek.
//
//ring:hotpath guard=TestMemoHitAllocRegressionGuard
func (c *Cache[V]) lookup(k Key, countMiss bool) (V, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		if countMiss {
			s.misses++
		}
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.hits++
	e.unlink()
	s.pushFront(e)
	v := e.val
	s.mu.Unlock()
	return v, true
}

// Put stores v under k, evicting the shard's least recently used entry when
// the shard is full. Storing an existing key replaces its value and marks it
// most recently used.
func (c *Cache[V]) Put(k Key, v V) {
	s := c.shardFor(k)
	s.mu.Lock()
	s.put(k, v)
	s.mu.Unlock()
}

// put is Put with s.mu held.
func (s *shard[V]) put(k Key, v V) {
	if e, ok := s.entries[k]; ok {
		e.val = v
		e.unlink()
		s.pushFront(e)
		return
	}
	if len(s.entries) >= s.capacity {
		oldest := s.root.prev
		oldest.unlink()
		delete(s.entries, oldest.key)
		s.evictions++
	}
	e := &entry[V]{key: k, val: v}
	s.entries[k] = e
	s.pushFront(e)
}

// ErrComputePanicked is the error waiters of a Do call receive when the
// computing caller's function panicked (the panic itself propagates on the
// computing goroutine). Nothing is cached, so the next Do retries.
var ErrComputePanicked = errors.New("memo: compute panicked")

// Do returns the cached value for k, or computes and caches it. Concurrent
// Do calls with the same key share one compute: exactly one caller runs it,
// the rest block until it finishes and receive the same value. cached
// reports whether this caller was served without running compute (a cache
// hit or a shared in-flight result). A compute error is handed to every
// sharing caller and nothing is cached, so the next Do retries. A panicking
// compute is unwound safely: the panic propagates to its caller, waiters
// receive ErrComputePanicked, and the key is never wedged.
func (c *Cache[V]) Do(k Key, compute func() (V, error)) (v V, cached bool, err error) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.hits++
		e.unlink()
		s.pushFront(e)
		v = e.val
		s.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := s.calls[k]; ok {
		// Someone is computing this key right now; share their result. This
		// counts as a hit: the caller is served without engine work.
		s.hits++
		s.mu.Unlock()
		<-cl.done
		return cl.val, true, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	s.calls[k] = cl
	s.misses++
	s.mu.Unlock()

	// The cleanup is deferred so a panicking compute still unregisters the
	// call and releases its waiters instead of wedging the key forever.
	completed := false
	defer func() {
		if !completed {
			cl.err = ErrComputePanicked
		}
		s.mu.Lock()
		delete(s.calls, k)
		if completed && cl.err == nil {
			s.put(k, cl.val)
		}
		s.mu.Unlock()
		close(cl.done)
	}()
	cl.val, cl.err = compute()
	completed = true
	return cl.val, false, cl.err
}

// Stats is a point-in-time aggregate across shards.
type Stats struct {
	// Hits counts Get/Do calls served without a compute — cached entries
	// plus Do calls that shared an in-flight computation.
	Hits uint64
	// Misses counts Get lookups that found nothing and Do calls that ran
	// their compute.
	Misses uint64
	// Evictions counts entries dropped to capacity pressure.
	Evictions uint64
	// Entries is the current number of live cached values.
	Entries int
}

// HitRatio is Hits / (Hits + Misses), or zero before any lookup.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats sums the per-shard counters. Shards are locked one at a time, so the
// aggregate is approximate under concurrent traffic (exact when quiescent).
func (c *Cache[V]) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}
