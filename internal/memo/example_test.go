package memo_test

import (
	"context"
	"fmt"
	"log"

	"ringlang"
	"ringlang/internal/memo"
)

// ExampleCache shows the serving tier's pattern: recognition reports keyed by
// (algorithm, language, schedule, seed, word), so a repeated word is a map
// lookup instead of an engine run.
func ExampleCache() {
	cache := memo.New[*ringlang.Report](1024, 0)
	client, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	key := memo.Key{Algorithm: "three-counters", Schedule: "sequential", Word: "001122"}
	if _, ok := cache.Get(key); !ok {
		report, err := client.Recognize(context.Background(), ringlang.WordFromString(key.Word))
		if err != nil {
			log.Fatal(err)
		}
		cache.Put(key, report)
	}
	report, ok := cache.Get(key) // this time: no engine run
	fmt.Printf("hit=%v verdict=%s bits=%d\n", ok, report.Verdict, report.Bits)
	st := cache.Stats()
	fmt.Printf("hits=%d misses=%d entries=%d\n", st.Hits, st.Misses, st.Entries)
	// Output:
	// hit=true verdict=accept bits=72
	// hits=1 misses=1 entries=1
}

// ExampleCache_Do shows the singleflight form ringserve uses: Do computes on
// a miss, returns the cached value on a hit, and collapses concurrent
// identical requests into one engine run.
func ExampleCache_Do() {
	cache := memo.New[*ringlang.Report](1024, 0)
	client, err := ringlang.NewClient("majority", "")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	recognize := func(word string) (*ringlang.Report, bool, error) {
		key := memo.Key{Algorithm: "majority", Schedule: "sequential", Word: word}
		return cache.Do(key, func() (*ringlang.Report, error) {
			return client.Recognize(context.Background(), ringlang.WordFromString(word))
		})
	}
	for i := 0; i < 3; i++ {
		report, cached, err := recognize("110101")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: cached=%v verdict=%s\n", i, cached, report.Verdict)
	}
	// Output:
	// run 0: cached=false verdict=accept
	// run 1: cached=true verdict=accept
	// run 2: cached=true verdict=accept
}
