// Package memo is the memoization tier of the serving layer: a sharded,
// bounded, concurrency-safe cache over recognition results.
//
// Every recognition in this repository is a pure function of its Key —
// (algorithm, language, schedule, seed, word) — because the engines are
// deterministic given a schedule and seed, and the schedule-axis property
// tests pin every algorithm's bit totals to be schedule-independent anyway.
// That makes results ideal memoization targets: a repeated word never needs
// to re-run an engine, it needs a map lookup. Deterministic schedules
// (sequential, round-robin, adversarial, concurrent) are cacheable under a
// zero seed; random-order runs are keyed by their seed, so two seeds never
// share an entry.
//
// The entry point is Cache, generic over the stored value (the server stores
// *ringlang.Report snapshots, which are independent of pooled run state and
// safe to share between requests):
//
//   - New(capacity, shards) builds a cache of power-of-two shards, each a
//     mutex-guarded map plus an intrusive LRU list. Lock contention splits
//     across shards by key hash; eviction is per shard, oldest first.
//   - Get/Put are the plain lookup surface. A Get hit performs zero
//     allocations and zero engine work — the property the serving tier's
//     hit-path guard (TestMemoHitAllocRegressionGuard) pins in CI. Peek is
//     Get for layered lookups: absences record no miss, so a fall-through
//     to Do keeps misses == computes.
//   - Do is Get plus singleflight: concurrent callers with the same Key
//     share one compute — the first caller runs it, the rest block and
//     receive the same value, so a thundering herd of identical requests
//     runs the engine exactly once. Errors are returned to every waiter but
//     never cached.
//   - Stats reports hits, misses, evictions and the live entry count;
//     ringserve exposes it on /healthz.
package memo
