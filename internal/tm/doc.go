// Package tm implements a one-tape Turing machine simulator and the
// transformation discussed in Section 8 of the paper: a TM with time
// complexity t(n) can be turned into a ring algorithm whose bit complexity is
// at most t(n)·⌈log |Q|⌉ — each processor holds one tape cell, and the TM
// head travels around the ring as a message carrying only the machine state.
//
// The ring's circular tape is delimited by a single boundary cell '#' that
// the leader simulates in addition to its own input cell, which turns the
// ring into the linear tape  # σ₁ σ₂ … σ_n  the example machines expect.
package tm
