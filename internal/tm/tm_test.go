package tm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

const testStepLimit = 1 << 20

func TestZeroesOnesMachineDirect(t *testing.T) {
	m := NewZeroesOnesMachine()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := map[string]bool{
		"":           true,
		"01":         true,
		"0011":       true,
		"000111":     true,
		"0":          false,
		"1":          false,
		"10":         false,
		"001":        false,
		"011":        false,
		"0101":       false,
		"00011":      false,
		"000011111":  false,
		"0000011111": true,
	}
	for input, want := range cases {
		res, err := m.Run([]rune(input), testStepLimit)
		if err != nil {
			t.Fatalf("Run(%q): %v", input, err)
		}
		if res.Accepted != want {
			t.Errorf("zeroes-ones(%q) = %v, want %v", input, res.Accepted, want)
		}
	}
}

func TestPalindromeMachineDirect(t *testing.T) {
	m := NewPalindromeMachine()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := map[string]bool{
		"":        true,
		"a":       true,
		"b":       true,
		"aa":      true,
		"ab":      false,
		"aba":     true,
		"abb":     false,
		"abba":    true,
		"abab":    false,
		"aabbaa":  true,
		"aabbab":  false,
		"abaaba":  true,
		"bababab": true,
	}
	for input, want := range cases {
		res, err := m.Run([]rune(input), testStepLimit)
		if err != nil {
			t.Fatalf("Run(%q): %v", input, err)
		}
		if res.Accepted != want {
			t.Errorf("palindrome(%q) = %v, want %v", input, res.Accepted, want)
		}
	}
}

func TestMachineQuadraticSteps(t *testing.T) {
	m := NewZeroesOnesMachine()
	l := lang.NewAnBn()
	rng := rand.New(rand.NewSource(1))
	small, _ := l.GenerateMember(40, rng)
	big, _ := l.GenerateMember(160, rng)
	rs, err := m.Run([]rune(string(small)), testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := m.Run([]rune(string(big)), testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rb.Steps) / float64(rs.Steps)
	if ratio < 10 || ratio > 22 {
		t.Errorf("step ratio for 4x input = %.1f, expected ≈16 (quadratic machine)", ratio)
	}
}

func TestMachineValidation(t *testing.T) {
	m := NewZeroesOnesMachine()
	m.Accept = m.Reject
	if err := m.Validate(); err == nil {
		t.Error("expected error when accept == reject")
	}
	m = NewZeroesOnesMachine()
	m.TapeAlphabet = []rune{'0', '1', 'X', 'Y'} // boundary missing
	if err := m.Validate(); err == nil {
		t.Error("expected error for missing boundary symbol")
	}
	m = NewZeroesOnesMachine()
	m.Rules[RuleKey{State: m.Accept, Symbol: '0'}] = Rule{Next: m.Accept, Write: '0', Move: MoveStay}
	if err := m.Validate(); err == nil {
		t.Error("expected error for rules out of a halting state")
	}
}

func TestMachineMissingRuleAndStepLimit(t *testing.T) {
	m := NewZeroesOnesMachine()
	delete(m.Rules, RuleKey{State: zoSeek, Symbol: '1'})
	if _, err := m.Run([]rune("01"), testStepLimit); !errors.Is(err, ErrMissingRule) {
		t.Errorf("err = %v, want ErrMissingRule", err)
	}
	m2 := NewZeroesOnesMachine()
	if _, err := m2.Run([]rune("000111"), 3); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func newRingRecognizers(t *testing.T) (*RingRecognizer, *RingRecognizer) {
	t.Helper()
	zo, err := NewRingRecognizer(NewZeroesOnesMachine(), lang.NewAnBn())
	if err != nil {
		t.Fatal(err)
	}
	pal, err := NewRingRecognizer(NewPalindromeMachine(), lang.NewPalindrome())
	if err != nil {
		t.Fatal(err)
	}
	return zo, pal
}

func TestRingRecognizerMatchesLanguage(t *testing.T) {
	zo, pal := newRingRecognizers(t)
	rng := rand.New(rand.NewSource(2))
	for _, rec := range []*RingRecognizer{zo, pal} {
		for _, n := range []int{1, 2, 3, 4, 8, 16, 31, 40} {
			if w, ok := rec.Language().GenerateMember(n, rng); ok {
				if _, err := core.Check(rec, w, core.RunOptions{}); err != nil {
					t.Errorf("%s: %v", rec.Name(), err)
				}
			}
			if w, ok := rec.Language().GenerateNonMember(n, rng); ok {
				if _, err := core.Check(rec, w, core.RunOptions{}); err != nil {
					t.Errorf("%s: %v", rec.Name(), err)
				}
			}
		}
	}
}

func TestRingRecognizerMatchesDirectSimulation(t *testing.T) {
	zo, pal := newRingRecognizers(t)
	machines := map[*RingRecognizer]*Machine{zo: NewZeroesOnesMachine(), pal: NewPalindromeMachine()}
	rng := rand.New(rand.NewSource(3))
	for rec, m := range machines {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(24)
			w := lang.RandomWord(rec.Language().Alphabet(), n, rng)
			direct, err := m.Run([]rune(string(w)), testStepLimit)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(rec, w, core.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := ring.VerdictReject
			if direct.Accepted {
				want = ring.VerdictAccept
			}
			if res.Verdict != want {
				t.Errorf("%s on %q: ring says %v, direct simulation says %v", rec.Name(), w.String(), res.Verdict, want)
			}
		}
	}
}

func TestRingRecognizerBitBound(t *testing.T) {
	// Section 8: BIT ≤ t(n)·⌈log|Q|⌉ (+ the one-bit frame tag per message and
	// O(n) for the verdict announcement).
	zo, _ := newRingRecognizers(t)
	m := NewZeroesOnesMachine()
	l := lang.NewAnBn()
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 32, 64} {
		w, _ := l.GenerateMember(n, rng)
		direct, err := m.Run([]rune(string(w)), testStepLimit)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(zo, w, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bound := direct.Steps*(zo.StateBits()+1) + 2*n
		if res.Stats.Bits > bound {
			t.Errorf("n=%d: ring used %d bits, above the t(n)(log|Q|+1)+2n bound %d", n, res.Stats.Bits, bound)
		}
	}
}

func TestNewRingRecognizerValidation(t *testing.T) {
	if _, err := NewRingRecognizer(NewZeroesOnesMachine(), lang.NewPalindrome()); err == nil {
		t.Error("expected error for alphabet mismatch")
	}
	broken := NewZeroesOnesMachine()
	broken.Accept = broken.Reject
	if _, err := NewRingRecognizer(broken, lang.NewAnBn()); err == nil {
		t.Error("expected error for invalid machine")
	}
}

func TestMoveString(t *testing.T) {
	if MoveLeft.String() != "L" || MoveRight.String() != "R" || MoveStay.String() != "S" || Move(9).String() != "?" {
		t.Error("Move.String misbehaves")
	}
}

func TestQuickPalindromeRingAgainstPredicate(t *testing.T) {
	_, pal := newRingRecognizers(t)
	f := func(pattern []bool) bool {
		if len(pattern) == 0 || len(pattern) > 20 {
			return true
		}
		w := make(lang.Word, len(pattern))
		for i, b := range pattern {
			if b {
				w[i] = 'a'
			} else {
				w[i] = 'b'
			}
		}
		res, err := core.Run(pal, w, core.RunOptions{})
		if err != nil {
			return false
		}
		want := ring.VerdictReject
		if lang.NewPalindrome().Contains(w) {
			want = ring.VerdictAccept
		}
		return res.Verdict == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
