package tm

// Example machines used by the Section 8 transformation experiments. Both
// work on the circular tape  # input  produced by Machine.Run and by the ring
// transformation, treating the single '#' cell as both the left and the right
// delimiter of the input.

// States of the 0ᵏ1ᵏ machine.
const (
	zoFind State = iota // q0: find the leftmost unmarked 0
	zoSeek              // q1: scan right for a matching 1
	zoBack              // q2: scan left back to the last X
	zoTail              // q3: verify only Ys remain
	zoAccept
	zoReject
	zoNumStates
)

// NewZeroesOnesMachine returns a one-tape TM recognizing {0ᵏ1ᵏ : k ≥ 0} in
// Θ(n²) steps by the classic crossing-off procedure (0 → X, 1 → Y).
func NewZeroesOnesMachine() *Machine {
	b := newRuleBuilder()
	// q0: find the leftmost unmarked 0.
	b.add(zoFind, '0', zoSeek, 'X', MoveRight)
	b.add(zoFind, 'Y', zoTail, 'Y', MoveRight)
	b.add(zoFind, '1', zoReject, '1', MoveStay)
	b.add(zoFind, Boundary, zoAccept, Boundary, MoveStay)
	// q1: scan right for the first 1.
	b.add(zoSeek, '0', zoSeek, '0', MoveRight)
	b.add(zoSeek, 'Y', zoSeek, 'Y', MoveRight)
	b.add(zoSeek, '1', zoBack, 'Y', MoveLeft)
	b.add(zoSeek, Boundary, zoReject, Boundary, MoveStay)
	// q2: scan left back to the X.
	b.add(zoBack, '0', zoBack, '0', MoveLeft)
	b.add(zoBack, 'Y', zoBack, 'Y', MoveLeft)
	b.add(zoBack, 'X', zoFind, 'X', MoveRight)
	// q3: only Ys may remain before the boundary.
	b.add(zoTail, 'Y', zoTail, 'Y', MoveRight)
	b.add(zoTail, '1', zoReject, '1', MoveStay)
	b.add(zoTail, '0', zoReject, '0', MoveStay)
	b.add(zoTail, Boundary, zoAccept, Boundary, MoveStay)

	return &Machine{
		Name:          "zeroes-ones",
		NumStates:     int(zoNumStates),
		Start:         zoFind,
		Accept:        zoAccept,
		Reject:        zoReject,
		InputAlphabet: []rune{'0', '1'},
		TapeAlphabet:  []rune{'0', '1', 'X', 'Y', Boundary},
		Rules:         b.rules,
	}
}

// States of the palindrome machine.
const (
	palRead   State = iota // q0: read and erase the leftmost symbol
	palSeekA               // scan right after reading an 'a'
	palCmpA                // compare the rightmost symbol with 'a'
	palSeekB               // scan right after reading a 'b'
	palCmpB                // compare the rightmost symbol with 'b'
	palReturn              // scan left back to the start of the remainder
	palAccept
	palReject
	palNumStates
)

// NewPalindromeMachine returns a one-tape TM recognizing palindromes over
// {a,b} in Θ(n²) steps by repeatedly comparing and erasing the two ends.
func NewPalindromeMachine() *Machine {
	b := newRuleBuilder()
	// q0: read and erase the leftmost remaining symbol.
	b.add(palRead, 'a', palSeekA, '_', MoveRight)
	b.add(palRead, 'b', palSeekB, '_', MoveRight)
	b.add(palRead, '_', palAccept, '_', MoveStay)
	b.add(palRead, Boundary, palAccept, Boundary, MoveStay)
	// Scan right to the end of the remainder.
	for _, sym := range []rune{'a', 'b'} {
		b.add(palSeekA, sym, palSeekA, sym, MoveRight)
		b.add(palSeekB, sym, palSeekB, sym, MoveRight)
	}
	b.add(palSeekA, '_', palCmpA, '_', MoveLeft)
	b.add(palSeekA, Boundary, palCmpA, Boundary, MoveLeft)
	b.add(palSeekB, '_', palCmpB, '_', MoveLeft)
	b.add(palSeekB, Boundary, palCmpB, Boundary, MoveLeft)
	// Compare the rightmost remaining symbol.
	b.add(palCmpA, 'a', palReturn, '_', MoveLeft)
	b.add(palCmpA, 'b', palReject, 'b', MoveStay)
	b.add(palCmpA, '_', palAccept, '_', MoveStay)
	b.add(palCmpB, 'b', palReturn, '_', MoveLeft)
	b.add(palCmpB, 'a', palReject, 'a', MoveStay)
	b.add(palCmpB, '_', palAccept, '_', MoveStay)
	// Return to the left end of the remainder.
	b.add(palReturn, 'a', palReturn, 'a', MoveLeft)
	b.add(palReturn, 'b', palReturn, 'b', MoveLeft)
	b.add(palReturn, '_', palRead, '_', MoveRight)

	return &Machine{
		Name:          "palindrome",
		NumStates:     int(palNumStates),
		Start:         palRead,
		Accept:        palAccept,
		Reject:        palReject,
		InputAlphabet: []rune{'a', 'b'},
		TapeAlphabet:  []rune{'a', 'b', '_', Boundary},
		Rules:         b.rules,
	}
}
