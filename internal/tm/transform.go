package tm

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// RingRecognizer is the Section 8 transformation: the ring simulates the
// Turing machine, each processor holding one tape cell. The head is a message
// carrying only the machine state (⌈log |Q|⌉ bits plus a one-bit frame tag),
// so the total bit complexity is at most t(n)·(⌈log |Q|⌉ + 1) plus O(n) for
// carrying the halting verdict back to the leader.
type RingRecognizer struct {
	machine   *Machine
	language  lang.Language
	stateBits int
	// maxLocalSteps bounds the work of a single node, protecting the engine
	// against machines that loop without moving between processors.
	maxLocalSteps int
}

var _ core.Recognizer = (*RingRecognizer)(nil)

// DefaultMaxLocalSteps bounds the TM steps a single processor may execute in
// one run; the example machines use Θ(n²) steps globally, so this is ample.
const DefaultMaxLocalSteps = 1 << 22

// NewRingRecognizer wraps a machine and the language it decides.
func NewRingRecognizer(machine *Machine, language lang.Language) (*RingRecognizer, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	inputs := make(map[rune]bool, len(machine.InputAlphabet))
	for _, s := range machine.InputAlphabet {
		inputs[s] = true
	}
	for _, letter := range language.Alphabet() {
		if !inputs[letter] {
			return nil, fmt.Errorf("tm: language letter %q outside the machine's input alphabet", letter)
		}
	}
	return &RingRecognizer{
		machine:       machine,
		language:      language,
		stateBits:     bits.UintWidth(uint64(machine.NumStates - 1)),
		maxLocalSteps: DefaultMaxLocalSteps,
	}, nil
}

// Name implements core.Recognizer.
//
//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (t *RingRecognizer) Name() string { return "tm-ring(" + t.machine.Name + ")" }

// Language implements core.Recognizer.
func (t *RingRecognizer) Language() lang.Language { return t.language }

// Mode implements core.Recognizer.
func (t *RingRecognizer) Mode() ring.Mode { return ring.Bidirectional }

// StateBits returns ⌈log |Q|⌉, the per-head-message payload width (excluding
// the frame tag).
func (t *RingRecognizer) StateBits() int { return t.stateBits }

// NewNodes implements core.Recognizer. The leader simulates the boundary cell
// '#' in addition to its own input cell, so the circular tape reads
// # σ₁ … σ_n.
func (t *RingRecognizer) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		cells := []rune{letter}
		if i == ring.LeaderIndex {
			cells = []rune{Boundary, letter}
		}
		nodes[i] = &tmNode{algo: t, cells: cells, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// Message frame tags.
const (
	tmTagHead   = false
	tmTagResult = true
)

func (t *RingRecognizer) encodeHead(state State) bits.String {
	var w bits.Writer
	w.WriteBool(tmTagHead)
	w.WriteUint(uint64(state), t.stateBits)
	return w.String()
}

func encodeResult(accepted bool) bits.String {
	var w bits.Writer
	w.WriteBool(tmTagResult)
	w.WriteBool(accepted)
	return w.String()
}

// tmNode simulates the tape cells owned by one processor.
type tmNode struct {
	algo   *RingRecognizer
	cells  []rune
	leader bool
	steps  int
}

// localOutcome is the result of running the head locally until it leaves this
// node's cells or the machine halts.
type localOutcome struct {
	halted   bool
	accepted bool
	exitDir  ring.Direction
	state    State
}

// runLocal executes transitions while the head remains on this node's cells.
// cellIdx is the index within n.cells where the head currently is.
func (n *tmNode) runLocal(state State, cellIdx int) (localOutcome, error) {
	m := n.algo.machine
	for {
		if n.steps >= n.algo.maxLocalSteps {
			return localOutcome{}, fmt.Errorf("%w at one processor (%d)", ErrStepLimit, n.steps)
		}
		if state == m.Accept {
			return localOutcome{halted: true, accepted: true}, nil
		}
		if state == m.Reject {
			return localOutcome{halted: true, accepted: false}, nil
		}
		rule, ok := m.Rules[RuleKey{State: state, Symbol: n.cells[cellIdx]}]
		if !ok {
			return localOutcome{}, fmt.Errorf("%w: state %d symbol %q", ErrMissingRule, state, n.cells[cellIdx])
		}
		n.steps++
		n.cells[cellIdx] = rule.Write
		state = rule.Next
		switch rule.Move {
		case MoveStay:
			// Stay on the same cell and keep going.
		case MoveRight:
			if cellIdx+1 < len(n.cells) {
				cellIdx++
				continue
			}
			return localOutcome{exitDir: ring.Forward, state: state}, nil
		case MoveLeft:
			if cellIdx > 0 {
				cellIdx--
				continue
			}
			return localOutcome{exitDir: ring.Backward, state: state}, nil
		}
	}
}

// emit converts a local outcome into sends and/or a verdict.
func (n *tmNode) emit(ctx *ring.Context, out localOutcome) ([]ring.Send, error) {
	if !out.halted {
		return []ring.Send{{Dir: out.exitDir, Payload: n.algo.encodeHead(out.state)}}, nil
	}
	if ctx.IsLeader() {
		if out.accepted {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	// Carry the verdict forward until it reaches the leader.
	return []ring.Send{ring.SendForward(encodeResult(out.accepted))}, nil
}

// Start implements ring.Node: the head begins on the leader's input cell in
// the machine's start state.
func (n *tmNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	out, err := n.runLocal(n.algo.machine.Start, len(n.cells)-1)
	if err != nil {
		return nil, err
	}
	return n.emit(ctx, out)
}

// Receive implements ring.Node.
func (n *tmNode) Receive(ctx *ring.Context, from ring.Direction, payload bits.String) ([]ring.Send, error) {
	r := bits.NewReader(payload)
	isResult, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("tm-ring: decode tag: %w", err)
	}
	if isResult {
		accepted, err := r.ReadBool()
		if err != nil {
			return nil, fmt.Errorf("tm-ring: decode result: %w", err)
		}
		if ctx.IsLeader() {
			if accepted {
				return nil, ctx.Accept()
			}
			return nil, ctx.Reject()
		}
		return []ring.Send{ring.SendForward(payload)}, nil
	}
	stateValue, err := r.ReadUint(n.algo.stateBits)
	if err != nil {
		return nil, fmt.Errorf("tm-ring: decode state: %w", err)
	}
	if int(stateValue) >= n.algo.machine.NumStates {
		return nil, fmt.Errorf("tm-ring: state %d out of range", stateValue)
	}
	// A head arriving from our backward neighbour was moving right and lands
	// on our leftmost cell; one arriving from our forward neighbour was
	// moving left and lands on our rightmost cell.
	cellIdx := 0
	if from == ring.Forward {
		cellIdx = len(n.cells) - 1
	}
	out, err := n.runLocal(State(stateValue), cellIdx)
	if err != nil {
		return nil, err
	}
	return n.emit(ctx, out)
}
