package tm

import (
	"errors"
	"fmt"
)

// Move is the head movement of a transition.
type Move int

const (
	// MoveLeft moves the head one cell to the left.
	MoveLeft Move = iota + 1
	// MoveRight moves the head one cell to the right.
	MoveRight
	// MoveStay keeps the head where it is.
	MoveStay
)

// String implements fmt.Stringer.
func (m Move) String() string {
	switch m {
	case MoveLeft:
		return "L"
	case MoveRight:
		return "R"
	case MoveStay:
		return "S"
	default:
		return "?"
	}
}

// State identifies a TM state.
type State int

// Boundary is the tape symbol delimiting the input on the circular ring tape.
const Boundary rune = '#'

// Rule is the right-hand side of one transition.
type Rule struct {
	Next  State
	Write rune
	Move  Move
}

// RuleKey is a (state, symbol) pair.
type RuleKey struct {
	State  State
	Symbol rune
}

// Machine is a deterministic one-tape Turing machine. States are numbered
// 0..NumStates-1; Accept and Reject are halting states with no outgoing
// transitions.
type Machine struct {
	Name      string
	NumStates int
	Start     State
	Accept    State
	Reject    State
	// InputAlphabet lists the symbols that may appear in inputs.
	InputAlphabet []rune
	// TapeAlphabet lists every symbol that may appear on the tape (a
	// superset of InputAlphabet plus Boundary and any working symbols).
	TapeAlphabet []rune
	// Rules is the transition function.
	Rules map[RuleKey]Rule
}

// Errors returned by the simulator.
var (
	ErrInvalidMachine = errors.New("tm: invalid machine")
	ErrStepLimit      = errors.New("tm: step limit exceeded")
	ErrMissingRule    = errors.New("tm: missing transition")
)

// Validate performs structural checks on the machine.
func (m *Machine) Validate() error {
	if m.NumStates <= 0 {
		return fmt.Errorf("%w: no states", ErrInvalidMachine)
	}
	inRange := func(s State) bool { return s >= 0 && int(s) < m.NumStates }
	if !inRange(m.Start) || !inRange(m.Accept) || !inRange(m.Reject) {
		return fmt.Errorf("%w: start/accept/reject out of range", ErrInvalidMachine)
	}
	if m.Accept == m.Reject {
		return fmt.Errorf("%w: accept and reject must differ", ErrInvalidMachine)
	}
	tape := make(map[rune]bool, len(m.TapeAlphabet))
	for _, s := range m.TapeAlphabet {
		tape[s] = true
	}
	if !tape[Boundary] {
		return fmt.Errorf("%w: tape alphabet must include the boundary symbol", ErrInvalidMachine)
	}
	for _, s := range m.InputAlphabet {
		if !tape[s] {
			return fmt.Errorf("%w: input symbol %q missing from tape alphabet", ErrInvalidMachine, s)
		}
	}
	for key, rule := range m.Rules {
		if !inRange(key.State) || !inRange(rule.Next) {
			return fmt.Errorf("%w: rule %v references an invalid state", ErrInvalidMachine, key)
		}
		if key.State == m.Accept || key.State == m.Reject {
			return fmt.Errorf("%w: halting state %d has outgoing rules", ErrInvalidMachine, key.State)
		}
		if !tape[key.Symbol] || !tape[rule.Write] {
			return fmt.Errorf("%w: rule %v uses a symbol outside the tape alphabet", ErrInvalidMachine, key)
		}
		if rule.Move != MoveLeft && rule.Move != MoveRight && rule.Move != MoveStay {
			return fmt.Errorf("%w: rule %v has an invalid move", ErrInvalidMachine, key)
		}
	}
	return nil
}

// RunResult is the outcome of a direct simulation.
type RunResult struct {
	Accepted bool
	Steps    int
}

// Run simulates the machine on a circular tape containing a single Boundary
// cell followed by the input, with the head starting on the first input cell
// (or on the boundary for empty input). maxSteps bounds the simulation.
func (m *Machine) Run(input []rune, maxSteps int) (RunResult, error) {
	if err := m.Validate(); err != nil {
		return RunResult{}, err
	}
	tape := make([]rune, 0, len(input)+1)
	tape = append(tape, Boundary)
	tape = append(tape, input...)
	size := len(tape)
	head := 1 % size
	state := m.Start
	for steps := 0; steps < maxSteps; steps++ {
		if state == m.Accept {
			return RunResult{Accepted: true, Steps: steps}, nil
		}
		if state == m.Reject {
			return RunResult{Accepted: false, Steps: steps}, nil
		}
		rule, ok := m.Rules[RuleKey{State: state, Symbol: tape[head]}]
		if !ok {
			return RunResult{}, fmt.Errorf("%w: state %d symbol %q", ErrMissingRule, state, tape[head])
		}
		tape[head] = rule.Write
		state = rule.Next
		switch rule.Move {
		case MoveLeft:
			head = (head - 1 + size) % size
		case MoveRight:
			head = (head + 1) % size
		}
	}
	if state == m.Accept {
		return RunResult{Accepted: true, Steps: maxSteps}, nil
	}
	if state == m.Reject {
		return RunResult{Accepted: false, Steps: maxSteps}, nil
	}
	return RunResult{}, fmt.Errorf("%w: %d steps", ErrStepLimit, maxSteps)
}

// ruleBuilder keeps the example-machine definitions readable.
type ruleBuilder struct {
	rules map[RuleKey]Rule
}

func newRuleBuilder() *ruleBuilder {
	return &ruleBuilder{rules: make(map[RuleKey]Rule)}
}

func (b *ruleBuilder) add(state State, symbol rune, next State, write rune, move Move) *ruleBuilder {
	b.rules[RuleKey{State: state, Symbol: symbol}] = Rule{Next: next, Write: write, Move: move}
	return b
}
