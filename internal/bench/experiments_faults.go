package bench

import (
	"fmt"

	"ringlang/internal/core"
	"ringlang/internal/election"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// FaultSizes are the E17 ring sizes: the E13 grid sizes (divisible by 3 and
// odd, so every algorithm of the shared recognizer set has member words).
var FaultSizes = []int{33, 99, 201}

// faultVariant is one point on the delivery-fate axis of the E17 sweep.
type faultVariant struct {
	Schedule string
	Seed     int64
}

// faultDimension is the fault axis E17 sweeps: every fault schedule of the
// catalog, one seed each (seeds only reshuffle which deliveries fault; the
// engine-accounted totals are seed-independent by construction, which the
// sweep's agreement column verifies).
func faultDimension() []faultVariant {
	return []faultVariant{
		{Schedule: "lossy", Seed: 1},
		{Schedule: "duplicating", Seed: 1},
		{Schedule: "crash-restart", Seed: 1},
		{Schedule: "crash-repair", Seed: 1},
	}
}

// faultOverhead renders the cell's fault accounting as one column: the work
// the schedule injected that the bit totals deliberately exclude.
func faultOverhead(f *ring.FaultReport) string {
	if f == nil {
		return "-"
	}
	switch {
	case f.Dropped > 0 || f.RetransmitBits > 0:
		return fmt.Sprintf("drop=%d retx=%db", f.Dropped, f.RetransmitBits)
	case f.Duplicates > 0 || f.DuplicateBits > 0:
		return fmt.Sprintf("dup=%d +%db", f.Duplicates, f.DuplicateBits)
	case len(f.Crashed) > 0:
		return fmt.Sprintf("crash=%v reroute=%d defer=%d", f.Crashed, f.Rerouted, f.Deferred)
	default:
		return "none"
	}
}

// ExperimentE17 is the fault sweep: the delivery-fate axis (lossy,
// duplicating, crash-restart, crash-repair) across the E13 recognizer set and
// ring sizes, plus elect-then-recognize rows that put leader election in
// front of recognition under the same schedules. The sweep hard-fails unless
// the fault overhead stays out of the accounted totals: exactly-once fault
// schedules must reproduce the sequential bits exactly, at-least-once
// delivery must cost exactly the dedup layer's one framing bit per message,
// and only the crash-prone schedule — which genuinely changes the ring — is
// allowed to diverge (its row reports the crash instead of agreeing).
func ExperimentE17(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "fault axis: lossy/duplicating/crash delivery and elect-then-recognize overhead",
		PaperClaim: "the bounds are schedule-independent and count transmitted bits, not transport luck: " +
			"retransmissions and duplicates are overhead outside the accounted totals",
		Columns: []string{"phase", "algorithm", "n", "schedule", "bits", "msgs",
			"elect bits", "elect msgs", "fault overhead", "agree"},
	}
	variants := faultDimension()
	recs := []core.Recognizer{
		core.NewThreeCounters(),
		core.NewBalancedCounter(),
		core.NewCompareWcW(),
	}
	wordOpts := MeasureOptions{}.normalize()

	// Recognition grid: algorithms × sizes × fault schedules, each cell a
	// fresh engine (crash schedules draw their crash point from the engine's
	// rng at Reset, so a per-cell engine keeps every cell deterministic).
	for _, rec := range recs {
		for _, n := range sizes {
			word, err := sweepWord(rec, n, wordOpts)
			if err != nil {
				return nil, err
			}
			base, err := core.Run(rec, word, core.RunOptions{Ctx: defaultCtx})
			if err != nil {
				return nil, fmt.Errorf("bench: E17 baseline %s at n=%d: %w", rec.Name(), n, err)
			}
			t.AddRow("recognize", rec.Name(), fmtInt(n), "sequential",
				fmtInt(base.Stats.Bits), fmtInt(base.Stats.Messages), "-", "-", "-", "baseline")
			t.AddRecord(BenchRecord{Algorithm: rec.Name(), Schedule: "sequential", N: n,
				Bits: base.Stats.Bits, Messages: base.Stats.Messages})
			for _, v := range variants {
				runRec := rec
				if ring.ScheduleDeliveryGuarantee(v.Schedule) == ring.AtLeastOnce {
					// At-least-once delivery is absorbed by the alternating-bit
					// dedup wrapper; its framing bit is the entire price.
					runRec = core.WithDedup(rec)
				}
				res, err := runFaultCell(runRec, word, v)
				if err != nil {
					return nil, fmt.Errorf("bench: E17 %s under %s at n=%d: %w", rec.Name(), v.Schedule, n, err)
				}
				agree, err := faultAgreement(v.Schedule, base, res)
				if err != nil {
					return nil, fmt.Errorf("bench: E17 %s at n=%d: %w", rec.Name(), n, err)
				}
				t.AddRow("recognize", runRec.Name(), fmtInt(n), v.Schedule,
					fmtInt(res.Stats.Bits), fmtInt(res.Stats.Messages), "-", "-",
					faultOverhead(res.Faults), agree)
				t.AddRecord(BenchRecord{Algorithm: runRec.Name(), Schedule: v.Schedule, N: n,
					Bits: res.Stats.Bits, Messages: res.Stats.Messages})
			}
		}
	}

	// Elect-then-recognize: Hirschberg–Sinclair election in front of the
	// three-counters recognizer, under the sequential baseline and every
	// fault schedule recognition tolerates. The leader the recognition layer
	// assumes for free becomes a measured bit/message overhead — and the
	// fault schedules stress both phases of the composition.
	rec := recs[0]
	for _, n := range sizes {
		word, err := sweepWord(rec, n, wordOpts)
		if err != nil {
			return nil, err
		}
		var base *core.ScenarioResult
		for _, schedule := range []string{"sequential", "lossy", "duplicating", "crash-restart"} {
			engine, err := ring.NewEngineByName(schedule, 1)
			if err != nil {
				return nil, err
			}
			res, err := core.ElectThenRecognize(election.HirschbergSinclair, rec, word, nil,
				core.RunOptions{Engine: engine, Seed: 1, Ctx: defaultCtx})
			if err != nil {
				return nil, fmt.Errorf("bench: E17 elect+recognize under %s at n=%d: %w", schedule, n, err)
			}
			agree, err := scenarioAgreement(rec, schedule, base, res)
			if err != nil {
				return nil, fmt.Errorf("bench: E17 at n=%d: %w", n, err)
			}
			if schedule == "sequential" {
				base = res
			}
			overhead := faultOverhead(res.Recognition.Faults)
			if res.Election.Faults != nil {
				overhead = faultOverhead(res.Election.Faults) + " / " + overhead
			}
			t.AddRow("elect+recognize", "hs→"+rec.Name(), fmtInt(n), schedule,
				fmtInt(res.Recognition.Stats.Bits), fmtInt(res.Recognition.Stats.Messages),
				fmtInt(res.Election.Bits), fmtInt(res.Election.Messages), overhead, agree)
			t.AddRecord(BenchRecord{Algorithm: "elect+" + rec.Name(), Schedule: schedule, N: n,
				Bits:     res.Election.Bits + res.Recognition.Stats.Bits,
				Messages: res.Election.Messages + res.Recognition.Stats.Messages})
		}
	}
	t.Notes = append(t.Notes,
		"bits/msgs are the engine-accounted totals; the fault-overhead column (drops, retransmitted bits, duplicates, crash reroutes/deferrals) is everything the schedule injected on top, deliberately excluded from them",
		"duplicating rows run the +dedup wrapper: at-least-once delivery costs exactly one framing bit per message, and the duplicates themselves are never billed",
		"crash-repair removes a processor and splices the ring, so its verdict may legitimately diverge — its row reports the crash instead of an agreement claim",
		"elect+recognize rows rotate the ring so the elected processor holds the leader seat; the election columns are the price of the leader the recognition phase otherwise assumes for free",
	)
	return t, nil
}

// runFaultCell runs one recognition grid cell. The crash schedulers draw
// their crash point at Reset from the seed, within the first two ring tours —
// but a one-tour recognition run can terminate before a late draw, in which
// case no fault fires and the cell is vacuous. To keep the crash rows
// meaningful the cell scans seeds upward from the variant's and reports the
// first run whose crash lands inside it; the scan is deterministic, so the
// checked-in records are too.
func runFaultCell(rec core.Recognizer, word lang.Word, v faultVariant) (*ring.Result, error) {
	guarantee := ring.ScheduleDeliveryGuarantee(v.Schedule)
	crash := v.Schedule == "crash-restart" || guarantee == ring.CrashProne
	const seedScan = 32
	for seed := v.Seed; seed < v.Seed+seedScan; seed++ {
		engine, err := ring.NewEngineByName(v.Schedule, seed)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(rec, word, core.RunOptions{
			Engine: engine, Ctx: defaultCtx, AllowFaults: guarantee == ring.CrashProne,
		})
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		if res.Faults == nil {
			return nil, fmt.Errorf("seed %d: no fault report", seed)
		}
		if !crash || len(res.Faults.Crashed) > 0 {
			return res, nil
		}
	}
	return nil, fmt.Errorf("no seed in [%d,%d) crashes before the run terminates", v.Seed, v.Seed+seedScan)
}

// faultAgreement checks one recognition cell against its sequential baseline
// and renders the agree column; a violated delivery-guarantee invariant is an
// experiment error, not a table note.
func faultAgreement(schedule string, base, res *ring.Result) (string, error) {
	switch ring.ScheduleDeliveryGuarantee(schedule) {
	case ring.ExactlyOnce:
		if res.Verdict != base.Verdict || res.Stats.Bits != base.Stats.Bits ||
			res.Stats.Messages != base.Stats.Messages {
			return "", fmt.Errorf("%s diverged from sequential: %v/%d bits/%d msgs vs %v/%d/%d",
				schedule, res.Verdict, res.Stats.Bits, res.Stats.Messages,
				base.Verdict, base.Stats.Bits, base.Stats.Messages)
		}
		return "bit-identical", nil
	case ring.AtLeastOnce:
		if res.Verdict != base.Verdict || res.Stats.Messages != base.Stats.Messages ||
			res.Stats.Bits != base.Stats.Bits+base.Stats.Messages {
			return "", fmt.Errorf("%s+dedup: %v/%d bits/%d msgs, want %v/%d+%d/%d",
				schedule, res.Verdict, res.Stats.Bits, res.Stats.Messages,
				base.Verdict, base.Stats.Bits, base.Stats.Messages, base.Stats.Messages)
		}
		return "verdict, +1 bit/msg", nil
	default:
		if len(res.Faults.Crashed) == 0 {
			return "", fmt.Errorf("%s: crash-prone run crashed nobody", schedule)
		}
		return fmt.Sprintf("n/a (lost proc %d)", res.Faults.Crashed[0]), nil
	}
}

// scenarioAgreement checks one elect-then-recognize cell against the
// sequential scenario (base is nil for the baseline cell itself): the same
// processor must win under every schedule, the verdict must match the rotated
// word's membership, and the overhead must follow the schedule's guarantee.
func scenarioAgreement(rec core.Recognizer, schedule string, base *core.ScenarioResult, res *core.ScenarioResult) (string, error) {
	want := ring.VerdictReject
	if rec.Language().Contains(res.Rotated) {
		want = ring.VerdictAccept
	}
	if res.Recognition.Verdict != want {
		return "", fmt.Errorf("elect+recognize under %s: verdict %v on rotated word, language says %v",
			schedule, res.Recognition.Verdict, want)
	}
	if base == nil {
		return "baseline", nil
	}
	if res.Election.WinnerIndex != base.Election.WinnerIndex ||
		res.Election.WinnerID != base.Election.WinnerID {
		return "", fmt.Errorf("elect+recognize under %s: elected %d (id %d), sequential elected %d (id %d)",
			schedule, res.Election.WinnerIndex, res.Election.WinnerID,
			base.Election.WinnerIndex, base.Election.WinnerID)
	}
	framing := 0
	if ring.ScheduleDeliveryGuarantee(schedule) == ring.AtLeastOnce {
		// Both phases ran behind the dedup layer: one framing bit per message.
		framing = 1
	}
	if res.Election.Messages != base.Election.Messages ||
		res.Election.Bits != base.Election.Bits+framing*base.Election.Messages ||
		res.Recognition.Stats.Messages != base.Recognition.Stats.Messages ||
		res.Recognition.Stats.Bits != base.Recognition.Stats.Bits+framing*base.Recognition.Stats.Messages {
		return "", fmt.Errorf("elect+recognize under %s: %d/%d elect + %d/%d recognize bits/msgs, sequential %d/%d + %d/%d (framing %d)",
			schedule, res.Election.Bits, res.Election.Messages,
			res.Recognition.Stats.Bits, res.Recognition.Stats.Messages,
			base.Election.Bits, base.Election.Messages,
			base.Recognition.Stats.Bits, base.Recognition.Stats.Messages, framing)
	}
	if framing > 0 {
		return "winner, +1 bit/msg", nil
	}
	return "winner, bit-identical", nil
}
