// Package bench is the experiment harness: it generates workloads, sweeps
// ring sizes and parameters, runs the core recognizers on the ring engines,
// and renders one table per experiment — E1–E13 for the paper's claims and
// the extensions, E14 for the serving tier's cache behaviour, E15 for the
// large-ring engine's time/alloc trajectory, E16 for the prefix-checkpoint
// warm-vs-cold reuse sweep, plus the design ablations A1–A3
// (see DESIGN.md). The cmd/ringbench tool and the
// repository-root benchmarks are thin wrappers around this package, so every
// table can be regenerated from one place.
//
// Entry points: Experiments/ByID/RunAll enumerate and run the registry;
// MeasureRecognizer and MeasureOne sweep one recognizer under MeasureOptions
// (word kind, engine or schedule+seed, worker fan-out, context); the
// SetDefault* knobs are how cmd/ringbench routes its -schedule/-workers
// flags and signal context into every sweep. Pooled sweeps
// (MeasureOptions.Workers) run through a ringlang.Client batch and are
// bit-identical to serial sweeps.
//
// The paper is a theory paper with no numeric tables of its own; the
// "shape" each experiment must reproduce is the asymptotic claim of the
// corresponding theorem or remark, which the tables expose through normalized
// columns (bits/n, bits/(n log n), bits/n²) and log-log slope fits.
package bench
