// Package bench is the experiment harness: it generates workloads, sweeps
// ring sizes and parameters, runs the core recognizers on the ring engine,
// and renders one table per experiment (E1–E10 in DESIGN.md, plus the design
// ablations A1–A3). The cmd/ringbench tool and the repository-root benchmarks
// are thin wrappers around this package, so every number in EXPERIMENTS.md
// can be regenerated from one place.
//
// The paper is a theory paper with no numeric tables of its own; the
// "shape" each experiment must reproduce is the asymptotic claim of the
// corresponding theorem or remark, which the tables expose through normalized
// columns (bits/n, bits/(n log n), bits/n²) and log-log slope fits.
package bench
