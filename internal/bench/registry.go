package bench

import (
	"fmt"
	"io"
	"sort"

	"ringlang/internal/ring"
)

// Suite selects how large the sweeps are.
type Suite int

const (
	// SuiteFull uses the default sizes documented per experiment in DESIGN.md.
	SuiteFull Suite = iota + 1
	// SuiteQuick uses reduced sizes for smoke tests and CI.
	SuiteQuick
)

// Experiment couples an identifier with the function that produces its table.
type Experiment struct {
	ID          string
	Description string
	Run         func(Suite) (*Table, error)
}

// scale halves a size sweep (and caps it) for the quick suite.
func scale(sizes []int, suite Suite) []int {
	if suite != SuiteQuick {
		return sizes
	}
	out := make([]int, 0, len(sizes))
	for _, n := range sizes {
		if n <= 256 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = append(out, sizes[0])
	}
	return out
}

// Experiments returns the full registry, in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "E1", Description: "regular languages are O(n) bits (Theorem 1/6)",
			Run: func(s Suite) (*Table, error) { return ExperimentE1(scale(LinearSizes, s)) }},
		{ID: "E2", Description: "non-regular languages are Ω(n log n) bits (Theorem 4/5)",
			Run: func(s Suite) (*Table, error) { return ExperimentE2(scale(LinearSizes, s)) }},
		{ID: "E2b", Description: "information-state counting (Theorems 2/4 machinery)",
			Run: func(s Suite) (*Table, error) { return ExperimentE2b(scale(TraceSizes, s)) }},
		{ID: "E3", Description: "{wcw} is Θ(n²) bits (Section 7 note 1)",
			Run: func(s Suite) (*Table, error) { return ExperimentE3(scale(QuadraticSizes, s)) }},
		{ID: "E4", Description: "{0^k1^k2^k} is O(n log n) bits (Section 7 note 2)",
			Run: func(s Suite) (*Table, error) { return ExperimentE4(scale(LinearSizes, s)) }},
		{ID: "E5", Description: "the Θ(g(n)) hierarchy (Section 7 note 3)",
			Run: func(s Suite) (*Table, error) { return ExperimentE5(scale(HierarchySizes, s)) }},
		{ID: "E6", Description: "known n removes the n log n term (Section 7 note 4)",
			Run: func(s Suite) (*Table, error) { return ExperimentE6(scale(HierarchySizes, s)) }},
		{ID: "E7", Description: "passes vs bits trade-off (Section 7 note 5)",
			Run: func(s Suite) (*Table, error) {
				ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
				n := ParityRingSize
				if s == SuiteQuick {
					ks = []int{1, 2, 3, 4}
					n = 64
				}
				return ExperimentE7(ks, n)
			}},
		{ID: "E8", Description: "line simulation overhead (Theorem 7 Stage 1)",
			Run: func(s Suite) (*Table, error) { return ExperimentE8(scale(HierarchySizes, s)) }},
		{ID: "E9", Description: "leader election substrate ([DKR])",
			Run: func(s Suite) (*Table, error) { return ExperimentE9(scale(HierarchySizes, s)) }},
		{ID: "E10", Description: "TM → ring transformation (Section 8)",
			Run: func(s Suite) (*Table, error) { return ExperimentE10(scale(TMSizes, s)) }},
		{ID: "E11", Description: "extensions: Dyck + aggregate functions at the n log n floor",
			Run: func(s Suite) (*Table, error) { return ExperimentE11(scale(LinearSizes, s)) }},
		{ID: "E12", Description: "extensions: bidirectional election (Hirschberg–Sinclair)",
			Run: func(s Suite) (*Table, error) { return ExperimentE12(scale(HierarchySizes, s)) }},
		{ID: "E13", Description: "schedule axis: algorithms × sizes × delivery schedules agree on bits",
			Run: func(s Suite) (*Table, error) { return ExperimentE13(scale([]int{33, 99, 201}, s)) }},
		{ID: "E14", Description: "serving tier: memo cache hit ratio on repeated-word traffic (ringserve)",
			Run: func(s Suite) (*Table, error) { return ExperimentE14(scale([]int{48, 96, 192, 384}, s)) }},
		{ID: "E15", Description: "large-ring engine: serial vs sharded time/alloc trajectory (count, n to 2^20)",
			Run: func(s Suite) (*Table, error) {
				sizes := ScaleSizes
				if s == SuiteQuick {
					// Keep the quick suite CI-speed but still past the
					// pre-sizing threshold where reuse matters.
					sizes = []int{1 << 12, 1 << 16}
				}
				return ExperimentE15(sizes, s)
			}},
		{ID: "E16", Description: "prefix checkpoints: warm vs cold ns/word on shared-prefix corpora (majority, sequential)",
			Run: func(s Suite) (*Table, error) {
				sizes := PrefixSizes
				if s == SuiteQuick {
					// One CI-speed cell, at the n=4096 point the acceptance
					// speedup is stated for.
					sizes = []int{1 << 12}
				}
				return ExperimentE16(sizes, s)
			}},
		{ID: "E17", Description: "fault axis: lossy/duplicating/crash schedules + elect-then-recognize overhead",
			Run: func(s Suite) (*Table, error) {
				sizes := FaultSizes
				if s == SuiteQuick {
					// Two CI-speed sizes; the fault invariants the sweep
					// hard-checks are size-independent.
					sizes = FaultSizes[:2]
				}
				return ExperimentE17(sizes)
			}},
		{ID: "A1", Description: "ablation: counter encodings",
			Run: func(s Suite) (*Table, error) { return ExperimentA1(scale(HierarchySizes, s)) }},
		{ID: "A2", Description: "ablation: DFA minimization",
			Run: func(s Suite) (*Table, error) { return ExperimentA2(scale(HierarchySizes, s)) }},
		{ID: "A3", Description: "ablation: engine accounting equivalence",
			Run: func(s Suite) (*Table, error) { return ExperimentA3(scale([]int{33, 99, 255}, s)) }},
	}
}

// IDs returns every experiment identifier in order.
func IDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, known)
}

// RunAll runs every experiment and renders the tables to w. Each table is
// rendered as its experiment completes, so a run canceled through
// SetDefaultContext still leaves every finished table on w; the error of
// the canceled experiment wraps ring.ErrCanceled.
func RunAll(w io.Writer, suite Suite) error {
	_, err := RunAllTables(w, suite)
	return err
}

// RunAllTables is RunAll returning the completed tables as well, so callers
// can post-process them (cmd/ringbench -json collects their BenchRecords).
// On cancellation the tables rendered so far are returned with the error.
func RunAllTables(w io.Writer, suite Suite) ([]*Table, error) {
	var tables []*Table
	for _, e := range Experiments() {
		if err := defaultCtx.Err(); err != nil {
			return tables, fmt.Errorf("bench: %w: %w", ring.ErrCanceled, err)
		}
		table, err := e.Run(suite)
		if err != nil {
			return tables, fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		if err := table.Render(w); err != nil {
			return tables, err
		}
		tables = append(tables, table)
	}
	return tables, nil
}
