package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// PrefixSizes are the E16 ring sizes: the same span as the E15 engine sweep,
// so the cold rows here line up with the sequential rows there.
var PrefixSizes = []int{1 << 12, 1 << 16, 1 << 20}

const (
	// prefixSharedNum/Den set how much of the seed word the sibling corpus
	// shares: 7/8 lands exactly on the deepest capture boundary the prefix
	// cache plans, so every warm-shared run is a partial hit that resumes
	// from the 7n/8 checkpoint and recomputes only the last n/8 letters.
	prefixSharedNum = 7
	prefixSharedDen = 8
	// prefixCacheBudget bounds the checkpoint store per cell: room for the
	// seed word's boundary checkpoints at n=2^20 (siblings resume without
	// inserting anything — full-word captures ride cold runs only).
	prefixCacheBudget = 1 << 27
)

// prefixCorpus builds a random seed word of length n plus count distinct
// siblings that share exactly `shared` leading letters with it. The first
// tail letter is forced to differ from the seed's, so the shared prefix is
// exact rather than an accident of sampling; the rest of each tail is
// random, so the siblings are (overwhelmingly likely) distinct words and a
// warm run over them cannot degenerate into exact-hit replays.
func prefixCorpus(alphabet lang.Alphabet, n, shared, count int, rng *rand.Rand) (lang.Word, []lang.Word) {
	seed := lang.RandomWord(alphabet, n, rng)
	siblings := make([]lang.Word, count)
	for i := range siblings {
		w := make(lang.Word, n)
		copy(w, seed[:shared])
		copy(w[shared:], lang.RandomWord(alphabet, n-shared, rng))
		if len(alphabet) > 1 && w[shared] == seed[shared] {
			for _, l := range alphabet {
				if l != seed[shared] {
					w[shared] = l
					break
				}
			}
		}
		siblings[i] = w
	}
	return seed, siblings
}

// timedPrefixRuns is timedRuns with a prefix-checkpoint cache attached and a
// word sequence instead of a single word: iteration i runs words[i mod len].
// Passing one word measures the steady full-depth resume; passing
// warmups+iters distinct siblings makes every timed iteration a fresh
// partial-hit resume (each sibling is visited exactly once).
func timedPrefixRuns(rec core.Recognizer, words []lang.Word, engine ring.Engine, warmups, iters int, cache *core.PrefixCache) (nsPerOp, allocsPerOp float64, res *ring.Result, err error) {
	st := ring.NewRunState()
	opts := core.RunOptions{Engine: engine, State: st, Presize: len(words[0]), Ctx: defaultCtx, Prefix: cache, Reuse: core.NewNodeReuse()}
	for i := 0; i < warmups; i++ {
		if _, err = core.Run(rec, words[i%len(words)], opts); err != nil {
			return 0, 0, nil, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if res, err = core.Run(rec, words[(warmups+i)%len(words)], opts); err != nil {
			return 0, 0, nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return nsPerOp, allocsPerOp, res, nil
}

// ExperimentE16 is the prefix-checkpoint reuse sweep: the majority algorithm
// (single pass, binary alphabet — the lightest catalog workload whose words
// can share prefixes without being equal) timed on the sequential engine in
// three regimes per ring size. Cold runs with no cache are the baseline;
// warm-shared runs resume distinct siblings of a seeded word from its 7n/8
// checkpoint; warm-steady runs replay the seeded word itself from its
// full-depth checkpoint. The sweep hard-fails unless warm results stay
// bit-identical to cold and the steady resume stays on the cold allocation
// floor — the perf claim is only meaningful if the answers don't change.
func ExperimentE16(sizes []int, suite Suite) (*Table, error) {
	table := &Table{
		ID:    "E16",
		Title: "prefix checkpoints: cold vs warm ns/word on shared-prefix corpora (majority, sequential)",
		PaperClaim: "engine scaffolding, not a paper claim: words sharing a pass-0 prefix resume from stored " +
			"checkpoints, bit-identical to cold runs",
		Columns: []string{"n", "variant", "bits", "msgs", "ns/op", "ns/op/n", "allocs/op", "speedup"},
	}
	rng := rand.New(rand.NewSource(0x9e16))
	for _, n := range sizes {
		rec := core.NewMajority()
		engine := ring.NewSequentialEngine()
		shared := n * prefixSharedNum / prefixSharedDen
		iters := scaleIters(n, suite)
		warmups := 2 + iters/4
		if warmups > 8 {
			warmups = 8
		}
		// One sibling per run (warm-up and timed) plus a held-out probe for
		// the warm-vs-cold cross-check below.
		seedWord, siblings := prefixCorpus(rec.Language().Alphabet(), n, shared, warmups+iters+1, rng)

		coldNs, coldAllocs, coldRes, err := timedRuns(rec, seedWord, engine, iters)
		if err != nil {
			return nil, fmt.Errorf("bench: E16 cold at n=%d: %w", n, err)
		}

		// Warm-shared: seed the cache with one run of the seed word (which
		// captures the boundary checkpoints), then time distinct siblings —
		// every timed iteration is a fresh partial hit at the 7/8 boundary.
		sharedCache := core.NewPrefixCache(prefixCacheBudget)
		if _, err := core.Run(rec, seedWord, core.RunOptions{Engine: engine, Ctx: defaultCtx, Prefix: sharedCache}); err != nil {
			return nil, fmt.Errorf("bench: E16 seeding at n=%d: %w", n, err)
		}
		sharedNs, sharedAllocs, sharedRes, err := timedPrefixRuns(rec, siblings[:warmups+iters], engine, warmups, iters, sharedCache)
		if err != nil {
			return nil, fmt.Errorf("bench: E16 warm-shared at n=%d: %w", n, err)
		}
		if st := sharedCache.Stats(); st.Hits+st.PartialHits == 0 {
			return nil, fmt.Errorf("bench: E16 warm-shared at n=%d never hit the cache: %+v", n, st)
		}

		// Warm-steady: repeats of the seed word resume from the full-depth
		// checkpoint; this is the pure resume path the allocation guard in
		// internal/core pins, so its allocs/op must not exceed the cold floor.
		steadyCache := core.NewPrefixCache(prefixCacheBudget)
		steadyNs, steadyAllocs, steadyRes, err := timedPrefixRuns(rec, []lang.Word{seedWord}, engine, warmups, iters, steadyCache)
		if err != nil {
			return nil, fmt.Errorf("bench: E16 warm-steady at n=%d: %w", n, err)
		}

		// Bit-identity cross-checks: the steady replay must reproduce the
		// cold report exactly, and a held-out sibling must agree between its
		// warm (partial-hit resume) and cold runs.
		if err := samePrefixReport("warm-steady", n, coldRes, steadyRes); err != nil {
			return nil, err
		}
		probe := siblings[warmups+iters]
		warmProbe, err := core.Run(rec, probe, core.RunOptions{Engine: engine, Ctx: defaultCtx, Prefix: sharedCache})
		if err != nil {
			return nil, fmt.Errorf("bench: E16 warm probe at n=%d: %w", n, err)
		}
		coldProbe, err := core.Run(rec, probe, core.RunOptions{Engine: engine, Ctx: defaultCtx})
		if err != nil {
			return nil, fmt.Errorf("bench: E16 cold probe at n=%d: %w", n, err)
		}
		if err := samePrefixReport("probe", n, coldProbe, warmProbe); err != nil {
			return nil, err
		}
		for variant, allocs := range map[string]float64{"steady": steadyAllocs, "shared": sharedAllocs} {
			if allocs > coldAllocs+0.5 {
				return nil, fmt.Errorf("bench: E16 at n=%d: %s resume allocates %.1f/op, above the cold floor %.1f/op",
					n, variant, allocs, coldAllocs)
			}
		}
		// The full suite must demonstrate the 2x the subsystem exists for;
		// the quick suite (shared CI runners) only insists warm beats cold.
		minSpeedup := 2.0
		if suite == SuiteQuick {
			minSpeedup = 1.0
		}
		if coldNs < sharedNs*minSpeedup {
			return nil, fmt.Errorf("bench: E16 at n=%d: warm-shared %.0f ns/op is not %.1fx under cold %.0f ns/op",
				n, sharedNs, minSpeedup, coldNs)
		}

		for _, cell := range []struct {
			variant string
			ns      float64
			allocs  float64
			res     *ring.Result
		}{
			{"cold", coldNs, coldAllocs, coldRes},
			{"warm-shared-7/8", sharedNs, sharedAllocs, sharedRes},
			{"warm-steady", steadyNs, steadyAllocs, steadyRes},
		} {
			table.AddRow(
				fmtInt(n), cell.variant,
				fmtInt(cell.res.Stats.Bits), fmtInt(cell.res.Stats.Messages),
				fmt.Sprintf("%.0f", cell.ns),
				fmt.Sprintf("%.2f", cell.ns/float64(n)),
				fmt.Sprintf("%.1f", cell.allocs),
				fmt.Sprintf("%.2fx", coldNs/cell.ns),
			)
			table.AddRecord(BenchRecord{
				Algorithm:   rec.Name(),
				Schedule:    engine.Name() + "/" + cell.variant,
				N:           n,
				Bits:        cell.res.Stats.Bits,
				Messages:    cell.res.Stats.Messages,
				NsPerOp:     cell.ns,
				AllocsPerOp: cell.allocs,
			})
		}
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("warm-shared runs distinct words sharing a %d/%d prefix with the cached seed word: each timed run is a fresh partial-hit resume that recomputes only the tail, on the cold allocation floor (full-word captures ride cold runs only)", prefixSharedNum, prefixSharedDen),
		"warm-steady replays the seed word from its full-depth checkpoint: the pure resume path",
		"bits/msgs on the warm-shared row are the final sibling's (counter-coded token lengths vary with tail content); identity with cold runs is cross-checked per cell on a held-out sibling",
	)
	return table, nil
}

// samePrefixReport hard-fails an E16 cell whose warm run diverged from its
// cold twin in any accounted dimension — a wrong answer served fast is not a
// speedup.
func samePrefixReport(label string, n int, cold, warm *ring.Result) error {
	if warm.Verdict != cold.Verdict ||
		warm.Stats.Bits != cold.Stats.Bits ||
		warm.Stats.Messages != cold.Stats.Messages ||
		warm.Stats.MaxMessageBits != cold.Stats.MaxMessageBits {
		return fmt.Errorf("bench: E16 %s at n=%d: warm run diverged from cold (verdict %v vs %v, bits %d vs %d, msgs %d vs %d, max %d vs %d)",
			label, n, warm.Verdict, cold.Verdict, warm.Stats.Bits, cold.Stats.Bits,
			warm.Stats.Messages, cold.Stats.Messages, warm.Stats.MaxMessageBits, cold.Stats.MaxMessageBits)
	}
	return nil
}
