package bench

import (
	"fmt"
	"math"
	"math/rand"

	"ringlang/internal/core"
	"ringlang/internal/election"
	"ringlang/internal/lang"
	"ringlang/internal/tm"
)

// ParityRingSize is the fixed ring size used by the passes-vs-bits trade-off
// (the sweep parameter is k, not n).
const ParityRingSize = 256

// ExperimentE7 measures Section 7 note 5: the passes-versus-bits trade-off
// for the parity-index language over 2ᵏ letters.
func ExperimentE7(ks []int, n int) (*Table, error) {
	t := &Table{
		ID:         "E7",
		Title:      fmt.Sprintf("Passes vs bits for a regular language (Section 7 note 5), n=%d", n),
		PaperClaim: "two passes recognize it with (2k+1)·n bits; one pass needs (k+2^k−1)·n bits",
		Columns:    []string{"k", "|Σ|=2^k", "two-pass bits", "(2k+1)n", "one-pass bits", "(k+2^k-1)n", "cheaper"},
	}
	for _, k := range ks {
		language, err := lang.NewParityIndex(k)
		if err != nil {
			return nil, err
		}
		two := core.NewParityTwoPass(language)
		one := core.NewParityOnePass(language)
		twoPts, err := MeasureRecognizer(two, []int{n}, MeasureOptions{Seed: DefaultSeed + int64(k)})
		if err != nil {
			return nil, err
		}
		onePts, err := MeasureRecognizer(one, []int{n}, MeasureOptions{Seed: DefaultSeed + int64(k)})
		if err != nil {
			return nil, err
		}
		twoBits, oneBits := twoPts[0].Bits, onePts[0].Bits
		cheaper := "one-pass"
		if twoBits < oneBits {
			cheaper = "two-pass"
		} else if twoBits == oneBits {
			cheaper = "tie"
		}
		t.AddRow(fmtInt(k), fmtInt(1<<uint(k)), fmtInt(twoBits), fmtInt((2*k+1)*n),
			fmtInt(oneBits), fmtInt((k+(1<<uint(k))-1)*n), cheaper)
	}
	t.Notes = append(t.Notes,
		"the measured columns match the paper's formulas exactly (the encodings are bit-for-bit the ones analysed)",
		"one pass wins only for k ≤ 2; beyond that the exponential 2^k per-message cost dominates and the extra pass pays for itself")
	return t, nil
}

// ExperimentE8 measures the Theorem 7 Stage 1 line simulation: rerouting all
// traffic off the leader–p_n link costs only an additive O(n) overhead.
func ExperimentE8(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E8",
		Title:      "Line simulation of a bidirectional algorithm (Theorem 7, Stage 1)",
		PaperClaim: "cutting the leader–p_n link costs at most (2c₁(1+⌈log c₂⌉))·n + BIT_A(n) extra bits",
		Columns:    []string{"n", "direct bits", "simulated bits", "overhead", "overhead/n", "cut-link traffic"},
	}
	inner := core.NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := core.NewLineSimulation(inner)
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		directPt, _, _, err := MeasureOne(inner, n, MeasureOptions{Kind: RandomWords}, false)
		if err != nil {
			return nil, err
		}
		simPt, simRes, _, err := MeasureOne(sim, n, MeasureOptions{Kind: RandomWords}, false)
		if err != nil {
			return nil, err
		}
		cut := 0
		if ls, ok := simRes.Stats.PerLink()[[2]int{0, simPt.N - 1}]; ok {
			cut += ls.Bits
		}
		if ls, ok := simRes.Stats.PerLink()[[2]int{simPt.N - 1, 0}]; ok {
			cut += ls.Bits
		}
		overhead := simPt.Bits - directPt.Bits
		t.AddRow(fmtInt(simPt.N), fmtInt(directPt.Bits), fmtInt(simPt.Bits), fmtInt(overhead),
			fmtFloat(float64(overhead)/float64(simPt.N)), fmtInt(cut))
	}
	t.Notes = append(t.Notes, "cut-link traffic is 0 by construction: the simulation never uses the leader–p_n link")
	return t, nil
}

// ExperimentE9 measures the leader-election substrate: Dolev–Klawe–Rodeh
// stays O(n log n) messages even on the adversarial ring that drives
// Chang–Roberts to Θ(n²).
func ExperimentE9(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E9",
		Title:      "Establishing the leader: election message complexity ([DKR] substrate)",
		PaperClaim: "a leader can be found with O(n log n) messages; this bound is best possible",
		Columns:    []string{"n", "CR random msgs", "CR worst msgs", "DKR worst msgs", "DKR msgs/(n·log n)"},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(DefaultSeed + int64(n)))
		crRandom, err := election.Run(election.ChangRoberts, election.RandomIDs(n, rng), nil)
		if err != nil {
			return nil, err
		}
		crWorst, err := election.Run(election.ChangRoberts, election.DescendingIDs(n), nil)
		if err != nil {
			return nil, err
		}
		dkrWorst, err := election.Run(election.DolevKlaweRodeh, election.DescendingIDs(n), nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n), fmtInt(crRandom.Stats.Messages), fmtInt(crWorst.Stats.Messages),
			fmtInt(dkrWorst.Stats.Messages),
			fmtFloat(float64(dkrWorst.Stats.Messages)/(float64(n)*math.Log2(float64(n)))))
	}
	t.Notes = append(t.Notes, "Chang–Roberts degrades quadratically on descending identifiers; DKR stays within 2n(log n + 1) + 2n")
	return t, nil
}

// ExperimentE10 measures the Section 8 transformation: a TM with time t(n)
// becomes a ring algorithm with at most t(n)·⌈log|Q|⌉ (+ framing) bits.
func ExperimentE10(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E10",
		Title:      "TM → ring transformation (Section 8)",
		PaperClaim: "a TM with time t(n) yields a ring algorithm with BIT(n) ≤ t(n)·log|Q|",
		Columns:    []string{"machine", "n", "TM steps t(n)", "ring bits", "bound t(n)(⌈log|Q|⌉+1)+2n", "bits/steps"},
	}
	type workload struct {
		machine  *tm.Machine
		language lang.Language
	}
	workloads := []workload{
		{machine: tm.NewZeroesOnesMachine(), language: lang.NewAnBn()},
		{machine: tm.NewPalindromeMachine(), language: lang.NewPalindrome()},
	}
	for _, wl := range workloads {
		rec, err := tm.NewRingRecognizer(wl.machine, wl.language)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(DefaultSeed + int64(n)))
			word, actualN, err := lang.MemberOrSkip(wl.language, n, 4, rng)
			if err != nil {
				return nil, err
			}
			direct, err := wl.machine.Run([]rune(string(word)), 1<<24)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(rec, word, core.RunOptions{})
			if err != nil {
				return nil, err
			}
			bound := direct.Steps*(rec.StateBits()+1) + 2*actualN
			t.AddRow(wl.machine.Name, fmtInt(actualN), fmtInt(direct.Steps), fmtInt(res.Stats.Bits),
				fmtInt(bound), fmtFloat(float64(res.Stats.Bits)/float64(direct.Steps)))
		}
	}
	t.Notes = append(t.Notes, "both example machines run in Θ(n²) steps, so the resulting ring algorithms sit at Θ(n²) bits — consistent with E3's lower bound for comparison-style languages")
	return t, nil
}
