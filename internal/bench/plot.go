package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

// Series is one named curve of a plot (e.g. one algorithm across ring sizes).
type Series struct {
	Name   string
	Points []Point
}

// PlotLogLog renders an ASCII log-log scatter plot of bits against n, one
// marker letter per series. It is the repository's stand-in for the figures a
// systems paper would carry: the slope of each point cloud is the scaling
// exponent the corresponding claim is about (1 for linear, ≈1.1 for n·log n,
// 2 for quadratic).
func PlotLogLog(series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if p.N < 1 || p.Bits < 1 {
				continue
			}
			x, y := math.Log10(float64(p.N)), math.Log10(float64(p.Bits))
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			any = true
		}
	}
	if !any {
		return "(no data to plot)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marker := func(i int) byte { return byte('a' + i%26) }
	for i, s := range series {
		for _, p := range s.Points {
			if p.N < 1 || p.Bits < 1 {
				continue
			}
			x := (math.Log10(float64(p.N)) - minX) / (maxX - minX)
			y := (math.Log10(float64(p.Bits)) - minY) / (maxY - minY)
			col := int(math.Round(x * float64(width-1)))
			row := height - 1 - int(math.Round(y*float64(height-1)))
			grid[row][col] = marker(i)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "log10(bits) %.1f..%.1f  vs  log10(n) %.1f..%.1f\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "\n")
	legend := make([]string, 0, len(series))
	for i, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", marker(i), s.Name))
	}
	sort.Strings(legend)
	sb.WriteString("legend: " + strings.Join(legend, "  ") + "\n")
	return sb.String()
}

// ScalingFigure builds the repository's headline "figure": the linear,
// n·log n and quadratic classes on one log-log plot (regular one-pass,
// counting, and the wcw comparison), regenerated from live measurements.
func ScalingFigure(sizes []int) (string, error) {
	type workload struct {
		name string
		run  func() ([]Point, error)
	}
	var series []Series
	regLangs, err := regularForFigure()
	if err != nil {
		return "", err
	}
	workloads := []workload{
		{name: "regular-one-pass (Θ(n))", run: func() ([]Point, error) {
			return MeasureRecognizer(regLangs, sizes, MeasureOptions{Kind: RandomWords})
		}},
		{name: "count (Θ(n log n))", run: func() ([]Point, error) {
			return MeasureRecognizer(squareCountForFigure(), sizes, MeasureOptions{Kind: RandomWords})
		}},
		{name: "compare-wcw (Θ(n²))", run: func() ([]Point, error) {
			odd := make([]int, len(sizes))
			for i, n := range sizes {
				odd[i] = n + 1 - n%2
			}
			return MeasureRecognizer(wcwForFigure(), odd, MeasureOptions{})
		}},
	}
	for _, wl := range workloads {
		points, err := wl.run()
		if err != nil {
			return "", err
		}
		series = append(series, Series{Name: wl.name, Points: points})
	}
	return PlotLogLog(series, 64, 18), nil
}

// regularForFigure, squareCountForFigure and wcwForFigure pick the three
// representatives of the linear, n·log n and quadratic classes.
func regularForFigure() (core.Recognizer, error) {
	language, err := lang.NewRegularFromRegex("ends-abb", "(a|b)*abb")
	if err != nil {
		return nil, err
	}
	return core.NewRegularOnePass(language), nil
}

func squareCountForFigure() core.Recognizer {
	return core.NewSquareCount()
}

func wcwForFigure() core.Recognizer {
	return core.NewCompareWcW()
}
