package bench

import (
	"reflect"
	"testing"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

func TestNormalizeDefaultsAndSetFlags(t *testing.T) {
	got := MeasureOptions{}.normalize()
	if got.Seed != DefaultSeed {
		t.Errorf("zero Seed normalized to %d, want DefaultSeed", got.Seed)
	}
	if got.Window != 8 {
		t.Errorf("zero Window normalized to %d, want 8", got.Window)
	}
	if got.Workers != 1 {
		t.Errorf("zero Workers normalized to %d, want the serial default 1", got.Workers)
	}

	// The regression: an explicit zero seed (or window) used to be silently
	// swallowed by the defaulting, making seed 0 unrunnable.
	got = MeasureOptions{SeedSet: true, WindowSet: true}.normalize()
	if got.Seed != 0 {
		t.Errorf("explicit zero Seed replaced by %d", got.Seed)
	}
	if got.Window != 0 {
		t.Errorf("explicit zero Window replaced by %d", got.Window)
	}

	got = MeasureOptions{Seed: 7, Window: 3}.normalize()
	if got.Seed != 7 || got.Window != 3 {
		t.Errorf("non-zero options rewritten: %+v", got)
	}
}

func TestExplicitSeedZeroIsRunnable(t *testing.T) {
	rec := core.NewThreeCounters()
	_, _, defaultWord, err := MeasureOne(rec, 16, MeasureOptions{Kind: RandomWords}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, _, zeroWord, err := MeasureOne(rec, 16, MeasureOptions{Kind: RandomWords, SeedSet: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if zeroWord.String() == defaultWord.String() {
		t.Errorf("seed 0 generated the DefaultSeed word %q — the explicit zero was swallowed", zeroWord.String())
	}
}

func TestExplicitWindowZeroIsExact(t *testing.T) {
	// (ab)* has no member of odd length; with a real zero window the sweep
	// must fail instead of silently widening to the default window of 8.
	reg, err := lang.NewRegularFromRegex("(ab)*", "(ab)*")
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewRegularOnePass(reg)
	if _, err := MeasureRecognizer(rec, []int{7}, MeasureOptions{WindowSet: true}); err == nil {
		t.Error("window 0 sweep over an impossible size succeeded; the explicit zero was swallowed")
	}
	if _, err := MeasureRecognizer(rec, []int{8}, MeasureOptions{WindowSet: true}); err != nil {
		t.Errorf("window 0 sweep over an exact size failed: %v", err)
	}
}

// TestMeasureWorkersParity pins the batch-sweep determinism: any worker
// count yields the points of the serial sweep, under the default engine, a
// named schedule, and the random-word kind.
func TestMeasureWorkersParity(t *testing.T) {
	sizes := []int{6, 9, 12, 21, 30}
	cases := []struct {
		name string
		rec  core.Recognizer
		opts MeasureOptions
	}{
		{"default-engine", core.NewThreeCounters(), MeasureOptions{}},
		{"random-schedule", core.NewBalancedCounter(), MeasureOptions{Schedule: "random", Seed: 5}},
		{"random-words", core.NewCompareWcW(), MeasureOptions{Kind: RandomWords}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialOpts := tc.opts
			serialOpts.Workers = 1
			serial, err := MeasureRecognizer(tc.rec, sizes, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5} {
				pooledOpts := tc.opts
				pooledOpts.Workers = workers
				pooled, err := MeasureRecognizer(tc.rec, sizes, pooledOpts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, pooled) {
					t.Errorf("workers=%d: %+v != serial %+v", workers, pooled, serial)
				}
			}
		})
	}
}
