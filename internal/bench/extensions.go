package bench

import (
	"fmt"
	"math"
	"math/rand"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

// ExperimentE11 covers the extension workloads built on top of the paper's
// toolkit: the Dyck language recognized with a single depth counter, and the
// aggregate function computations (max / sum / count) the introduction's
// "computing a function" framing refers to. All of them sit at the Θ(n log n)
// floor of the non-regular class, like the paper's counting examples.
func ExperimentE11(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "Extensions: more workloads at the n·log n floor",
		PaperClaim: "counter-based algorithms (one δ-coded counter per pass) stay at Θ(n log n) bits for any non-regular predicate they decide or function they compute",
		Columns:    []string{"workload", "n", "bits", "bits/(n·log n)", "messages"},
	}

	rec := core.NewBalancedCounter()
	points, err := MeasureRecognizer(rec, sizes, MeasureOptions{})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		t.AddRow("balanced-counter (dyck)", fmtInt(p.N), fmtInt(p.Bits), perNLogN(p.Bits, p.N), fmtInt(p.Messages))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("balanced-counter: log-log slope = %.3f", FitLogLogSlope(points)))

	majority := core.NewMajority()
	majorityPoints, err := MeasureRecognizer(majority, sizes, MeasureOptions{})
	if err != nil {
		return nil, err
	}
	for _, p := range majorityPoints {
		t.AddRow("majority (token framework)", fmtInt(p.N), fmtInt(p.Bits), perNLogN(p.Bits, p.N), fmtInt(p.Messages))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("majority: log-log slope = %.3f", FitLogLogSlope(majorityPoints)))

	for _, kind := range []core.AggregateKind{core.AggregateMax, core.AggregateSum, core.AggregateCountNonZero} {
		var aggPoints []Point
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(DefaultSeed + int64(n)))
			word := randomDigitWord(n, rng)
			res, err := core.ComputeAggregate(kind, word, nil)
			if err != nil {
				return nil, err
			}
			want, err := core.ReferenceAggregate(kind, word)
			if err != nil {
				return nil, err
			}
			if res.Value != want {
				return nil, fmt.Errorf("bench: aggregate %s value %d, reference %d", kind, res.Value, want)
			}
			p := Point{N: n, Bits: res.Stats.Bits, Messages: res.Stats.Messages}
			aggPoints = append(aggPoints, p)
			t.AddRow("aggregate "+kind.String(), fmtInt(p.N), fmtInt(p.Bits), perNLogN(p.Bits, p.N), fmtInt(p.Messages))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("aggregate %s: log-log slope = %.3f", kind, FitLogLogSlope(aggPoints)))
	}
	return t, nil
}

// ExperimentE12 measures election across all three protocols (including the
// bidirectional Hirschberg–Sinclair) on worst-case identifier arrangements;
// it extends E9 with the bidirectional substrate.
func ExperimentE12(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E12",
		Title:      "Extensions: bidirectional election (Hirschberg–Sinclair) vs unidirectional",
		PaperClaim: "O(n log n) messages suffice for election on either ring orientation",
		Columns:    []string{"protocol", "n", "messages", "bits", "msgs/(n·log n)"},
	}
	if err := appendElectionRows(t, sizes); err != nil {
		return nil, err
	}
	return t, nil
}

// randomDigitWord produces a word of decimal digits for the aggregate runs.
func randomDigitWord(n int, rng *rand.Rand) lang.Word {
	w := make(lang.Word, n)
	for i := range w {
		w[i] = rune('0' + rng.Intn(10))
	}
	return w
}

// logBase2 is a local helper for the election table.
func logBase2(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}
