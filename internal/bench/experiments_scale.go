package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// ScaleSizes are the E15 ring sizes: perfect squares (so the count
// recognizer's square-length language has a member at exactly n), rising to
// the million-processor ring the large-ring engine work targets.
var ScaleSizes = []int{1 << 12, 1 << 16, 1 << 20}

// scaleEngines are the engines E15 compares: the serial struct-of-arrays
// loop and the segment-sharded engine. The sharded engine sizes itself to
// the host — on a single-core machine it falls back to the serial loop, and
// the record says so through identical timings, not through a skipped row.
func scaleEngines() []ring.Engine {
	return []ring.Engine{
		ring.NewSequentialEngine(),
		ring.NewShardedEngine(),
	}
}

// scaleIters picks how many timed iterations a cell of size n gets: enough
// to average out scheduler noise at small n, few enough that the 2^20 cell
// stays respectful of CI time.
func scaleIters(n int, suite Suite) int {
	budget := 1 << 22
	if suite == SuiteQuick {
		budget = 1 << 18
	}
	iters := budget / n
	if iters < 3 {
		iters = 3
	}
	return iters
}

// timedRuns executes the recognizer iters times on word with a reused,
// pre-sized run state, and returns the per-run wall time and steady-state
// heap allocations plus the (schedule-independent) result of the final run.
// The run state is reused and the ring is relabelled in place run to run
// (core.NodeReuse), so the numbers measure the engine loop, not per-run
// construction. Warm-up runs precede the measurement so neither cold-start
// growth of the queue, arena and context arrays (that path has its own
// allocation guards in internal/ring) nor first-touch costs of the process — page faults on fresh
// heap spans, GC pacing against a not-yet-established live set — pollute the
// steady-state numbers. One warm-up is not enough for the latter on 2^20
// rings: the very first large cell otherwise reads several times slower than
// an identical cell run second.
func timedRuns(rec core.Recognizer, word lang.Word, engine ring.Engine, iters int) (nsPerOp, allocsPerOp float64, res *ring.Result, err error) {
	st := ring.NewRunState()
	opts := core.RunOptions{Engine: engine, State: st, Presize: len(word), Ctx: defaultCtx, Reuse: core.NewNodeReuse()}
	warmups := 2 + iters/4
	if warmups > 8 {
		warmups = 8
	}
	for i := 0; i < warmups; i++ {
		if _, err = core.Run(rec, word, opts); err != nil {
			return 0, 0, nil, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if res, err = core.Run(rec, word, opts); err != nil {
			return 0, 0, nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return nsPerOp, allocsPerOp, res, nil
}

// ExperimentE15 is the large-ring engine sweep: the count algorithm (one
// Θ(log n)-bit token, one circuit — the lightest Θ(n log n) workload in the
// catalog, so engine overhead dominates) timed at ring sizes up to 2^20 under
// the serial and the sharded engine, with reused pre-sized run state. The
// bits column cross-checks the engines against each other; the ns/op and
// allocs/op columns are the perf trajectory that BENCH_engine.json pins at
// the repo root.
func ExperimentE15(sizes []int, suite Suite) (*Table, error) {
	table := &Table{
		ID:    "E15",
		Title: "large-ring engine: time and allocation trajectory (count, reused pre-sized state)",
		PaperClaim: "engine scaffolding, not a paper claim: the Θ(n log n) count workload at n up to 2^20, " +
			"bit-identical across engines",
		Columns: []string{"n", "engine", "bits", "msgs", "bits/(n lg n)", "ns/op", "ns/op/n", "allocs/op"},
	}
	for _, n := range sizes {
		root := int(math.Round(math.Sqrt(float64(n))))
		if root*root != n {
			return nil, fmt.Errorf("bench: E15 size %d is not a perfect square", n)
		}
		rec := core.NewSquareCount()
		word, err := sweepWord(rec, n, MeasureOptions{WindowSet: true}.normalize())
		if err != nil {
			return nil, err
		}
		if len(word) != n {
			return nil, fmt.Errorf("bench: E15 wanted a member of length %d, generator produced %d", n, len(word))
		}
		iters := scaleIters(n, suite)
		wantBits := -1
		for _, engine := range scaleEngines() {
			nsPerOp, allocsPerOp, res, err := timedRuns(rec, word, engine, iters)
			if err != nil {
				return nil, fmt.Errorf("bench: E15 %s at n=%d: %w", engine.Name(), n, err)
			}
			if res.Verdict != ring.VerdictAccept {
				return nil, fmt.Errorf("bench: E15 %s at n=%d: rejected a perfect-square length", engine.Name(), n)
			}
			if wantBits < 0 {
				wantBits = res.Stats.Bits
			} else if res.Stats.Bits != wantBits {
				return nil, fmt.Errorf("bench: E15 at n=%d: %s counted %d bits, expected %d",
					n, engine.Name(), res.Stats.Bits, wantBits)
			}
			table.AddRow(
				fmtInt(n), engine.Name(),
				fmtInt(res.Stats.Bits), fmtInt(res.Stats.Messages),
				perNLogN(res.Stats.Bits, n),
				fmt.Sprintf("%.0f", nsPerOp),
				fmt.Sprintf("%.1f", nsPerOp/float64(n)),
				fmt.Sprintf("%.1f", allocsPerOp),
			)
			table.AddRecord(BenchRecord{
				Algorithm:   rec.Name(),
				Schedule:    engine.Name(),
				N:           n,
				Bits:        res.Stats.Bits,
				Messages:    res.Stats.Messages,
				NsPerOp:     nsPerOp,
				AllocsPerOp: allocsPerOp,
			})
		}
	}
	table.Notes = append(table.Notes,
		"timings average the post-warm-up steady state: the run state is pre-sized (WithPresize), so allocs/op is the reuse floor, not cold-start growth",
		fmt.Sprintf("sharded engine sizing on this host: GOMAXPROCS=%d (below 2 effective workers it falls back to the serial loop, by design)", runtime.GOMAXPROCS(0)),
	)
	return table, nil
}
