package bench

import (
	"strings"
	"testing"
)

func TestPlotLogLog(t *testing.T) {
	series := []Series{
		{Name: "linear", Points: []Point{{N: 10, Bits: 10}, {N: 100, Bits: 100}, {N: 1000, Bits: 1000}}},
		{Name: "quadratic", Points: []Point{{N: 10, Bits: 100}, {N: 100, Bits: 10000}, {N: 1000, Bits: 1000000}}},
	}
	out := PlotLogLog(series, 40, 12)
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "a=linear") || !strings.Contains(out, "b=quadratic") {
		t.Errorf("plot missing legend entries:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 14 {
		t.Error("plot should contain the grid rows")
	}
	if got := PlotLogLog(nil, 40, 12); !strings.Contains(got, "no data") {
		t.Errorf("empty plot = %q", got)
	}
	// Degenerate sizes are clamped rather than panicking.
	if out := PlotLogLog(series, 1, 1); out == "" {
		t.Error("clamped plot should still render")
	}
}

func TestScalingFigure(t *testing.T) {
	figure, err := ScalingFigure([]int{32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"regular-one-pass", "count", "compare-wcw", "legend:"} {
		if !strings.Contains(figure, want) {
			t.Errorf("figure missing %q", want)
		}
	}
}
