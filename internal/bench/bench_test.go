package bench

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

func TestFitLogLogSlope(t *testing.T) {
	linear := []Point{{N: 10, Bits: 100}, {N: 100, Bits: 1000}, {N: 1000, Bits: 10000}}
	if got := FitLogLogSlope(linear); math.Abs(got-1) > 0.01 {
		t.Errorf("linear slope = %f, want 1", got)
	}
	quadratic := []Point{{N: 10, Bits: 300}, {N: 100, Bits: 30000}, {N: 1000, Bits: 3000000}}
	if got := FitLogLogSlope(quadratic); math.Abs(got-2) > 0.01 {
		t.Errorf("quadratic slope = %f, want 2", got)
	}
	if !math.IsNaN(FitLogLogSlope(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID:         "T",
		Title:      "demo",
		PaperClaim: "claim",
		Columns:    []string{"a", "bbb"},
		Notes:      []string{"a note"},
	}
	table.AddRow("1", "2")
	table.AddRow("333", "4")
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "paper: claim", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureRecognizerChecksVerdicts(t *testing.T) {
	points, err := MeasureRecognizer(core.NewThreeCounters(), []int{9, 30}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].N != 9 || points[1].N != 30 {
		t.Fatalf("points = %+v", points)
	}
	nonMembers, err := MeasureRecognizer(core.NewThreeCounters(), []int{10}, MeasureOptions{Kind: NonMemberWords})
	if err != nil {
		t.Fatal(err)
	}
	if nonMembers[0].Bits <= 0 {
		t.Error("non-member run should still transmit bits")
	}
}

func TestMeasureOneReturnsWordAndTrace(t *testing.T) {
	p, res, word, err := MeasureOne(core.NewSquareCount(), 16, MeasureOptions{Kind: RandomWords}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 16 || len(word) != 16 {
		t.Errorf("point/word size mismatch: %d / %d", p.N, len(word))
	}
	if len(res.Trace) == 0 {
		t.Error("expected a recorded trace")
	}
	if len(InputsForTrace(word)) != 16 {
		t.Error("InputsForTrace size mismatch")
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E2b", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "A1", "A2", "A3"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := ByID("E3"); err != nil {
		t.Errorf("ByID(E3): %v", err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// extractColumn pulls an integer column from a table by header name.
func extractColumn(t *testing.T, table *Table, name string) []int {
	t.Helper()
	col := -1
	for i, c := range table.Columns {
		if c == name {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("table %s has no column %q", table.ID, name)
	}
	out := make([]int, 0, len(table.Rows))
	for _, row := range table.Rows {
		v, err := strconv.Atoi(row[col])
		if err != nil {
			t.Fatalf("column %q cell %q is not an integer", name, row[col])
		}
		out = append(out, v)
	}
	return out
}

func TestExperimentE1QuickShape(t *testing.T) {
	table, err := ExperimentE1([]int{32, 128})
	if err != nil {
		t.Fatal(err)
	}
	// bits == ceil(log|Q|) * n for every row.
	bitsCol := extractColumn(t, table, "bits")
	nCol := extractColumn(t, table, "n")
	qBits := extractColumn(t, table, "ceil(log|Q|)")
	for i := range bitsCol {
		if bitsCol[i] != nCol[i]*qBits[i] {
			t.Errorf("row %d: bits %d != n·⌈log|Q|⌉ %d", i, bitsCol[i], nCol[i]*qBits[i])
		}
	}
}

func TestExperimentE7QuickShape(t *testing.T) {
	table, err := ExperimentE7([]int{1, 3, 5}, 32)
	if err != nil {
		t.Fatal(err)
	}
	twoPass := extractColumn(t, table, "two-pass bits")
	twoPassFormula := extractColumn(t, table, "(2k+1)n")
	onePass := extractColumn(t, table, "one-pass bits")
	onePassFormula := extractColumn(t, table, "(k+2^k-1)n")
	for i := range twoPass {
		if twoPass[i] != twoPassFormula[i] {
			t.Errorf("row %d: two-pass bits %d != formula %d", i, twoPass[i], twoPassFormula[i])
		}
		if onePass[i] != onePassFormula[i] {
			t.Errorf("row %d: one-pass bits %d != formula %d", i, onePass[i], onePassFormula[i])
		}
	}
	// For k=5 the two-pass algorithm must win; for k=1 the one-pass wins.
	if table.Rows[0][len(table.Columns)-1] != "one-pass" {
		t.Errorf("k=1 winner = %s, want one-pass", table.Rows[0][len(table.Columns)-1])
	}
	if table.Rows[2][len(table.Columns)-1] != "two-pass" {
		t.Errorf("k=5 winner = %s, want two-pass", table.Rows[2][len(table.Columns)-1])
	}
}

func TestExperimentE6QuickShape(t *testing.T) {
	table, err := ExperimentE6([]int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	unknown := extractColumn(t, table, "bits (n unknown)")
	known := extractColumn(t, table, "bits (n known)")
	for i := range unknown {
		if known[i] >= unknown[i] {
			t.Errorf("row %d: known-n bits %d should be below unknown-n bits %d", i, known[i], unknown[i])
		}
	}
}

func TestExperimentA1UnaryIsQuadratic(t *testing.T) {
	table, err := ExperimentA1([]int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	// Find the unary rows and check they dwarf the delta rows at n=256.
	var deltaBits, unaryBits int
	for _, row := range table.Rows {
		if row[1] != "256" {
			continue
		}
		switch row[0] {
		case "delta":
			deltaBits, _ = strconv.Atoi(row[2])
		case "unary":
			unaryBits, _ = strconv.Atoi(row[2])
		}
	}
	if deltaBits == 0 || unaryBits == 0 {
		t.Fatal("missing rows in A1 table")
	}
	if unaryBits < 10*deltaBits {
		t.Errorf("unary counters (%d bits) should be far above delta counters (%d bits)", unaryBits, deltaBits)
	}
}

func TestExperimentE2bQuickShape(t *testing.T) {
	table, err := ExperimentE2b([]int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	// The regular recognizer's distinct-state count must not grow with n;
	// the counting recognizer's must.
	var regular, counting []int
	nCol := extractColumn(t, table, "n")
	distinct := extractColumn(t, table, "distinct info states")
	for i, row := range table.Rows {
		switch row[0] {
		case "regular-one-pass":
			regular = append(regular, distinct[i])
		case "count":
			counting = append(counting, distinct[i])
		}
		_ = nCol
	}
	if len(regular) < 2 || len(counting) < 2 {
		t.Fatal("missing rows in E2b table")
	}
	if regular[len(regular)-1] > 8 {
		t.Errorf("regular recognizer has %d distinct information states; expected a small constant", regular[len(regular)-1])
	}
	if counting[1] <= counting[0] {
		t.Errorf("counting recognizer distinct states should grow with n: %v", counting)
	}
}

func TestWordForSizeErrors(t *testing.T) {
	// (ab)* over sizes where no member exists within the window.
	reg, err := lang.NewRegularFromRegex("(ab)*", "(ab)*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureRecognizer(core.NewRegularOnePass(reg), []int{7}, MeasureOptions{Window: 0}); err == nil {
		// Window 0 normalizes to the default window of 8, which will find a
		// member of size 8, so this must succeed instead.
		t.Log("window normalization found a nearby member (expected)")
	}
	language := lang.NewLengthLanguage("always", func(int) bool { return true })
	if _, err := MeasureRecognizer(core.NewCount(language), []int{5}, MeasureOptions{Kind: NonMemberWords}); err == nil {
		t.Error("expected an error: the 'always' language has no non-members")
	}
}
