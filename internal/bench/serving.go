package bench

import (
	"fmt"
	"math/rand"

	"ringlang"
	"ringlang/internal/memo"
)

// servingDistinctWords is how many distinct words the E14 traffic draws
// from, and servingRequests how many requests hit each sweep cell. The point
// of the experiment is requests ≫ distinct: production recognition traffic
// repeats words, and every repeat must be a cache hit.
const (
	servingDistinctWords = 8
	servingRequests      = 256
)

// servingWords builds the distinct member words of one E14 cell: 0^k1^k2^k
// for consecutive k starting near n/3, so every word is distinct by length
// and the cell's ring sizes cluster around n.
func servingWords(n int) []ringlang.Word {
	words := make([]ringlang.Word, servingDistinctWords)
	base := n/3 + 1
	for j := range words {
		k := base + j
		w := make(ringlang.Word, 0, 3*k)
		for _, letter := range []rune{'0', '1', '2'} {
			for i := 0; i < k; i++ {
				w = append(w, letter)
			}
		}
		words[j] = w
	}
	return words
}

// ExperimentE14 is the serving-tier sweep behind ringserve: repeated-word
// traffic through the memo cache in front of a ringlang Client — the exact
// lookup-then-run-then-store path internal/server executes per request. Each
// row fires servingRequests uniformly across servingDistinctWords distinct
// words and reports how many engine runs the traffic actually cost. The
// serving claim is the "runs = distinct" column: a repeated word never
// re-runs an engine, so engine work scales with the working set, not the
// request volume, and the hit ratio converges to 1 − distinct/requests.
func ExperimentE14(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E14",
		Title:      "Serving tier: memo cache hit ratio on repeated-word traffic",
		PaperClaim: "recognition is a pure function of (algorithm, language, schedule, seed, word) — memoized repeats cost zero engine runs",
		Columns:    []string{"n", "requests", "distinct", "engine runs", "hits", "hit ratio", "runs = distinct"},
	}
	client, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		return nil, err
	}
	defer client.Close()
	ctx := DefaultContext()
	for _, n := range sizes {
		words := servingWords(n)
		cache := memo.New[*ringlang.Report](4*servingDistinctWords, 0)
		rng := rand.New(rand.NewSource(DefaultSeed + int64(n)))
		engineRuns := 0
		for i := 0; i < servingRequests; i++ {
			word := words[rng.Intn(len(words))]
			key := memo.Key{Algorithm: "three-counters", Language: "", Schedule: "sequential", Word: word.String()}
			if _, ok := cache.Get(key); ok {
				continue
			}
			report, err := client.Recognize(ctx, word)
			if err != nil {
				return nil, fmt.Errorf("bench: E14 at n=%d: %w", n, err)
			}
			engineRuns++
			cache.Put(key, report)
		}
		st := cache.Stats()
		t.AddRow(
			fmtInt(n),
			fmtInt(servingRequests),
			fmtInt(servingDistinctWords),
			fmtInt(engineRuns),
			fmtInt(int(st.Hits)),
			fmtFloat(st.HitRatio()),
			fmt.Sprintf("%v", engineRuns == servingDistinctWords),
		)
	}
	t.Notes = append(t.Notes,
		"traffic: uniform draws over the distinct words; every repeat is served from the sharded LRU without touching an engine",
		"this is the cache path ringserve (internal/server) puts in front of every endpoint; GET /healthz exposes the same hit/miss counters")
	return t, nil
}
