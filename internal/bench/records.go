package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchRecord is one machine-readable measurement of a sweep cell. Tables
// that time their runs (E15) attach one record per cell; `ringbench -json`
// collects them across the experiments that ran and writes one document, so
// perf trajectories can be diffed commit over commit instead of eyeballed
// from rendered tables.
type BenchRecord struct {
	// Experiment is the table's identifier (e.g. "E15").
	Experiment string `json:"experiment"`
	// Algorithm is the recognizer name (core catalog).
	Algorithm string `json:"algorithm"`
	// Schedule is the delivery schedule / engine name of the cell.
	Schedule string `json:"schedule"`
	// N is the ring size.
	N int `json:"n"`
	// Bits and Messages are the engine-accounted totals of one run.
	Bits     int `json:"bits"`
	Messages int `json:"messages"`
	// NsPerOp is the wall-clock nanoseconds per full recognition run,
	// averaged over the cell's timed iterations.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocations per run in the steady state (the
	// run state is warmed before timing), averaged like NsPerOp.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// AddRecord attaches a machine-readable record to the table.
func (t *Table) AddRecord(r BenchRecord) {
	r.Experiment = t.ID
	t.Records = append(t.Records, r)
}

// RecordSet is the top-level shape of a `ringbench -json` document.
type RecordSet struct {
	// Suite is "full" or "quick".
	Suite string `json:"suite"`
	// Records are the collected measurements, in experiment-then-row order.
	Records []BenchRecord `json:"records"`
}

// WriteRecordsJSON writes the records of the given tables as one indented
// JSON document. Tables without records (the purely analytical experiments)
// contribute nothing; the document is deterministic for a fixed machine —
// only the timing fields vary run to run.
func WriteRecordsJSON(w io.Writer, suite Suite, tables []*Table) error {
	set := RecordSet{Suite: "full", Records: []BenchRecord{}}
	if suite == SuiteQuick {
		set.Suite = "quick"
	}
	for _, t := range tables {
		set.Records = append(set.Records, t.Records...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&set); err != nil {
		return fmt.Errorf("bench: encode records: %w", err)
	}
	return nil
}
