package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestExperimentE15AndRecordsJSON smoke-runs the large-ring sweep at a small
// perfect-square size and pins the machine-readable path end to end: one
// record per (size × engine) cell, bit-identical engines, and a -json
// document that round-trips through encoding/json.
func TestExperimentE15AndRecordsJSON(t *testing.T) {
	table, err := ExperimentE15([]int{1024}, SuiteQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 || len(table.Records) != 2 {
		t.Fatalf("got %d rows / %d records, want 2/2 (sequential + sharded)", len(table.Rows), len(table.Records))
	}
	seq, shr := table.Records[0], table.Records[1]
	if seq.Schedule != "sequential" || shr.Schedule != "sharded" {
		t.Fatalf("record schedules %q/%q, want sequential/sharded", seq.Schedule, shr.Schedule)
	}
	for _, r := range table.Records {
		if r.Experiment != "E15" || r.Algorithm != "count" || r.N != 1024 {
			t.Errorf("record identity fields wrong: %+v", r)
		}
		if r.Bits <= 0 || r.Messages != 1024 || r.NsPerOp <= 0 {
			t.Errorf("record measurements not populated: %+v", r)
		}
	}
	if seq.Bits != shr.Bits {
		t.Errorf("engines disagree on bits: %d vs %d", seq.Bits, shr.Bits)
	}

	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, SuiteQuick, []*Table{table}); err != nil {
		t.Fatal(err)
	}
	var set RecordSet
	if err := json.Unmarshal(buf.Bytes(), &set); err != nil {
		t.Fatalf("-json document does not round-trip: %v\n%s", err, buf.String())
	}
	if set.Suite != "quick" || len(set.Records) != 2 {
		t.Fatalf("decoded suite %q with %d records, want quick/2", set.Suite, len(set.Records))
	}
	if set.Records[0] != seq {
		t.Errorf("decoded record differs: %+v vs %+v", set.Records[0], seq)
	}
}

// TestExperimentE16QuickShape smoke-runs the prefix-checkpoint sweep at a
// small size: three records per cell (cold, warm-shared, warm-steady), the
// warm rows at or below the cold baseline in both time and (for the steady
// resume) allocations. The bit-identity cross-checks hard-fail inside the
// experiment itself, so err == nil already covers them.
func TestExperimentE16QuickShape(t *testing.T) {
	table, err := ExperimentE16([]int{1024}, SuiteQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || len(table.Records) != 3 {
		t.Fatalf("got %d rows / %d records, want 3/3 (cold, warm-shared, warm-steady)", len(table.Rows), len(table.Records))
	}
	cold, shared, steady := table.Records[0], table.Records[1], table.Records[2]
	if cold.Schedule != "sequential/cold" ||
		shared.Schedule != "sequential/warm-shared-7/8" ||
		steady.Schedule != "sequential/warm-steady" {
		t.Fatalf("record schedules %q/%q/%q are not the three variants", cold.Schedule, shared.Schedule, steady.Schedule)
	}
	for _, r := range table.Records {
		if r.Experiment != "E16" || r.Algorithm != "majority" || r.N != 1024 {
			t.Errorf("record identity fields wrong: %+v", r)
		}
		if r.Bits <= 0 || r.Messages != 1024 || r.NsPerOp <= 0 {
			t.Errorf("record measurements not populated: %+v", r)
		}
	}
	if shared.NsPerOp >= cold.NsPerOp {
		t.Errorf("warm-shared %.0f ns/op should beat cold %.0f ns/op", shared.NsPerOp, cold.NsPerOp)
	}
	if steady.NsPerOp >= cold.NsPerOp {
		t.Errorf("warm-steady %.0f ns/op should beat cold %.0f ns/op", steady.NsPerOp, cold.NsPerOp)
	}
	if steady.AllocsPerOp > cold.AllocsPerOp+0.5 {
		t.Errorf("steady resume allocs %.1f/op above cold floor %.1f/op", steady.AllocsPerOp, cold.AllocsPerOp)
	}
}

// TestWriteRecordsJSONEmpty pins the no-records shape: a valid document with
// an empty records array, not a null.
func TestWriteRecordsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, SuiteFull, []*Table{{ID: "E1"}}); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["records"]) == "null" {
		t.Error("records should encode as [] when empty, got null")
	}
	if string(raw["suite"]) != `"full"` {
		t.Errorf("suite = %s, want \"full\"", raw["suite"])
	}
}
