package bench

import (
	"fmt"

	"ringlang/internal/core"
	"ringlang/internal/exec"
	"ringlang/internal/ring"
)

// ScheduleVariant is one point on the schedule axis of the full-factorial
// sweep: a named delivery schedule plus the seed randomized schedules run
// under.
type ScheduleVariant struct {
	Schedule string
	Seed     int64
}

// Label renders the variant as a column header.
func (v ScheduleVariant) Label() string {
	if v.Schedule == "random" {
		return fmt.Sprintf("random(%d)", v.Seed)
	}
	return v.Schedule
}

// ScheduleDimension is the schedule axis experiments sweep, alongside the
// algorithm and ring-size axes: every built-in schedule, with two seeds for
// the randomized one. The exactly-once fault schedules ride along — their
// drops, retransmissions and restarts are transport overhead outside the
// accounted bits, so their columns must agree with the reliable ones. (The
// weaker fault schedules, duplicating and crash-repair, live in E17: raw
// algorithms refuse them.)
func ScheduleDimension() []ScheduleVariant {
	return []ScheduleVariant{
		{Schedule: "sequential"},
		{Schedule: "random", Seed: 1},
		{Schedule: "random", Seed: 2},
		{Schedule: "round-robin"},
		{Schedule: "adversarial"},
		{Schedule: "concurrent"},
		{Schedule: "lossy", Seed: 1},
		{Schedule: "crash-restart", Seed: 1},
	}
}

// ExperimentE13 is the full-factorial schedule sweep: algorithms × ring sizes
// × delivery schedules, one bit-total column per schedule. The paper proves
// its bounds for every legal asynchronous schedule, so all columns of a row
// must agree — the table makes the schedule an enumerable experiment axis
// instead of a hardcoded engine choice.
//
// The grid is embarrassingly parallel — every cell is an independent
// execution on a word fixed per (algorithm, n) — so the cells fan out over a
// batch-execution pool (bench's default worker count, see SetDefaultWorkers)
// and the rows are assembled from the ordered results.
func ExperimentE13(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E13",
		Title:      "Schedule axis: bit totals across delivery schedules",
		PaperClaim: "bit complexity is schedule-independent: the bounds hold under every legal asynchronous schedule",
	}
	variants := ScheduleDimension()
	t.Columns = []string{"algorithm", "n"}
	for _, v := range variants {
		t.Columns = append(t.Columns, v.Label())
	}
	t.Columns = append(t.Columns, "agree")

	recs := []core.Recognizer{
		core.NewThreeCounters(),
		core.NewBalancedCounter(),
		core.NewCompareWcW(),
	}

	// One engine per variant, shared by every cell of its column: engines
	// are safe for concurrent use, and a shared engine is what lets each
	// pool worker reuse one run state per column instead of one per cell.
	// The engine is built explicitly so v.Seed drives only the delivery
	// order; the word generator keeps its default seed and every variant of
	// a row runs the exact same word.
	engines := make([]ring.Engine, len(variants))
	for i, v := range variants {
		engine, err := ring.NewEngineByName(v.Schedule, v.Seed)
		if err != nil {
			return nil, err
		}
		engines[i] = engine
	}

	// One job per (algorithm, n, schedule) cell, in row-major order.
	wordOpts := MeasureOptions{}.normalize()
	var jobs []exec.Job
	for _, rec := range recs {
		for _, n := range sizes {
			word, err := sweepWord(rec, n, wordOpts)
			if err != nil {
				return nil, err
			}
			for i := range variants {
				jobs = append(jobs, exec.Job{Rec: rec, Word: word, Engine: engines[i], Check: true})
			}
		}
	}
	results := exec.RunBatchContext(wordOpts.Ctx, jobs, exec.Options{Workers: wordOpts.Workers})

	disagreements := 0
	cell := 0
	for _, rec := range recs {
		for range sizes {
			row := []string{rec.Name(), ""}
			first, agree := 0, true
			for i, v := range variants {
				r := results[cell]
				if r.Err != nil {
					return nil, fmt.Errorf("schedule %s: %w", v.Label(), r.Err)
				}
				row[1] = fmtInt(len(jobs[cell].Word))
				if i == 0 {
					first = r.Stats.Bits
				} else if r.Stats.Bits != first {
					agree = false
				}
				row = append(row, fmtInt(r.Stats.Bits))
				cell++
			}
			verdict := "yes"
			if !agree {
				verdict = "NO"
				disagreements++
			}
			row = append(row, verdict)
			t.AddRow(row...)
		}
	}
	if disagreements == 0 {
		t.Notes = append(t.Notes, "all schedules agree on every (algorithm, n) cell, as the model requires")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("%d cells disagree — a schedule-sensitive algorithm slipped in", disagreements))
	}
	return t, nil
}
