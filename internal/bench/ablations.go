package bench

import (
	"fmt"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// ExperimentA1 is the counter-encoding ablation behind the O(n log n) totals:
// the same counting algorithm with Elias-δ, Elias-γ and unary counters.
func ExperimentA1(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "A1",
		Title:      "Ablation: counter encoding in the counting pass",
		PaperClaim: "self-delimiting logarithmic counter codes are what keep the counting algorithm at Θ(n log n); unary counters degrade it to Θ(n²)",
		Columns:    []string{"coding", "n", "bits", "bits/(n·log n)", "bits/n²"},
	}
	language := lang.NewPerfectSquareLength()
	for _, coding := range []core.CounterCoding{core.CodingDelta, core.CodingGamma, core.CodingUnary} {
		rec := core.NewCountWithCoding(language, coding)
		points, err := MeasureRecognizer(rec, sizes, MeasureOptions{Kind: RandomWords})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(coding.String(), fmtInt(p.N), fmtInt(p.Bits), perNLogN(p.Bits, p.N), perN2(p.Bits, p.N))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope = %.3f", coding, FitLogLogSlope(points)))
	}
	return t, nil
}

// ExperimentA2 is the automaton-minimization ablation: the one-pass regular
// recognizer with the raw subset-construction DFA versus the minimized one.
func ExperimentA2(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "A2",
		Title:      "Ablation: DFA minimization and the linear constant of Theorem 1",
		PaperClaim: "the one-pass algorithm costs ⌈log|Q|⌉·n bits, so minimizing |Q| directly lowers the constant",
		Columns:    []string{"automaton", "|Q|", "n", "bits", "bits/n"},
	}
	const expr = "(a|b)*abb"
	language, err := lang.NewRegularFromRegex("ends-abb", expr)
	if err != nil {
		return nil, err
	}
	raw, err := buildUnminimizedDFA(expr)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		rec  *core.RegularOnePass
		q    int
	}{
		{name: "subset-construction", rec: core.NewRegularOnePassWithDFA(language, raw), q: raw.NumStates},
		{name: "minimized", rec: core.NewRegularOnePass(language), q: language.DFA().NumStates},
	}
	for _, v := range variants {
		points, err := MeasureRecognizer(v.rec, sizes, MeasureOptions{Kind: RandomWords})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(v.name, fmtInt(v.q), fmtInt(p.N), fmtInt(p.Bits), perN(p.Bits, p.N))
		}
	}
	return t, nil
}

// ExperimentA3 is the engine ablation: the deterministic sequential engine
// and the goroutine-per-processor concurrent engine must account exactly the
// same bits for the deterministic recognizers.
func ExperimentA3(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "A3",
		Title:      "Ablation: sequential vs concurrent engine accounting",
		PaperClaim: "bit complexity is a property of the algorithm, not of the schedule: both engines must agree",
		Columns:    []string{"algorithm", "n", "sequential bits", "concurrent bits", "agree"},
	}
	recs := []core.Recognizer{core.NewThreeCounters(), core.NewCompareWcW()}
	for _, rec := range recs {
		for _, n := range sizes {
			seqPts, err := MeasureRecognizer(rec, []int{n}, MeasureOptions{})
			if err != nil {
				return nil, err
			}
			concPts, err := MeasureRecognizer(rec, []int{n}, MeasureOptions{Engine: ring.NewConcurrentEngine()})
			if err != nil {
				return nil, err
			}
			agree := "yes"
			if seqPts[0].Bits != concPts[0].Bits {
				agree = "NO"
			}
			t.AddRow(rec.Name(), fmtInt(seqPts[0].N), fmtInt(seqPts[0].Bits), fmtInt(concPts[0].Bits), agree)
		}
	}
	return t, nil
}
