package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	// ID is the experiment identifier (E1..E10, A1..A3).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim is the asymptotic statement the experiment reproduces.
	PaperClaim string
	// Columns are the column headers.
	Columns []string
	// Rows hold the pre-formatted cells.
	Rows [][]string
	// Notes are free-form remarks appended after the table.
	Notes []string
	// Records are the machine-readable measurements behind the rows, for
	// tables that produce them (see BenchRecord and `ringbench -json`).
	Records []BenchRecord
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in an aligned plain-text format.
func (t *Table) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", note)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// Point is one measurement of a sweep.
type Point struct {
	// N is the ring size.
	N int
	// X is the sweep parameter when it is not the ring size (e.g. k in E7);
	// zero otherwise.
	X int
	// Bits and Messages are the engine-accounted totals.
	Bits     int
	Messages int
}

// FitLogLogSlope estimates the exponent e such that Bits ≈ c·Nᵉ, by an
// ordinary least-squares fit of log(Bits) against log(N). It needs at least
// two points with distinct N.
func FitLogLogSlope(points []Point) float64 {
	var xs, ys []float64
	for _, p := range points {
		if p.N > 1 && p.Bits > 0 {
			xs = append(xs, math.Log(float64(p.N)))
			ys = append(ys, math.Log(float64(p.Bits)))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(len(xs)), sumY/float64(len(ys))
	var num, den float64
	for i := range xs {
		num += (xs[i] - meanX) * (ys[i] - meanY)
		den += (xs[i] - meanX) * (xs[i] - meanX)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// formatting helpers shared by the experiment tables.

func fmtInt(v int) string {
	return fmt.Sprintf("%d", v)
}

func fmtFloat(v float64) string {
	return fmt.Sprintf("%.2f", v)
}

func perN(bitsTotal, n int) string {
	return fmtFloat(float64(bitsTotal) / float64(n))
}

func perNLogN(bitsTotal, n int) string {
	if n < 2 {
		return "-"
	}
	return fmtFloat(float64(bitsTotal) / (float64(n) * math.Log2(float64(n))))
}

func perN2(bitsTotal, n int) string {
	return fmt.Sprintf("%.4f", float64(bitsTotal)/(float64(n)*float64(n)))
}
