package bench

import (
	"context"
	"testing"

	"ringlang"
	"ringlang/internal/memo"
)

// TestExperimentE14ServesRepeatsFromCache pins the serving-tier claim the
// E14 table prints: on repeated-word traffic the engine runs exactly once
// per distinct word, and every other request is a hit.
func TestExperimentE14ServesRepeatsFromCache(t *testing.T) {
	table, err := ExperimentE14([]int{48, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(table.Rows))
	}
	for _, row := range table.Rows {
		// Columns: n, requests, distinct, engine runs, hits, hit ratio, runs = distinct.
		if row[2] != row[3] {
			t.Errorf("n=%s: %s engine runs for %s distinct words — repeats re-ran the engine", row[0], row[3], row[2])
		}
		if row[6] != "true" {
			t.Errorf("n=%s: runs = distinct column reports %s", row[0], row[6])
		}
	}
}

// TestServingHitPathZeroEngineAllocs is the serving twin of the engine-loop
// alloc guards: once a report is cached, serving it again costs zero
// allocations — in particular zero engine allocations, because the engine is
// never entered.
func TestServingHitPathZeroEngineAllocs(t *testing.T) {
	client, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cache := memo.New[*ringlang.Report](64, 0)
	word := ringlang.WordFromString("000111222")
	key := memo.Key{Algorithm: "three-counters", Schedule: "sequential", Word: word.String()}
	report, err := client.Recognize(context.Background(), word)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, report)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := cache.Get(key); !ok {
			t.Fatal("warmed key missed")
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f times per request, want 0 (and zero engine runs)", allocs)
	}
}

// BenchmarkServingHitVsMiss measures the two serving paths side by side: a
// memoized repeat against a full engine run, on the same word.
func BenchmarkServingHitVsMiss(b *testing.B) {
	client, err := ringlang.NewClient("three-counters", "")
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	word := servingWords(192)[0]
	key := memo.Key{Algorithm: "three-counters", Schedule: "sequential", Word: word.String()}

	b.Run("miss(engine-run)", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := client.Recognize(ctx, word); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit(memo)", func(b *testing.B) {
		cache := memo.New[*ringlang.Report](64, 0)
		report, err := client.Recognize(ctx, word)
		if err != nil {
			b.Fatal(err)
		}
		cache.Put(key, report)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cache.Get(key); !ok {
				b.Fatal("miss on warmed key")
			}
		}
	})
}
