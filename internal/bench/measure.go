package bench

import (
	"context"
	"fmt"
	"math/rand"

	"ringlang"
	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// DefaultSeed makes every sweep reproducible; the workload generators are
// seeded per (experiment, size) so adding sizes does not perturb existing
// rows.
const DefaultSeed int64 = 20260616

// WordKind selects which kind of word a sweep feeds the recognizer.
type WordKind int

const (
	// MemberWords feeds member words (accepting runs).
	MemberWords WordKind = iota + 1
	// NonMemberWords feeds near-miss non-members (rejecting runs).
	NonMemberWords
	// RandomWords feeds uniformly random words over the alphabet.
	RandomWords
)

// MeasureOptions configures a sweep.
type MeasureOptions struct {
	// Kind selects member / non-member / random inputs (default member).
	Kind WordKind
	// Engine pins the engine of the sweep. When nil, Schedule names one
	// (see ring.ScheduleNames); when that is empty too, the sweep runs on
	// the package default (sequential unless SetDefaultSchedule changed it).
	Engine ring.Engine
	// Schedule names the delivery schedule when Engine is nil. It is a
	// scenario dimension: the same sweep rerun under another schedule must
	// report the same bits, and experiments sweep it like sizes.
	Schedule string
	// Seed defaults to DefaultSeed. It seeds the word generators and any
	// randomized schedule. A zero Seed means "use the default"; to actually
	// sweep with seed 0, set SeedSet.
	Seed int64
	// SeedSet makes an explicit zero Seed usable: when true, Seed is taken
	// verbatim instead of being replaced by DefaultSeed.
	SeedSet bool
	// Window is how far above the requested size the generator may go when
	// the language has no word of exactly that size (default 8).
	Window int
	// WindowSet makes an explicit zero Window (exact sizes only, no slack)
	// usable: when true, Window is taken verbatim instead of defaulting to 8.
	WindowSet bool
	// Workers is the number of worker goroutines the sweep fans its sizes
	// across. Zero means the package default (serial unless
	// SetDefaultWorkers changed it); 1 forces serial. Any worker count
	// produces results bit-identical to the serial sweep.
	Workers int
	// Ctx cancels the sweep: runs abort with an error wrapping
	// ring.ErrCanceled. Nil means the package default (context.Background
	// unless SetDefaultContext changed it — cmd/ringbench installs its
	// signal context there, so Ctrl-C stops a sweep mid-flight).
	Ctx context.Context
}

func (o MeasureOptions) normalize() MeasureOptions {
	if o.Kind == 0 {
		o.Kind = MemberWords
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = DefaultSeed
	}
	if o.Window == 0 && !o.WindowSet {
		o.Window = 8
	}
	if o.Workers == 0 {
		o.Workers = defaultWorkers
	}
	if o.Ctx == nil {
		o.Ctx = defaultCtx
	}
	return o
}

// engine resolves the sweep's engine after normalization.
func (o MeasureOptions) engine() (ring.Engine, error) {
	if o.Engine != nil {
		return o.Engine, nil
	}
	if o.Schedule != "" {
		return ring.NewEngineByName(o.Schedule, o.Seed)
	}
	return defaultEngine(), nil
}

// defaultEngine builds the engine used by sweeps that pin neither an engine
// nor a schedule. cmd/ringbench's -schedule flag replaces it via
// SetDefaultSchedule so a whole experiment run can be repeated under another
// delivery schedule.
var defaultEngine = func() ring.Engine { return ring.NewSequentialEngine() }

// SetDefaultSchedule routes every sweep that does not explicitly choose an
// engine or schedule through the named schedule (see ring.ScheduleNames).
// It mutates a package-wide default and is not synchronized: call it once at
// process start, before any sweep runs, the way cmd/ringbench does.
func SetDefaultSchedule(name string, seed int64) error {
	engine, err := ring.NewEngineByName(name, seed)
	if err != nil {
		return err
	}
	// Engines are reusable across runs, so the resolved value is captured
	// directly rather than re-resolved (and its error dropped) per sweep.
	defaultEngine = func() ring.Engine { return engine }
	return nil
}

// defaultWorkers is the sweep parallelism used when MeasureOptions.Workers
// is zero; 1 (or less) means serial. cmd/ringbench's -workers flag sets it.
var defaultWorkers = 1

// SetDefaultWorkers routes every sweep that does not set its own Workers
// through a pool of n workers (n < 1 selects runtime.GOMAXPROCS). Like
// SetDefaultSchedule it is a process-start knob, not a synchronized one.
func SetDefaultWorkers(n int) {
	defaultWorkers = n
}

// defaultCtx is the context sweeps run under when MeasureOptions.Ctx is nil;
// cmd/ringbench's signal handling replaces it via SetDefaultContext.
var defaultCtx = context.Background()

// SetDefaultContext routes every sweep that does not carry its own Ctx
// through ctx, so one cancellation stops a whole experiment run. Like
// SetDefaultSchedule it is a process-start knob, not a synchronized one.
func SetDefaultContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	defaultCtx = ctx
}

// DefaultContext returns the context installed by SetDefaultContext
// (context.Background unless changed); RunAll polls it between experiments.
func DefaultContext() context.Context {
	return defaultCtx
}

// wordForSize produces the input word for one sweep point.
func wordForSize(language lang.Language, n int, kind WordKind, window int, rng *rand.Rand) (lang.Word, error) {
	switch kind {
	case NonMemberWords:
		for d := 0; d <= window; d++ {
			if w, ok := language.GenerateNonMember(n+d, rng); ok {
				return w, nil
			}
		}
		return nil, fmt.Errorf("bench: %s has no non-member near length %d", language.Name(), n)
	case RandomWords:
		return lang.RandomWord(language.Alphabet(), n, rng), nil
	default:
		w, _, err := lang.MemberOrSkip(language, n, window, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: %s has no member near length %d: %w", language.Name(), n, err)
		}
		return w, nil
	}
}

// MeasureRecognizer runs one recognizer across the ring sizes and returns one
// Point per size. Verdicts are cross-checked against the language. With
// Workers above 1 the sizes are fanned across a batch-execution pool; the
// points are bit-identical to the serial sweep in either case, because every
// size's word generator and delivery schedule are seeded independently of
// execution order.
func MeasureRecognizer(rec core.Recognizer, sizes []int, opts MeasureOptions) ([]Point, error) {
	opts = opts.normalize()
	engine, err := opts.engine()
	if err != nil {
		return nil, err
	}
	if opts.Workers != 1 {
		return measureParallel(rec, sizes, opts, engine)
	}
	points := make([]Point, 0, len(sizes))
	for _, n := range sizes {
		word, err := sweepWord(rec, n, opts)
		if err != nil {
			return nil, err
		}
		var res *ring.Result
		if opts.Kind == RandomWords {
			res, err = core.Run(rec, word, core.RunOptions{Engine: engine, Ctx: opts.Ctx})
		} else {
			res, err = core.Check(rec, word, core.RunOptions{Engine: engine, Ctx: opts.Ctx})
		}
		if err != nil {
			return nil, fmt.Errorf("bench: %s at n=%d: %w", rec.Name(), n, err)
		}
		points = append(points, Point{N: len(word), Bits: res.Stats.Bits, Messages: res.Stats.Messages})
	}
	return points, nil
}

// sweepWord generates the input word for size n of a sweep, with the
// per-size seeding that keeps every sweep point independent of the others.
func sweepWord(rec core.Recognizer, n int, opts MeasureOptions) (lang.Word, error) {
	rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
	return wordForSize(rec.Language(), n, opts.Kind, opts.Window, rng)
}

// measureParallel is the pooled sweep behind MeasureRecognizer: words are
// generated up front (cheap and sequential), the runs fan out through a
// ringlang.Client batch, whose pool workers reuse their run state per size.
func measureParallel(rec core.Recognizer, sizes []int, opts MeasureOptions, engine ring.Engine) ([]Point, error) {
	client, err := ringlang.NewClientWith(rec, ringlang.WithEngine(engine), ringlang.WithWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	defer client.Close()
	words := make([]lang.Word, len(sizes))
	for i, n := range sizes {
		word, err := sweepWord(rec, n, opts)
		if err != nil {
			return nil, err
		}
		words[i] = word
	}
	results := client.Batch(opts.Ctx, words)
	points := make([]Point, len(sizes))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("bench: %s at n=%d: %w", rec.Name(), sizes[i], r.Err)
		}
		// Mirrors core.Check on the serial path: the client reports the
		// verdict and the language's own answer, the sweep insists they agree.
		if opts.Kind != RandomWords && (r.Report.Verdict == ring.VerdictAccept) != r.Report.Member {
			return nil, fmt.Errorf("bench: %s at n=%d: decided %v on %q but the language says member=%v",
				rec.Name(), sizes[i], r.Report.Verdict, words[i].String(), r.Report.Member)
		}
		points[i] = Point{N: len(words[i]), Bits: r.Report.Bits, Messages: r.Report.Messages}
	}
	return points, nil
}

// MeasureOne runs a recognizer on a single generated word and returns the
// point, the engine result and the word itself (used by experiments that need
// traces and per-processor inputs).
func MeasureOne(rec core.Recognizer, n int, opts MeasureOptions, recordTrace bool) (Point, *ring.Result, lang.Word, error) {
	opts = opts.normalize()
	engine, err := opts.engine()
	if err != nil {
		return Point{}, nil, nil, err
	}
	word, err := sweepWord(rec, n, opts)
	if err != nil {
		return Point{}, nil, nil, err
	}
	res, err := core.Run(rec, word, core.RunOptions{Engine: engine, RecordTrace: recordTrace, Ctx: opts.Ctx})
	if err != nil {
		return Point{}, nil, nil, fmt.Errorf("bench: %s at n=%d: %w", rec.Name(), n, err)
	}
	return Point{N: len(word), Bits: res.Stats.Bits, Messages: res.Stats.Messages}, res, word, nil
}

// InputsForTrace renders per-processor inputs for information-state analysis
// of a run on the given word.
func InputsForTrace(word lang.Word) []string {
	out := make([]string, len(word))
	for i, letter := range word {
		out[i] = string(letter)
	}
	return out
}
