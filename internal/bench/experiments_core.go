package bench

import (
	"fmt"
	"math"

	"ringlang/internal/automata"
	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/trace"
)

// Default sweep sizes. They are exported so the cmd tool can scale them down
// for quick runs.
var (
	// LinearSizes is used by the O(n) and O(n log n) experiments.
	LinearSizes = []int{64, 256, 1024, 4096}
	// QuadraticSizes is used by the Θ(n²) experiments (odd, so wcw members
	// exist at exactly these sizes).
	QuadraticSizes = []int{65, 129, 257, 513, 1025}
	// HierarchySizes is used by the L_g experiments.
	HierarchySizes = []int{64, 256, 1024}
	// TraceSizes is used by the information-state experiment (traces are
	// memory hungry).
	TraceSizes = []int{32, 64, 128, 256}
	// TMSizes is used by the TM transformation experiment (the example
	// machines are Θ(n²)-time).
	TMSizes = []int{8, 16, 32, 64}
)

// ExperimentE1 measures Theorem 1/6: every regular language is recognized
// with exactly ⌈log |Q|⌉·n bits by the one-pass DFA-state algorithm.
func ExperimentE1(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E1",
		Title:      "Regular languages in O(n) bits (Theorem 1/6)",
		PaperClaim: "a language is recognized with O(n) bits iff it is regular; the one-pass algorithm uses ⌈log|Q|⌉ bits per message",
		Columns:    []string{"language", "|Q|", "n", "bits", "bits/n", "ceil(log|Q|)"},
	}
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		return nil, err
	}
	for _, reg := range regs {
		rec := core.NewRegularOnePass(reg)
		points, err := MeasureRecognizer(rec, sizes, MeasureOptions{Kind: RandomWords})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(reg.Name(), fmtInt(reg.DFA().NumStates), fmtInt(p.N), fmtInt(p.Bits),
				perN(p.Bits, p.N), fmtInt(rec.StateBits()))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope = %.3f (linear ⇒ ≈1)",
			reg.Name(), FitLogLogSlope(points)))
	}
	return t, nil
}

// ExperimentE2 measures the Ω(n log n) class (Theorem 4/5): the counting
// recognizer for a non-regular length language and the three-counter
// recognizer both scale as n log n.
func ExperimentE2(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E2",
		Title:      "Non-regular languages need Ω(n log n) bits (Theorem 4/5)",
		PaperClaim: "every non-regular language requires Ω(n log n) bits; counting-based recognizers meet the bound",
		Columns:    []string{"algorithm", "language", "n", "bits", "bits/(n·log n)", "bits/n"},
	}
	recs := []core.Recognizer{core.NewSquareCount(), core.NewThreeCounters()}
	for _, rec := range recs {
		points, err := MeasureRecognizer(rec, sizes, MeasureOptions{})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(rec.Name(), rec.Language().Name(), fmtInt(p.N), fmtInt(p.Bits),
				perNLogN(p.Bits, p.N), perN(p.Bits, p.N))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope = %.3f (n log n ⇒ slightly above 1)",
			rec.Name(), FitLogLogSlope(points)))
	}
	return t, nil
}

// ExperimentE2b measures the lower-bound machinery itself: the number of
// distinct information states after an execution stays bounded for a regular
// recognizer and grows linearly for non-regular ones (at most two processors
// may share a state, Theorem 4).
func ExperimentE2b(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E2b",
		Title:      "Information states: bounded for regular, ~n for non-regular (Theorems 2/4)",
		PaperClaim: "O(n)-bit algorithms have finitely many information states; non-regular recognizers end with ≥ ⌈n/2⌉ distinct states",
		Columns:    []string{"algorithm", "n", "distinct info states", "max multiplicity", "distinct messages"},
	}
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		return nil, err
	}
	recs := []core.Recognizer{core.NewRegularOnePass(regs[0]), core.NewSquareCount(), core.NewThreeCounters()}
	for _, rec := range recs {
		for _, n := range sizes {
			_, res, word, err := MeasureOne(rec, n, MeasureOptions{Kind: RandomWords}, true)
			if err != nil {
				return nil, err
			}
			analysis, err := trace.ComputeInformationStates(res.Trace, InputsForTrace(word))
			if err != nil {
				return nil, err
			}
			t.AddRow(rec.Name(), fmtInt(len(word)), fmtInt(analysis.Distinct),
				fmtInt(analysis.MaxMultiplicity), fmtInt(trace.MessageAlphabetSize(res.Trace)))
		}
	}
	t.Notes = append(t.Notes,
		"regular-one-pass keeps both columns bounded by |Q|·|Σ| regardless of n (Corollary 3)",
		"count and three-counters end with Θ(n) distinct states — the structure that forces Ω(n log n) bits")
	return t, nil
}

// ExperimentE3 measures Section 7 note 1: {wcw} needs Θ(n²) bits; the
// streaming comparison meets it with a smaller constant than collect-all.
func ExperimentE3(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E3",
		Title:      "{wcw} requires Θ(n²) bits (Section 7 note 1)",
		PaperClaim: "every algorithm for L = {wcw} uses Ω(n²) bits; the trivial upper bound is also O(n²)",
		Columns:    []string{"algorithm", "n", "bits", "bits/n²", "messages"},
	}
	language := lang.NewWcW()
	recs := []core.Recognizer{core.NewCompareWcW(), core.NewCollectAll(language)}
	for _, rec := range recs {
		points, err := MeasureRecognizer(rec, sizes, MeasureOptions{})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(rec.Name(), fmtInt(p.N), fmtInt(p.Bits), perN2(p.Bits, p.N), fmtInt(p.Messages))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope = %.3f (quadratic ⇒ ≈2)",
			rec.Name(), FitLogLogSlope(points)))
	}
	return t, nil
}

// ExperimentE4 measures Section 7 note 2: {0ᵏ1ᵏ2ᵏ} — context-sensitive and
// not context-free — is recognized in O(n log n) bits by three counters,
// far below its collect-all baseline.
func ExperimentE4(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E4",
		Title:      "{0^k 1^k 2^k} in O(n log n) bits with three counters (Section 7 note 2)",
		PaperClaim: "a context-sensitive, non-context-free language recognizable in O(n log n) bits",
		Columns:    []string{"algorithm", "n", "bits", "bits/(n·log n)", "bits/n²"},
	}
	recs := []core.Recognizer{core.NewThreeCounters(), core.NewCollectAll(lang.NewAnBnCn())}
	for _, rec := range recs {
		points, err := MeasureRecognizer(rec, sizes, MeasureOptions{})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			t.AddRow(rec.Name(), fmtInt(p.N), fmtInt(p.Bits), perNLogN(p.Bits, p.N), perN2(p.Bits, p.N))
		}
	}
	t.Notes = append(t.Notes, "the hierarchy position does not follow the Chomsky hierarchy: this CS language is cheaper than the linear language wcw of E3")
	return t, nil
}

// ExperimentE5 measures Section 7 note 3: the Θ(g(n)) hierarchy between
// n log n and n² realized by the L_g family.
func ExperimentE5(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E5",
		Title:      "The Θ(g(n)) hierarchy between n·log n and n² (Section 7 note 3)",
		PaperClaim: "for every g with n log n ≤ g(n) ≤ n² there is a language of bit complexity Θ(g(n))",
		Columns:    []string{"g(n)", "n", "p(n)", "bits", "bits/g(n)", "bits/(n·log n)", "bits/n²"},
	}
	for _, growth := range lang.StandardGrowthFuncs() {
		language := lang.NewLg(growth)
		rec := core.NewLgRecognizer(language)
		points, err := MeasureRecognizer(rec, sizes, MeasureOptions{})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			g := growth.F(p.N)
			t.AddRow(growth.Name, fmtInt(p.N), fmtInt(language.Period(p.N)), fmtInt(p.Bits),
				fmtFloat(float64(p.Bits)/g), perNLogN(p.Bits, p.N), perN2(p.Bits, p.N))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope = %.3f", growth.Name, FitLogLogSlope(points)))
	}
	return t, nil
}

// ExperimentE6 measures Section 7 note 4: when n is known the counting pass
// disappears and the complexity is Θ(g(n)) with no n log n floor.
func ExperimentE6(sizes []int) (*Table, error) {
	t := &Table{
		ID:         "E6",
		Title:      "Knowing n removes the n·log n term (Section 7 note 4)",
		PaperClaim: "if n is known there is no complexity gap above n: L_g costs Θ(g(n)) for every g ≥ n",
		Columns:    []string{"g(n)", "n", "bits (n unknown)", "bits (n known)", "known/g(n)", "saved bits"},
	}
	for _, growth := range lang.StandardGrowthFuncs() {
		language := lang.NewLg(growth)
		unknownRec := core.NewLgRecognizer(language)
		knownRec := core.NewLgRecognizerKnownN(language)
		unknownPts, err := MeasureRecognizer(unknownRec, sizes, MeasureOptions{})
		if err != nil {
			return nil, err
		}
		knownPts, err := MeasureRecognizer(knownRec, sizes, MeasureOptions{})
		if err != nil {
			return nil, err
		}
		if len(unknownPts) != len(knownPts) {
			return nil, fmt.Errorf("bench: E6 sweep size mismatch")
		}
		for i := range unknownPts {
			u, k := unknownPts[i], knownPts[i]
			g := growth.F(k.N)
			t.AddRow(growth.Name, fmtInt(k.N), fmtInt(u.Bits), fmtInt(k.Bits),
				fmtFloat(float64(k.Bits)/g), fmtInt(u.Bits-k.Bits))
		}
	}
	t.Notes = append(t.Notes, "the saved bits column is the Θ(n log n) counting pass the paper charges for computing n")
	return t, nil
}

// buildUnminimizedDFA compiles a regular expression without minimizing it, for
// the A2 ablation.
func buildUnminimizedDFA(expr string) (*automata.DFA, error) {
	nfa, err := automata.CompileRegex(expr)
	if err != nil {
		return nil, err
	}
	return automata.Determinize(nfa), nil
}

// logOf is a tiny helper for note rendering.
func logOf(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}
