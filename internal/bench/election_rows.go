package bench

import (
	"ringlang/internal/election"
)

// appendElectionRows fills the E12 table: every protocol on the descending
// (Chang–Roberts-adversarial) identifier arrangement.
func appendElectionRows(t *Table, sizes []int) error {
	protocols := []election.Protocol{
		election.ChangRoberts,
		election.DolevKlaweRodeh,
		election.HirschbergSinclair,
	}
	for _, p := range protocols {
		for _, n := range sizes {
			out, err := election.Run(p, election.DescendingIDs(n), nil)
			if err != nil {
				return err
			}
			t.AddRow(p.String(), fmtInt(n), fmtInt(out.Stats.Messages), fmtInt(out.Stats.Bits),
				fmtFloat(float64(out.Stats.Messages)/(float64(n)*logBase2(n))))
		}
	}
	t.Notes = append(t.Notes,
		"descending identifiers are the Chang–Roberts worst case; both O(n log n) protocols stay flat on the normalized column")
	return nil
}
