package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestFaultScheduleSeedCacheSemantics pins the serving tier's cache-key rule
// on the fault axis, end to end: fault schedules are seeded
// (ring.ScheduleUsesSeed), so a lossy run must be memoized per seed — the
// same seed repeats from cache, a different seed is a fresh engine run — and
// the alias "drop" must converge on the same entry as "lossy".
func TestFaultScheduleSeedCacheSemantics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := func(schedule string, seed int64) reportPayload {
		var got reportPayload
		status := postJSON(t, ts.URL+"/v1/recognize",
			runRequest{Algorithm: "three-counters", Schedule: schedule, Seed: seed, Word: "000111222"}, &got)
		if status != http.StatusOK {
			t.Fatalf("%s/%d: status %d", schedule, seed, status)
		}
		return got
	}
	first := req("lossy", 3)
	if first.Cached {
		t.Error("first lossy run reported cached=true")
	}
	if repeat := req("lossy", 3); !repeat.Cached {
		t.Error("same lossy seed missed the cache; seeded schedules must memoize per seed")
	}
	if alias := req("drop", 3); !alias.Cached {
		t.Error("alias \"drop\" did not converge on the \"lossy\" entry")
	}
	if other := req("lossy", 4); other.Cached {
		t.Error("different lossy seed was served from seed 3's entry")
	}
	if st := s.CacheStats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (lossy/3, lossy/4)", st.Entries)
	}
	// Exactly-once fault schedules agree with the sequential verdict and
	// bits; the fault overhead lives outside Stats.
	seq := req("sequential", 0)
	if first.Verdict != seq.Verdict || first.Bits != seq.Bits {
		t.Errorf("lossy = %s/%d bits, sequential = %s/%d bits", first.Verdict, first.Bits, seq.Verdict, seq.Bits)
	}
}

// TestFaultScheduleRefusedTyped pins the API-level classification: a schedule
// whose delivery guarantee is weaker than the raw algorithm tolerates is a
// 400 with a stable wire code, for single runs and per-word inside batches —
// never a 200 with a silently wrong verdict.
func TestFaultScheduleRefusedTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, schedule := range []string{"duplicating", "crash-repair", "at-least-once", "crash"} {
		var ep errorPayload
		status := postJSON(t, ts.URL+"/v1/recognize",
			runRequest{Algorithm: "three-counters", Schedule: schedule, Seed: 1, Word: "001122"}, &ep)
		if status != http.StatusBadRequest || ep.Code != "delivery-not-tolerated" {
			t.Errorf("%s: status=%d code=%q, want 400 delivery-not-tolerated", schedule, status, ep.Code)
		}
	}
	// Inside a batch the refusal is per-word and typed, like every word error.
	var got struct {
		Results []wordResult `json:"results"`
	}
	status := postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters", Schedule: "duplicating", Seed: 1,
		Words: []string{"001122", "000111222"},
	}, &got)
	if status != http.StatusOK || len(got.Results) != 2 {
		t.Fatalf("batch status=%d results=%d", status, len(got.Results))
	}
	for i, r := range got.Results {
		if r.Code != "delivery-not-tolerated" || r.Report != nil {
			t.Errorf("batch word %d = %+v, want per-word delivery-not-tolerated", i, r)
		}
	}
}

// TestFaultScheduleConcurrentLoad drives concurrent fault-schedule requests
// across distinct seeds (run under -race in CI) and checks the /healthz
// counters stay consistent: hits + misses add up, every distinct
// (schedule, seed) key ran exactly once, and repeats were served from cache.
func TestFaultScheduleConcurrentLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const seeds = 4
	const repeats = 4
	var wg sync.WaitGroup
	bits := make([][]int, seeds)
	for i := range bits {
		bits[i] = make([]int, repeats)
	}
	for seed := 0; seed < seeds; seed++ {
		for rep := 0; rep < repeats; rep++ {
			wg.Add(1)
			go func(seed, rep int) {
				defer wg.Done()
				var got reportPayload
				status := postJSON(t, ts.URL+"/v1/recognize", runRequest{
					Algorithm: "three-counters", Schedule: "lossy", Seed: int64(seed + 1), Word: "000111222",
				}, &got)
				if status != http.StatusOK {
					t.Errorf("seed %d rep %d: status %d", seed, rep, status)
					return
				}
				bits[seed][rep] = got.Bits
			}(seed, rep)
		}
	}
	wg.Wait()
	for seed := range bits {
		for rep := 1; rep < repeats; rep++ {
			if bits[seed][rep] != bits[seed][0] {
				t.Errorf("seed %d: rep %d saw %d bits, rep 0 saw %d", seed, rep, bits[seed][rep], bits[seed][0])
			}
		}
	}
	st := s.CacheStats()
	if st.Misses != seeds {
		t.Errorf("misses = %d, want %d (one engine run per distinct seed)", st.Misses, seeds)
	}
	if st.Hits != seeds*repeats-seeds {
		t.Errorf("hits = %d, want %d", st.Hits, seeds*repeats-seeds)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		InFlight int    `json:"inflight"`
		Hits     uint64 `json:"cacheHits"`
		Misses   uint64 `json:"cacheMisses"`
		Entries  int    `json:"cacheEntries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.InFlight != 0 {
		t.Errorf("healthz after load = %+v", health)
	}
	if health.Hits != st.Hits || health.Misses != st.Misses || health.Entries != st.Entries {
		t.Errorf("healthz counters %+v disagree with CacheStats %+v", health, st)
	}
}
