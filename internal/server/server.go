package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"ringlang"
	"ringlang/internal/memo"
	"ringlang/internal/ring"
)

// Config sizes the serving tier. The zero value is serviceable: one worker
// per CPU, a 4096-entry cache, and 4×GOMAXPROCS in-flight run requests.
type Config struct {
	// Workers is the exec-pool size of every Client the server builds;
	// values < 1 mean one worker per CPU.
	Workers int
	// CacheCapacity is the total memo cache size in entries. Negative
	// disables caching entirely; zero means DefaultCacheCapacity.
	CacheCapacity int
	// CacheShards is the memo shard count, rounded up to a power of two;
	// zero means memo.DefaultShards.
	CacheShards int
	// MaxInFlight bounds concurrently served recognize/batch/stream
	// requests; past it the server answers 429. Values < 1 mean
	// 4×GOMAXPROCS.
	MaxInFlight int
	// MaxBatchWords caps the words of one batch or stream request; past it
	// the server answers 413. Values < 1 mean DefaultMaxBatchWords.
	MaxBatchWords int
	// MaxWordLetters caps the length of a single word (the ring size a
	// request may ask for); longer words fail with a word-too-large error
	// instead of building an arbitrarily large ring. Values < 1 mean
	// DefaultMaxWordLetters.
	MaxWordLetters int
	// MaxBodyBytes caps the request body read per call, enforced with
	// http.MaxBytesReader before any decoding. Values < 1 mean
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxClients bounds the per-(algorithm, language, schedule, seed)
	// Client map; past it the least recently used client is closed and
	// evicted, so unbounded key churn (e.g. a fresh random seed per
	// request) cannot accumulate idle worker pools. Values < 1 mean
	// DefaultMaxClients.
	MaxClients int
	// PrefixCacheBytes sizes the prefix-checkpoint cache shared by every
	// Client the server builds: where the memo cache answers exact repeats
	// without an engine run, this tier makes *distinct* words cheaper when
	// they share prefixes, by resuming runs from stored engine checkpoints
	// (ringlang.WithSharedPrefixCache). Negative disables the tier; zero
	// means DefaultPrefixCacheBytes.
	PrefixCacheBytes int64
}

// Defaults for the zero Config.
const (
	DefaultCacheCapacity    = 4096
	DefaultMaxBatchWords    = 4096
	DefaultMaxWordLetters   = 1 << 16
	DefaultMaxBodyBytes     = 1 << 20
	DefaultMaxClients       = 64
	DefaultPrefixCacheBytes = 32 << 20
)

// clientKey identifies one cached *ringlang.Client. Schedule is normalized
// (canonical name, defaulted) and seed is zeroed for deterministic schedules,
// so equivalent requests share a client and its warmed worker pool.
type clientKey struct {
	algorithm string
	language  string
	schedule  string
	seed      int64
}

// Server holds the per-key Clients, the memo cache and the admission
// semaphore behind the HTTP handlers. Build with New; always Close.
type Server struct {
	cfg    Config
	cache  *memo.Cache[*ringlang.Report] // nil when caching is disabled
	prefix *ringlang.PrefixCache         // nil when the prefix tier is disabled
	sem    chan struct{}

	mu       sync.Mutex
	clients  map[clientKey]*clientEntry
	useSeq   uint64
	closed   bool
	draining bool

	// streamDone, when set (tests), receives the terminal per-word error of
	// a stream request — how the disconnect tests observe ErrCanceled.
	streamDone func(err error)
}

// New builds a Server from cfg, applying the documented defaults.
func New(cfg Config) *Server {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatchWords < 1 {
		cfg.MaxBatchWords = DefaultMaxBatchWords
	}
	if cfg.MaxWordLetters < 1 {
		cfg.MaxWordLetters = DefaultMaxWordLetters
	}
	if cfg.MaxBodyBytes < 1 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxClients < 1 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.PrefixCacheBytes == 0 {
		cfg.PrefixCacheBytes = DefaultPrefixCacheBytes
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		clients: make(map[clientKey]*clientEntry),
	}
	if cfg.CacheCapacity > 0 {
		s.cache = memo.New[*ringlang.Report](cfg.CacheCapacity, cfg.CacheShards)
	}
	if cfg.PrefixCacheBytes > 0 {
		s.prefix = ringlang.NewPrefixCache(cfg.PrefixCacheBytes)
	}
	return s
}

// Handler returns the routed handler; one Server can serve many listeners.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recognize", s.handleRecognize)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// BeginDrain flips /healthz to "draining"/503 while the run endpoints keep
// serving, so a load balancer health-checking the server stops routing new
// traffic before the listener goes away. cmd/ringserve calls it the moment
// the termination signal arrives, ahead of http.Server.Shutdown.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close retires the server: later run requests answer 503 and every cached
// Client is closed (waiting out its in-flight Batch/Stream work — the
// facade's documented Close semantics). Idempotent, like Client.Close.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	clients := make([]*ringlang.Client, 0, len(s.clients))
	for _, e := range s.clients {
		clients = append(clients, e.client)
	}
	s.clients = nil
	s.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	return nil
}

// CacheStats reports the memo cache counters (zero when caching is off);
// /healthz serves the same numbers.
func (s *Server) CacheStats() memo.Stats {
	if s.cache == nil {
		return memo.Stats{}
	}
	return s.cache.Stats()
}

// PrefixStats reports the shared prefix-checkpoint cache counters (zero when
// the tier is off); /healthz serves the same numbers next to the exact-hit
// cache's.
func (s *Server) PrefixStats() memo.PrefixStats {
	if s.prefix == nil {
		return memo.PrefixStats{}
	}
	return s.prefix.Stats()
}

// keyFor builds the canonical client key of one request: the schedule is
// folded onto its canonical name (internal/ring owns the alias table, so the
// server cannot drift from the engine catalog) and the seed is zeroed for
// seed-independent schedules, so equivalent requests converge on one client
// and one cache entry while randomized runs stay keyed by their seed.
// Unknown schedule names pass through untouched — the Client constructor is
// the validator and reports ErrUnknownSchedule.
//
//ring:deterministic
func keyFor(algorithm, language, schedule string, seed int64) clientKey {
	if schedule == "" {
		schedule = "sequential"
	} else {
		schedule = ring.CanonicalScheduleName(schedule)
	}
	if !ring.ScheduleUsesSeed(schedule) {
		seed = 0
	}
	return clientKey{algorithm: algorithm, language: language, schedule: schedule, seed: seed}
}

// cacheKey is the memo key of one word under a client key.
//
//ring:deterministic
func (ck clientKey) cacheKey(word string) memo.Key {
	return memo.Key{
		Algorithm: ck.algorithm,
		Language:  ck.language,
		Schedule:  ck.schedule,
		Seed:      ck.seed,
		Word:      word,
	}
}

// clientEntry is one cached Client plus its recency stamp and reference
// count. The refcount is what makes LRU eviction safe: an evicted entry's
// Client is closed only after the last request holding it releases, so a
// request that resolved its client just before the eviction still completes
// normally instead of tripping over ErrClosed.
type clientEntry struct {
	client  *ringlang.Client
	lastUse uint64
	refs    int
	evicted bool
}

// acquireClient resolves (building and caching on first use) the entry of
// one key and takes a reference on it. Callers must pair every successful
// acquire with one releaseClient. The map is bounded by Config.MaxClients:
// inserting past the bound evicts the least recently used entry, whose
// Client is closed as soon as its in-flight requests release it — so a
// request stream churning through fresh keys (every random seed is its own
// key) cannot accumulate unbounded idle worker pools.
func (s *Server) acquireClient(ck clientKey) (*clientEntry, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ringlang.ErrClosed
	}
	s.useSeq++
	if e, ok := s.clients[ck]; ok {
		e.lastUse = s.useSeq
		e.refs++
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	// Construction — recognizer building, DFA work for the regular
	// algorithms — happens off the server lock so one cold key never
	// serializes unrelated requests. The map is re-checked on reacquire; a
	// lost build race discards this client (Closing a never-used client is
	// a no-op, it has no pool yet).
	c, err := ringlang.NewClient(ck.algorithm, ck.language,
		ringlang.WithSchedule(ck.schedule),
		ringlang.WithSeed(ck.seed),
		ringlang.WithWorkers(s.cfg.Workers),
		ringlang.WithSharedPrefixCache(s.prefix),
	)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return nil, ringlang.ErrClosed
	}
	s.useSeq++
	if e, ok := s.clients[ck]; ok {
		e.lastUse = s.useSeq
		e.refs++
		s.mu.Unlock()
		c.Close()
		return e, nil
	}
	var evict *ringlang.Client
	if len(s.clients) >= s.cfg.MaxClients {
		var oldestKey clientKey
		var oldest *clientEntry
		for k, e := range s.clients {
			if oldest == nil || e.lastUse < oldest.lastUse {
				oldestKey, oldest = k, e
			}
		}
		delete(s.clients, oldestKey)
		oldest.evicted = true
		if oldest.refs == 0 {
			evict = oldest.client
		}
	}
	e := &clientEntry{client: c, lastUse: s.useSeq, refs: 1}
	s.clients[ck] = e
	s.mu.Unlock()
	if evict != nil {
		// Close waits for the client's internal work; do it off the server
		// lock so eviction never stalls unrelated requests.
		go evict.Close()
	}
	return e, nil
}

// releaseClient drops one reference; the last release of an evicted entry
// closes its Client.
func (s *Server) releaseClient(e *clientEntry) {
	s.mu.Lock()
	e.refs--
	shouldClose := e.evicted && e.refs == 0
	s.mu.Unlock()
	if shouldClose {
		e.client.Close()
	}
}

// admit takes one in-flight slot, or reports that the server is saturated.
// The returned release func must be called exactly once when admitted.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		return nil, false
	}
}

// inflight is the number of currently admitted run requests.
func (s *Server) inflight() int { return len(s.sem) }

// isDraining reports whether BeginDrain or Close has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// isClosed reports whether Close has begun. Handlers that can answer without
// acquireClient (the recognize cache fast path) must check it themselves so
// a closed server answers 503 uniformly, warm keys included.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// String describes the server's sizing, for startup logs.
func (s *Server) String() string {
	cache := "off"
	if s.cache != nil {
		cache = fmt.Sprintf("%d entries", s.cfg.CacheCapacity)
	}
	prefix := "off"
	if s.prefix != nil {
		prefix = fmt.Sprintf("%d bytes", s.cfg.PrefixCacheBytes)
	}
	return fmt.Sprintf("ringserve: cache=%s prefixCache=%s maxInFlight=%d maxBatchWords=%d",
		cache, prefix, s.cfg.MaxInFlight, s.cfg.MaxBatchWords)
}
