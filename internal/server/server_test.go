package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ringlang"
)

// newTestServer wires a Server into an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts a runRequest body and decodes the response JSON into out.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// memberWord builds a large 0^k1^k2^k member word.
func memberWord(k int) string {
	return strings.Repeat("0", k) + strings.Repeat("1", k) + strings.Repeat("2", k)
}

func TestRecognizeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got reportPayload
	status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, &got)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if got.Verdict != "accept" || !got.Member || got.Bits != 72 || got.Processors != 6 {
		t.Errorf("report = %+v", got)
	}
	if got.Cached {
		t.Error("first request reported cached=true")
	}
	if got.Schedule != "sequential" {
		t.Errorf("defaulted schedule = %q", got.Schedule)
	}
	// The same word again is a cache hit: no engine run, cached=true.
	status = postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, &got)
	if status != http.StatusOK || !got.Cached {
		t.Errorf("repeat: status=%d cached=%v", status, got.Cached)
	}
}

func TestRecognizeUnknownAlgorithm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got errorPayload
	status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "no-such-thing", Word: "01"}, &got)
	if status != http.StatusBadRequest || got.Code != "unknown-algorithm" {
		t.Errorf("status=%d payload=%+v", status, got)
	}
	status = postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Schedule: "bogus", Word: "01"}, &got)
	if status != http.StatusBadRequest || got.Code != "unknown-schedule" {
		t.Errorf("status=%d payload=%+v", status, got)
	}
}

// TestBatchPerWordErrors pins the serving tier to the library's no-fail-all
// contract: a bad word inside a batch gets its own error entry and the words
// around it keep their reports.
func TestBatchPerWordErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got struct {
		Results []wordResult `json:"results"`
	}
	status := postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters",
		Words:     []string{"001122", "0a1", "000111222", ""},
	}, &got)
	if status != http.StatusOK {
		t.Fatalf("status = %d (batch must not fail-all)", status)
	}
	if len(got.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(got.Results))
	}
	if r := got.Results[0]; r.Error != "" || r.Report == nil || r.Report.Verdict != "accept" {
		t.Errorf("good word 0 = %+v", r)
	}
	if r := got.Results[1]; r.Error == "" || r.Report != nil || r.Code != "run-failed" {
		t.Errorf("off-alphabet word 1 should fail alone: %+v", r)
	}
	if r := got.Results[2]; r.Error != "" || r.Report == nil || !r.Report.Member {
		t.Errorf("good word 2 = %+v", r)
	}
	if r := got.Results[3]; r.Error == "" {
		t.Errorf("empty word 3 should fail: %+v", r)
	}
}

// TestBatchServesHitsFromCache warms one word, then batches it with a cold
// one: the warm word must come back cached with zero additional engine runs
// (the miss counter must grow only for the cold word).
func TestBatchServesHitsFromCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, nil); status != http.StatusOK {
		t.Fatalf("warmup status = %d", status)
	}
	missesBefore := s.CacheStats().Misses
	var got struct {
		Results []wordResult `json:"results"`
	}
	// An all-warm batch is pure hit path: zero cache misses, zero engine runs.
	postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters",
		Words:     []string{"001122", "001122"},
	}, &got)
	if !got.Results[0].Report.Cached || !got.Results[1].Report.Cached {
		t.Errorf("warmed batch not served from cache: %+v", got.Results)
	}
	if misses := s.CacheStats().Misses - missesBefore; misses != 0 {
		t.Errorf("all-warm batch recorded %d cache misses, want 0", misses)
	}
	// A mixed batch runs the engine only for the cold word.
	postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters",
		Words:     []string{"001122", "000111222"},
	}, &got)
	if !got.Results[0].Report.Cached {
		t.Error("warmed word not served from cache")
	}
	if got.Results[1].Report.Cached {
		t.Error("cold word claims to be cached")
	}
	if misses := s.CacheStats().Misses - missesBefore; misses != 1 {
		t.Errorf("mixed batch recorded %d cache misses, want 1 (the cold word)", misses)
	}
}

// TestConcurrentIdenticalRequestsRunOnce is the thundering-herd guarantee,
// run under -race in CI: N identical concurrent requests produce one engine
// run (one cache miss); everyone gets the same report. MaxInFlight is 1 on
// purpose — admission happens inside the singleflight compute, so the herd
// needs exactly one slot, and waiters never starve unrelated admission.
func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	word := memberWord(64)
	const callers = 16
	var wg sync.WaitGroup
	bits := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got reportPayload
			status := postJSON(t, ts.URL+"/v1/recognize",
				runRequest{Algorithm: "three-counters", Word: word}, &got)
			if status != http.StatusOK {
				t.Errorf("caller %d: status %d", i, status)
				return
			}
			bits[i] = got.Bits
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if bits[i] != bits[0] {
			t.Errorf("caller %d saw bits=%d, caller 0 saw %d", i, bits[i], bits[0])
		}
	}
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Errorf("cache recorded %d misses for one key, want exactly 1 engine run", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("cache recorded %d hits, want %d", st.Hits, callers-1)
	}
}

// TestStreamCompletionOrderNDJSON reads a whole stream and checks every word
// arrives exactly once with a valid report.
func TestStreamCompletionOrderNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/stream?algorithm=three-counters&words=001122,000111222,012012"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	seen := make(map[int]wordResult)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var res wordResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if _, dup := seen[res.Index]; dup {
			t.Errorf("index %d yielded twice", res.Index)
		}
		seen[res.Index] = res
	}
	if len(seen) != 3 {
		t.Fatalf("stream yielded %d results, want 3", len(seen))
	}
	for i, res := range seen {
		if res.Error != "" || res.Report == nil {
			t.Errorf("word %d: %+v", i, res)
		}
	}
	// 012012 is a non-member: verdict must say so.
	if seen[2].Report.Member || seen[2].Report.Verdict != "reject" {
		t.Errorf("non-member word = %+v", seen[2].Report)
	}
}

func TestStreamSSEFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/stream?algorithm=majority&word=110101", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "data: {") {
		t.Errorf("SSE body = %q", body)
	}
}

// TestStreamClientDisconnectCancels is the serving half of the cancellation
// story: dropping the connection mid-stream must cancel the remaining words
// through the request context, observed server-side as ErrCanceled.
func TestStreamClientDisconnectCancels(t *testing.T) {
	done := make(chan error, 1)
	s, ts := newTestServer(t, Config{Workers: 1, CacheCapacity: -1})
	s.streamDone = func(err error) { done <- err }

	words := make([]string, 64)
	for i := range words {
		words[i] = memberWord(120 + i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	url := ts.URL + "/v1/stream?algorithm=three-counters&words=" + strings.Join(words, ",")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one completed result, then drop the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first stream line: %v", sc.Err())
	}
	var first wordResult
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first line %q: %v", sc.Text(), err)
	}
	if first.Error != "" {
		t.Fatalf("first word already failed: %+v", first)
	}
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Skip("stream finished before the disconnect landed; nothing to assert")
		}
		if !errors.Is(err, ringlang.ErrCanceled) {
			t.Errorf("stream terminal error = %v, want ErrCanceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream handler did not finish after client disconnect")
	}
}

func TestCatalogMatchesFacade(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Algorithms []string `json:"algorithms"`
		Languages  []string `json:"languages"`
		Schedules  []string `json:"schedules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := ringlang.CurrentCatalog()
	if fmt.Sprint(got.Algorithms) != fmt.Sprint(want.Algorithms) ||
		fmt.Sprint(got.Languages) != fmt.Sprint(want.Languages) ||
		fmt.Sprint(got.Schedules) != fmt.Sprint(want.Schedules) {
		t.Errorf("catalog = %+v, want %+v", got, want)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Warm one key: even a cached word must answer 503 after Close.
	if status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, nil); status != http.StatusOK {
		t.Fatalf("warmup status = %d", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, health)
	}
	s.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	// Run requests on a closed server answer 503/closed, never panic.
	var ep errorPayload
	status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, &ep)
	if status != http.StatusServiceUnavailable || ep.Code != "closed" {
		t.Errorf("closed recognize = %d %+v", status, ep)
	}
}

// TestPrefixTierServesSharedPrefixes drives distinct (uncacheable by the
// exact-hit memo tier) words sharing long prefixes through /v1/batch and
// checks the shared prefix-checkpoint cache engages, the reports stay
// correct, and /healthz surfaces the prefix counters next to the exact-hit
// cache's (evictions included — the field satellite of this PR).
func TestPrefixTierServesSharedPrefixes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	prefix := strings.Repeat("01", 24)
	words := []string{prefix + "0000", prefix + "0001", prefix + "0110", prefix + "1111"}
	var got struct {
		Results []wordResult `json:"results"`
	}
	status := postJSON(t, ts.URL+"/v1/batch",
		runRequest{Algorithm: "majority", Words: words}, &got)
	if status != http.StatusOK || len(got.Results) != len(words) {
		t.Fatalf("batch status=%d results=%d", status, len(got.Results))
	}
	for i, res := range got.Results {
		if res.Error != "" {
			t.Fatalf("word %d: %s", i, res.Error)
		}
		want := "reject"
		if res.Report.Member {
			want = "accept"
		}
		if res.Report.Verdict != want {
			t.Errorf("word %d (%q): verdict %q, language says %q", i, words[i], res.Report.Verdict, want)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status            string  `json:"status"`
		CacheEvictions    *uint64 `json:"cacheEvictions"`
		PrefixHits        uint64  `json:"prefixHits"`
		PrefixPartialHits uint64  `json:"prefixPartialHits"`
		PrefixMisses      uint64  `json:"prefixMisses"`
		PrefixEntries     int     `json:"prefixEntries"`
		PrefixBytes       int64   `json:"prefixBytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.CacheEvictions == nil {
		t.Error("healthz omits cacheEvictions")
	}
	if health.PrefixHits+health.PrefixPartialHits == 0 {
		t.Errorf("prefix tier never hit across shared-prefix words: %+v", health)
	}
	if health.PrefixEntries == 0 || health.PrefixBytes == 0 {
		t.Errorf("prefix tier stored nothing: %+v", health)
	}
}

// TestPrefixTierDisabled pins the negative-budget switch: no prefix cache is
// built and /healthz reports zeros.
func TestPrefixTierDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{PrefixCacheBytes: -1})
	if s.prefix != nil {
		t.Fatal("negative PrefixCacheBytes built a cache")
	}
	status := postJSON(t, ts.URL+"/v1/batch",
		runRequest{Algorithm: "majority", Words: []string{"0110", "0111"}}, nil)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	if st := s.PrefixStats(); st != (ringlang.PrefixStats{}) {
		t.Errorf("disabled tier reported %+v", st)
	}
}

// TestBackpressure429 fills the admission semaphore and checks the server
// sheds load instead of queueing.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	var ep errorPayload
	status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, &ep)
	if status != http.StatusTooManyRequests || ep.Code != "overloaded" {
		t.Errorf("saturated recognize = %d %+v", status, ep)
	}
	<-s.sem
	<-s.sem
	if status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, nil); status != http.StatusOK {
		t.Errorf("post-drain recognize = %d", status)
	}
}

// TestSaturatedServerStillServesCacheHits pins the admission ordering: a
// pure cache hit costs no engine work, so it must be served even when every
// in-flight slot is taken — for single words, all-warm batches and the warm
// part of streams alike.
func TestSaturatedServerStillServesCacheHits(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	if status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, nil); status != http.StatusOK {
		t.Fatalf("warmup status = %d", status)
	}
	s.sem <- struct{}{} // saturate admission
	defer func() { <-s.sem }()
	var got reportPayload
	status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, &got)
	if status != http.StatusOK || !got.Cached {
		t.Errorf("saturated cache hit = %d cached=%v, want 200 from cache", status, got.Cached)
	}
	var batch struct {
		Results []wordResult `json:"results"`
	}
	status = postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters", Words: []string{"001122", "001122"},
	}, &batch)
	if status != http.StatusOK {
		t.Errorf("saturated all-warm batch = %d, want 200", status)
	}
	// A cold word still needs a slot and must be shed.
	var ep errorPayload
	status = postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "000111222"}, &ep)
	if status != http.StatusTooManyRequests || ep.Code != "overloaded" {
		t.Errorf("saturated cold word = %d %+v, want 429", status, ep)
	}
}

// TestWordAndBodyLimits pins the request-size guards: an oversized body is
// cut off by MaxBytesReader, an oversized single word is rejected before an
// engine run, and inside a batch it fails per-word.
func TestWordAndBodyLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWordLetters: 8, MaxBodyBytes: 256})
	long := strings.Repeat("0", 9)
	var ep errorPayload
	status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: long}, &ep)
	if status != http.StatusRequestEntityTooLarge || ep.Code != "word-too-large" {
		t.Errorf("long word recognize = %d %+v", status, ep)
	}
	var batch struct {
		Results []wordResult `json:"results"`
	}
	status = postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters", Words: []string{"001122", long},
	}, &batch)
	if status != http.StatusOK {
		t.Fatalf("batch with one long word = %d, want 200 (per-word errors)", status)
	}
	if r := batch.Results[0]; r.Report == nil || r.Report.Verdict != "accept" {
		t.Errorf("good word alongside long one = %+v", r)
	}
	if r := batch.Results[1]; r.Code != "word-too-large" {
		t.Errorf("long word in batch = %+v", r)
	}
	manyWords := make([]string, 64)
	for i := range manyWords {
		manyWords[i] = "001122"
	}
	status = postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters",
		Words:     manyWords,
	}, &ep)
	if status != http.StatusRequestEntityTooLarge || ep.Code != "body-too-large" {
		t.Errorf("oversized body = %d %+v", status, ep)
	}
}

// TestBatchDeduplicatesRepeatedColdWords pins in-request dedup: N copies of
// one cold word in a single batch cost one engine run (one cache miss), and
// every copy still gets its own correctly indexed result.
func TestBatchDeduplicatesRepeatedColdWords(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var got struct {
		Results []wordResult `json:"results"`
	}
	status := postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters",
		Words:     []string{"000111222", "000111222", "001122", "000111222"},
	}, &got)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(got.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(got.Results))
	}
	for i, r := range got.Results {
		if r.Index != i || r.Report == nil || r.Report.Verdict != "accept" {
			t.Errorf("result %d = %+v", i, r)
		}
	}
	st := s.CacheStats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per distinct cold word)", st.Misses)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

// TestBeginDrainKeepsServing pins the rollout contract: after BeginDrain,
// /healthz answers 503 draining (so load balancers stop routing) while the
// run endpoints keep serving until the listener actually closes.
func TestBeginDrainKeepsServing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	var got reportPayload
	if status := postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Word: "001122"}, &got); status != http.StatusOK {
		t.Errorf("recognize during drain = %d, want 200", status)
	}
}

// TestClientMapEviction pins the bounded client map: churning through
// distinct keys (random seeds) closes and evicts old clients instead of
// accumulating their worker pools, and an evicted key simply rebuilds.
func TestClientMapEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxClients: 2})
	for seed := 1; seed <= 8; seed++ {
		status := postJSON(t, ts.URL+"/v1/recognize", runRequest{
			Algorithm: "three-counters", Schedule: "random", Seed: int64(seed), Word: "001122",
		}, nil)
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, status)
		}
	}
	s.mu.Lock()
	n := len(s.clients)
	s.mu.Unlock()
	if n > 2 {
		t.Errorf("client map grew to %d entries, want ≤ 2", n)
	}
	// An evicted key still serves (rebuilt client, report from cache).
	var got reportPayload
	if status := postJSON(t, ts.URL+"/v1/recognize", runRequest{
		Algorithm: "three-counters", Schedule: "random", Seed: 1, Word: "001122",
	}, &got); status != http.StatusOK || !got.Cached {
		t.Errorf("evicted key = %d cached=%v", status, got.Cached)
	}
}

// TestSeedKeyNormalization pins the cache-safety rule: deterministic
// schedules share entries across seeds, randomized ones never do.
func TestSeedKeyNormalization(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var got reportPayload
	postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Schedule: "sequential", Seed: 5, Word: "001122"}, &got)
	postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Schedule: "fifo", Seed: 9, Word: "001122"}, &got)
	if !got.Cached {
		t.Error("deterministic schedule with a different seed (and alias name) missed the cache")
	}
	postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Schedule: "random", Seed: 5, Word: "001122"}, &got)
	if got.Cached {
		t.Error("random seed 5 was served from a deterministic entry")
	}
	postJSON(t, ts.URL+"/v1/recognize",
		runRequest{Algorithm: "three-counters", Schedule: "random", Seed: 9, Word: "001122"}, &got)
	if got.Cached {
		t.Error("random seed 9 shared seed 5's entry")
	}
	if st := s.CacheStats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3 (sequential, random/5, random/9)", st.Entries)
	}
}

func TestBatchTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchWords: 2})
	var ep errorPayload
	status := postJSON(t, ts.URL+"/v1/batch", runRequest{
		Algorithm: "three-counters",
		Words:     []string{"001122", "001122", "001122"},
	}, &ep)
	if status != http.StatusRequestEntityTooLarge || ep.Code != "batch-too-large" {
		t.Errorf("oversized batch = %d %+v", status, ep)
	}
}
