package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"unicode/utf8"

	"ringlang"
)

// runRequest is the JSON body of /v1/recognize and /v1/batch (and the query
// parameters of /v1/stream): what to run, under which schedule, on which
// word(s).
type runRequest struct {
	Algorithm string   `json:"algorithm"`
	Language  string   `json:"language"`
	Schedule  string   `json:"schedule"`
	Seed      int64    `json:"seed"`
	Word      string   `json:"word"`
	Words     []string `json:"words"`
}

// reportPayload is the wire form of one *ringlang.Report. It is a stable
// view, decoupled from the Go struct, so facade refactors do not silently
// change the API.
type reportPayload struct {
	Algorithm        string  `json:"algorithm"`
	Language         string  `json:"language"`
	Word             string  `json:"word"`
	Verdict          string  `json:"verdict"`
	Member           bool    `json:"member"`
	Messages         int     `json:"messages"`
	Bits             int     `json:"bits"`
	BitsPerProcessor float64 `json:"bitsPerProcessor"`
	MaxMessageBits   int     `json:"maxMessageBits"`
	Processors       int     `json:"processors"`
	Schedule         string  `json:"schedule"`
	Cached           bool    `json:"cached"`
}

func payloadFor(word string, report *ringlang.Report, cached bool) *reportPayload {
	return &reportPayload{
		Algorithm:        report.Algorithm,
		Language:         report.LanguageName,
		Word:             word,
		Verdict:          report.Verdict.String(),
		Member:           report.Member,
		Messages:         report.Messages,
		Bits:             report.Bits,
		BitsPerProcessor: report.BitsPerProcessor,
		MaxMessageBits:   report.MaxMessageBits,
		Processors:       report.ProcessorCount,
		Schedule:         report.Schedule,
		Cached:           cached,
	}
}

// wordResult is one per-word outcome inside batch responses and stream
// lines: exactly one of Report and Error is set, mirroring ringlang.Result.
type wordResult struct {
	Index  int            `json:"index"`
	Report *reportPayload `json:"report,omitempty"`
	Error  string         `json:"error,omitempty"`
	Code   string         `json:"code,omitempty"`
}

// errorPayload is the body of every non-2xx response.
type errorPayload struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errorCode maps the facade's sentinel taxonomy onto stable wire codes.
func errorCode(err error) string {
	switch {
	case errors.Is(err, ringlang.ErrUnknownAlgorithm):
		return "unknown-algorithm"
	case errors.Is(err, ringlang.ErrUnknownLanguage):
		return "unknown-language"
	case errors.Is(err, ringlang.ErrUnknownSchedule):
		return "unknown-schedule"
	case errors.Is(err, ringlang.ErrDeliveryNotTolerated):
		return "delivery-not-tolerated"
	case errors.Is(err, ringlang.ErrCanceled):
		return "canceled"
	case errors.Is(err, ringlang.ErrClosed):
		return "closed"
	default:
		return "run-failed"
	}
}

// statusFor maps the taxonomy onto HTTP statuses. 499 is the de-facto
// "client closed request" status: by the time a cancellation error surfaces
// the client is usually gone, but logs and tests still see a truthful code.
func statusFor(err error) int {
	switch errorCode(err) {
	case "unknown-algorithm", "unknown-language", "unknown-schedule", "delivery-not-tolerated":
		return http.StatusBadRequest
	case "canceled":
		return 499
	case "closed":
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorPayload{Error: err.Error(), Code: errorCode(err)})
}

// decodeRunRequest parses a JSON body into a runRequest, rejecting unknown
// fields so typos ("algoritm") fail loudly instead of running defaults. The
// body is capped with http.MaxBytesReader before a byte is decoded, so an
// oversized request is cut off at the limit instead of being buffered whole;
// the caller distinguishes that case through decodeStatus.
func decodeRunRequest(w http.ResponseWriter, r *http.Request, maxBytes int64) (runRequest, error) {
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("malformed request body: %w", err)
	}
	return req, nil
}

// decodeStatus maps a decode failure to its response: 413 when the body blew
// the MaxBytesReader cap, 400 otherwise.
func decodeStatus(err error) (int, errorPayload) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge,
			errorPayload{Error: err.Error(), Code: "body-too-large"}
	}
	return http.StatusBadRequest, errorPayload{Error: err.Error(), Code: "bad-request"}
}

// overloaded answers 429 with a Retry-After hint; the caller should back off
// and retry rather than queue on the connection.
func overloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests,
		errorPayload{Error: "server at max in-flight requests", Code: "overloaded"})
}

// wordLen is the ring size a word asks for — letters are runes, one
// processor each, exactly as ringlang.WordFromString builds the ring.
func wordLen(word string) int {
	return utf8.RuneCountInString(word)
}

// wordTooLarge renders the per-word length-cap failure.
func (s *Server) wordTooLarge(index, letters int) wordResult {
	return wordResult{
		Index: index,
		Error: fmt.Sprintf("word of %d letters exceeds the %d-letter limit", letters, s.cfg.MaxWordLetters),
		Code:  "word-too-large",
	}
}

// errOverloaded marks a compute rejected by admission control inside the
// singleflight; the handler turns it into the 429 response.
var errOverloaded = errors.New("server: at max in-flight requests")

// handleRecognize serves POST /v1/recognize: one word through the memo
// cache's singleflight, so concurrent identical requests share one engine
// run. A pure cache hit is served before admission control — it costs a map
// lookup, no engine work, so a saturated server keeps answering its warmed
// working set.
func (s *Server) handleRecognize(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRunRequest(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		status, payload := decodeStatus(err)
		writeJSON(w, status, payload)
		return
	}
	if n := wordLen(req.Word); n > s.cfg.MaxWordLetters {
		res := s.wordTooLarge(0, n)
		writeJSON(w, http.StatusRequestEntityTooLarge, errorPayload{Error: res.Error, Code: res.Code})
		return
	}
	if s.isClosed() {
		// The cache fast path below must not outlive Close: a closed server
		// answers 503 uniformly, warm keys included.
		writeError(w, ringlang.ErrClosed)
		return
	}
	ck := keyFor(req.Algorithm, req.Language, req.Schedule, req.Seed)
	if s.cache != nil {
		// Peek, not Get: on absence the singleflight Do below records the
		// authoritative miss, keeping misses == engine runs.
		if report, ok := s.cache.Peek(ck.cacheKey(req.Word)); ok {
			writeJSON(w, http.StatusOK, payloadFor(req.Word, report, true))
			return
		}
	}
	entry, err := s.acquireClient(ck)
	if err != nil {
		writeError(w, err)
		return
	}
	defer s.releaseClient(entry)
	report, cached, err := s.recognizeWord(r.Context(), entry.client, ck, req.Word)
	if errors.Is(err, errOverloaded) {
		overloaded(w)
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, payloadFor(req.Word, report, cached))
}

// recognizeWord is the cached single-word path behind /v1/recognize. With
// the cache disabled it is a plain admitted Client.Recognize. Admission
// happens inside the singleflight compute, so only the caller that actually
// runs the engine holds an in-flight slot — waiters sharing the run block on
// the call, not on the semaphore, and a herd on one cold key costs one slot,
// not MaxInFlight. A waiter that shared a computation canceled by the
// computing request's disconnect retries once with its own (live) context,
// so one client's disconnect does not fail its herd.
func (s *Server) recognizeWord(ctx context.Context, client *ringlang.Client, ck clientKey, word string) (*ringlang.Report, bool, error) {
	run := func() (*ringlang.Report, error) {
		release, ok := s.admit()
		if !ok {
			return nil, errOverloaded
		}
		defer release()
		return client.Recognize(ctx, ringlang.WordFromString(word))
	}
	if s.cache == nil {
		report, err := run()
		return report, false, err
	}
	key := ck.cacheKey(word)
	for attempt := 0; ; attempt++ {
		report, cached, err := s.cache.Do(key, run)
		if err != nil && cached && attempt == 0 &&
			errors.Is(err, ringlang.ErrCanceled) && ctx.Err() == nil {
			continue
		}
		return report, cached, err
	}
}

// runPrep is the validated, partitioned, admitted state a batch or stream
// request shares: the resolved client, the words already answerable without
// an engine (cache hits and per-word rejections), the deduplicated misses to
// run, and the indexes of in-request repeats riding each miss's single run.
type runPrep struct {
	ck        clientKey
	client    *ringlang.Client
	done      []wordResult    // pre-completed: cache hits + rejected words
	missIdx   []int           // original index of each miss
	missWords []ringlang.Word // misses, in missIdx order, deduplicated
	dups      map[int][]int   // miss position → original indexes of repeats
	release   func()
}

// duplicateResult re-indexes a primary result for a word repeated within one
// request: the repeat shares the primary's single engine run.
func duplicateResult(primary wordResult, index int) wordResult {
	dup := primary
	dup.Index = index
	return dup
}

// finish converts one per-word engine outcome into its wire form, storing
// successful reports in the cache.
func (s *Server) finish(p *runPrep, j int, res ringlang.Result, word string) wordResult {
	i := p.missIdx[j]
	if res.Err != nil {
		return wordResult{Index: i, Error: res.Err.Error(), Code: errorCode(res.Err)}
	}
	if s.cache != nil {
		s.cache.Put(p.ck.cacheKey(word), res.Report)
	}
	return wordResult{Index: i, Report: payloadFor(word, res.Report, false)}
}

// prepareWords is the shared preamble of batch and stream: validate the word
// list, resolve the client, partition the words into served-from-cache /
// rejected / to-run (deduplicating repeats within the request, so N copies
// of one cold word cost one engine run), and take an admission slot — but
// only when there is engine work to admit, so an all-warm request is served
// even by a saturated server. On failure the response has been written and
// ok is false. The caller must defer p.release().
func (s *Server) prepareWords(w http.ResponseWriter, req runRequest, kind string) (p *runPrep, ok bool) {
	if len(req.Words) == 0 {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: kind + " request has no words", Code: "bad-request"})
		return nil, false
	}
	if len(req.Words) > s.cfg.MaxBatchWords {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorPayload{
			Error: fmt.Sprintf("%s of %d words exceeds the %d-word limit", kind, len(req.Words), s.cfg.MaxBatchWords),
			Code:  "batch-too-large",
		})
		return nil, false
	}
	ck := keyFor(req.Algorithm, req.Language, req.Schedule, req.Seed)
	entry, err := s.acquireClient(ck)
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	p = &runPrep{ck: ck, client: entry.client, dups: make(map[int][]int)}
	p.release = func() { s.releaseClient(entry) }
	firstMiss := make(map[string]int)
	for i, word := range req.Words {
		if n := wordLen(word); n > s.cfg.MaxWordLetters {
			p.done = append(p.done, s.wordTooLarge(i, n))
			continue
		}
		// Repeats of a word already known cold skip the cache lookup too,
		// keeping the miss counters equal to unique cold words.
		if j, seen := firstMiss[word]; seen {
			p.dups[j] = append(p.dups[j], i)
			continue
		}
		if s.cache != nil {
			if report, ok := s.cache.Get(ck.cacheKey(word)); ok {
				p.done = append(p.done, wordResult{Index: i, Report: payloadFor(word, report, true)})
				continue
			}
		}
		firstMiss[word] = len(p.missWords)
		p.missIdx = append(p.missIdx, i)
		p.missWords = append(p.missWords, ringlang.WordFromString(word))
	}
	if len(p.missWords) > 0 {
		releaseSlot, admitted := s.admit()
		if !admitted {
			p.release()
			overloaded(w)
			return nil, false
		}
		releaseEntry := p.release
		p.release = func() { releaseSlot(); releaseEntry() }
	}
	return p, true
}

// handleBatch serves POST /v1/batch: per-word results in word order,
// mirroring Client.Batch — a bad word fails alone, a disconnect mid-batch
// keeps the completed words. Cache hits are answered without engine runs;
// only the misses go to the worker pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRunRequest(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		status, payload := decodeStatus(err)
		writeJSON(w, status, payload)
		return
	}
	p, ok := s.prepareWords(w, req, "batch")
	if !ok {
		return
	}
	defer p.release()
	results := make([]wordResult, len(req.Words))
	for _, res := range p.done {
		results[res.Index] = res
	}
	for j, res := range p.client.Batch(r.Context(), p.missWords) {
		primary := s.finish(p, j, res, req.Words[p.missIdx[j]])
		results[primary.Index] = primary
		for _, i := range p.dups[j] {
			results[i] = duplicateResult(primary, i)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Results []wordResult `json:"results"`
	}{Results: results})
}

// streamRequest parses the query parameters of GET /v1/stream: the run
// fields of runRequest, with words given either as repeated word=… params or
// one comma-separated words=… param.
func streamRequest(r *http.Request) (runRequest, error) {
	q := r.URL.Query()
	req := runRequest{
		Algorithm: q.Get("algorithm"),
		Language:  q.Get("language"),
		Schedule:  q.Get("schedule"),
	}
	if raw := q.Get("seed"); raw != "" {
		seed, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return req, fmt.Errorf("malformed seed %q: %w", raw, err)
		}
		req.Seed = seed
	}
	req.Words = append(req.Words, q["word"]...)
	if raw := q.Get("words"); raw != "" {
		req.Words = append(req.Words, strings.Split(raw, ",")...)
	}
	return req, nil
}

// handleStream serves GET /v1/stream: one result line per word in completion
// order, NDJSON by default or SSE under Accept: text/event-stream, flushed
// as workers finish. Cache hits stream first (they are already complete);
// misses follow as Client.Stream yields them. A dropped connection cancels
// the remaining work through the request context.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, err := streamRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error(), Code: "bad-request"})
		return
	}
	p, ok := s.prepareWords(w, req, "stream")
	if !ok {
		return
	}
	defer p.release()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	var terminalErr error
	emit := func(res wordResult) {
		if res.Error != "" && terminalErr == nil && res.Code == "canceled" {
			terminalErr = fmt.Errorf("stream word %d: %w: %s", res.Index, ringlang.ErrCanceled, res.Error)
		}
		line, err := json.Marshal(res)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", line)
		} else {
			fmt.Fprintf(w, "%s\n", line)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Pre-completed words (cache hits, rejections) flush first — they are
	// already done — then misses as the workers finish them.
	for _, res := range p.done {
		emit(res)
	}
	for j, res := range p.client.Stream(r.Context(), p.missWords) {
		primary := s.finish(p, j, res, req.Words[p.missIdx[j]])
		emit(primary)
		for _, i := range p.dups[j] {
			emit(duplicateResult(primary, i))
		}
	}
	if s.streamDone != nil {
		s.streamDone(terminalErr)
	}
}

// handleCatalog serves GET /v1/catalog: the same algorithm/language/schedule
// data `ringbench -list` prints, from the same source
// (ringlang.CurrentCatalog), so the HTTP API can never drift from the CLI.
func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	catalog := ringlang.CurrentCatalog()
	writeJSON(w, http.StatusOK, struct {
		Algorithms []string `json:"algorithms"`
		Languages  []string `json:"languages"`
		Schedules  []string `json:"schedules"`
	}{Algorithms: catalog.Algorithms, Languages: catalog.Languages, Schedules: catalog.Schedules})
}

// handleHealthz serves GET /healthz: liveness plus the cache and admission
// counters a load balancer or operator wants in one probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	st := s.CacheStats()
	pst := s.PrefixStats()
	writeJSON(w, code, struct {
		Status    string  `json:"status"`
		InFlight  int     `json:"inflight"`
		Hits      uint64  `json:"cacheHits"`
		Misses    uint64  `json:"cacheMisses"`
		Evictions uint64  `json:"cacheEvictions"`
		Entries   int     `json:"cacheEntries"`
		HitRatio  float64 `json:"cacheHitRatio"`

		PrefixHits        uint64  `json:"prefixHits"`
		PrefixPartialHits uint64  `json:"prefixPartialHits"`
		PrefixMisses      uint64  `json:"prefixMisses"`
		PrefixEvictions   uint64  `json:"prefixEvictions"`
		PrefixEntries     int     `json:"prefixEntries"`
		PrefixBytes       int64   `json:"prefixBytes"`
		PrefixHitRatio    float64 `json:"prefixHitRatio"`
	}{
		Status: status, InFlight: s.inflight(),
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries, HitRatio: st.HitRatio(),
		PrefixHits: pst.Hits, PrefixPartialHits: pst.PartialHits, PrefixMisses: pst.Misses,
		PrefixEvictions: pst.Evictions, PrefixEntries: pst.Entries, PrefixBytes: pst.Bytes,
		PrefixHitRatio: pst.HitRatio(),
	})
}
