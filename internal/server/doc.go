// Package server is the HTTP serving tier over the ringlang Client — the
// layer cmd/ringserve wraps in a binary. It turns the library's three
// execution shapes into endpoints:
//
//	POST /v1/recognize — one word, one report (Client.Recognize)
//	POST /v1/batch     — per-word results in word order, never fail-all
//	                     (Client.Batch)
//	GET  /v1/stream    — results as workers finish, completion order, as
//	                     NDJSON or SSE (Client.Stream)
//	GET  /v1/catalog   — the algorithm/language/schedule catalogs
//	                     (ringlang.CurrentCatalog, the same data
//	                     `ringbench -list` prints)
//	GET  /healthz      — liveness plus cache and in-flight counters
//
// The entry point is New(Config) → Server; Server.Handler() returns the
// routed http.Handler and Server.Close drains and releases the per-key
// ringlang Clients. Three mechanisms sit between the wire and the engines:
//
//   - Memoization (internal/memo): results are cached per (algorithm,
//     language, schedule, seed, word), so a repeated word is served with
//     zero engine runs. Deterministic schedules are cached under seed 0 —
//     their results do not depend on the seed — while random-order entries
//     keep theirs. /v1/recognize runs through the cache's singleflight Do,
//     collapsing a thundering herd of identical requests into one engine
//     run; batch and stream serve per-word hits from the cache and run only
//     the misses.
//   - Backpressure: Config.MaxInFlight bounds concurrently served run
//     requests with a non-blocking semaphore; beyond it the server answers
//     429 with a Retry-After header instead of queueing unboundedly. Work
//     admitted past the semaphore is still bounded by each Client's exec
//     worker pool (Config.Workers).
//   - Cancellation: every handler passes its http.Request context straight
//     into the Client, so a dropped connection stops dispatch mid-batch and
//     mid-stream with the library's stop-dispatch-and-drain semantics; the
//     undispatched words report ErrCanceled and already-computed reports
//     stay cached.
//
// Every response is JSON. Failures carry the error string plus a stable
// machine-readable code derived from the facade's sentinel taxonomy
// (unknown-algorithm, unknown-language, unknown-schedule, canceled, closed,
// run-failed) with the matching HTTP status.
package server
