package election

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/ring"
)

// hsNode implements the Hirschberg–Sinclair algorithm on a bidirectional
// ring: in phase k an active candidate probes 2ᵏ hops in both directions; the
// probe is relayed only past smaller identifiers and is answered with a reply
// when it exhausts its hop budget. A candidate that gets both replies starts
// the next phase; a candidate whose probe travels all the way back to itself
// holds the maximum identifier and wins. Message complexity O(n log n).
type hsNode struct {
	id uint64

	phase       int
	repliesSeen int
	elected     bool
	leaderID    uint64
	hasLead     bool
}

var _ electionNode = (*hsNode)(nil)

// HS message kinds.
const (
	hsProbe uint64 = iota
	hsReply
	hsAnnounce
)

// encodeHS frames a Hirschberg–Sinclair message: kind (2 bits), δ-coded id,
// δ-coded hop budget (probes only).
func encodeHS(kind, id, hops uint64) bits.String {
	var w bits.Writer
	w.WriteUint(kind, 2)
	w.WriteDeltaValue(id)
	if kind == hsProbe {
		w.WriteDeltaValue(hops)
	}
	return w.String()
}

func decodeHS(payload bits.String) (kind, id, hops uint64, err error) {
	r := bits.NewReader(payload)
	if kind, err = r.ReadUint(2); err != nil {
		return 0, 0, 0, fmt.Errorf("election: decode hs kind: %w", err)
	}
	if id, err = r.ReadDeltaValue(); err != nil {
		return 0, 0, 0, fmt.Errorf("election: decode hs id: %w", err)
	}
	if kind == hsProbe {
		if hops, err = r.ReadDeltaValue(); err != nil {
			return 0, 0, 0, fmt.Errorf("election: decode hs hops: %w", err)
		}
	}
	return kind, id, hops, nil
}

func (n *hsNode) isElected() bool { return n.elected }

func (n *hsNode) knownLeader() (uint64, bool) { return n.leaderID, n.hasLead }

// probes returns the two probes of the current phase.
func (n *hsNode) probes() []ring.Send {
	hops := uint64(1) << uint(n.phase)
	payload := encodeHS(hsProbe, n.id, hops)
	return []ring.Send{ring.SendForward(payload), ring.SendBackward(payload)}
}

// Start implements ring.Node.
func (n *hsNode) Start(_ *ring.Context) ([]ring.Send, error) {
	return n.probes(), nil
}

// Receive implements ring.Node.
func (n *hsNode) Receive(_ *ring.Context, from ring.Direction, payload bits.String) ([]ring.Send, error) {
	kind, id, hops, err := decodeHS(payload)
	if err != nil {
		return nil, err
	}
	away := from.Opposite() // keep travelling away from the sender
	back := from            // back towards the sender
	switch kind {
	case hsAnnounce:
		if n.elected && id == n.id {
			return nil, nil
		}
		n.leaderID, n.hasLead = id, true
		return []ring.Send{{Dir: away, Payload: payload}}, nil
	case hsProbe:
		switch {
		case id == n.id:
			// Our own probe came all the way around: we hold the maximum.
			n.elected = true
			n.leaderID, n.hasLead = n.id, true
			return []ring.Send{ring.SendForward(encodeHS(hsAnnounce, n.id, 0))}, nil
		case id < n.id:
			// Swallow probes of smaller candidates.
			return nil, nil
		case hops > 1:
			return []ring.Send{{Dir: away, Payload: encodeHS(hsProbe, id, hops-1)}}, nil
		default:
			// Budget exhausted: answer with a reply travelling back.
			return []ring.Send{{Dir: back, Payload: encodeHS(hsReply, id, 0)}}, nil
		}
	case hsReply:
		if id != n.id {
			return []ring.Send{{Dir: away, Payload: payload}}, nil
		}
		if n.elected {
			return nil, nil
		}
		n.repliesSeen++
		if n.repliesSeen < 2 {
			return nil, nil
		}
		// Both probes survived this phase: advance to the next one.
		n.repliesSeen = 0
		n.phase++
		return n.probes(), nil
	default:
		return nil, fmt.Errorf("election: unknown hs message kind %d", kind)
	}
}
