package election

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ringlang/internal/ring"
)

func maxIndex(ids []uint64) int {
	best := 0
	for i, id := range ids {
		if id > ids[best] {
			best = i
		}
	}
	return best
}

func TestChangRobertsElectsMaxID(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 50, 200} {
		ids := RandomIDs(n, rng)
		out, err := Run(ChangRoberts, ids, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out.WinnerIndex != maxIndex(ids) {
			t.Errorf("n=%d: Chang-Roberts elected index %d, want the maximum id at %d",
				n, out.WinnerIndex, maxIndex(ids))
		}
		if out.WinnerID != ids[out.WinnerIndex] {
			t.Errorf("n=%d: winner id mismatch", n)
		}
	}
}

func TestDKRElectsUniqueLeader(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 8, 50, 200, 500} {
		ids := RandomIDs(n, rng)
		out, err := Run(DolevKlaweRodeh, ids, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out.WinnerIndex < 0 || out.WinnerIndex >= n {
			t.Errorf("n=%d: winner index %d out of range", n, out.WinnerIndex)
		}
	}
}

func TestDKRMessageComplexityIsNLogN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{16, 64, 256, 1024} {
		ids := RandomIDs(n, rng)
		out, err := Run(DolevKlaweRodeh, ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(n)*(2*math.Log2(float64(n))+2) + 2*float64(n)
		if float64(out.Stats.Messages) > bound {
			t.Errorf("n=%d: DKR used %d messages, above the 2n(log n + 1) + 2n bound %.0f",
				n, out.Stats.Messages, bound)
		}
	}
}

func TestChangRobertsWorstAndBestCase(t *testing.T) {
	n := 128
	worst, err := Run(ChangRoberts, DescendingIDs(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Run(ChangRoberts, AscendingIDs(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case ≈ n²/2 candidate messages (+ n announcements); best case ≈ 2n.
	if worst.Stats.Messages < n*n/4 {
		t.Errorf("descending ids should be quadratic: %d messages for n=%d", worst.Stats.Messages, n)
	}
	if best.Stats.Messages > 3*n {
		t.Errorf("ascending ids should be linear: %d messages for n=%d", best.Stats.Messages, n)
	}
	if worst.Stats.Messages <= best.Stats.Messages {
		t.Error("worst case should cost more than best case")
	}
}

func TestDKRBeatsChangRobertsWorstCase(t *testing.T) {
	n := 256
	cr, err := Run(ChangRoberts, DescendingIDs(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	dkr, err := Run(DolevKlaweRodeh, DescendingIDs(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dkr.Stats.Messages >= cr.Stats.Messages {
		t.Errorf("DKR (%d msgs) should beat Chang-Roberts (%d msgs) on the adversarial ring",
			dkr.Stats.Messages, cr.Stats.Messages)
	}
}

func TestElectionOnConcurrentEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ids := RandomIDs(40, rng)
	for _, p := range []Protocol{ChangRoberts, DolevKlaweRodeh} {
		out, err := Run(p, ids, ring.NewConcurrentEngine())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if p == ChangRoberts && out.WinnerIndex != maxIndex(ids) {
			t.Errorf("concurrent Chang-Roberts elected %d, want %d", out.WinnerIndex, maxIndex(ids))
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(ChangRoberts, nil, nil); !errors.Is(err, ring.ErrNoProcessors) {
		t.Errorf("err = %v, want ErrNoProcessors", err)
	}
	if _, err := Run(ChangRoberts, []uint64{3, 5, 3}, nil); !errors.Is(err, ErrDuplicateIDs) {
		t.Errorf("err = %v, want ErrDuplicateIDs", err)
	}
	if _, err := Run(Protocol(99), []uint64{1, 2}, nil); err == nil {
		t.Error("expected error for unknown protocol")
	}
}

func TestWorkloadGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ids := RandomIDs(100, rng)
	seen := make(map[uint64]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatal("RandomIDs produced a duplicate")
		}
		seen[id] = true
	}
	asc := AscendingIDs(5)
	desc := DescendingIDs(5)
	for i := 1; i < 5; i++ {
		if asc[i] <= asc[i-1] {
			t.Error("AscendingIDs not ascending")
		}
		if desc[i] >= desc[i-1] {
			t.Error("DescendingIDs not descending")
		}
	}
}

func TestProtocolString(t *testing.T) {
	if ChangRoberts.String() == "" || DolevKlaweRodeh.String() == "" || Protocol(0).String() != "unknown" {
		t.Error("Protocol.String misbehaves")
	}
}
