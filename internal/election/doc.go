// Package election implements leader election on the unidirectional ring —
// the substrate that establishes the paper's "ring with a leader" premise.
// The introduction of the paper points to the O(n log n)-message algorithms
// of Dolev–Klawe–Rodeh [DKR] and the matching lower bound [PKR]; this package
// provides
//
//   - ChangRoberts: the simple id-forwarding algorithm, O(n log n) messages on
//     average but Θ(n²) in the worst case, and
//   - DolevKlaweRodeh: the phase-based algorithm with O(n log n) messages in
//     the worst case,
//
// both running on the same ring engine (every processor initiates, and the
// run terminates by quiescence once the winner's announcement has circulated).
package election
