package election_test

import (
	"fmt"
	"log"

	"ringlang/internal/election"
)

// ExampleRun elects a leader with Dolev–Klawe–Rodeh on a five-processor ring.
// The winner is announced to every processor, establishing the "ring with a
// leader" premise the paper starts from.
func ExampleRun() {
	ids := []uint64{17, 4, 42, 8, 23}
	out, err := election.Run(election.DolevKlaweRodeh, ids, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("winner id=%d messages=%d\n", out.WinnerID, out.Stats.Messages)
	// Output: winner id=17 messages=30
}
