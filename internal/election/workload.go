package election

import "math/rand"

// RandomIDs returns n distinct pseudo-random identifiers.
func RandomIDs(n int, rng *rand.Rand) []uint64 {
	ids := make([]uint64, n)
	used := make(map[uint64]bool, n)
	for i := range ids {
		for {
			id := uint64(rng.Int63n(1 << 40))
			if !used[id] {
				used[id] = true
				ids[i] = id
				break
			}
		}
	}
	return ids
}

// AscendingIDs returns the identifiers 1..n in ring order. For Chang–Roberts
// (candidates travel forward and are swallowed by any larger identifier) this
// is the best case: every candidate except the maximum is swallowed after a
// single hop.
func AscendingIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	return ids
}

// DescendingIDs returns the identifiers n..1 in ring order. For Chang–Roberts
// this is the worst case: the candidate at distance k behind the maximum
// travels n−k hops before being swallowed, for Θ(n²) messages in total.
func DescendingIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(n - i)
	}
	return ids
}
