package election

import (
	"math"
	"math/rand"
	"testing"

	"ringlang/internal/ring"
)

func TestHirschbergSinclairElectsMaxID(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 5, 16, 64, 200} {
		ids := RandomIDs(n, rng)
		out, err := Run(HirschbergSinclair, ids, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out.WinnerIndex != maxIndex(ids) {
			t.Errorf("n=%d: elected index %d, want max id index %d", n, out.WinnerIndex, maxIndex(ids))
		}
	}
}

func TestHirschbergSinclairMessageComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{32, 128, 512} {
		ids := RandomIDs(n, rng)
		out, err := Run(HirschbergSinclair, ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Classic bound: ≤ 8n(1 + log n) probe/reply messages plus the
		// announcement round.
		bound := 8*float64(n)*(1+math.Log2(float64(n))) + 2*float64(n)
		if float64(out.Stats.Messages) > bound {
			t.Errorf("n=%d: %d messages exceed the 8n(1+log n) bound %.0f", n, out.Stats.Messages, bound)
		}
	}
}

func TestHirschbergSinclairWorstCaseArrangements(t *testing.T) {
	for _, ids := range [][]uint64{AscendingIDs(100), DescendingIDs(100)} {
		out, err := Run(HirschbergSinclair, ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.WinnerID != 100 {
			t.Errorf("winner id = %d, want 100", out.WinnerID)
		}
	}
}

func TestHirschbergSinclairOnConcurrentAndRandomEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ids := RandomIDs(32, rng)
	engines := []ring.Engine{ring.NewConcurrentEngine(), ring.NewRandomOrderEngine(7)}
	for _, engine := range engines {
		out, err := Run(HirschbergSinclair, ids, engine)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if out.WinnerIndex != maxIndex(ids) {
			t.Errorf("%s: elected %d, want %d", engine.Name(), out.WinnerIndex, maxIndex(ids))
		}
	}
}

func TestProtocolModes(t *testing.T) {
	if ChangRoberts.Mode() != ring.Unidirectional || DolevKlaweRodeh.Mode() != ring.Unidirectional {
		t.Error("unidirectional protocols report the wrong mode")
	}
	if HirschbergSinclair.Mode() != ring.Bidirectional {
		t.Error("Hirschberg-Sinclair must be bidirectional")
	}
	if HirschbergSinclair.String() == "" {
		t.Error("missing String for HirschbergSinclair")
	}
}
