package election

import (
	"errors"
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/ring"
)

// Protocol selects the election algorithm.
type Protocol int

const (
	// ChangRoberts is the simple id-forwarding algorithm (Θ(n²) worst case).
	ChangRoberts Protocol = iota + 1
	// DolevKlaweRodeh is the phase-based O(n log n) algorithm from [DKR],
	// on the unidirectional ring.
	DolevKlaweRodeh
	// HirschbergSinclair is the O(n log n) probe/reply algorithm on the
	// bidirectional ring.
	HirschbergSinclair
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ChangRoberts:
		return "chang-roberts"
	case DolevKlaweRodeh:
		return "dolev-klawe-rodeh"
	case HirschbergSinclair:
		return "hirschberg-sinclair"
	default:
		return "unknown"
	}
}

// Mode returns the ring topology the protocol requires.
func (p Protocol) Mode() ring.Mode {
	if p == HirschbergSinclair {
		return ring.Bidirectional
	}
	return ring.Unidirectional
}

// Outcome is the result of one election run.
type Outcome struct {
	// WinnerIndex is the ring position of the elected processor.
	WinnerIndex int
	// WinnerID is the identifier the winner announced.
	WinnerID uint64
	// Stats is the engine's bit/message accounting for the run.
	Stats *ring.Stats
	// Faults is the engine's fault accounting; nil under every reliable
	// schedule (see ring.Result.Faults).
	Faults *ring.FaultReport
}

// Errors reported by Run.
var (
	ErrDuplicateIDs = errors.New("election: identifiers must be distinct")
	ErrNoWinner     = errors.New("election: no processor was elected")
	ErrManyWinners  = errors.New("election: more than one processor was elected")
	ErrDisagreement = errors.New("election: processors disagree on the winner")
	// ErrDeliveryNotTolerated is returned when the engine's delivery
	// guarantee is weaker than the protocol tolerates and neither Dedup nor
	// AllowFaults was set (see RunOptions).
	ErrDeliveryNotTolerated = errors.New("election: protocol does not tolerate the schedule's delivery guarantee")
)

// RunOptions configures RunWith beyond the protocol and identifiers.
type RunOptions struct {
	// Engine to execute on; nil means the deterministic sequential engine.
	Engine ring.Engine
	// Dedup wraps every processor with the alternating-bit deduplication
	// layer (ring.WithDedup), making the protocol tolerate at-least-once
	// delivery at one extra bit per message.
	Dedup bool
	// AllowFaults lets the run proceed when the engine's delivery guarantee
	// is weaker than the protocol tolerates. The outcome is then whatever
	// the faulty network produces — possibly a typed failure: ErrNoWinner,
	// ErrManyWinners, ErrDisagreement, or the engine's own
	// ErrMessageBudgetExceeded when a crashed would-be winner's candidate
	// circulates forever.
	AllowFaults bool
}

// electionNode is the common read-back interface of both protocols' nodes.
type electionNode interface {
	ring.Node
	isElected() bool
	knownLeader() (uint64, bool)
}

// Run executes the protocol on a ring in which processor i holds the
// identifier ids[i]. Every processor initiates; the run terminates by
// quiescence after the winner's announcement has circulated.
//
//ring:deterministic
func Run(p Protocol, ids []uint64, engine ring.Engine) (*Outcome, error) {
	return RunWith(p, ids, RunOptions{Engine: engine})
}

// RunWith is Run with fault-axis options: deduplication for at-least-once
// delivery, and crash awareness — when the engine reports crashed processors
// (ring.Result.Faults), the agreement check skips them, because a crashed
// processor legitimately never learns the winner.
//
//ring:deterministic
func RunWith(p Protocol, ids []uint64, opts RunOptions) (*Outcome, error) {
	if len(ids) == 0 {
		return nil, ring.ErrNoProcessors
	}
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("%w: %d appears twice", ErrDuplicateIDs, id)
		}
		seen[id] = true
	}

	nodes := make([]ring.Node, len(ids))
	inspect := make([]electionNode, len(ids))
	for i, id := range ids {
		var n electionNode
		switch p {
		case ChangRoberts:
			n = &changRobertsNode{id: id}
		case DolevKlaweRodeh:
			n = &dkrNode{id: id, value: id, active: true}
		case HirschbergSinclair:
			n = &hsNode{id: id}
		default:
			return nil, fmt.Errorf("election: unknown protocol %d", p)
		}
		nodes[i] = n
		inspect[i] = n
	}
	if opts.Dedup {
		nodes = ring.WithDedupAll(nodes)
	}

	engine := opts.Engine
	if engine == nil {
		engine = ring.NewSequentialEngine()
	}
	switch g := ring.EngineDeliveryGuarantee(engine); g {
	case ring.AtLeastOnce:
		if !opts.Dedup && !opts.AllowFaults {
			return nil, fmt.Errorf("%w: %s under %s delivery (engine %s); set Dedup or AllowFaults",
				ErrDeliveryNotTolerated, p, g, engine.Name())
		}
	case ring.CrashProne:
		if !opts.AllowFaults {
			return nil, fmt.Errorf("%w: %s under %s delivery (engine %s); set AllowFaults",
				ErrDeliveryNotTolerated, p, g, engine.Name())
		}
	}
	res, err := engine.Run(ring.Config{
		Mode:       p.Mode(),
		Initiators: ring.AllProcessors,
	}, nodes)
	if err != nil {
		return nil, fmt.Errorf("election: %s: %w", p, err)
	}

	// Only a crash the network never repairs removes a processor from the
	// agreement check: under crash-prone delivery the victim is spliced out
	// mid-protocol and legitimately never learns the winner. A restarted
	// processor (crash-restart — exactly-once, a pure delay) recovers with
	// its state intact and answers for itself like everyone else.
	crashed := make(map[int]bool)
	if res.Faults != nil && ring.EngineDeliveryGuarantee(engine) == ring.CrashProne {
		for _, proc := range res.Faults.Crashed {
			crashed[proc] = true
		}
	}
	outcome := &Outcome{WinnerIndex: -1, Stats: res.Stats, Faults: res.Faults}
	for i, n := range inspect {
		if crashed[i] {
			// A crashed processor's state is frozen mid-protocol; it cannot
			// claim (or be held to) anything.
			continue
		}
		if n.isElected() {
			if outcome.WinnerIndex >= 0 {
				return nil, ErrManyWinners
			}
			outcome.WinnerIndex = i
			outcome.WinnerID = ids[i]
		}
	}
	if outcome.WinnerIndex < 0 {
		return nil, ErrNoWinner
	}
	for i, n := range inspect {
		if crashed[i] {
			continue
		}
		id, ok := n.knownLeader()
		if !ok || id != outcome.WinnerID {
			return nil, fmt.Errorf("%w: processor %d", ErrDisagreement, i)
		}
	}
	return outcome, nil
}

// Message tags shared by both protocols.
const (
	tagCandidate    = false
	tagAnnouncement = true
)

func encodeElection(announcement bool, value uint64) bits.String {
	var w bits.Writer
	w.WriteBool(announcement)
	w.WriteDeltaValue(value)
	return w.String()
}

func decodeElection(payload bits.String) (announcement bool, value uint64, err error) {
	r := bits.NewReader(payload)
	if announcement, err = r.ReadBool(); err != nil {
		return false, 0, fmt.Errorf("election: decode tag: %w", err)
	}
	if value, err = r.ReadDeltaValue(); err != nil {
		return false, 0, fmt.Errorf("election: decode value: %w", err)
	}
	return announcement, value, nil
}

// changRobertsNode implements the Chang–Roberts protocol: forward identifiers
// larger than your own, swallow smaller ones, win when your own identifier
// comes back.
type changRobertsNode struct {
	id       uint64
	elected  bool
	leaderID uint64
	hasLead  bool
}

var _ electionNode = (*changRobertsNode)(nil)

func (n *changRobertsNode) isElected() bool { return n.elected }

func (n *changRobertsNode) knownLeader() (uint64, bool) { return n.leaderID, n.hasLead }

// Start implements ring.Node.
func (n *changRobertsNode) Start(_ *ring.Context) ([]ring.Send, error) {
	return []ring.Send{ring.SendForward(encodeElection(tagCandidate, n.id))}, nil
}

// Receive implements ring.Node.
func (n *changRobertsNode) Receive(_ *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	announcement, value, err := decodeElection(payload)
	if err != nil {
		return nil, err
	}
	if announcement {
		if n.elected && value == n.id {
			// The announcement made it all the way around; quiesce.
			return nil, nil
		}
		n.leaderID, n.hasLead = value, true
		return []ring.Send{ring.SendForward(payload)}, nil
	}
	switch {
	case value > n.id:
		return []ring.Send{ring.SendForward(payload)}, nil
	case value < n.id:
		// Swallow: a smaller candidate cannot win.
		return nil, nil
	default:
		n.elected = true
		n.leaderID, n.hasLead = n.id, true
		return []ring.Send{ring.SendForward(encodeElection(tagAnnouncement, n.id))}, nil
	}
}

// dkrNode implements the Dolev–Klawe–Rodeh protocol. Active processors
// compare their current value with the values of their two nearest active
// predecessors; the middle value survives as the new value of the downstream
// processor, and the processor that sees its own current value return is the
// unique survivor and wins.
type dkrNode struct {
	id     uint64
	value  uint64
	active bool
	// awaitingSecond is true after the first candidate of a phase arrived.
	awaitingSecond bool
	firstValue     uint64

	elected  bool
	leaderID uint64
	hasLead  bool
}

var _ electionNode = (*dkrNode)(nil)

func (n *dkrNode) isElected() bool { return n.elected }

func (n *dkrNode) knownLeader() (uint64, bool) { return n.leaderID, n.hasLead }

// Start implements ring.Node.
func (n *dkrNode) Start(_ *ring.Context) ([]ring.Send, error) {
	return []ring.Send{ring.SendForward(encodeElection(tagCandidate, n.value))}, nil
}

// Receive implements ring.Node.
func (n *dkrNode) Receive(_ *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	announcement, value, err := decodeElection(payload)
	if err != nil {
		return nil, err
	}
	if announcement {
		if n.elected && value == n.id {
			return nil, nil
		}
		n.leaderID, n.hasLead = value, true
		return []ring.Send{ring.SendForward(payload)}, nil
	}
	if !n.active {
		// Passive processors are pure relays.
		return []ring.Send{ring.SendForward(payload)}, nil
	}
	if !n.awaitingSecond {
		if value == n.value {
			// Our value travelled the whole ring and arrived as the first
			// value of a phase: we are the only remaining active processor,
			// hold the maximum, and win.
			n.elected = true
			n.leaderID, n.hasLead = n.id, true
			return []ring.Send{ring.SendForward(encodeElection(tagAnnouncement, n.id))}, nil
		}
		n.firstValue = value
		n.awaitingSecond = true
		return []ring.Send{ring.SendForward(encodeElection(tagCandidate, value))}, nil
	}
	secondValue := value
	n.awaitingSecond = false
	if n.firstValue > n.value && n.firstValue > secondValue {
		// The nearest active predecessor's value is a local maximum; adopt it
		// and stay active for the next phase.
		n.value = n.firstValue
		return []ring.Send{ring.SendForward(encodeElection(tagCandidate, n.value))}, nil
	}
	n.active = false
	return nil, nil
}
