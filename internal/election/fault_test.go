package election

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/ring"
)

// Every protocol, hardened with the dedup layer, elects the same winner under
// at-least-once delivery as under the sequential schedule — at one extra bit
// per message, which the duplicates themselves never inflate (stats are
// recorded at send time, not delivery time).
func TestElectionDedupToleratesAtLeastOnce(t *testing.T) {
	ids := RandomIDs(9, rand.New(rand.NewSource(42)))
	for _, p := range []Protocol{ChangRoberts, DolevKlaweRodeh, HirschbergSinclair} {
		base, err := RunWith(p, ids, RunOptions{Dedup: true})
		if err != nil {
			t.Fatalf("%s sequential: %v", p, err)
		}
		duplicated := 0
		for seed := int64(1); seed <= 5; seed++ {
			out, err := RunWith(p, ids, RunOptions{
				Engine: ring.NewDuplicatingEngine(seed, 0.25),
				Dedup:  true,
			})
			if err != nil {
				t.Fatalf("%s duplicating seed %d: %v", p, seed, err)
			}
			if out.WinnerIndex != base.WinnerIndex || out.WinnerID != base.WinnerID {
				t.Errorf("%s seed %d: elected %d (id %d), sequential elected %d (id %d)",
					p, seed, out.WinnerIndex, out.WinnerID, base.WinnerIndex, base.WinnerID)
			}
			if out.Stats.Bits != base.Stats.Bits || out.Stats.Messages != base.Stats.Messages {
				t.Errorf("%s seed %d: %d bits/%d msgs, sequential %d/%d — delivered duplicates must not be billed",
					p, seed, out.Stats.Bits, out.Stats.Messages, base.Stats.Bits, base.Stats.Messages)
			}
			if out.Faults != nil {
				duplicated += out.Faults.Duplicates
			}
		}
		if duplicated == 0 {
			t.Errorf("%s: five seeds at rate 0.25 injected no duplicate; the sweep is vacuous", p)
		}
	}
}

// Weaker-than-tolerated delivery is refused, typed, unless the caller opts in.
func TestElectionRefusesUntoleratedDelivery(t *testing.T) {
	ids := AscendingIDs(6)
	cases := []struct {
		engine ring.Engine
		opts   RunOptions
		wantOK bool
	}{
		{ring.NewDuplicatingEngine(1, 0.25), RunOptions{}, false},
		{ring.NewDuplicatingEngine(1, 0.25), RunOptions{Dedup: true}, true},
		{ring.NewDuplicatingEngine(1, 0.25), RunOptions{AllowFaults: true}, true},
		{ring.NewCrashRepairEngine(1), RunOptions{}, false},
		{ring.NewCrashRepairEngine(1), RunOptions{Dedup: true}, false},
		// Exactly-once fault schedules need no opt-in at all.
		{ring.NewLossyEngine(1, 0.25, 3), RunOptions{}, true},
		{ring.NewCrashRestartEngine(1), RunOptions{}, true},
	}
	for _, tc := range cases {
		opts := tc.opts
		opts.Engine = tc.engine
		_, err := RunWith(ChangRoberts, ids, opts)
		if tc.wantOK {
			if err != nil {
				t.Errorf("%s with %+v: %v", tc.engine.Name(), tc.opts, err)
			}
			continue
		}
		if !errors.Is(err, ErrDeliveryNotTolerated) {
			t.Errorf("%s with %+v: got %v, want ErrDeliveryNotTolerated", tc.engine.Name(), tc.opts, err)
		}
	}
}

// An explicitly allowed crash-prone election is a deterministic function of
// the seed, and every outcome is typed: either a coherent election among the
// survivors, or one of the election errors (the crash can eat the would-be
// winner's candidacy, or the engine's message budget stops a candidate that
// circulates past its swallower forever).
func TestElectionUnderCrashRepairIsTypedAndDeterministic(t *testing.T) {
	ids := RandomIDs(8, rand.New(rand.NewSource(7)))
	successes := 0
	for seed := int64(1); seed <= 20; seed++ {
		run := func() (*Outcome, error) {
			return RunWith(ChangRoberts, ids, RunOptions{
				Engine:      ring.NewCrashRepairEngine(seed),
				AllowFaults: true,
			})
		}
		a, aErr := run()
		b, bErr := run()
		//ringvet:ignore errsentinel -- determinism pin: the two runs must render the very same error, not just share a sentinel; the typed-failure check below is the errors.Is one
		if (aErr == nil) != (bErr == nil) || (aErr != nil && aErr.Error() != bErr.Error()) {
			t.Fatalf("seed %d: two runs disagree: %v vs %v", seed, aErr, bErr)
		}
		if aErr != nil {
			switch {
			case errors.Is(aErr, ErrNoWinner), errors.Is(aErr, ErrManyWinners),
				errors.Is(aErr, ErrDisagreement), errors.Is(aErr, ring.ErrMessageBudgetExceeded):
			default:
				t.Errorf("seed %d: untyped failure %v", seed, aErr)
			}
			continue
		}
		successes++
		if a.WinnerIndex != b.WinnerIndex || a.WinnerID != b.WinnerID {
			t.Errorf("seed %d: winners differ across identical runs: %d vs %d", seed, a.WinnerIndex, b.WinnerIndex)
		}
		if a.Faults == nil {
			t.Fatalf("seed %d: crash-prone run attached no fault report", seed)
		}
		for _, proc := range a.Faults.Crashed {
			if proc == a.WinnerIndex {
				t.Errorf("seed %d: elected processor %d is crashed", seed, proc)
			}
		}
	}
	if successes == 0 {
		t.Error("no seed in 1..20 produced a successful election under crash-repair")
	}
}
