package trace

import (
	"bytes"
	"strings"
	"testing"

	"ringlang/internal/ring"
)

func TestBuildReport(t *testing.T) {
	n := 6
	nodes := make([]ring.Node, n)
	for i := range nodes {
		nodes[i] = &counterNode{leader: i == ring.LeaderIndex}
	}
	res := runTraced(t, nodes)
	report, err := BuildReport(res, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != ring.VerdictAccept || report.Processors != n || report.Messages != n {
		t.Errorf("report header wrong: %+v", report)
	}
	if report.Passes != 1 || !report.Token.IsToken {
		t.Errorf("pass/token analysis wrong: %+v", report)
	}
	if report.InfoStates.Distinct != n || report.DistinctMsgs != n {
		t.Errorf("analysis columns wrong: %+v", report)
	}
	if len(report.Links) != n {
		t.Fatalf("expected %d links, got %d", n, len(report.Links))
	}
	for i := 1; i < len(report.Links); i++ {
		prev, cur := report.Links[i-1], report.Links[i]
		if cur.From < prev.From {
			t.Error("links are not sorted")
		}
	}

	var buf bytes.Buffer
	if err := report.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"verdict", "token property", "per-link traffic", "p0"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestBuildReportRequiresTrace(t *testing.T) {
	if _, err := BuildReport(&ring.Result{Stats: &ring.Stats{}}, []string{"a"}); err == nil {
		t.Error("expected error when no trace was recorded")
	}
}
