package trace

import (
	"testing"

	"ringlang/internal/bits"
	"ringlang/internal/ring"
)

// relayNode forwards a fixed payload once around the ring; the leader accepts
// on return. It gives a deterministic trace to analyse.
type relayNode struct {
	leader  bool
	payload bits.String
}

func (r *relayNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !r.leader {
		return nil, nil
	}
	return []ring.Send{ring.SendForward(r.payload)}, nil
}

func (r *relayNode) Receive(ctx *ring.Context, from ring.Direction, payload bits.String) ([]ring.Send, error) {
	if r.leader {
		return nil, ctx.Accept()
	}
	return []ring.Send{ring.SendForward(payload)}, nil
}

// counterNode forwards an incrementing delta-coded counter, so every
// processor sees a different message and ends in a different information
// state.
type counterNode struct{ leader bool }

func (c *counterNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !c.leader {
		return nil, nil
	}
	var w bits.Writer
	w.WriteDeltaValue(1)
	return []ring.Send{ring.SendForward(w.String())}, nil
}

func (c *counterNode) Receive(ctx *ring.Context, from ring.Direction, payload bits.String) ([]ring.Send, error) {
	if c.leader {
		return nil, ctx.Accept()
	}
	v, err := bits.NewReader(payload).ReadDeltaValue()
	if err != nil {
		return nil, err
	}
	var w bits.Writer
	w.WriteDeltaValue(v + 1)
	return []ring.Send{ring.SendForward(w.String())}, nil
}

func runTraced(t *testing.T, nodes []ring.Node) *ring.Result {
	t.Helper()
	res, err := ring.NewSequentialEngine().Run(ring.Config{RecordTrace: true, RequireVerdict: true}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func uniformInputs(n int) []string {
	in := make([]string, n)
	for i := range in {
		in[i] = "a"
	}
	return in
}

func TestInformationStatesBoundedForConstantMessages(t *testing.T) {
	// All processors hold the same letter and relay the same 1-bit message,
	// so every non-leader follower ends in the same information state.
	n := 20
	nodes := make([]ring.Node, n)
	payload := bits.MustFromBinary("1")
	for i := range nodes {
		nodes[i] = &relayNode{leader: i == ring.LeaderIndex, payload: payload}
	}
	res := runTraced(t, nodes)
	analysis, err := ComputeInformationStates(res.Trace, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two states: the leader's (send then receive) and the followers'.
	if analysis.Distinct != 2 {
		t.Errorf("Distinct = %d, want 2", analysis.Distinct)
	}
	if analysis.MaxMultiplicity != n-1 {
		t.Errorf("MaxMultiplicity = %d, want %d", analysis.MaxMultiplicity, n-1)
	}
	mult := analysis.Multiplicities()
	if len(mult) != 2 || mult[0] != n-1 || mult[1] != 1 {
		t.Errorf("Multiplicities = %v", mult)
	}
}

func TestInformationStatesDistinctForCounterAlgorithm(t *testing.T) {
	// The counting algorithm sends a different value over every link, so all
	// processors end in pairwise distinct information states — the structure
	// behind the Ω(n log n) lower bound of Theorem 4.
	n := 16
	nodes := make([]ring.Node, n)
	for i := range nodes {
		nodes[i] = &counterNode{leader: i == ring.LeaderIndex}
	}
	res := runTraced(t, nodes)
	analysis, err := ComputeInformationStates(res.Trace, uniformInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Distinct != n {
		t.Errorf("Distinct = %d, want %d", analysis.Distinct, n)
	}
	if analysis.MaxMultiplicity != 1 {
		t.Errorf("MaxMultiplicity = %d, want 1", analysis.MaxMultiplicity)
	}
}

func TestInformationStatesUseInputs(t *testing.T) {
	// Identical message sequences but different inputs must yield different
	// information states.
	n := 4
	nodes := make([]ring.Node, n)
	payload := bits.MustFromBinary("1")
	for i := range nodes {
		nodes[i] = &relayNode{leader: i == ring.LeaderIndex, payload: payload}
	}
	res := runTraced(t, nodes)
	inputs := []string{"a", "b", "a", "b"}
	analysis, err := ComputeInformationStates(res.Trace, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3 (leader, followers 'a', followers 'b')", analysis.Distinct)
	}
}

func TestComputeInformationStatesValidation(t *testing.T) {
	if _, err := ComputeInformationStates(nil, nil); err == nil {
		t.Error("expected error for empty inputs")
	}
	tr := ring.Trace{{Kind: ring.EventSend, Processor: 7, Payload: bits.Empty()}}
	if _, err := ComputeInformationStates(tr, []string{"a"}); err == nil {
		t.Error("expected error for out-of-range processor")
	}
}

func TestCheckTokenHoldsForRelay(t *testing.T) {
	n := 10
	nodes := make([]ring.Node, n)
	for i := range nodes {
		nodes[i] = &counterNode{leader: i == ring.LeaderIndex}
	}
	res := runTraced(t, nodes)
	report := CheckToken(res.Trace)
	if !report.IsToken || report.MaxInFlight != 1 || len(report.Violations) != 0 {
		t.Errorf("token report = %+v, want clean single-token execution", report)
	}
}

func TestCheckTokenDetectsViolation(t *testing.T) {
	p := bits.MustFromBinary("1")
	tr := ring.Trace{
		{Seq: 0, Kind: ring.EventSend, Processor: 0, Dir: ring.Forward, Payload: p},
		{Seq: 1, Kind: ring.EventSend, Processor: 0, Dir: ring.Backward, Payload: p},
		{Seq: 2, Kind: ring.EventReceive, Processor: 1, Dir: ring.Backward, Payload: p},
		{Seq: 3, Kind: ring.EventReceive, Processor: 2, Dir: ring.Forward, Payload: p},
	}
	report := CheckToken(tr)
	if report.IsToken || report.MaxInFlight != 2 || len(report.Violations) != 1 {
		t.Errorf("token report = %+v, want a violation at seq 1", report)
	}
}

func TestPassCountAndMessageAlphabet(t *testing.T) {
	n := 8
	nodes := make([]ring.Node, n)
	for i := range nodes {
		nodes[i] = &counterNode{leader: i == ring.LeaderIndex}
	}
	res := runTraced(t, nodes)
	if got := PassCount(res.Trace); got != 1 {
		t.Errorf("PassCount = %d, want 1", got)
	}
	// The counter algorithm uses a distinct payload per link.
	if got := MessageAlphabetSize(res.Trace); got != n {
		t.Errorf("MessageAlphabetSize = %d, want %d", got, n)
	}
	if err := RequireTrace(res); err != nil {
		t.Errorf("RequireTrace: %v", err)
	}
	if err := RequireTrace(&ring.Result{}); err == nil {
		t.Error("RequireTrace should fail without a trace")
	}
}
