package trace

import (
	"fmt"

	"ringlang/internal/ring"
)

// TokenReport describes whether an execution satisfied the token property
// (at most one message in the network at any time), which the Theorem 5
// argument assumes without loss of generality via the Tiwari–Loui
// simulation.
type TokenReport struct {
	// IsToken is true when at no point more than one message was in flight.
	IsToken bool
	// MaxInFlight is the maximum number of simultaneously in-flight messages
	// observed in the recorded serialization.
	MaxInFlight int
	// Violations lists the sequence numbers at which a second message entered
	// the network.
	Violations []int
}

// CheckToken scans the trace's serialization and tracks how many messages are
// in flight (sent but not yet received).
//
//ring:deterministic
func CheckToken(tr ring.Trace) TokenReport {
	report := TokenReport{IsToken: true}
	inFlight := 0
	for _, ev := range tr {
		switch ev.Kind {
		case ring.EventSend:
			inFlight++
			if inFlight > report.MaxInFlight {
				report.MaxInFlight = inFlight
			}
			if inFlight > 1 {
				report.IsToken = false
				report.Violations = append(report.Violations, ev.Seq)
			}
		case ring.EventReceive:
			if inFlight > 0 {
				inFlight--
			}
		}
	}
	return report
}

// PassCount estimates the number of passes of a unidirectional
// leader-initiated algorithm: each pass starts with a message sent by the
// leader (paper Section 2), so the number of leader sends is the number of
// passes.
//
//ring:deterministic
func PassCount(tr ring.Trace) int {
	passes := 0
	for _, ev := range tr {
		if ev.Kind == ring.EventSend && ev.Processor == ring.LeaderIndex {
			passes++
		}
	}
	return passes
}

// MessageAlphabetSize counts the number of distinct message payloads used in
// the execution. Corollary 3 of the paper says this stays bounded for any
// O(n)-bit algorithm; for non-regular recognizers it grows with n.
//
//ring:deterministic
func MessageAlphabetSize(tr ring.Trace) int {
	seen := make(map[string]bool)
	for _, ev := range tr {
		if ev.Kind == ring.EventSend {
			seen[ev.Payload.Key()] = true
		}
	}
	return len(seen)
}

// RequireTrace returns an error when a result carries no trace; analyses in
// this package need ring.Config.RecordTrace to have been set.
func RequireTrace(res *ring.Result) error {
	if len(res.Trace) == 0 {
		return fmt.Errorf("trace: execution was run without RecordTrace")
	}
	return nil
}
