package trace

import (
	"fmt"
	"sort"
	"strings"

	"ringlang/internal/ring"
)

// InformationState is the canonical encoding of one processor's view of an
// execution: its initial value followed by every message it sent or received,
// in order, with kind and direction. Two processors are "in the same
// information state" exactly when these encodings are equal.
type InformationState struct {
	Processor int
	Key       string
	// Events is the number of send/receive events contributing to the state.
	Events int
}

// Analysis summarizes the information states of one execution.
type Analysis struct {
	States []InformationState
	// Distinct is the number of distinct information-state keys.
	Distinct int
	// MaxMultiplicity is the largest number of processors sharing one key.
	MaxMultiplicity int
}

// ComputeInformationStates reconstructs per-processor information states from
// a recorded trace. inputs[i] is a printable encoding of processor i's
// initial value (its letter, its identifier, ...); it must have one entry per
// processor that appeared in the trace's ring.
//
//ring:deterministic
func ComputeInformationStates(tr ring.Trace, inputs []string) (*Analysis, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("trace: inputs must describe every processor")
	}
	builders := make([]*strings.Builder, len(inputs))
	events := make([]int, len(inputs))
	for i := range builders {
		builders[i] = &strings.Builder{}
		builders[i].WriteString("in=")
		builders[i].WriteString(inputs[i])
	}
	for _, ev := range tr {
		if ev.Kind != ring.EventSend && ev.Kind != ring.EventReceive {
			continue
		}
		if ev.Processor < 0 || ev.Processor >= len(inputs) {
			return nil, fmt.Errorf("trace: event references processor %d outside the ring of size %d", ev.Processor, len(inputs))
		}
		b := builders[ev.Processor]
		b.WriteByte(';')
		if ev.Kind == ring.EventSend {
			b.WriteString("s/")
		} else {
			b.WriteString("r/")
		}
		b.WriteString(ev.Dir.String())
		b.WriteByte('/')
		b.WriteString(ev.Payload.Key())
		events[ev.Processor]++
	}

	analysis := &Analysis{States: make([]InformationState, len(inputs))}
	counts := make(map[string]int, len(inputs))
	for i, b := range builders {
		key := b.String()
		analysis.States[i] = InformationState{Processor: i, Key: key, Events: events[i]}
		counts[key]++
	}
	analysis.Distinct = len(counts)
	//ring:ordered -- max fold; the result does not depend on visit order
	for _, c := range counts {
		if c > analysis.MaxMultiplicity {
			analysis.MaxMultiplicity = c
		}
	}
	return analysis, nil
}

// Multiplicities returns, for each distinct information state, how many
// processors ended the execution in it, sorted descending.
//
//ring:deterministic
func (a *Analysis) Multiplicities() []int {
	counts := make(map[string]int)
	for _, st := range a.States {
		counts[st.Key]++
	}
	out := make([]int, 0, len(counts))
	//ring:ordered -- collected into a slice and sorted descending below
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
