package trace

import (
	"fmt"
	"io"
	"strings"

	"ringlang/internal/ring"
)

// Report is a human-readable summary of one recorded execution: the global
// totals, the per-link traffic, the pass structure and the information-state
// statistics. It is what cmd/ringrun prints in -trace mode and what the
// integration tests assert over.
type Report struct {
	Verdict        ring.Verdict
	Processors     int
	Messages       int
	Bits           int
	MaxMessageBits int
	Passes         int
	Token          TokenReport
	InfoStates     *Analysis
	DistinctMsgs   int
	// Links is the per-link traffic sorted by (From, To).
	Links []ring.LinkStats
}

// BuildReport assembles a Report from an engine result and the per-processor
// inputs. The result must have been produced with RecordTrace set.
//
//ring:deterministic
func BuildReport(res *ring.Result, inputs []string) (*Report, error) {
	if err := RequireTrace(res); err != nil {
		return nil, err
	}
	analysis, err := ComputeInformationStates(res.Trace, inputs)
	if err != nil {
		return nil, err
	}
	links := res.Stats.Links()
	return &Report{
		Verdict:        res.Verdict,
		Processors:     res.Stats.Processors,
		Messages:       res.Stats.Messages,
		Bits:           res.Stats.Bits,
		MaxMessageBits: res.Stats.MaxMessageBits,
		Passes:         PassCount(res.Trace),
		Token:          CheckToken(res.Trace),
		InfoStates:     analysis,
		DistinctMsgs:   MessageAlphabetSize(res.Trace),
		Links:          links,
	}, nil
}

// Render writes the report in a compact plain-text form. Goldens diff this
// output byte for byte, so it must be a pure function of the report.
//
//ring:deterministic
func (r *Report) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verdict            : %s\n", r.Verdict)
	fmt.Fprintf(&sb, "processors         : %d\n", r.Processors)
	fmt.Fprintf(&sb, "messages           : %d (%d passes)\n", r.Messages, r.Passes)
	fmt.Fprintf(&sb, "bits               : %d (max message %d bits)\n", r.Bits, r.MaxMessageBits)
	fmt.Fprintf(&sb, "token property     : %v (max in flight %d)\n", r.Token.IsToken, r.Token.MaxInFlight)
	fmt.Fprintf(&sb, "information states : %d distinct, max multiplicity %d\n",
		r.InfoStates.Distinct, r.InfoStates.MaxMultiplicity)
	fmt.Fprintf(&sb, "distinct messages  : %d\n", r.DistinctMsgs)
	fmt.Fprintf(&sb, "per-link traffic   :\n")
	for _, ls := range r.Links {
		fmt.Fprintf(&sb, "  p%-3d -> p%-3d  %6d msgs  %8d bits\n", ls.From, ls.To, ls.Messages, ls.Bits)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
