// Package trace analyses recorded ring executions. It reconstructs the
// paper's central lower-bound object — the *information state* of a processor
// (its initial value plus the ordered sequence of messages it sent and
// received, with directions) — and provides the counting arguments used in
// Theorems 2, 4 and 5:
//
//   - for an O(n)-bit (equivalently, regular-language) algorithm the number
//     of distinct information states stays bounded by a constant,
//   - for a non-regular recognizer the number of distinct information states
//     must grow linearly with n (at most two processors may share a state in
//     the unidirectional case, three in the bidirectional case), which is
//     what forces Ω(n log n) bits.
//
// It also checks the token property (at most one message in flight) that the
// Theorem 5 argument relies on.
package trace
