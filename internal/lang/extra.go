package lang

import "math/rand"

// AnBn is the context-free language {0ᵏ1ᵏ : k ≥ 0}. It is used as the input
// language of the 0ᵏ1ᵏ Turing machine in the Section 8 TM-to-ring
// transformation experiments.
type AnBn struct {
	alphabet Alphabet
}

var _ Language = (*AnBn)(nil)

// NewAnBn constructs the language over {0, 1}.
func NewAnBn() *AnBn {
	return &AnBn{alphabet: NewAlphabet('0', '1')}
}

// Name implements Language.
func (l *AnBn) Name() string { return "0^k1^k" }

// Alphabet implements Language.
func (l *AnBn) Alphabet() Alphabet { return l.alphabet }

// Contains implements Language.
func (l *AnBn) Contains(w Word) bool {
	n := len(w)
	if n%2 != 0 {
		return false
	}
	for i, letter := range w {
		want := Letter('0')
		if i >= n/2 {
			want = '1'
		}
		if letter != want {
			return false
		}
	}
	return true
}

// GenerateMember implements Language.
func (l *AnBn) GenerateMember(n int, _ *rand.Rand) (Word, bool) {
	if n < 0 || n%2 != 0 {
		return nil, false
	}
	w := make(Word, n)
	for i := range w {
		if i < n/2 {
			w[i] = '0'
		} else {
			w[i] = '1'
		}
	}
	return w, true
}

// GenerateNonMember implements Language.
func (l *AnBn) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	if n%2 != 0 {
		w := make(Word, n)
		for i := range w {
			if i <= n/2 {
				w[i] = '0'
			} else {
				w[i] = '1'
			}
		}
		return w, true
	}
	member, _ := l.GenerateMember(n, rng)
	return mutateOneLetter(l.alphabet, member, rng), true
}

// Palindrome is the language of palindromes over {a, b}, the second workload
// of the TM-to-ring transformation (a classic Θ(n²)-time one-tape TM
// language, mirroring the Hartmanis/Hennie/Trachtenbrot results the paper
// compares itself to).
type Palindrome struct {
	alphabet Alphabet
}

var _ Language = (*Palindrome)(nil)

// NewPalindrome constructs the language over {a, b}.
func NewPalindrome() *Palindrome {
	return &Palindrome{alphabet: NewAlphabet('a', 'b')}
}

// Name implements Language.
func (l *Palindrome) Name() string { return "palindrome" }

// Alphabet implements Language.
func (l *Palindrome) Alphabet() Alphabet { return l.alphabet }

// Contains implements Language.
func (l *Palindrome) Contains(w Word) bool {
	if err := l.alphabet.ValidWord(w); err != nil {
		return false
	}
	for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
		if w[i] != w[j] {
			return false
		}
	}
	return true
}

// GenerateMember implements Language.
func (l *Palindrome) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 0 {
		return nil, false
	}
	w := make(Word, n)
	for i := 0; i < (n+1)/2; i++ {
		w[i] = l.alphabet[rng.Intn(len(l.alphabet))]
		w[n-1-i] = w[i]
	}
	return w, true
}

// GenerateNonMember implements Language.
func (l *Palindrome) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 2 {
		return nil, false
	}
	w, _ := l.GenerateMember(n, rng)
	// Break the mirror symmetry at one position in the first half.
	i := rng.Intn(n / 2)
	if w[i] == 'a' {
		w[i] = 'b'
	} else {
		w[i] = 'a'
	}
	return w, true
}
