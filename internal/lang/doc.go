// Package lang is the formal-language substrate: alphabets, words, the
// Language interface used by every recognizer, wrappers turning automata into
// languages, and the specific languages the paper analyses:
//
//   - regular languages (Theorem 1/6: O(n) bits),
//   - WcW = {wcw : w ∈ {a,b}*} (Section 7 note 1: Θ(n²) bits),
//   - AnBnCn = {0ᵏ1ᵏ2ᵏ} (note 2: O(n log n) bits, context-sensitive),
//   - the L_g family (note 3: the Θ(g(n)) hierarchy between n log n and n²),
//   - the parity-index language over 2ᵏ letters (note 5: passes-vs-bits
//     trade-off).
//
// Every language provides membership testing plus deterministic generators
// for members and near-miss non-members of a given ring size, which is what
// the benchmark harness feeds to the ring algorithms.
package lang
