package lang

import (
	"fmt"
	"math/rand"

	"ringlang/internal/automata"
)

// Regular is a regular language backed by a (minimized) DFA. It is the input
// to the paper's Theorem 1 algorithm.
type Regular struct {
	name     string
	alphabet Alphabet
	dfa      *automata.DFA
}

var _ Language = (*Regular)(nil)

// NewRegular wraps a DFA as a Language. The DFA is minimized internally so
// that the Theorem 1 recognizer uses ⌈log |Q_min|⌉ bits per message.
func NewRegular(name string, dfa *automata.DFA) (*Regular, error) {
	if err := dfa.Validate(); err != nil {
		return nil, fmt.Errorf("regular language %q: %w", name, err)
	}
	min := automata.Minimize(dfa)
	return &Regular{
		name:     name,
		alphabet: NewAlphabet(min.Alphabet...),
		dfa:      min,
	}, nil
}

// NewRegularFromRegex compiles a regular expression into a language.
func NewRegularFromRegex(name, expr string, extraAlphabet ...Letter) (*Regular, error) {
	dfa, err := automata.CompileRegexDFA(expr, extraAlphabet...)
	if err != nil {
		return nil, fmt.Errorf("regular language %q: %w", name, err)
	}
	return NewRegular(name, dfa)
}

// Name implements Language.
func (r *Regular) Name() string { return r.name }

// Alphabet implements Language.
func (r *Regular) Alphabet() Alphabet { return r.alphabet }

// DFA exposes the minimized automaton (for the ring recognizer).
func (r *Regular) DFA() *automata.DFA { return r.dfa }

// Contains implements Language.
func (r *Regular) Contains(w Word) bool {
	return r.dfa.Accepts([]rune(w))
}

// GenerateMember implements Language using a random walk that is steered, in
// its tail, toward an accepting state via precomputed shortest suffixes.
func (r *Regular) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	return r.generate(n, rng, true)
}

// GenerateNonMember implements Language symmetrically.
func (r *Regular) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	return r.generate(n, rng, false)
}

func (r *Regular) generate(n int, rng *rand.Rand, member bool) (Word, bool) {
	target := r.dfa
	if !member {
		target = automata.Complement(r.dfa)
	}
	// can[j][q] reports whether an accepting state is reachable from q in
	// exactly j steps. Computing the whole table once keeps generation
	// O(n·|Q|·|Σ|) for a length-n word.
	can := exactReachabilityTable(target, n)
	if !can[n][target.Start] {
		return nil, false
	}
	word := make(Word, 0, n)
	state := target.Start
	for i := 0; i < n; i++ {
		remaining := n - i - 1
		// Choose uniformly among letters that still allow reaching acceptance
		// in exactly the remaining number of steps.
		var viable []Letter
		for _, sym := range target.Alphabet {
			next, _ := target.Step(state, sym)
			if can[remaining][next] {
				viable = append(viable, sym)
			}
		}
		if len(viable) == 0 {
			return nil, false
		}
		sym := viable[rng.Intn(len(viable))]
		word = append(word, sym)
		state, _ = target.Step(state, sym)
	}
	if !target.Accepting[state] {
		return nil, false
	}
	return word, true
}

// exactReachabilityTable returns can[j][q] = "an accepting state of d is
// reachable from q in exactly j steps", for j in [0, maxSteps].
func exactReachabilityTable(d *automata.DFA, maxSteps int) [][]bool {
	can := make([][]bool, maxSteps+1)
	can[0] = make([]bool, d.NumStates)
	for q := 0; q < d.NumStates; q++ {
		can[0][q] = d.Accepting[automata.State(q)]
	}
	for j := 1; j <= maxSteps; j++ {
		can[j] = make([]bool, d.NumStates)
		for q := 0; q < d.NumStates; q++ {
			for _, sym := range d.Alphabet {
				to, _ := d.Step(automata.State(q), sym)
				if can[j-1][to] {
					can[j][q] = true
					break
				}
			}
		}
	}
	return can
}
