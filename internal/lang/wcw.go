package lang

import "math/rand"

// WcW is the linear (context-free) language {w c w : w ∈ {a,b}*} from
// Section 7 note 1 of the paper. Every letter of the first w must be compared
// with the corresponding letter of the second w, which forces Ω(n²) bits.
type WcW struct {
	alphabet Alphabet
}

var _ Language = (*WcW)(nil)

// NewWcW constructs the language over the alphabet {a, b, c}.
func NewWcW() *WcW {
	return &WcW{alphabet: NewAlphabet('a', 'b', 'c')}
}

// Name implements Language.
func (l *WcW) Name() string { return "wcw" }

// Alphabet implements Language.
func (l *WcW) Alphabet() Alphabet { return l.alphabet }

// Contains implements Language: the word must have the form w c w with
// w ∈ {a,b}* (so exactly one 'c', placed dead centre, and matching halves).
func (l *WcW) Contains(word Word) bool {
	n := len(word)
	if n%2 == 0 {
		return false
	}
	mid := n / 2
	if word[mid] != 'c' {
		return false
	}
	for i := 0; i < mid; i++ {
		if word[i] == 'c' || word[mid+1+i] == 'c' {
			return false
		}
		if word[i] != word[mid+1+i] {
			return false
		}
	}
	return true
}

// GenerateMember implements Language. Members exist for every odd n.
func (l *WcW) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if n%2 == 0 || n < 1 {
		return nil, false
	}
	half := n / 2
	w := make(Word, 0, n)
	letters := []Letter{'a', 'b'}
	for i := 0; i < half; i++ {
		w = append(w, letters[rng.Intn(2)])
	}
	w = append(w, 'c')
	w = append(w, w[:half]...)
	return w, true
}

// GenerateNonMember implements Language. For n >= 1 non-members always exist;
// the generator prefers near-misses (one mismatched position) because those
// are the hardest inputs for a recognizer.
func (l *WcW) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	if n%2 == 0 || n == 1 {
		// Structurally impossible to be a member; any word over {a,b} works,
		// except the single-letter word "c" which is w c w with w = ε.
		w := RandomWord(NewAlphabet('a', 'b'), n, rng)
		return w, true
	}
	member, _ := l.GenerateMember(n, rng)
	half := n / 2
	// Flip one letter in the second half (not the centre 'c').
	pos := half + 1 + rng.Intn(half)
	if member[pos] == 'a' {
		member[pos] = 'b'
	} else {
		member[pos] = 'a'
	}
	return member, true
}
