package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newRng() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func TestAlphabetBasics(t *testing.T) {
	a := NewAlphabet('b', 'a', 'a', 'c')
	if a.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (dedup)", a.Size())
	}
	if a.Index('a') != 0 || a.Index('b') != 1 || a.Index('c') != 2 {
		t.Error("alphabet should be sorted")
	}
	if a.Index('z') != -1 || a.Contains('z') {
		t.Error("foreign letter should not be found")
	}
	if err := a.ValidWord(WordFromString("abc")); err != nil {
		t.Errorf("ValidWord: %v", err)
	}
	if err := a.ValidWord(WordFromString("abz")); err == nil {
		t.Error("expected invalid word error")
	}
}

func TestWordBasics(t *testing.T) {
	w := WordFromString("aba")
	if w.Len() != 3 || w.String() != "aba" {
		t.Fatal("word round trip failed")
	}
	if !w.Equal(WordFromString("aba")) || w.Equal(WordFromString("abb")) || w.Equal(WordFromString("ab")) {
		t.Error("Equal misbehaves")
	}
	c := w.Clone()
	c[0] = 'b'
	if w[0] != 'a' {
		t.Error("Clone must be independent")
	}
}

func TestWcWMembership(t *testing.T) {
	l := NewWcW()
	yes := []string{"c", "aca", "bcb", "abcab", "ababcabab"}
	no := []string{"", "a", "ac", "ca", "acb", "abcba", "abcab c", "ccc", "abab", "acacc"}
	for _, w := range yes {
		if !l.Contains(WordFromString(w)) {
			t.Errorf("wcw should contain %q", w)
		}
	}
	for _, w := range no {
		if l.Contains(WordFromString(w)) {
			t.Errorf("wcw should not contain %q", w)
		}
	}
}

func TestWcWGenerators(t *testing.T) {
	l := NewWcW()
	rng := newRng()
	for _, n := range []int{1, 3, 5, 21, 101} {
		w, ok := l.GenerateMember(n, rng)
		if !ok || len(w) != n || !l.Contains(w) {
			t.Errorf("GenerateMember(%d) failed: %q", n, w.String())
		}
		nm, ok := l.GenerateNonMember(n, rng)
		if !ok || len(nm) != n || l.Contains(nm) {
			t.Errorf("GenerateNonMember(%d) failed: %q", n, nm.String())
		}
	}
	if _, ok := l.GenerateMember(4, rng); ok {
		t.Error("no member of even length should exist")
	}
	nm, ok := l.GenerateNonMember(4, rng)
	if !ok || l.Contains(nm) {
		t.Error("non-member of even length should exist")
	}
}

func TestAnBnCnMembership(t *testing.T) {
	l := NewAnBnCn()
	yes := []string{"", "012", "001122", "000111222"}
	no := []string{"0", "01", "0112", "021", "00112", "0011222", "111222000", "0011221"}
	for _, w := range yes {
		if !l.Contains(WordFromString(w)) {
			t.Errorf("0^k1^k2^k should contain %q", w)
		}
	}
	for _, w := range no {
		if l.Contains(WordFromString(w)) {
			t.Errorf("0^k1^k2^k should not contain %q", w)
		}
	}
}

func TestAnBnCnGenerators(t *testing.T) {
	l := NewAnBnCn()
	rng := newRng()
	for _, n := range []int{3, 6, 30, 300} {
		w, ok := l.GenerateMember(n, rng)
		if !ok || len(w) != n || !l.Contains(w) {
			t.Errorf("GenerateMember(%d) failed", n)
		}
		nm, ok := l.GenerateNonMember(n, rng)
		if !ok || len(nm) != n || l.Contains(nm) {
			t.Errorf("GenerateNonMember(%d) failed", n)
		}
	}
	if _, ok := l.GenerateMember(4, rng); ok {
		t.Error("no member of length 4")
	}
	if nm, ok := l.GenerateNonMember(4, rng); !ok || l.Contains(nm) || len(nm) != 4 {
		t.Error("non-member of length 4 should exist")
	}
	w, n, err := MemberOrSkip(l, 4, 3, rng)
	if err != nil || n != 6 || !l.Contains(w) {
		t.Errorf("MemberOrSkip(4) = (%q, %d, %v), want length 6 member", w.String(), n, err)
	}
}

func TestLgPeriodAndMembership(t *testing.T) {
	l := NewLg(GrowthN15) // p(n) = floor(n^1.5 / n) = floor(sqrt(n))
	if p := l.Period(16); p != 4 {
		t.Errorf("Period(16) = %d, want 4", p)
	}
	if p := l.Period(100); p != 10 {
		t.Errorf("Period(100) = %d, want 10", p)
	}
	// n=16, p=4: abab abab abab abab is periodic with period 4 (and 2).
	if !l.Contains(WordFromString("abababababababab")) {
		t.Error("period-2 word is also period-4 periodic; should be a member")
	}
	if l.Contains(WordFromString("abababababababbb")) {
		t.Error("corrupted tail should not be a member")
	}
	// Quadratic growth clamps the period at ⌈n/2⌉.
	l2 := NewLg(GrowthN2)
	if p := l2.Period(10); p != 5 {
		t.Errorf("n^2 Period(10) = %d, want 5", p)
	}
	// n log n growth: p(n) = floor(log2 n).
	l3 := NewLg(GrowthNLogN)
	if p := l3.Period(1024); p != 10 {
		t.Errorf("nlogn Period(1024) = %d, want 10", p)
	}
}

func TestLgGenerators(t *testing.T) {
	rng := newRng()
	for _, g := range StandardGrowthFuncs() {
		l := NewLg(g)
		for _, n := range []int{2, 10, 64, 257} {
			w, ok := l.GenerateMember(n, rng)
			if !ok || len(w) != n || !l.Contains(w) {
				t.Errorf("%s GenerateMember(%d) failed", l.Name(), n)
			}
			nm, ok := l.GenerateNonMember(n, rng)
			if !ok || len(nm) != n || l.Contains(nm) {
				t.Errorf("%s GenerateNonMember(%d) failed", l.Name(), n)
			}
		}
	}
}

func TestParityIndexMembership(t *testing.T) {
	l, err := NewParityIndex(2) // alphabet σ0..σ3, modulus 3
	if err != nil {
		t.Fatal(err)
	}
	s := func(indices ...int) Word {
		w := make(Word, len(indices))
		for i, idx := range indices {
			w[i] = l.LetterAt(idx)
		}
		return w
	}
	// |w| = 3 → target = 3 mod 3 = 0 → σ0 must appear an even number of times.
	if !l.Contains(s(1, 2, 3)) {
		t.Error("zero occurrences of σ0 is even; should be member")
	}
	if l.Contains(s(0, 1, 2)) {
		t.Error("one occurrence of σ0 is odd; should not be member")
	}
	if !l.Contains(s(0, 0, 1)) {
		t.Error("two occurrences of σ0 is even; should be member")
	}
	// |w| = 4 → target = 1.
	if l.Contains(s(1, 2, 3, 0)) {
		t.Error("one occurrence of σ1; should not be member")
	}
	if !l.Contains(s(1, 1, 3, 0)) {
		t.Error("two occurrences of σ1; should be member")
	}
	if _, err := NewParityIndex(0); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := NewParityIndex(17); err == nil {
		t.Error("k=17 should be rejected")
	}
}

func TestParityIndexGenerators(t *testing.T) {
	rng := newRng()
	for _, k := range []int{1, 2, 4, 6} {
		l, err := NewParityIndex(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 17, 100} {
			w, ok := l.GenerateMember(n, rng)
			if !ok || len(w) != n || !l.Contains(w) {
				t.Errorf("k=%d GenerateMember(%d) failed", k, n)
			}
			nm, ok := l.GenerateNonMember(n, rng)
			if !ok || len(nm) != n || l.Contains(nm) {
				t.Errorf("k=%d GenerateNonMember(%d) failed", k, n)
			}
		}
	}
}

func TestRegularLanguageWrapsDFA(t *testing.T) {
	regs, err := StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) < 5 {
		t.Fatalf("expected at least 5 standard regular languages, got %d", len(regs))
	}
	rng := newRng()
	for _, r := range regs {
		for _, n := range []int{5, 16, 33, 128} {
			if w, ok := r.GenerateMember(n, rng); ok {
				if len(w) != n || !r.Contains(w) {
					t.Errorf("%s member generator broken at n=%d", r.Name(), n)
				}
			}
			if w, ok := r.GenerateNonMember(n, rng); ok {
				if len(w) != n || r.Contains(w) {
					t.Errorf("%s non-member generator broken at n=%d", r.Name(), n)
				}
			}
		}
	}
}

func TestRegularGeneratorImpossibleLengths(t *testing.T) {
	// (ab)* has no member of odd length and every odd-length word is a
	// non-member.
	r, err := NewRegularFromRegex("(ab)*", "(ab)*")
	if err != nil {
		t.Fatal(err)
	}
	rng := newRng()
	if _, ok := r.GenerateMember(7, rng); ok {
		t.Error("(ab)* has no member of length 7")
	}
	w, ok := r.GenerateMember(8, rng)
	if !ok || w.String() != "abababab" {
		t.Errorf("(ab)* member of length 8 = %q", w.String())
	}
}

func TestByNameAndCatalog(t *testing.T) {
	names := CatalogNames()
	if len(names) < 10 {
		t.Fatalf("catalog too small: %v", names)
	}
	for _, name := range []string{"wcw", "anbncn", "even-ones", "L_g[n^1.5]"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("no-such-language"); err == nil {
		t.Error("expected error for unknown language")
	}
}

func TestQuickWcWGeneratorAlwaysValid(t *testing.T) {
	l := NewWcW()
	rng := newRng()
	f := func(raw uint16) bool {
		n := int(raw%400) + 1
		if w, ok := l.GenerateMember(n, rng); ok {
			if !l.Contains(w) || len(w) != n {
				return false
			}
		}
		nm, ok := l.GenerateNonMember(n, rng)
		return ok && !l.Contains(nm) && len(nm) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLgContainsMatchesBruteForce(t *testing.T) {
	l := NewLg(GrowthN15)
	rng := newRng()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%60) + 1
		local := rand.New(rand.NewSource(seed))
		_ = rng
		w := RandomWord(l.Alphabet(), n, local)
		p := l.Period(n)
		want := true
		for i := p; i < n; i++ {
			if w[i] != w[i-p] {
				want = false
				break
			}
		}
		return l.Contains(w) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
