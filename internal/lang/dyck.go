package lang

import "math/rand"

// Dyck is the language of balanced bracket strings over {(, )} — a classic
// non-regular (context-free) language. On the ring it is recognizable with a
// single δ-coded depth counter, i.e. O(n log n) bits, which puts it at the
// bottom of the non-regular class alongside {0ᵏ1ᵏ2ᵏ} (Section 7 note 2's
// point that the hierarchy ignores the Chomsky hierarchy).
type Dyck struct {
	alphabet Alphabet
}

var _ Language = (*Dyck)(nil)

// NewDyck constructs the language over {'(', ')'}.
func NewDyck() *Dyck {
	return &Dyck{alphabet: NewAlphabet('(', ')')}
}

// Name implements Language.
func (l *Dyck) Name() string { return "dyck" }

// Alphabet implements Language.
func (l *Dyck) Alphabet() Alphabet { return l.alphabet }

// Contains implements Language.
func (l *Dyck) Contains(w Word) bool {
	depth := 0
	for _, letter := range w {
		switch letter {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return false
			}
		default:
			return false
		}
	}
	return depth == 0
}

// GenerateMember implements Language: a uniformly-shaped balanced string built
// by tracking the remaining open/close budget.
func (l *Dyck) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 0 || n%2 != 0 {
		return nil, false
	}
	w := make(Word, 0, n)
	open, depth := n/2, 0
	for len(w) < n {
		remaining := n - len(w)
		// We may open if budget remains; we may close if depth > 0 and the
		// remaining closes still fit.
		canOpen := open > 0
		canClose := depth > 0 && depth <= remaining
		switch {
		case canOpen && canClose:
			if rng.Intn(2) == 0 {
				w, open, depth = append(w, '('), open-1, depth+1
			} else {
				w, depth = append(w, ')'), depth-1
			}
		case canOpen:
			w, open, depth = append(w, '('), open-1, depth+1
		default:
			w, depth = append(w, ')'), depth-1
		}
	}
	return w, true
}

// GenerateNonMember implements Language.
func (l *Dyck) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	if n%2 != 0 {
		// Odd length: any bracket string is unbalanced.
		return RandomWord(l.alphabet, n, rng), true
	}
	w, _ := l.GenerateMember(n, rng)
	// Swap one '(' to ')' so the total count breaks.
	for attempts := 0; attempts < n; attempts++ {
		pos := rng.Intn(n)
		if w[pos] == '(' {
			w[pos] = ')'
			return w, true
		}
	}
	return nil, false
}
