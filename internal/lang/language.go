package lang

import (
	"errors"
	"math/rand"
)

// Language is a decidable language over a finite alphabet together with word
// generators for benchmarking. Implementations must be deterministic given
// the rng they are handed.
type Language interface {
	// Name is a short identifier used in reports and benchmarks.
	Name() string
	// Alphabet is the language's alphabet.
	Alphabet() Alphabet
	// Contains reports membership of the word. Words containing letters
	// outside the alphabet are never members.
	Contains(w Word) bool
	// GenerateMember produces a member word of exactly length n, or false if
	// no member of that length exists.
	GenerateMember(n int, rng *rand.Rand) (Word, bool)
	// GenerateNonMember produces a non-member word of exactly length n, or
	// false if every word of that length is a member.
	GenerateNonMember(n int, rng *rand.Rand) (Word, bool)
}

// ErrNoWordOfLength is returned by helpers when a language has no
// member/non-member of the requested length.
var ErrNoWordOfLength = errors.New("lang: no word of the requested length")

// RandomWord returns a uniformly random word of length n over the alphabet.
func RandomWord(a Alphabet, n int, rng *rand.Rand) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = a[rng.Intn(len(a))]
	}
	return w
}

// MemberOrSkip returns a member of length n, trying nearby lengths (n, n+1,
// n+2, ...) up to n+window if the exact length has no member. It returns the
// word and its actual length. This keeps benchmark sweeps simple for
// languages such as 0ᵏ1ᵏ2ᵏ that only have members at certain lengths.
func MemberOrSkip(l Language, n, window int, rng *rand.Rand) (Word, int, error) {
	for d := 0; d <= window; d++ {
		if w, ok := l.GenerateMember(n+d, rng); ok {
			return w, n + d, nil
		}
	}
	return nil, 0, ErrNoWordOfLength
}

// mutateOneLetter returns a copy of w with one position replaced by a
// different letter from the alphabet; it is the generic near-miss generator.
func mutateOneLetter(a Alphabet, w Word, rng *rand.Rand) Word {
	if len(w) == 0 || len(a) < 2 {
		return w.Clone()
	}
	out := w.Clone()
	pos := rng.Intn(len(out))
	old := out[pos]
	for {
		candidate := a[rng.Intn(len(a))]
		if candidate != old {
			out[pos] = candidate
			return out
		}
	}
}
