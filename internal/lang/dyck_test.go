package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDyckMembership(t *testing.T) {
	l := NewDyck()
	yes := []string{"", "()", "()()", "(())", "(()())()", "((()))"}
	no := []string{"(", ")", ")(", "(()", "())", "())(", "((())"}
	for _, w := range yes {
		if !l.Contains(WordFromString(w)) {
			t.Errorf("dyck should contain %q", w)
		}
	}
	for _, w := range no {
		if l.Contains(WordFromString(w)) {
			t.Errorf("dyck should not contain %q", w)
		}
	}
	if l.Contains(WordFromString("(a)")) {
		t.Error("foreign letters must not be members")
	}
}

func TestDyckGenerators(t *testing.T) {
	l := NewDyck()
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 4, 10, 64, 257, 500} {
		if w, ok := l.GenerateMember(n, rng); ok {
			if len(w) != n || !l.Contains(w) {
				t.Errorf("GenerateMember(%d) = %q invalid", n, w.String())
			}
		} else if n%2 == 0 {
			t.Errorf("member of even length %d should exist", n)
		}
		nm, ok := l.GenerateNonMember(n, rng)
		if !ok || len(nm) != n || l.Contains(nm) {
			t.Errorf("GenerateNonMember(%d) failed", n)
		}
	}
	if _, ok := l.GenerateMember(7, rng); ok {
		t.Error("no balanced string of odd length exists")
	}
}

func TestQuickDyckGeneratorAlwaysBalanced(t *testing.T) {
	l := NewDyck()
	rng := rand.New(rand.NewSource(11))
	f := func(raw uint8) bool {
		n := 2 * (int(raw%100) + 1)
		w, ok := l.GenerateMember(n, rng)
		return ok && l.Contains(w) && len(w) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
