package lang

import (
	"fmt"
	"math"
	"math/rand"
)

// GrowthFunc is the g(n) of Section 7 note 3: a function with
// n log n ≤ g(n) ≤ n² that parameterizes the bit-complexity hierarchy.
type GrowthFunc struct {
	// Name is a short identifier such as "n^1.5".
	Name string
	// F evaluates g(n).
	F func(n int) float64
}

// Standard growth functions used by the hierarchy experiment (E5).
var (
	// GrowthNLogN is g(n) = n·log₂(n) (the bottom of the hierarchy).
	GrowthNLogN = GrowthFunc{Name: "n*log n", F: func(n int) float64 {
		if n < 2 {
			return float64(n)
		}
		return float64(n) * math.Log2(float64(n))
	}}
	// GrowthN125 is g(n) = n^1.25.
	GrowthN125 = GrowthFunc{Name: "n^1.25", F: func(n int) float64 { return math.Pow(float64(n), 1.25) }}
	// GrowthN15 is g(n) = n^1.5.
	GrowthN15 = GrowthFunc{Name: "n^1.5", F: func(n int) float64 { return math.Pow(float64(n), 1.5) }}
	// GrowthN175 is g(n) = n^1.75.
	GrowthN175 = GrowthFunc{Name: "n^1.75", F: func(n int) float64 { return math.Pow(float64(n), 1.75) }}
	// GrowthN2 is g(n) = n² (the top of the hierarchy).
	GrowthN2 = GrowthFunc{Name: "n^2", F: func(n int) float64 { return float64(n) * float64(n) }}
)

// Lg is the reproduction's interpretation of the paper's L_g family
// (Section 7 note 3): a word of length n is a member iff it is periodic with
// period p(n) = clamp(⌊g(n)/n⌋, 1, ⌈n/2⌉), i.e. w[i] = w[i-p] for every
// i ≥ p. Recognizing it requires transporting a window of p(n) letters across
// the ring, which costs Θ(p(n)·n) = Θ(g(n)) bits — the same accounting as the
// paper's segment-comparison argument. See DESIGN.md ("Substitutions").
type Lg struct {
	growth   GrowthFunc
	alphabet Alphabet
}

var _ Language = (*Lg)(nil)

// NewLg constructs the L_g language over {a, b} for the given growth
// function.
func NewLg(growth GrowthFunc) *Lg {
	return &Lg{growth: growth, alphabet: NewAlphabet('a', 'b')}
}

// Name implements Language.
//
//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (l *Lg) Name() string { return fmt.Sprintf("L_g[%s]", l.growth.Name) }

// Alphabet implements Language.
func (l *Lg) Alphabet() Alphabet { return l.alphabet }

// Growth returns the growth function parameterizing the language.
func (l *Lg) Growth() GrowthFunc { return l.growth }

// Period returns p(n), the period a member word of length n must have.
func (l *Lg) Period(n int) int {
	if n <= 1 {
		return 1
	}
	p := int(math.Floor(l.growth.F(n) / float64(n)))
	if p < 1 {
		p = 1
	}
	max := (n + 1) / 2
	if p > max {
		p = max
	}
	return p
}

// Contains implements Language.
func (l *Lg) Contains(word Word) bool {
	if err := l.alphabet.ValidWord(word); err != nil {
		return false
	}
	n := len(word)
	if n <= 1 {
		return true
	}
	p := l.Period(n)
	for i := p; i < n; i++ {
		if word[i] != word[i-p] {
			return false
		}
	}
	return true
}

// GenerateMember implements Language: a random block of p(n) letters repeated
// to length n.
func (l *Lg) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 0 {
		return nil, false
	}
	if n == 0 {
		return Word{}, true
	}
	p := l.Period(n)
	block := RandomWord(l.alphabet, p, rng)
	w := make(Word, n)
	for i := 0; i < n; i++ {
		w[i] = block[i%p]
	}
	return w, true
}

// GenerateNonMember implements Language: a member with one letter in its last
// period corrupted (non-members exist whenever n ≥ 2).
func (l *Lg) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 2 {
		return nil, false
	}
	w, _ := l.GenerateMember(n, rng)
	p := l.Period(n)
	// Corrupt a position in the tail so at least one periodicity constraint
	// breaks (any position ≥ p works).
	pos := p + rng.Intn(n-p)
	if w[pos] == 'a' {
		w[pos] = 'b'
	} else {
		w[pos] = 'a'
	}
	return w, true
}
