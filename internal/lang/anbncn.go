package lang

import "math/rand"

// AnBnCn is the language {0ᵏ1ᵏ2ᵏ : k ≥ 0} from Section 7 note 2 of the
// paper: context-sensitive, not context-free, yet recognizable on the ring
// with O(n log n) bits using three counters.
type AnBnCn struct {
	alphabet Alphabet
}

var _ Language = (*AnBnCn)(nil)

// NewAnBnCn constructs the language over {0, 1, 2}.
func NewAnBnCn() *AnBnCn {
	return &AnBnCn{alphabet: NewAlphabet('0', '1', '2')}
}

// Name implements Language.
func (l *AnBnCn) Name() string { return "0^k1^k2^k" }

// Alphabet implements Language.
func (l *AnBnCn) Alphabet() Alphabet { return l.alphabet }

// Contains implements Language.
func (l *AnBnCn) Contains(word Word) bool {
	n := len(word)
	if n%3 != 0 {
		return false
	}
	k := n / 3
	for i, letter := range word {
		var want Letter
		switch {
		case i < k:
			want = '0'
		case i < 2*k:
			want = '1'
		default:
			want = '2'
		}
		if letter != want {
			return false
		}
	}
	return true
}

// GenerateMember implements Language. Members exist iff n is a multiple of 3
// (including the empty word).
func (l *AnBnCn) GenerateMember(n int, _ *rand.Rand) (Word, bool) {
	if n < 0 || n%3 != 0 {
		return nil, false
	}
	k := n / 3
	w := make(Word, 0, n)
	for i := 0; i < k; i++ {
		w = append(w, '0')
	}
	for i := 0; i < k; i++ {
		w = append(w, '1')
	}
	for i := 0; i < k; i++ {
		w = append(w, '2')
	}
	return w, true
}

// GenerateNonMember implements Language. Prefers near-misses: correct shape
// with one block length off by one, or one letter corrupted.
func (l *AnBnCn) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	if n%3 != 0 {
		// Any word of this length is a non-member; use the closest block shape.
		k := n / 3
		w := make(Word, 0, n)
		for len(w) < k {
			w = append(w, '0')
		}
		for len(w) < 2*k {
			w = append(w, '1')
		}
		for len(w) < n {
			w = append(w, '2')
		}
		return w, true
	}
	member, _ := l.GenerateMember(n, rng)
	return mutateOneLetter(l.alphabet, member, rng), true
}
