package lang

import "math/rand"

// Majority is the threshold language {w ∈ {0,1}* : #₁(w) > |w|/2} — the words
// in which strict majority of the processors hold a 1. It is non-regular in
// the ring-with-a-leader sense that matters here: deciding it requires
// comparing two unbounded counts, which places it in the paper's Θ(n log n)
// class (a counter token meets the Theorem 4 lower bound; see
// core.NewMajority).
type Majority struct {
	alphabet Alphabet
}

var _ Language = (*Majority)(nil)

// NewMajority constructs the language over {0, 1}.
func NewMajority() *Majority {
	return &Majority{alphabet: NewAlphabet('0', '1')}
}

// Name implements Language.
func (l *Majority) Name() string { return "majority" }

// Alphabet implements Language.
func (l *Majority) Alphabet() Alphabet { return l.alphabet }

// ones counts the 1-letters of a word, or reports -1 for an invalid letter.
func ones(w Word) int {
	count := 0
	for _, letter := range w {
		switch letter {
		case '1':
			count++
		case '0':
		default:
			return -1
		}
	}
	return count
}

// Contains implements Language.
func (l *Majority) Contains(w Word) bool {
	count := ones(w)
	return count >= 0 && 2*count > len(w)
}

// withOnes builds a word of length n with exactly k ones, shuffled.
func withOnes(n, k int, rng *rand.Rand) Word {
	w := make(Word, n)
	for i := range w {
		if i < k {
			w[i] = '1'
		} else {
			w[i] = '0'
		}
	}
	rng.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// GenerateMember implements Language: a word with a random majority count of
// ones. No member of length 0 exists (0 ones is not a strict majority).
func (l *Majority) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	minOnes := n/2 + 1
	return withOnes(n, minOnes+rng.Intn(n-minOnes+1), rng), true
}

// GenerateNonMember implements Language: a word with at most half ones.
func (l *Majority) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	return withOnes(n, rng.Intn(n/2+1), rng), true
}
