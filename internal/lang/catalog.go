package lang

import (
	"errors"
	"fmt"

	"ringlang/internal/automata"
)

// ErrUnknownLanguage is returned when a language name (or a language argument
// such as a growth-function or parity-index spec) resolves to nothing in the
// catalog. Lookup errors wrap it, so callers classify failures with errors.Is
// instead of string matching.
var ErrUnknownLanguage = errors.New("lang: unknown language")

// StandardRegularLanguages returns the fixed set of regular languages used by
// the E1 experiment and the examples. Each entry exercises a different DFA
// size so the ⌈log |Q|⌉ constant of Theorem 1's algorithm varies.
func StandardRegularLanguages() ([]*Regular, error) {
	var out []*Regular

	parity, err := NewRegular("even-ones", automata.NewParityDFA())
	if err != nil {
		return nil, err
	}
	out = append(out, parity)

	mod5DFA, err := automata.NewModCounterDFA(5)
	if err != nil {
		return nil, err
	}
	mod5, err := NewRegular("ones-div-5", mod5DFA)
	if err != nil {
		return nil, err
	}
	out = append(out, mod5)

	abStar, err := NewRegularFromRegex("(ab)*", "(ab)*")
	if err != nil {
		return nil, err
	}
	out = append(out, abStar)

	endsABB, err := NewRegularFromRegex("ends-abb", "(a|b)*abb")
	if err != nil {
		return nil, err
	}
	out = append(out, endsABB)

	substrDFA, err := automata.NewContainsSubstringDFA([]rune{'a', 'b'}, []rune("abbab"))
	if err != nil {
		return nil, err
	}
	substr, err := NewRegular("contains-abbab", substrDFA)
	if err != nil {
		return nil, err
	}
	out = append(out, substr)

	lenModDFA, err := automata.NewLengthModDFA([]rune{'a', 'b'}, 7, 0)
	if err != nil {
		return nil, err
	}
	lenMod, err := NewRegular("length-div-7", lenModDFA)
	if err != nil {
		return nil, err
	}
	out = append(out, lenMod)

	return out, nil
}

// StandardGrowthFuncs returns the growth functions swept by the hierarchy
// experiment (E5/E6), bottom to top.
func StandardGrowthFuncs() []GrowthFunc {
	return []GrowthFunc{GrowthNLogN, GrowthN125, GrowthN15, GrowthN175, GrowthN2}
}

// ByName looks a language up among the fixed non-regular languages plus the
// standard regular set; it is used by the cmd tools.
func ByName(name string) (Language, error) {
	switch name {
	case "wcw":
		return NewWcW(), nil
	case "0^k1^k2^k", "anbncn":
		return NewAnBnCn(), nil
	case "0^k1^k", "anbn":
		return NewAnBn(), nil
	case "dyck":
		return NewDyck(), nil
	case "majority":
		return NewMajority(), nil
	case "palindrome":
		return NewPalindrome(), nil
	case "length-is-square":
		return NewPerfectSquareLength(), nil
	}
	for _, g := range StandardGrowthFuncs() {
		l := NewLg(g)
		if l.Name() == name {
			return l, nil
		}
	}
	regs, err := StandardRegularLanguages()
	if err != nil {
		return nil, err
	}
	for _, r := range regs {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownLanguage, name)
}

// CatalogNames lists every language name resolvable by ByName.
func CatalogNames() []string {
	names := []string{"wcw", "anbncn", "anbn", "dyck", "majority", "palindrome", "length-is-square"}
	for _, g := range StandardGrowthFuncs() {
		names = append(names, NewLg(g).Name())
	}
	regs, err := StandardRegularLanguages()
	if err == nil {
		for _, r := range regs {
			names = append(names, r.Name())
		}
	}
	return names
}
