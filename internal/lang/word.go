package lang

import (
	"fmt"
	"sort"
)

// Letter is a single input symbol held by one ring processor.
type Letter = rune

// Word is the pattern on the ring: the concatenation of the processors'
// letters starting at the leader.
type Word []Letter

// WordFromString converts a Go string to a Word, one rune per letter.
func WordFromString(s string) Word {
	return Word([]rune(s))
}

// String renders the word as a Go string.
func (w Word) String() string {
	return string([]rune(w))
}

// Len returns the number of letters, i.e. the ring size n.
func (w Word) Len() int {
	return len(w)
}

// Equal reports whether two words are identical.
func (w Word) Equal(other Word) bool {
	if len(w) != len(other) {
		return false
	}
	for i := range w {
		if w[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the word.
func (w Word) Clone() Word {
	out := make(Word, len(w))
	copy(out, w)
	return out
}

// Alphabet is a finite, ordered set of letters.
type Alphabet []Letter

// NewAlphabet builds a canonical (sorted, deduplicated) alphabet.
func NewAlphabet(letters ...Letter) Alphabet {
	seen := make(map[Letter]bool, len(letters))
	out := make(Alphabet, 0, len(letters))
	for _, l := range letters {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether the alphabet includes the letter.
func (a Alphabet) Contains(l Letter) bool {
	for _, x := range a {
		if x == l {
			return true
		}
	}
	return false
}

// Index returns the position of the letter in the alphabet, or -1.
func (a Alphabet) Index(l Letter) int {
	for i, x := range a {
		if x == l {
			return i
		}
	}
	return -1
}

// Size returns the number of letters in the alphabet.
func (a Alphabet) Size() int {
	return len(a)
}

// Runes returns the alphabet as a rune slice (copy), for interoperation with
// the automata package.
func (a Alphabet) Runes() []rune {
	out := make([]rune, len(a))
	copy(out, a)
	return out
}

// ValidWord checks that every letter of the word belongs to the alphabet.
func (a Alphabet) ValidWord(w Word) error {
	for i, l := range w {
		if !a.Contains(l) {
			return fmt.Errorf("lang: letter %q at position %d not in alphabet %q", l, i, string(a))
		}
	}
	return nil
}
