package lang

import "math/rand"

// LengthLanguage is a language whose membership depends only on the word
// length: w ∈ L iff pred(|w|). Length languages are the natural workload for
// the counting algorithm (the leader learns n with O(n log n) bits); with a
// non-regular length set (e.g. perfect squares) they give a concrete
// non-regular language whose recognition cost is Θ(n log n), matching the
// lower bound of Theorem 4.
type LengthLanguage struct {
	name     string
	alphabet Alphabet
	pred     func(n int) bool
}

var _ Language = (*LengthLanguage)(nil)

// NewLengthLanguage builds a length language over {a, b}.
func NewLengthLanguage(name string, pred func(n int) bool) *LengthLanguage {
	return &LengthLanguage{
		name:     name,
		alphabet: NewAlphabet('a', 'b'),
		pred:     pred,
	}
}

// NewPerfectSquareLength returns the non-regular language of words whose
// length is a perfect square.
func NewPerfectSquareLength() *LengthLanguage {
	return NewLengthLanguage("length-is-square", func(n int) bool {
		if n < 0 {
			return false
		}
		for k := 0; k*k <= n; k++ {
			if k*k == n {
				return true
			}
		}
		return false
	})
}

// Name implements Language.
func (l *LengthLanguage) Name() string { return l.name }

// Alphabet implements Language.
func (l *LengthLanguage) Alphabet() Alphabet { return l.alphabet }

// Predicate exposes the length predicate (used by the counting recognizer).
func (l *LengthLanguage) Predicate() func(n int) bool { return l.pred }

// Contains implements Language.
func (l *LengthLanguage) Contains(w Word) bool {
	if err := l.alphabet.ValidWord(w); err != nil {
		return false
	}
	return l.pred(len(w))
}

// GenerateMember implements Language.
func (l *LengthLanguage) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if !l.pred(n) {
		return nil, false
	}
	return RandomWord(l.alphabet, n, rng), true
}

// GenerateNonMember implements Language.
func (l *LengthLanguage) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if l.pred(n) {
		return nil, false
	}
	return RandomWord(l.alphabet, n, rng), true
}
