package lang

import (
	"fmt"
	"math/rand"
)

// ParityIndex is the regular language of Section 7 note 5, used for the
// passes-versus-bits trade-off. The alphabet is Σ = {σ₀, …, σ_{2ᵏ−1}}; a word
// w belongs to the language iff the letter σ_{|w| mod (2ᵏ−1)} occurs an even
// number of times in w.
//
// It can be recognized in two passes with (2k+1)·n bits (pass 1 computes
// |w| mod (2ᵏ−1), pass 2 tracks the single relevant parity), but a one-pass
// algorithm must track the parity of every letter concurrently and needs
// (k + 2ᵏ − 1)·n bits.
type ParityIndex struct {
	k        int
	alphabet Alphabet
}

var _ Language = (*ParityIndex)(nil)

// NewParityIndex constructs the language for alphabet size 2ᵏ. k must be in
// [1, 16] to keep the alphabet manageable.
func NewParityIndex(k int) (*ParityIndex, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("lang: parity-index k must be in [1,16], got %d", k)
	}
	size := 1 << uint(k)
	letters := make([]Letter, size)
	for i := 0; i < size; i++ {
		// Use a contiguous private block of runes so letters stay 1:1 with
		// indices regardless of k.
		letters[i] = rune(0x2800 + i)
	}
	return &ParityIndex{k: k, alphabet: NewAlphabet(letters...)}, nil
}

// Name implements Language.
//
//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (l *ParityIndex) Name() string { return fmt.Sprintf("parity-index[k=%d]", l.k) }

// Alphabet implements Language.
func (l *ParityIndex) Alphabet() Alphabet { return l.alphabet }

// K returns the parameter k (alphabet size 2ᵏ).
func (l *ParityIndex) K() int { return l.k }

// Modulus returns 2ᵏ − 1, the modulus applied to |w|.
func (l *ParityIndex) Modulus() int { return 1<<uint(l.k) - 1 }

// LetterIndex maps a letter to its index σ_i → i, or -1 if foreign.
func (l *ParityIndex) LetterIndex(letter Letter) int {
	idx := int(letter) - 0x2800
	if idx < 0 || idx >= l.alphabet.Size() {
		return -1
	}
	return idx
}

// LetterAt returns σ_i.
func (l *ParityIndex) LetterAt(i int) Letter {
	return rune(0x2800 + i)
}

// Contains implements Language.
func (l *ParityIndex) Contains(w Word) bool {
	if err := l.alphabet.ValidWord(w); err != nil {
		return false
	}
	target := len(w) % l.Modulus()
	count := 0
	for _, letter := range w {
		if l.LetterIndex(letter) == target {
			count++
		}
	}
	return count%2 == 0
}

// GenerateMember implements Language: generate a random word, then repair the
// parity of the target letter if needed by replacing one occurrence or one
// non-occurrence.
func (l *ParityIndex) GenerateMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 0 {
		return nil, false
	}
	w := RandomWord(l.alphabet, n, rng)
	if l.Contains(w) {
		return w, true
	}
	return l.flipTargetParity(w, rng)
}

// GenerateNonMember implements Language.
func (l *ParityIndex) GenerateNonMember(n int, rng *rand.Rand) (Word, bool) {
	if n < 1 {
		return nil, false
	}
	w := RandomWord(l.alphabet, n, rng)
	if !l.Contains(w) {
		return w, true
	}
	out, ok := l.flipTargetParity(w, rng)
	if !ok {
		return nil, false
	}
	return out, true
}

// flipTargetParity toggles the occurrence parity of the target letter by
// editing a single position, preserving the word length (and therefore the
// target index).
func (l *ParityIndex) flipTargetParity(w Word, rng *rand.Rand) (Word, bool) {
	if len(w) == 0 {
		return nil, false
	}
	out := w.Clone()
	target := len(w) % l.Modulus()
	targetLetter := l.LetterAt(target)
	pos := rng.Intn(len(out))
	if out[pos] == targetLetter {
		// Replace one occurrence by a different letter (needs alphabet ≥ 2,
		// true for every k ≥ 1).
		other := (target + 1) % l.alphabet.Size()
		out[pos] = l.LetterAt(other)
	} else {
		out[pos] = targetLetter
	}
	return out, true
}
