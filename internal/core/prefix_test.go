package core

// Tests for the prefix-checkpoint path through core.Run. The load-bearing
// property is bit-identity: a run resumed from a cached prefix checkpoint
// must report exactly the verdict, totals and per-link stats of a cold run —
// for every prefix-extendable algorithm in the catalog, on every
// prefix-stable schedule, whether the cache hit is full or partial. The
// cache is a pure performance layer; any observable difference is a bug.

import (
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// mustEqualResults fails the test unless warm reports exactly what cold did.
func mustEqualResults(t *testing.T, label string, cold, warm *ring.Result) {
	t.Helper()
	if warm.Verdict != cold.Verdict {
		t.Fatalf("%s: verdict %v, cold says %v", label, warm.Verdict, cold.Verdict)
	}
	if warm.Stats.Messages != cold.Stats.Messages || warm.Stats.Bits != cold.Stats.Bits ||
		warm.Stats.MaxMessageBits != cold.Stats.MaxMessageBits {
		t.Fatalf("%s: %d msgs/%d bits/max %d, cold %d msgs/%d bits/max %d",
			label, warm.Stats.Messages, warm.Stats.Bits, warm.Stats.MaxMessageBits,
			cold.Stats.Messages, cold.Stats.Bits, cold.Stats.MaxMessageBits)
	}
	coldLinks, warmLinks := cold.Stats.Links(), warm.Stats.Links()
	if len(coldLinks) != len(warmLinks) {
		t.Fatalf("%s: %d links, cold %d", label, len(warmLinks), len(coldLinks))
	}
	for i := range coldLinks {
		if coldLinks[i] != warmLinks[i] {
			t.Fatalf("%s: link %d = %+v, cold %+v", label, i, warmLinks[i], coldLinks[i])
		}
	}
}

// prefixSibling returns a word sharing exactly the first shared letters of
// word, with the tail resampled from the alphabet (forced to differ at the
// first tail position when the alphabet allows it).
func prefixSibling(word lang.Word, alphabet lang.Alphabet, shared int, rng *rand.Rand) lang.Word {
	sibling := append(lang.Word(nil), word[:shared]...)
	sibling = append(sibling, lang.RandomWord(alphabet, len(word)-shared, rng)...)
	if shared < len(word) {
		for _, l := range alphabet {
			if l != word[shared] {
				sibling[shared] = l
				break
			}
		}
	}
	return sibling
}

// TestPrefixCacheMatchesColdRunAcrossCatalog is the property the tentpole
// rests on: for every recognizer in the catalog and every prefix-stable
// schedule, runs through a PrefixCache — populating, fully resumed, and
// partially resumed via a diverging sibling word — are bit-identical to cold
// runs. Backward-direction recognizers must decline the cache (their
// executions share suffixes, not prefixes) and still answer correctly.
func TestPrefixCacheMatchesColdRunAcrossCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for _, rec := range allRecognizers(t) {
		alphabet := rec.Language().Alphabet()
		for _, schedule := range ring.PrefixStableScheduleNames() {
			for trial := 0; trial < 4; trial++ {
				n := 8 + rng.Intn(33)
				word := lang.RandomWord(alphabet, n, rng)
				sibling := prefixSibling(word, alphabet, n/2, rng)

				cold := func(w lang.Word) *ring.Result {
					res, err := Run(rec, w, RunOptions{Schedule: schedule})
					if err != nil {
						t.Fatalf("%s/%s cold on %q: %v", rec.Name(), schedule, w.String(), err)
					}
					return res
				}
				coldWord, coldSibling := cold(word), cold(sibling)

				cache := NewPrefixCache(1 << 22)
				warm := func(w lang.Word) *ring.Result {
					res, err := Run(rec, w, RunOptions{Schedule: schedule, Prefix: cache})
					if err != nil {
						t.Fatalf("%s/%s warm on %q: %v", rec.Name(), schedule, w.String(), err)
					}
					return res
				}
				label := rec.Name() + "/" + schedule
				mustEqualResults(t, label+" populate", coldWord, warm(word))
				mustEqualResults(t, label+" full resume", coldWord, warm(word))
				mustEqualResults(t, label+" sibling resume", coldSibling, warm(sibling))
				mustEqualResults(t, label+" sibling again", coldSibling, warm(sibling))

				if _, ok := rec.(PrefixExtendable); !ok {
					t.Fatalf("%s: every catalog recognizer should implement PrefixExtendable", rec.Name())
				}
				st := cache.Stats()
				extendable := rec.(PrefixExtendable).PrefixDeliveries(n, n) > 0
				if extendable && st.Hits+st.PartialHits == 0 {
					t.Fatalf("%s: no cache hits across warm runs (stats %+v)", label, st)
				}
				if !extendable && st.Hits+st.PartialHits+st.Misses != 0 {
					t.Fatalf("%s: backward algorithm touched the prefix cache (stats %+v)", label, st)
				}
			}
		}
	}
}

// TestPrefixCacheBypassedWhenUnusable pins the fallback gates: unstable
// schedules, trace recording and rings too small for any boundary must run
// cold without consulting the cache at all.
func TestPrefixCacheBypassedWhenUnusable(t *testing.T) {
	rec := NewMajority()
	word := lang.WordFromString("0110101101")
	for _, tc := range []struct {
		name string
		opts RunOptions
	}{
		{"random schedule", RunOptions{Schedule: "random", Seed: 7}},
		{"sharded schedule", RunOptions{Schedule: "sharded"}},
		{"adversarial schedule", RunOptions{Schedule: "adversarial"}},
		{"trace recording", RunOptions{Schedule: "sequential", RecordTrace: true}},
	} {
		cache := NewPrefixCache(1 << 20)
		opts := tc.opts
		opts.Prefix = cache
		cold, err := Run(rec, word, tc.opts)
		if err != nil {
			t.Fatalf("%s cold: %v", tc.name, err)
		}
		warm, err := Run(rec, word, opts)
		if err != nil {
			t.Fatalf("%s with cache: %v", tc.name, err)
		}
		if warm.Verdict != cold.Verdict || warm.Stats.Bits != cold.Stats.Bits {
			t.Fatalf("%s: cache changed the result", tc.name)
		}
		if st := cache.Stats(); st.Hits+st.PartialHits+st.Misses+uint64(st.Entries) != 0 {
			t.Fatalf("%s: cache was consulted (stats %+v)", tc.name, st)
		}
	}
	// A two-letter ring has no boundary of depth ≥ 2 below the full word and
	// must still answer; a one-letter ring has no usable prefix at all.
	for _, w := range []string{"01", "1"} {
		cache := NewPrefixCache(1 << 20)
		if _, err := Run(rec, lang.WordFromString(w), RunOptions{Schedule: "sequential", Prefix: cache}); err != nil {
			t.Fatalf("tiny ring %q with cache: %v", w, err)
		}
	}
}

// TestPrefixCacheSurvivesEviction forces the store through its bytes budget
// mid-workload and checks correctness is unaffected — an evicted checkpoint
// is a cache miss, never a wrong answer.
func TestPrefixCacheSurvivesEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	rec := NewMajority()
	alphabet := rec.Language().Alphabet()
	cache := NewPrefixCache(4 << 10) // a few checkpoints at most
	for trial := 0; trial < 40; trial++ {
		n := 16 + rng.Intn(17)
		word := lang.RandomWord(alphabet, n, rng)
		cold, err := Run(rec, word, RunOptions{Schedule: "sequential"})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Run(rec, word, RunOptions{Schedule: "sequential", Prefix: cache})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, "under eviction", cold, warm)
	}
	if st := cache.Stats(); st.Evictions == 0 {
		t.Fatalf("budget never forced an eviction (stats %+v); the test is not exercising eviction", cache.Stats())
	}
}

// TestPrefixRunStaysOnColdAllocFloor is the alloc regression guard for the
// resume hot path at the core.Run level (referenced by //ring:hotpath
// markers in prefix.go): once the deepest boundary is cached, a warm run
// with reused RunState must not allocate more than the same cold run —
// lookup is allocation-free and the capture plan is empty.
func TestPrefixRunStaysOnColdAllocFloor(t *testing.T) {
	const n = 4096
	rec := NewMajority()
	word := lang.RandomWord(rec.Language().Alphabet(), n, rand.New(rand.NewSource(110)))

	coldState := ring.NewRunStateSized(n)
	coldOpts := RunOptions{Schedule: "sequential", State: coldState, Presize: n}
	warmState := ring.NewRunStateSized(n)
	warmOpts := RunOptions{Schedule: "sequential", State: warmState, Presize: n, Prefix: NewPrefixCache(1 << 22)}
	for _, opts := range []RunOptions{coldOpts, warmOpts} {
		if _, err := Run(rec, word, opts); err != nil {
			t.Fatal(err)
		}
	}

	cold := testing.AllocsPerRun(40, func() {
		if _, err := Run(rec, word, coldOpts); err != nil {
			t.Fatal(err)
		}
	})
	warm := testing.AllocsPerRun(40, func() {
		if _, err := Run(rec, word, warmOpts); err != nil {
			t.Fatal(err)
		}
	})
	if warm > cold {
		t.Errorf("steady-state warm run allocates %.0f/op, cold floor is %.0f/op", warm, cold)
	}
	if st := warmOpts.Prefix.Stats(); st.Hits == 0 {
		t.Fatalf("steady-state runs were not full hits (stats %+v)", st)
	}
}

// FuzzPrefixResume drives checkpoint capture and resume at arbitrary split
// points: for a fuzzed word and boundary, a run resumed from a checkpoint
// captured at that boundary must be bit-identical to the cold run. Splitting
// anywhere — not just at the cache's policy boundaries — exercises the
// engine-level invariant the cache builds on.
func FuzzPrefixResume(f *testing.F) {
	f.Add("0110101101", uint16(4))
	f.Add("111111111", uint16(8))
	f.Add("0101", uint16(1))
	f.Fuzz(func(t *testing.T, raw string, split uint16) {
		rec := NewMajority()
		word := make(lang.Word, 0, len(raw))
		for _, r := range raw {
			if len(word) == 64 {
				break
			}
			if r%2 == 0 {
				word = append(word, '0')
			} else {
				word = append(word, '1')
			}
		}
		if len(word) < 2 {
			return
		}
		cfg := ring.Config{Mode: rec.Mode(), Initiators: ring.LeaderOnly, RequireVerdict: true}
		eng := ring.NewSequentialEngine()

		nodes, err := rec.NewNodes(word)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := eng.Run(cfg, nodes)
		if err != nil {
			t.Fatal(err)
		}
		coldStats := cold.Stats.Clone()
		coldVerdict := cold.Verdict

		// Any split inside the run is legal; splits at or past the verdict
		// are simply never captured and the resume degenerates to cold.
		d := 1 + int(split)%(len(word)+2)
		var cp *ring.Checkpoint
		nodes, err = rec.NewNodes(word)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunCheckpointed(nil, cfg, nodes, ring.CheckpointRun{
			CaptureAfter: []int{d},
			OnCapture:    func(c *ring.Checkpoint) { cp = c },
		}); err != nil {
			t.Fatal(err)
		}
		nodes, err = rec.NewNodes(word)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := eng.RunCheckpointed(nil, cfg, nodes, ring.CheckpointRun{Resume: cp})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Verdict != coldVerdict {
			t.Fatalf("split %d: verdict %v, cold %v", d, warm.Verdict, coldVerdict)
		}
		if warm.Stats.Messages != coldStats.Messages || warm.Stats.Bits != coldStats.Bits ||
			warm.Stats.MaxMessageBits != coldStats.MaxMessageBits {
			t.Fatalf("split %d: %d msgs/%d bits, cold %d msgs/%d bits",
				d, warm.Stats.Messages, warm.Stats.Bits, coldStats.Messages, coldStats.Bits)
		}
		warmLinks, coldLinks := warm.Stats.Links(), coldStats.Links()
		for i := range coldLinks {
			if warmLinks[i] != coldLinks[i] {
				t.Fatalf("split %d: link %d = %+v, cold %+v", d, i, warmLinks[i], coldLinks[i])
			}
		}
	})
}
