package core

import (
	"errors"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// ErrDeliveryNotTolerated is returned by Run when the engine's delivery
// guarantee (see ring.EngineDeliveryGuarantee) is weaker than what the
// recognizer tolerates and RunOptions.AllowFaults is unset. This is the
// typed classification of "this algorithm would silently miscount under
// this network": the paper's recognizers assume exactly-once FIFO links, so
// running one under at-least-once or crash-prone delivery is refused rather
// than allowed to produce a plausible wrong verdict.
var ErrDeliveryNotTolerated = errors.New("core: recognizer does not tolerate the schedule's delivery guarantee")

// DeliveryTolerant is implemented by recognizers that remain correct under
// delivery guarantees weaker than the paper's exactly-once model — for
// example WithDedup-wrapped recognizers, which absorb at-least-once
// delivery.
type DeliveryTolerant interface {
	// ToleratesDelivery reports whether the recognizer's verdict stays
	// correct under the given delivery guarantee.
	ToleratesDelivery(g ring.DeliveryGuarantee) bool
}

// Tolerates reports whether the recognizer is correct under the given
// delivery guarantee: every recognizer tolerates the paper's exactly-once
// model, anything weaker must be declared via DeliveryTolerant.
func Tolerates(rec Recognizer, g ring.DeliveryGuarantee) bool {
	if g == ring.ExactlyOnce {
		return true
	}
	if dt, ok := rec.(DeliveryTolerant); ok {
		return dt.ToleratesDelivery(g)
	}
	return false
}

// WithDedup wraps a recognizer with the alternating-bit deduplication layer
// (ring.WithDedup on every node), making it tolerate at-least-once delivery
// at a cost of one extra bit per message. The wrapped recognizer reports
// identical verdicts AND identical Stats under every schedule including the
// duplicating one — redeliveries are swallowed by the wrapper and were never
// sent by the algorithm, so they appear only in Result.Faults.
//
// The wrapper does not tolerate crash-prone delivery: deduplication cannot
// recover a crashed processor's letter.
func WithDedup(rec Recognizer) Recognizer {
	return &dedupRecognizer{inner: rec, name: rec.Name() + "+dedup"}
}

type dedupRecognizer struct {
	inner Recognizer
	// name is built once at wrap time: Name is called from hot run paths
	// (cache keys, sweep rows) and must not concatenate per call.
	name string
}

var _ DeliveryTolerant = (*dedupRecognizer)(nil)

// Name implements Recognizer; the suffix keeps dedup-wrapped rows
// distinguishable in reports and sweeps.
func (d *dedupRecognizer) Name() string { return d.name }

// Language implements Recognizer.
func (d *dedupRecognizer) Language() lang.Language { return d.inner.Language() }

// Mode implements Recognizer.
func (d *dedupRecognizer) Mode() ring.Mode { return d.inner.Mode() }

// NewNodes implements Recognizer.
func (d *dedupRecognizer) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes, err := d.inner.NewNodes(word)
	if err != nil {
		return nil, err
	}
	return ring.WithDedupAll(nodes), nil
}

// ToleratesDelivery implements DeliveryTolerant.
func (d *dedupRecognizer) ToleratesDelivery(g ring.DeliveryGuarantee) bool {
	return g == ring.ExactlyOnce || g == ring.AtLeastOnce
}
