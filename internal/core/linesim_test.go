package core

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

func TestCountBackwardCorrectness(t *testing.T) {
	rec := NewCountBackward(lang.NewPerfectSquareLength())
	checkAgainstLanguage(t, rec, []int{2, 3, 4, 9, 10, 16, 25, 50})
}

func TestCountBackwardUsesTheCutLink(t *testing.T) {
	rec := NewCountBackward(lang.NewPerfectSquareLength())
	word := lang.RandomWord(rec.Language().Alphabet(), 9, rand.New(rand.NewSource(1)))
	res := runOn(t, rec, word)
	n := len(word)
	// The plain backward counter's first hop is leader → p_n over the link
	// the line simulation will later cut.
	if _, ok := res.Stats.PerLink()[[2]int{ring.LeaderIndex, n - 1}]; !ok {
		t.Error("count-backward should use the leader→p_n link directly")
	}
}

func TestLineSimulationRequiresBidirectional(t *testing.T) {
	if _, err := NewLineSimulation(NewThreeCounters()); !errors.Is(err, ErrNotBidirectional) {
		t.Errorf("err = %v, want ErrNotBidirectional", err)
	}
}

func TestLineSimulationEquivalenceAndCutLink(t *testing.T) {
	inner := NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := NewLineSimulation(inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 4, 9, 16, 25, 37, 100} {
		word := lang.RandomWord(inner.Language().Alphabet(), n, rng)
		direct := runOn(t, inner, word)
		simulated := runOn(t, sim, word)
		if direct.Verdict != simulated.Verdict {
			t.Errorf("n=%d: line simulation changed the verdict (%v vs %v)", n, direct.Verdict, simulated.Verdict)
		}
		// The defining property: no traffic on either direction of the
		// leader–p_n link. With n=2 the forward leader→p₂ link and the cut
		// backward link share the same (from, to) pair, so the per-link check
		// is only meaningful for n ≥ 3.
		if n >= 3 {
			if _, used := simulated.Stats.PerLink()[[2]int{ring.LeaderIndex, n - 1}]; used {
				t.Errorf("n=%d: line simulation used the cut link leader→p_n", n)
			}
			if _, used := simulated.Stats.PerLink()[[2]int{n - 1, ring.LeaderIndex}]; used {
				t.Errorf("n=%d: line simulation used the cut link p_n→leader", n)
			}
		}
	}
}

func TestLineSimulationOverheadIsAdditiveLinear(t *testing.T) {
	inner := NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := NewLineSimulation(inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 64, 256} {
		word := lang.RandomWord(inner.Language().Alphabet(), n, rng)
		direct := runOn(t, inner, word)
		simulated := runOn(t, sim, word)
		// Overhead = marker bit per message + the relays of the single
		// rerouted first hop; both are O(n) on top of 2·BIT_A(n) at worst.
		overhead := simulated.Stats.Bits - direct.Stats.Bits
		bound := 3*n + 2*direct.Stats.Bits
		if overhead < 0 || simulated.Stats.Bits > direct.Stats.Bits+bound {
			t.Errorf("n=%d: simulated bits %d vs direct %d exceeds the additive bound %d",
				n, simulated.Stats.Bits, direct.Stats.Bits, bound)
		}
	}
}

func TestLineSimulationTooSmallRing(t *testing.T) {
	inner := NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := NewLineSimulation(inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sim, lang.WordFromString("a"), RunOptions{}); err == nil {
		t.Error("expected an error for a 1-processor line simulation")
	}
}

func TestRecognizersOnConcurrentEngine(t *testing.T) {
	// Every recognizer must produce the same verdict and the same bit count
	// on the concurrent engine as on the sequential one (their executions are
	// message-driven and deterministic).
	rng := rand.New(rand.NewSource(11))
	recs := []Recognizer{
		NewThreeCounters(),
		NewCompareWcW(),
		NewSquareCount(),
		NewLgRecognizer(lang.NewLg(lang.GrowthN15)),
	}
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, NewRegularOnePass(regs[0]))
	for _, rec := range recs {
		for _, n := range []int{3, 9, 25} {
			w, _, err := lang.MemberOrSkip(rec.Language(), n, 3, rng)
			if err != nil {
				continue
			}
			seq, err := Run(rec, w, RunOptions{})
			if err != nil {
				t.Fatalf("%s sequential: %v", rec.Name(), err)
			}
			conc, err := Run(rec, w, RunOptions{Engine: ring.NewConcurrentEngine()})
			if err != nil {
				t.Fatalf("%s concurrent: %v", rec.Name(), err)
			}
			if seq.Verdict != conc.Verdict || seq.Stats.Bits != conc.Stats.Bits {
				t.Errorf("%s n=%d: engines disagree (verdict %v/%v, bits %d/%d)",
					rec.Name(), len(w), seq.Verdict, conc.Verdict, seq.Stats.Bits, conc.Stats.Bits)
			}
		}
	}
}

func TestNewRecognizerByName(t *testing.T) {
	cases := []struct {
		algorithm string
		language  string
	}{
		{"regular-one-pass", "even-ones"},
		{"collect-all", "wcw"},
		{"count", ""},
		{"count-backward", ""},
		{"three-counters", ""},
		{"compare-wcw", ""},
		{"lg", "n^1.5"},
		{"lg-known-n", "L_g[n^2]"},
		{"parity-one-pass", "k=3"},
		{"parity-two-pass", "k=2"},
	}
	for _, c := range cases {
		rec, err := NewRecognizerByName(c.algorithm, c.language)
		if err != nil {
			t.Errorf("NewRecognizerByName(%q, %q): %v", c.algorithm, c.language, err)
			continue
		}
		if rec.Name() == "" || rec.Language() == nil {
			t.Errorf("recognizer %q incomplete", c.algorithm)
		}
	}
	if _, err := NewRecognizerByName("bogus", ""); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := NewRecognizerByName("regular-one-pass", "wcw"); err == nil {
		t.Error("expected error when wrapping a non-regular language")
	}
	if _, err := NewRecognizerByName("parity-one-pass", "oops"); err == nil {
		t.Error("expected error for malformed parity parameter")
	}
	if _, err := NewRecognizerByName("lg", "n^37"); err == nil {
		t.Error("expected error for unknown growth function")
	}
	if len(AlgorithmNames()) < 10 {
		t.Error("AlgorithmNames should list every algorithm")
	}
}
