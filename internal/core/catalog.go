package core

import (
	"errors"
	"fmt"
	"strings"

	"ringlang/internal/lang"
)

// ErrUnknownAlgorithm is returned when an algorithm name is not one of
// AlgorithmNames. Lookup errors wrap it (and language-argument failures wrap
// lang.ErrUnknownLanguage), so callers classify failures with errors.Is
// instead of string matching.
var ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

// NewRecognizerByName builds a recognizer from a short name, used by the cmd
// tools and the ringlang facade. Regular-language recognizers take the
// language name as an argument.
func NewRecognizerByName(algorithm, language string) (Recognizer, error) {
	switch algorithm {
	case "regular-one-pass":
		l, err := lang.ByName(language)
		if err != nil {
			return nil, err
		}
		reg, ok := l.(*lang.Regular)
		if !ok {
			return nil, fmt.Errorf("core: %w: %q is not a regular language", lang.ErrUnknownLanguage, language)
		}
		return NewRegularOnePass(reg), nil
	case "collect-all":
		l, err := lang.ByName(language)
		if err != nil {
			return nil, err
		}
		return NewCollectAll(l), nil
	case "count":
		return NewSquareCount(), nil
	case "count-backward":
		return NewCountBackward(lang.NewPerfectSquareLength()), nil
	case "three-counters":
		return NewThreeCounters(), nil
	case "majority":
		return NewMajority(), nil
	case "balanced-counter":
		return NewBalancedCounter(), nil
	case "compare-wcw":
		return NewCompareWcW(), nil
	case "lg", "lg-known-n":
		var growth lang.GrowthFunc
		found := false
		for _, g := range lang.StandardGrowthFuncs() {
			if lang.NewLg(g).Name() == language || g.Name == language {
				growth = g
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: %w: unknown growth function %q", lang.ErrUnknownLanguage, language)
		}
		if algorithm == "lg-known-n" {
			return NewLgRecognizerKnownN(lang.NewLg(growth)), nil
		}
		return NewLgRecognizer(lang.NewLg(growth)), nil
	case "parity-one-pass", "parity-two-pass":
		var k int
		if _, err := fmt.Sscanf(language, "k=%d", &k); err != nil {
			return nil, fmt.Errorf("core: %w: parity recognizers take a language of the form \"k=<int>\": %v", lang.ErrUnknownLanguage, err)
		}
		pl, err := lang.NewParityIndex(k)
		if err != nil {
			return nil, err
		}
		if algorithm == "parity-one-pass" {
			return NewParityOnePass(pl), nil
		}
		return NewParityTwoPass(pl), nil
	default:
		return nil, fmt.Errorf("%w %q (known: %s)",
			ErrUnknownAlgorithm, algorithm, strings.Join(AlgorithmNames(), ", "))
	}
}

// AlgorithmNames lists the algorithm names accepted by NewRecognizerByName.
func AlgorithmNames() []string {
	return []string{
		"regular-one-pass",
		"collect-all",
		"count",
		"count-backward",
		"three-counters",
		"majority",
		"balanced-counter",
		"compare-wcw",
		"lg",
		"lg-known-n",
		"parity-one-pass",
		"parity-two-pass",
	}
}
