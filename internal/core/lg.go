package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// LgRecognizer recognizes the L_g hierarchy languages of Section 7 note 3.
// It runs in (at most) two passes:
//
//  1. a counting pass (identical to Count) so the leader learns n and can
//     compute the period p(n) = ⌊g(n)/n⌋ — this is the O(n log n) term the
//     paper charges for "the leader computes n";
//  2. a comparison pass in which the message carries the p(n) most recent
//     letters: every processor beyond the first p compares its letter with
//     the one p positions back, which costs Θ(p(n)·n) = Θ(g(n)) bits.
//
// With KnownN set the counting pass is skipped, reproducing Section 7 note 4:
// when n is known the n log n term disappears and the whole hierarchy
// Θ(g(n)), n ≤ g(n) ≤ n², is realized with no gap.
type LgRecognizer struct {
	*TokenRecognizer[lgState]
	language *lang.Lg
	knownN   bool
}

var _ Recognizer = (*LgRecognizer)(nil)

// lgState is the union of the two passes' wire states: the counting pass uses
// only count; the comparison pass carries the validity flag, the period and
// the sliding window of the p(n) most recent letters.
type lgState struct {
	count  uint64
	ok     bool
	period uint64
	window []lang.Letter
}

// lgCountingPass is the δ-coded counting circulation.
func lgCountingPass() TokenPass[lgState] {
	return TokenPass[lgState]{
		Fold: func(s lgState, _ lang.Letter) (lgState, error) {
			s.count++
			return s, nil
		},
		Encode: func(w *bits.Writer, s lgState) { w.WriteDeltaValue(s.count) },
		Decode: func(r *bits.Reader) (lgState, error) {
			var s lgState
			var err error
			if s.count, err = r.ReadDeltaValue(); err != nil {
				return s, fmt.Errorf("decode counter: %w", err)
			}
			return s, nil
		},
	}
}

// lgComparisonPass is the sliding-window circulation. ringSize reports the
// ring size the pass should compare against: the counting pass's result in
// the unknown-n variant, the construction-time size in the known-n one.
func lgComparisonPass(language *lang.Lg, ringSize func(prev lgState, constructionN int) int) TokenPass[lgState] {
	return TokenPass[lgState]{
		Begin: func(prev lgState, constructionN int) (lgState, error) {
			period := language.Period(ringSize(prev, constructionN))
			return lgState{ok: true, period: uint64(period)}, nil
		},
		// Fold slides the letter into the window, comparing it with the letter
		// period positions back once the window is full.
		Fold: func(s lgState, letter lang.Letter) (lgState, error) {
			if uint64(len(s.window)) == s.period {
				if s.window[0] != letter {
					s.ok = false
				}
				s.window = s.window[1:]
			}
			s.window = append(s.window, letter)
			return s, nil
		},
		Encode: func(w *bits.Writer, s lgState) {
			w.WriteBool(s.ok)
			w.WriteDeltaValue(s.period)
			w.WriteDeltaValue(uint64(len(s.window)))
			for _, l := range s.window {
				w.WriteBool(l == 'b')
			}
		},
		Decode: func(r *bits.Reader) (lgState, error) {
			var s lgState
			var err error
			if s.ok, err = r.ReadBool(); err != nil {
				return s, fmt.Errorf("decode ok flag: %w", err)
			}
			if s.period, err = r.ReadDeltaValue(); err != nil {
				return s, fmt.Errorf("decode period: %w", err)
			}
			count, err := r.ReadDeltaValue()
			if err != nil {
				return s, fmt.Errorf("decode window length: %w", err)
			}
			s.window = make([]lang.Letter, 0, count)
			for i := uint64(0); i < count; i++ {
				isB, err := r.ReadBool()
				if err != nil {
					return s, fmt.Errorf("decode window letter %d: %w", i, err)
				}
				if isB {
					s.window = append(s.window, 'b')
				} else {
					s.window = append(s.window, 'a')
				}
			}
			return s, nil
		},
	}
}

// newLgRecognizer assembles the pass list for either variant.
func newLgRecognizer(language *lang.Lg, knownN bool) *LgRecognizer {
	name := "lg"
	var passes []TokenPass[lgState]
	if knownN {
		name = "lg-known-n"
		// One pass; the period comes from the construction-time ring size
		// (note 4's "every processor knows n").
		passes = []TokenPass[lgState]{
			lgComparisonPass(language, func(_ lgState, constructionN int) int { return constructionN }),
		}
	} else {
		// Counting pass first; its result is the n the comparison pass uses.
		passes = []TokenPass[lgState]{
			lgCountingPass(),
			lgComparisonPass(language, func(prev lgState, _ int) int { return int(prev.count) }),
		}
	}
	return &LgRecognizer{
		TokenRecognizer: mustTokenRecognizer(TokenAlgo[lgState]{
			AlgoName: name,
			Language: language,
			Passes:   passes,
			// The comparison pass returned: every processor from position p(n)
			// onward has checked its letter against the one p(n) positions back.
			Verdict: func(s lgState) bool { return s.ok },
		}),
		language: language,
		knownN:   knownN,
	}
}

// NewLgRecognizer builds the two-pass (unknown n) recognizer.
func NewLgRecognizer(language *lang.Lg) *LgRecognizer {
	return newLgRecognizer(language, false)
}

// NewLgRecognizerKnownN builds the one-pass variant in which every node is
// constructed already knowing n (note 4 of Section 7).
func NewLgRecognizerKnownN(language *lang.Lg) *LgRecognizer {
	return newLgRecognizer(language, true)
}

// KnownN reports whether the counting pass is skipped.
func (l *LgRecognizer) KnownN() bool { return l.knownN }
