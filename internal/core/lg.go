package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// LgRecognizer recognizes the L_g hierarchy languages of Section 7 note 3.
// It runs in (at most) two passes:
//
//  1. a counting pass (identical to Count) so the leader learns n and can
//     compute the period p(n) = ⌊g(n)/n⌋ — this is the O(n log n) term the
//     paper charges for "the leader computes n";
//  2. a comparison pass in which the message carries the p(n) most recent
//     letters: every processor beyond the first p compares its letter with
//     the one p positions back, which costs Θ(p(n)·n) = Θ(g(n)) bits.
//
// With KnownN set the counting pass is skipped, reproducing Section 7 note 4:
// when n is known the n log n term disappears and the whole hierarchy
// Θ(g(n)), n ≤ g(n) ≤ n², is realized with no gap.
type LgRecognizer struct {
	language *lang.Lg
	knownN   bool
}

var _ Recognizer = (*LgRecognizer)(nil)

// NewLgRecognizer builds the two-pass (unknown n) recognizer.
func NewLgRecognizer(language *lang.Lg) *LgRecognizer {
	return &LgRecognizer{language: language}
}

// NewLgRecognizerKnownN builds the one-pass variant in which every node is
// constructed already knowing n (note 4 of Section 7).
func NewLgRecognizerKnownN(language *lang.Lg) *LgRecognizer {
	return &LgRecognizer{language: language, knownN: true}
}

// Name implements Recognizer.
func (l *LgRecognizer) Name() string {
	if l.knownN {
		return "lg-known-n"
	}
	return "lg"
}

// Language implements Recognizer.
func (l *LgRecognizer) Language() lang.Language { return l.language }

// Mode implements Recognizer.
func (l *LgRecognizer) Mode() ring.Mode { return ring.Unidirectional }

// KnownN reports whether the counting pass is skipped.
func (l *LgRecognizer) KnownN() bool { return l.knownN }

// NewNodes implements Recognizer.
func (l *LgRecognizer) NewNodes(word lang.Word) ([]ring.Node, error) {
	alphabet := l.language.Alphabet()
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		if !alphabet.Contains(letter) {
			return nil, fmt.Errorf("lg: letter %q outside the alphabet", letter)
		}
		node := &lgNode{algo: l, letter: letter, leader: i == ring.LeaderIndex}
		if l.knownN {
			node.knownN = len(word)
		}
		nodes[i] = node
	}
	return nodes, nil
}

// lgWindow is the decoded comparison-pass message.
type lgWindow struct {
	ok     bool
	period uint64
	window []lang.Letter
}

func encodeLgWindow(s lgWindow) bits.String {
	var w bits.Writer
	w.WriteBool(s.ok)
	w.WriteDeltaValue(s.period)
	w.WriteDeltaValue(uint64(len(s.window)))
	for _, l := range s.window {
		w.WriteBool(l == 'b')
	}
	return w.String()
}

func decodeLgWindow(payload bits.String) (lgWindow, error) {
	r := bits.NewReader(payload)
	var s lgWindow
	var err error
	if s.ok, err = r.ReadBool(); err != nil {
		return s, fmt.Errorf("lg: decode ok flag: %w", err)
	}
	if s.period, err = r.ReadDeltaValue(); err != nil {
		return s, fmt.Errorf("lg: decode period: %w", err)
	}
	count, err := r.ReadDeltaValue()
	if err != nil {
		return s, fmt.Errorf("lg: decode window length: %w", err)
	}
	s.window = make([]lang.Letter, 0, count)
	for i := uint64(0); i < count; i++ {
		isB, err := r.ReadBool()
		if err != nil {
			return s, fmt.Errorf("lg: decode window letter %d: %w", i, err)
		}
		if isB {
			s.window = append(s.window, 'b')
		} else {
			s.window = append(s.window, 'a')
		}
	}
	return s, nil
}

// apply folds one letter into the sliding window, comparing it with the
// letter period positions back when the window is full.
func (s lgWindow) apply(letter lang.Letter) lgWindow {
	out := lgWindow{ok: s.ok, period: s.period, window: append([]lang.Letter(nil), s.window...)}
	if uint64(len(out.window)) == out.period {
		if out.window[0] != letter {
			out.ok = false
		}
		out.window = out.window[1:]
	}
	out.window = append(out.window, letter)
	return out
}

// lgNode is the per-processor logic of the L_g recognizer.
type lgNode struct {
	algo   *LgRecognizer
	letter lang.Letter
	leader bool
	// knownN is the ring size when the recognizer runs in known-n mode, zero
	// otherwise.
	knownN int
	// passesSeen counts the messages this node has handled, which tells it
	// whether an incoming message belongs to the counting or comparison pass.
	passesSeen int
}

// startComparisonPass builds the leader's first comparison-pass message for a
// ring of size n.
func (n *lgNode) startComparisonPass(ringSize int) []ring.Send {
	period := n.algo.language.Period(ringSize)
	initial := lgWindow{ok: true, period: uint64(period), window: []lang.Letter{n.letter}}
	return []ring.Send{ring.SendForward(encodeLgWindow(initial))}
}

// Start implements ring.Node.
func (n *lgNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	if n.algo.knownN {
		return n.startComparisonPass(n.knownN), nil
	}
	var w bits.Writer
	w.WriteDeltaValue(1)
	return []ring.Send{ring.SendForward(w.String())}, nil
}

// Receive implements ring.Node.
func (n *lgNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	n.passesSeen++
	countingPass := !n.algo.knownN && n.passesSeen == 1
	if countingPass {
		v, err := bits.NewReader(payload).ReadDeltaValue()
		if err != nil {
			return nil, fmt.Errorf("lg: decode counter: %w", err)
		}
		if ctx.IsLeader() {
			// Counting pass complete: v == n. Launch the comparison pass.
			return n.startComparisonPass(int(v)), nil
		}
		var w bits.Writer
		w.WriteDeltaValue(v + 1)
		return []ring.Send{ring.SendForward(w.String())}, nil
	}

	s, err := decodeLgWindow(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		// The comparison pass returned: every processor from position p(n)
		// onward has checked its letter against the one p(n) positions back.
		if s.ok {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	return []ring.Send{ring.SendForward(encodeLgWindow(s.apply(n.letter)))}, nil
}
