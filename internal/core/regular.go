package core

import (
	"fmt"

	"ringlang/internal/automata"
	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// RegularOnePass is the Theorem 1 algorithm: every processor holds a copy of
// a finite automaton for the language; the message is the automaton state
// after scanning the letters seen so far, encoded in ⌈log |Q|⌉ bits. One pass
// around the ring decides membership, so BIT(n) = ⌈log |Q|⌉ · n = O(n).
type RegularOnePass struct {
	*TokenRecognizer[automata.State]
	language *lang.Regular
	dfa      *automata.DFA
	// stateBits is ⌈log |Q|⌉, the fixed width of every message.
	stateBits int
}

var _ Recognizer = (*RegularOnePass)(nil)

// NewRegularOnePass builds the Theorem 1 recognizer for a regular language,
// using the language's minimized automaton (the smallest possible ⌈log |Q|⌉).
func NewRegularOnePass(language *lang.Regular) *RegularOnePass {
	return NewRegularOnePassWithDFA(language, language.DFA())
}

// NewRegularOnePassWithDFA builds the Theorem 1 recognizer using an explicit
// automaton for the language. The automaton must recognize language exactly;
// passing an unminimized automaton is how the minimization ablation measures
// the effect of |Q| on the linear constant.
func NewRegularOnePassWithDFA(language *lang.Regular, dfa *automata.DFA) *RegularOnePass {
	stateBits := bits.UintWidth(uint64(dfa.NumStates - 1))
	return &RegularOnePass{
		TokenRecognizer: mustTokenRecognizer(TokenAlgo[automata.State]{
			AlgoName: "regular-one-pass",
			Language: language,
			CheckLetter: func(letter lang.Letter) error {
				if !dfa.HasSymbol(letter) {
					return fmt.Errorf("letter %q outside the automaton alphabet", letter)
				}
				return nil
			},
			Passes: []TokenPass[automata.State]{{
				// The token is the automaton state after the letters folded so
				// far; the pass begins at the start state and each processor
				// applies its own transition.
				Begin: func(automata.State, int) (automata.State, error) { return dfa.Start, nil },
				Fold: func(q automata.State, letter lang.Letter) (automata.State, error) {
					next, ok := dfa.Step(q, letter)
					if !ok {
						return 0, fmt.Errorf("missing transition for %q", letter)
					}
					return next, nil
				},
				Encode: func(w *bits.Writer, q automata.State) {
					w.WriteUint(uint64(q), stateBits)
				},
				Decode: func(r *bits.Reader) (automata.State, error) {
					v, err := r.ReadUint(stateBits)
					if err != nil {
						return 0, fmt.Errorf("decode state: %w", err)
					}
					if int(v) >= dfa.NumStates {
						return 0, fmt.Errorf("decoded state %d out of range", v)
					}
					return automata.State(v), nil
				},
			}},
			Verdict: dfa.IsAccepting,
		}),
		language:  language,
		dfa:       dfa,
		stateBits: stateBits,
	}
}

// StateBits returns the per-message width ⌈log |Q|⌉.
func (r *RegularOnePass) StateBits() int { return r.stateBits }
