package core

import (
	"fmt"

	"ringlang/internal/automata"
	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// RegularOnePass is the Theorem 1 algorithm: every processor holds a copy of
// a finite automaton for the language; the message is the automaton state
// after scanning the letters seen so far, encoded in ⌈log |Q|⌉ bits. One pass
// around the ring decides membership, so BIT(n) = ⌈log |Q|⌉ · n = O(n).
type RegularOnePass struct {
	language *lang.Regular
	dfa      *automata.DFA
	// stateBits is ⌈log |Q|⌉, the fixed width of every message.
	stateBits int
}

var _ Recognizer = (*RegularOnePass)(nil)

// NewRegularOnePass builds the Theorem 1 recognizer for a regular language,
// using the language's minimized automaton (the smallest possible ⌈log |Q|⌉).
func NewRegularOnePass(language *lang.Regular) *RegularOnePass {
	return NewRegularOnePassWithDFA(language, language.DFA())
}

// NewRegularOnePassWithDFA builds the Theorem 1 recognizer using an explicit
// automaton for the language. The automaton must recognize language exactly;
// passing an unminimized automaton is how the minimization ablation measures
// the effect of |Q| on the linear constant.
func NewRegularOnePassWithDFA(language *lang.Regular, dfa *automata.DFA) *RegularOnePass {
	return &RegularOnePass{
		language:  language,
		dfa:       dfa,
		stateBits: bits.UintWidth(uint64(dfa.NumStates - 1)),
	}
}

// Name implements Recognizer.
func (r *RegularOnePass) Name() string { return "regular-one-pass" }

// Language implements Recognizer.
func (r *RegularOnePass) Language() lang.Language { return r.language }

// Mode implements Recognizer.
func (r *RegularOnePass) Mode() ring.Mode { return ring.Unidirectional }

// StateBits returns the per-message width ⌈log |Q|⌉.
func (r *RegularOnePass) StateBits() int { return r.stateBits }

// NewNodes implements Recognizer.
func (r *RegularOnePass) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		if !r.dfa.HasSymbol(letter) {
			return nil, fmt.Errorf("regular-one-pass: letter %q outside the automaton alphabet", letter)
		}
		nodes[i] = &regularNode{algo: r, letter: letter, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// regularNode is the per-processor logic of Theorem 1.
type regularNode struct {
	algo   *RegularOnePass
	letter lang.Letter
	leader bool
}

// encodeState writes a DFA state in the fixed ⌈log |Q|⌉ width.
func (r *RegularOnePass) encodeState(q automata.State) bits.String {
	var w bits.Writer
	w.WriteUint(uint64(q), r.stateBits)
	return w.String()
}

// decodeState reads a DFA state.
func (r *RegularOnePass) decodeState(payload bits.String) (automata.State, error) {
	v, err := bits.NewReader(payload).ReadUint(r.stateBits)
	if err != nil {
		return 0, fmt.Errorf("regular-one-pass: decode state: %w", err)
	}
	if int(v) >= r.dfa.NumStates {
		return 0, fmt.Errorf("regular-one-pass: decoded state %d out of range", v)
	}
	return automata.State(v), nil
}

// Start implements ring.Node. The leader sends q₁ = δ(q₀, σ₁).
func (n *regularNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	q, ok := n.algo.dfa.Step(n.algo.dfa.Start, n.letter)
	if !ok {
		return nil, fmt.Errorf("regular-one-pass: missing transition for %q", n.letter)
	}
	return []ring.Send{ring.SendForward(n.algo.encodeState(q))}, nil
}

// Receive implements ring.Node. A follower p_i sends q_i = δ(q_{i-1}, σ_i);
// the leader receives q_n = δ(q₀, w) and decides.
func (n *regularNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	q, err := n.algo.decodeState(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		if n.algo.dfa.IsAccepting(q) {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	next, ok := n.algo.dfa.Step(q, n.letter)
	if !ok {
		return nil, fmt.Errorf("regular-one-pass: missing transition for %q", n.letter)
	}
	return []ring.Send{ring.SendForward(n.algo.encodeState(next))}, nil
}
