package core

import (
	"errors"
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// This file is the declarative token-pass framework. Every recognizer in the
// paper's upper-bound sections is the same machine: a single token circulates
// from the leader, each processor folds its letter into the token state, and
// after a fixed number of passes the leader reads the verdict off the final
// state. A TokenAlgo states exactly the parts that differ — the per-pass
// initial state, fold, wire codec, and the final verdict — and the framework
// owns everything the hand-written recognizers used to triplicate: node
// construction, leader/pass bookkeeping, encode/decode plumbing and the
// zero-allocation payload path (ring.Context scratch writers + reply
// buffers). A new language is a ~50-line declaration; see majority.go for the
// smallest complete example.

// TokenPass describes one circulation of the token over a state type S.
type TokenPass[S any] struct {
	// Begin derives the pass's initial token state at the leader, before the
	// leader's own letter is folded in. For the first pass prev is the zero
	// value of S; for later passes it is the previous pass's final state as
	// decoded at the leader (which is how, e.g., a counting pass hands n to a
	// comparison pass). ringSize is the ring size the framework knows at node
	// construction; only "known n" algorithms (Section 7 note 4) may consult
	// it — everything else must derive what it needs from prev. Nil means
	// "start from prev unchanged".
	Begin func(prev S, ringSize int) (S, error)
	// Fold folds one processor's letter into the token state. It runs at the
	// leader when the pass begins and at every follower as the token passes,
	// so after one circulation every letter has been folded exactly once.
	Fold func(s S, letter lang.Letter) (S, error)
	// Encode writes the state onto the wire. The writer is the processor's
	// scratch writer; the framework owns its lifecycle.
	Encode func(w *bits.Writer, s S)
	// Decode reads the state back. It must consume exactly what Encode wrote.
	Decode func(r *bits.Reader) (S, error)
}

// TokenAlgo is the declarative specification of a single-token recognizer.
type TokenAlgo[S any] struct {
	// AlgoName is the recognizer name reported by Recognizer.Name.
	AlgoName string
	// Language is the language the recognizer decides.
	Language lang.Language
	// Dir is the direction the token travels; the zero value means Forward.
	// A Backward token implies a bidirectional ring.
	Dir ring.Direction
	// CheckLetter optionally validates each processor's letter at node
	// construction; nil accepts exactly the language's alphabet.
	CheckLetter func(lang.Letter) error
	// Passes is the token's itinerary, in order. Every pass visits all n
	// processors once, leader first.
	Passes []TokenPass[S]
	// Verdict inspects the final state of the last pass at the leader and
	// reports acceptance.
	Verdict func(final S) bool
}

// TokenRecognizer runs a TokenAlgo as a Recognizer. Construct with
// NewTokenRecognizer; the zero value is not usable.
type TokenRecognizer[S any] struct {
	spec TokenAlgo[S]
	// check is the per-letter validation NewNodes and RebuildNodes apply —
	// the spec's own CheckLetter, or alphabet membership. Resolved once at
	// construction so the rebuild hot path closes over nothing.
	check func(lang.Letter) error
}

// errInvalidTokenAlgo is wrapped by every NewTokenRecognizer validation error.
var errInvalidTokenAlgo = errors.New("core: invalid token algorithm")

// errLateToken is the cause of an AlgoError reporting a token delivered
// after the algorithm's final pass completed.
var errLateToken = errors.New("token arrived after the final pass")

// AlgoError wraps a runtime failure of a token recognizer — codec errors,
// fold errors, letter validation — with the algorithm that produced it, so
// callers classify the failing algorithm with errors.As instead of parsing
// the message. The underlying cause stays reachable through Unwrap.
type AlgoError struct {
	// Algo is the recognizer name (TokenAlgo.AlgoName).
	Algo string
	// Err is the underlying cause.
	Err error
}

// Error implements error with the "name: cause" form the recognizers have
// always reported.
func (e *AlgoError) Error() string { return e.Algo + ": " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *AlgoError) Unwrap() error { return e.Err }

// algoErr wraps err with the algorithm's name.
func algoErr(algo string, err error) error {
	return &AlgoError{Algo: algo, Err: err}
}

// NewTokenRecognizer validates a TokenAlgo and wraps it as a Recognizer.
func NewTokenRecognizer[S any](spec TokenAlgo[S]) (*TokenRecognizer[S], error) {
	switch {
	case spec.AlgoName == "":
		return nil, fmt.Errorf("%w: missing name", errInvalidTokenAlgo)
	case spec.Language == nil:
		return nil, fmt.Errorf("%w: %s has no language", errInvalidTokenAlgo, spec.AlgoName)
	case len(spec.Passes) == 0:
		return nil, fmt.Errorf("%w: %s declares no passes", errInvalidTokenAlgo, spec.AlgoName)
	case spec.Verdict == nil:
		return nil, fmt.Errorf("%w: %s has no verdict", errInvalidTokenAlgo, spec.AlgoName)
	}
	for i, p := range spec.Passes {
		if p.Fold == nil || p.Encode == nil || p.Decode == nil {
			return nil, fmt.Errorf("%w: %s pass %d is missing fold or codec", errInvalidTokenAlgo, spec.AlgoName, i)
		}
	}
	if spec.Dir == 0 {
		spec.Dir = ring.Forward
	}
	t := &TokenRecognizer[S]{spec: spec}
	t.check = spec.CheckLetter
	if t.check == nil {
		alphabet := spec.Language.Alphabet()
		t.check = func(letter lang.Letter) error {
			if !alphabet.Contains(letter) {
				return fmt.Errorf("letter %q outside the alphabet", letter)
			}
			return nil
		}
	}
	return t, nil
}

// mustTokenRecognizer is the constructor for the statically-declared
// recognizers in this package, whose specs are correct by construction.
func mustTokenRecognizer[S any](spec TokenAlgo[S]) *TokenRecognizer[S] {
	rec, err := NewTokenRecognizer(spec)
	if err != nil {
		panic(err)
	}
	return rec
}

// Name implements Recognizer.
func (t *TokenRecognizer[S]) Name() string { return t.spec.AlgoName }

// Language implements Recognizer.
func (t *TokenRecognizer[S]) Language() lang.Language { return t.spec.Language }

// Mode implements Recognizer: a Forward token needs only a unidirectional
// ring; a Backward token needs the bidirectional topology.
func (t *TokenRecognizer[S]) Mode() ring.Mode {
	if t.spec.Dir == ring.Backward {
		return ring.Bidirectional
	}
	return ring.Unidirectional
}

// Passes returns the number of token circulations the algorithm performs.
func (t *TokenRecognizer[S]) Passes() int { return len(t.spec.Passes) }

// NewNodes implements Recognizer.
func (t *TokenRecognizer[S]) NewNodes(word lang.Word) ([]ring.Node, error) {
	check := t.check
	nodes := make([]ring.Node, len(word))
	states := make([]tokenPassNode[S], len(word))
	for i, letter := range word {
		if err := check(letter); err != nil {
			return nil, algoErr(t.spec.AlgoName, err)
		}
		states[i] = tokenPassNode[S]{alg: t, letter: letter, ringSize: len(word)}
		nodes[i] = &states[i]
	}
	return nodes, nil
}

// RebuildNodes implements NodeRebuilder: it relabels a ring NewNodes built
// for an equal-length word in place, resetting every node to the state a
// fresh construction would give it. At large n this is what keeps the
// steady-state run cost in the engine loop instead of in allocating,
// zeroing and faulting a fresh ring per word (see core.NodeReuse).
//
//ring:hotpath guard=TestNodeReuseStaysOnRebuildFloor
func (t *TokenRecognizer[S]) RebuildNodes(word lang.Word, prev []ring.Node) ([]ring.Node, error) {
	if len(prev) != len(word) {
		return nil, algoErr(t.spec.AlgoName, fmt.Errorf("rebuild: %d nodes for %d letters", len(prev), len(word)))
	}
	check := t.check
	for i, letter := range word {
		node, ok := prev[i].(*tokenPassNode[S])
		if !ok || node.alg != t {
			return nil, algoErr(t.spec.AlgoName, fmt.Errorf("rebuild: node %d was not built by this recognizer", i))
		}
		if err := check(letter); err != nil {
			return nil, algoErr(t.spec.AlgoName, err)
		}
		node.letter = letter
		node.seen = 0
		node.reader = bits.Reader{}
	}
	return prev, nil
}

// tokenPassNode is the one per-processor implementation behind every token
// recognizer. Its behaviour is fully determined by the spec: the leader
// begins each pass (folding its own letter first), followers fold and relay,
// and the leader closes the last pass with the verdict.
type tokenPassNode[S any] struct {
	alg      *TokenRecognizer[S]
	letter   lang.Letter
	ringSize int
	// seen counts the tokens this processor has handled, which is exactly the
	// index of the pass the next incoming token belongs to (for the leader:
	// the pass that is completing).
	seen int
	// reader is the node's reusable payload decoder; pooling it here keeps
	// the receive path allocation-free.
	reader bits.Reader
}

// begin computes pass p's on-the-wire state at the leader: Begin, then the
// leader's own fold.
//
//ring:deterministic
//ring:hotpath guard=TestTokenRecognizerSteadyStateAllocs
func (n *tokenPassNode[S]) begin(p int, prev S) (S, error) {
	pass := &n.alg.spec.Passes[p]
	s := prev
	if pass.Begin != nil {
		var err error
		if s, err = pass.Begin(prev, n.ringSize); err != nil {
			return s, algoErr(n.alg.spec.AlgoName, fmt.Errorf("begin pass %d: %w", p, err))
		}
	}
	s, err := pass.Fold(s, n.letter)
	if err != nil {
		return s, algoErr(n.alg.spec.AlgoName, err)
	}
	return s, nil
}

// emit encodes s with pass p's codec onto the processor's scratch writer and
// returns the single resulting send. The payload aliases the scratch buffer —
// legal here because a token algorithm's processor has at most one message in
// flight (see ring.Context.Writer).
//
//ring:deterministic
//ring:hotpath guard=TestTokenRecognizerSteadyStateAllocs
func (n *tokenPassNode[S]) emit(ctx *ring.Context, p int, s S) []ring.Send {
	w := ctx.Writer()
	n.alg.spec.Passes[p].Encode(w, s)
	return ctx.Reply(n.alg.spec.Dir, w.BitString())
}

// Start implements ring.Node: the leader launches pass 0.
//
//ring:deterministic
//ring:hotpath guard=TestTokenRecognizerSteadyStateAllocs
func (n *tokenPassNode[S]) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	var zero S
	s, err := n.begin(0, zero)
	if err != nil {
		return nil, err
	}
	return n.emit(ctx, 0, s), nil
}

// Receive implements ring.Node.
//
//ring:deterministic
//ring:hotpath guard=TestTokenRecognizerSteadyStateAllocs
func (n *tokenPassNode[S]) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	p := n.seen
	if p >= len(n.alg.spec.Passes) {
		return nil, algoErr(n.alg.spec.AlgoName, errLateToken)
	}
	n.seen++
	n.reader.Reset(payload)
	s, err := n.alg.spec.Passes[p].Decode(&n.reader)
	if err != nil {
		return nil, algoErr(n.alg.spec.AlgoName, err)
	}
	if ctx.IsLeader() {
		// Pass p has completed: every processor folded its letter exactly once.
		if p == len(n.alg.spec.Passes)-1 {
			if n.alg.spec.Verdict(s) {
				return nil, ctx.Accept()
			}
			return nil, ctx.Reject()
		}
		next, err := n.begin(p+1, s)
		if err != nil {
			return nil, err
		}
		return n.emit(ctx, p+1, next), nil
	}
	if s, err = n.alg.spec.Passes[p].Fold(s, n.letter); err != nil {
		return nil, algoErr(n.alg.spec.AlgoName, err)
	}
	return n.emit(ctx, p, s), nil
}

// ResumeState implements ring.PrefixResumable. A token-pass processor's only
// per-run mutable state is how many tokens it has handled — the token itself
// carries everything else and rides in the checkpoint's pending queue — so
// the whole framework is checkpointable through this one pair of methods
// rather than per-algorithm ports.
//
//ring:deterministic
func (n *tokenPassNode[S]) ResumeState() int64 { return int64(n.seen) }

// Resume implements ring.PrefixResumable.
//
//ring:hotpath guard=TestCheckpointResumeAllocRegressionGuard
func (n *tokenPassNode[S]) Resume(state int64) { n.seen = int(state) }
