package core

import (
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// FuzzFaultScheduleAgreement fuzzes the exactly-once half of the fault axis:
// for an arbitrary word, seed, and drop rate, a run under the lossy schedule
// (drops plus go-back-N retransmission) and under crash-restart (a bounded
// outage with buffered replay) must be indistinguishable — same verdict, same
// bit and message totals — from the sequential run. The link layer absorbs
// the faults; the algorithm must never see them.
func FuzzFaultScheduleAgreement(f *testing.F) {
	f.Add("0110101101", int64(1), byte(32))
	f.Add("111111111", int64(17), byte(200))
	f.Add("0101", int64(3), byte(255))
	f.Add("10", int64(99), byte(0))
	f.Fuzz(func(t *testing.T, raw string, seed int64, drop byte) {
		rec := NewMajority()
		word := make(lang.Word, 0, len(raw))
		for _, r := range raw {
			if len(word) == 64 {
				break
			}
			if r%2 == 0 {
				word = append(word, '0')
			} else {
				word = append(word, '1')
			}
		}
		if len(word) < 2 {
			return
		}
		base, err := Run(rec, word, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}

		// Map the fuzzed byte into (0, 1); 0 falls back to the default rate.
		rate := float64(drop) / 256
		engines := []ring.Engine{
			ring.NewLossyEngine(seed, rate, ring.DefaultMaxRetransmits),
			ring.NewCrashRestartEngine(seed),
		}
		for _, engine := range engines {
			res, err := Run(rec, word, RunOptions{Engine: engine})
			if err != nil {
				t.Fatalf("%s on %q: %v", engine.Name(), word.String(), err)
			}
			if res.Verdict != base.Verdict || res.Stats.Bits != base.Stats.Bits ||
				res.Stats.Messages != base.Stats.Messages {
				t.Errorf("%s on %q: %v with %d bits/%d msgs, sequential %v with %d bits/%d msgs",
					engine.Name(), word.String(), res.Verdict, res.Stats.Bits, res.Stats.Messages,
					base.Verdict, base.Stats.Bits, base.Stats.Messages)
			}
			if res.Faults == nil {
				t.Errorf("%s: no fault report attached", engine.Name())
			}
		}
	})
}
