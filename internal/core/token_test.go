package core

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// TestNewTokenRecognizerValidation checks that malformed specs are rejected
// with errInvalidTokenAlgo before any node is built.
func TestNewTokenRecognizerValidation(t *testing.T) {
	valid := func() TokenAlgo[uint64] {
		return TokenAlgo[uint64]{
			AlgoName: "test-count",
			Language: lang.NewPerfectSquareLength(),
			Passes:   []TokenPass[uint64]{counterPass(CodingDelta, "decode counter")},
			Verdict:  func(uint64) bool { return true },
		}
	}
	if _, err := NewTokenRecognizer(valid()); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*TokenAlgo[uint64])
	}{
		{"no name", func(s *TokenAlgo[uint64]) { s.AlgoName = "" }},
		{"no language", func(s *TokenAlgo[uint64]) { s.Language = nil }},
		{"no passes", func(s *TokenAlgo[uint64]) { s.Passes = nil }},
		{"no verdict", func(s *TokenAlgo[uint64]) { s.Verdict = nil }},
		{"pass without fold", func(s *TokenAlgo[uint64]) { s.Passes[0].Fold = nil }},
		{"pass without encode", func(s *TokenAlgo[uint64]) { s.Passes[0].Encode = nil }},
		{"pass without decode", func(s *TokenAlgo[uint64]) { s.Passes[0].Decode = nil }},
	}
	for _, tc := range cases {
		spec := valid()
		tc.mutate(&spec)
		if _, err := NewTokenRecognizer(spec); !errors.Is(err, errInvalidTokenAlgo) {
			t.Errorf("%s: got %v, want errInvalidTokenAlgo", tc.name, err)
		}
	}
}

// TestTokenRecognizerCustomMultiPass builds a two-pass algorithm from scratch
// through the public spec — the "new language in a few lines" workflow the
// framework exists for — and checks verdicts, pass accounting and the exact
// bit total. The language: words of even length whose first letter reoccurs
// an even number of times; pass 1 counts n (δ-coded), pass 2 carries the
// leader's letter plus an occurrence parity bit.
func TestTokenRecognizerCustomMultiPass(t *testing.T) {
	type st struct {
		count  uint64
		target lang.Letter
		parity bool
	}
	language := lang.NewWcW() // only the {a,b,c} alphabet is borrowed
	rec, err := NewTokenRecognizer(TokenAlgo[st]{
		AlgoName: "even-length-even-first",
		Language: language,
		Passes: []TokenPass[st]{
			{
				Fold:   func(s st, _ lang.Letter) (st, error) { s.count++; return s, nil },
				Encode: func(w *bits.Writer, s st) { w.WriteDeltaValue(s.count) },
				Decode: func(r *bits.Reader) (st, error) {
					var s st
					var err error
					s.count, err = r.ReadDeltaValue()
					return s, err
				},
			},
			{
				Begin: func(prev st, _ int) (st, error) {
					return st{count: prev.count}, nil
				},
				Fold: func(s st, letter lang.Letter) (st, error) {
					if s.target == 0 {
						s.target = letter // the leader folds first: its letter is the target
					}
					if letter == s.target {
						s.parity = !s.parity
					}
					return s, nil
				},
				Encode: func(w *bits.Writer, s st) {
					w.WriteDeltaValue(s.count)
					w.WriteUint(uint64(s.target), 8)
					w.WriteBool(s.parity)
				},
				Decode: func(r *bits.Reader) (st, error) {
					var s st
					var err error
					if s.count, err = r.ReadDeltaValue(); err != nil {
						return s, err
					}
					target, err := r.ReadUint(8)
					if err != nil {
						return s, err
					}
					s.target = lang.Letter(target)
					s.parity, err = r.ReadBool()
					return s, err
				},
			},
		},
		Verdict: func(s st) bool { return s.count%2 == 0 && !s.parity },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Passes(); got != 2 {
		t.Fatalf("Passes() = %d, want 2", got)
	}
	for _, tc := range []struct {
		word string
		want ring.Verdict
	}{
		{"ab", ring.VerdictReject},   // 'a' occurs once
		{"aa", ring.VerdictAccept},   // even length, 'a' twice
		{"abab", ring.VerdictAccept}, // 'a' twice
		{"aba", ring.VerdictReject},  // odd length
		{"abba", ring.VerdictAccept},
	} {
		res, err := Run(rec, lang.WordFromString(tc.word), RunOptions{})
		if err != nil {
			t.Fatalf("%q: %v", tc.word, err)
		}
		if res.Verdict != tc.want {
			t.Errorf("%q: verdict %v, want %v", tc.word, res.Verdict, tc.want)
		}
		if res.Stats.Messages != 2*len(tc.word) {
			t.Errorf("%q: %d messages, want two passes = %d", tc.word, res.Stats.Messages, 2*len(tc.word))
		}
	}
}

// TestTokenRecognizerDecodeErrorsAreNamed checks that codec failures surface
// with the algorithm's name, matching the hand-written recognizers' style.
func TestTokenRecognizerDecodeErrorsAreNamed(t *testing.T) {
	rec := NewThreeCounters()
	nodes, err := rec.NewNodes(lang.WordFromString("012"))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver a truncated payload straight into a follower node.
	_, err = nodes[1].Receive(&ring.Context{}, ring.Backward, bits.Empty())
	var ae *AlgoError
	if !errors.As(err, &ae) || ae.Algo != "three-counters" {
		t.Fatalf("truncated payload error %v does not name the algorithm", err)
	}
	// Letter validation is also named.
	if _, err := rec.NewNodes(lang.WordFromString("01x")); !errors.As(err, &ae) ||
		ae.Algo != "three-counters" {
		t.Fatalf("letter validation error %v does not name the algorithm", err)
	}
}

// TestTokenRecognizerSteadyStateAllocs pins the zero-allocation payload path
// end to end through the framework: a counting token re-run inside one
// RunState must not allocate per message — only the per-run constants (the
// Result, the decoded-state plumbing) remain.
func TestTokenRecognizerSteadyStateAllocs(t *testing.T) {
	rec := NewSquareCount()
	word, ok := rec.Language().GenerateMember(256, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("no member of length 256")
	}
	eng := ring.NewSequentialEngine()
	st := ring.NewRunState()
	cfg := ring.Config{RequireVerdict: true}
	oneRun := func() {
		// Nodes are single-run (they track which pass the token is on), but
		// the framework backs all n of them with one slice, so rebuilding
		// costs two allocations regardless of ring size.
		nodes, err := rec.NewNodes(word)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunWith(st, cfg, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != ring.VerdictAccept {
			t.Fatalf("verdict %v", res.Verdict)
		}
	}
	oneRun()
	allocs := testing.AllocsPerRun(10, oneRun)
	// n=256 deliveries; anything growing with n is a payload-path regression.
	const ceiling = 8
	t.Logf("steady-state allocs/run for count at n=256: %.0f (ceiling %d)", allocs, ceiling)
	if allocs > ceiling {
		t.Errorf("count recognizer allocates %.0f/run at n=256, ceiling %d — the payload path regressed", allocs, ceiling)
	}
}
