package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// BalancedCounter recognizes the Dyck language of balanced brackets with a
// single pass carrying the current nesting depth (δ-coded) plus a failure
// flag. Like the three-counter algorithm of Section 7 note 2 it shows a
// classic context-free language sitting at the Θ(n log n) floor of the
// non-regular class.
type BalancedCounter struct {
	language *lang.Dyck
}

var _ Recognizer = (*BalancedCounter)(nil)

// NewBalancedCounter builds the depth-counter recognizer for the Dyck
// language.
func NewBalancedCounter() *BalancedCounter {
	return &BalancedCounter{language: lang.NewDyck()}
}

// Name implements Recognizer.
func (b *BalancedCounter) Name() string { return "balanced-counter" }

// Language implements Recognizer.
func (b *BalancedCounter) Language() lang.Language { return b.language }

// Mode implements Recognizer.
func (b *BalancedCounter) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (b *BalancedCounter) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		if letter != '(' && letter != ')' {
			return nil, fmt.Errorf("balanced-counter: letter %q outside {(,)}", letter)
		}
		nodes[i] = &dyckNode{letter: letter, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// dyckState is the decoded single-pass message: the current nesting depth and
// whether the depth ever went negative.
type dyckState struct {
	failed bool
	depth  uint64
}

func encodeDyck(s dyckState) bits.String {
	var w bits.Writer
	w.WriteBool(s.failed)
	w.WriteDeltaValue(s.depth)
	return w.String()
}

func decodeDyck(payload bits.String) (dyckState, error) {
	r := bits.NewReader(payload)
	var s dyckState
	var err error
	if s.failed, err = r.ReadBool(); err != nil {
		return s, fmt.Errorf("balanced-counter: decode flag: %w", err)
	}
	if s.depth, err = r.ReadDeltaValue(); err != nil {
		return s, fmt.Errorf("balanced-counter: decode depth: %w", err)
	}
	return s, nil
}

// apply folds one bracket into the state.
func (s dyckState) apply(letter lang.Letter) dyckState {
	out := s
	if out.failed {
		return out
	}
	if letter == '(' {
		out.depth++
		return out
	}
	if out.depth == 0 {
		out.failed = true
		return out
	}
	out.depth--
	return out
}

// dyckNode is the per-processor logic.
type dyckNode struct {
	letter lang.Letter
	leader bool
}

// Start implements ring.Node.
func (n *dyckNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	return []ring.Send{ring.SendForward(encodeDyck(dyckState{}.apply(n.letter)))}, nil
}

// Receive implements ring.Node.
func (n *dyckNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	s, err := decodeDyck(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		if !s.failed && s.depth == 0 {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	return []ring.Send{ring.SendForward(encodeDyck(s.apply(n.letter)))}, nil
}
