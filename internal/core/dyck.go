package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// BalancedCounter recognizes the Dyck language of balanced brackets with a
// single pass carrying the current nesting depth (δ-coded) plus a failure
// flag. Like the three-counter algorithm of Section 7 note 2 it shows a
// classic context-free language sitting at the Θ(n log n) floor of the
// non-regular class.
type BalancedCounter struct {
	*TokenRecognizer[dyckState]
}

var _ Recognizer = (*BalancedCounter)(nil)

// dyckState is the token state: the current nesting depth and whether the
// depth ever went negative.
type dyckState struct {
	failed bool
	depth  uint64
}

// NewBalancedCounter builds the depth-counter recognizer for the Dyck
// language.
func NewBalancedCounter() *BalancedCounter {
	return &BalancedCounter{TokenRecognizer: mustTokenRecognizer(TokenAlgo[dyckState]{
		AlgoName: "balanced-counter",
		Language: lang.NewDyck(),
		CheckLetter: func(letter lang.Letter) error {
			if letter != '(' && letter != ')' {
				return fmt.Errorf("letter %q outside {(,)}", letter)
			}
			return nil
		},
		Passes: []TokenPass[dyckState]{{
			Fold: func(s dyckState, letter lang.Letter) (dyckState, error) {
				switch {
				case s.failed:
				case letter == '(':
					s.depth++
				case s.depth == 0:
					s.failed = true
				default:
					s.depth--
				}
				return s, nil
			},
			Encode: func(w *bits.Writer, s dyckState) {
				w.WriteBool(s.failed)
				w.WriteDeltaValue(s.depth)
			},
			Decode: func(r *bits.Reader) (dyckState, error) {
				var s dyckState
				var err error
				if s.failed, err = r.ReadBool(); err != nil {
					return s, fmt.Errorf("decode flag: %w", err)
				}
				if s.depth, err = r.ReadDeltaValue(); err != nil {
					return s, fmt.Errorf("decode depth: %w", err)
				}
				return s, nil
			},
		}},
		Verdict: func(s dyckState) bool { return !s.failed && s.depth == 0 },
	})}
}
