package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// ThreeCounters recognizes {0ᵏ1ᵏ2ᵏ} (Section 7 note 2) in a single pass: the
// message carries a validity flag for the 0*1*2* shape, the index of the
// highest letter seen so far, and three δ-coded occurrence counters. Each of
// the n messages is Θ(log n) bits, so the total is O(n log n) — a
// context-sensitive, non-context-free language recognized at the non-regular
// lower bound.
type ThreeCounters struct {
	language *lang.AnBnCn
}

var _ Recognizer = (*ThreeCounters)(nil)

// NewThreeCounters builds the three-counter recognizer.
func NewThreeCounters() *ThreeCounters {
	return &ThreeCounters{language: lang.NewAnBnCn()}
}

// Name implements Recognizer.
func (t *ThreeCounters) Name() string { return "three-counters" }

// Language implements Recognizer.
func (t *ThreeCounters) Language() lang.Language { return t.language }

// Mode implements Recognizer.
func (t *ThreeCounters) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (t *ThreeCounters) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		if letter != '0' && letter != '1' && letter != '2' {
			return nil, fmt.Errorf("three-counters: letter %q outside {0,1,2}", letter)
		}
		nodes[i] = &threeCountersNode{letter: letter, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// threeCountersState is the decoded message of the three-counter pass.
type threeCountersState struct {
	valid  bool
	phase  uint64 // highest letter value seen so far (0, 1, or 2)
	counts [3]uint64
}

func encodeThreeCounters(s threeCountersState) bits.String {
	var w bits.Writer
	w.WriteBool(s.valid)
	w.WriteUint(s.phase, 2)
	for _, c := range s.counts {
		w.WriteDeltaValue(c)
	}
	return w.String()
}

func decodeThreeCounters(payload bits.String) (threeCountersState, error) {
	r := bits.NewReader(payload)
	var s threeCountersState
	var err error
	if s.valid, err = r.ReadBool(); err != nil {
		return s, fmt.Errorf("three-counters: decode valid flag: %w", err)
	}
	if s.phase, err = r.ReadUint(2); err != nil {
		return s, fmt.Errorf("three-counters: decode phase: %w", err)
	}
	for i := range s.counts {
		if s.counts[i], err = r.ReadDeltaValue(); err != nil {
			return s, fmt.Errorf("three-counters: decode counter %d: %w", i, err)
		}
	}
	return s, nil
}

// apply folds one letter into the state.
func (s threeCountersState) apply(letter lang.Letter) threeCountersState {
	idx := uint64(letter - '0')
	out := s
	out.counts[idx]++
	if idx < s.phase {
		out.valid = false
	}
	if idx > out.phase {
		out.phase = idx
	}
	return out
}

// threeCountersNode is the per-processor logic.
type threeCountersNode struct {
	letter lang.Letter
	leader bool
}

// Start implements ring.Node.
func (n *threeCountersNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	initial := threeCountersState{valid: true}
	return []ring.Send{ring.SendForward(encodeThreeCounters(initial.apply(n.letter)))}, nil
}

// Receive implements ring.Node.
func (n *threeCountersNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	s, err := decodeThreeCounters(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		// Every processor, the leader included, has folded in its letter.
		if s.valid && s.counts[0] == s.counts[1] && s.counts[1] == s.counts[2] {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	return []ring.Send{ring.SendForward(encodeThreeCounters(s.apply(n.letter)))}, nil
}
