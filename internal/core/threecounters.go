package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// ThreeCounters recognizes {0ᵏ1ᵏ2ᵏ} (Section 7 note 2) in a single pass: the
// message carries a validity flag for the 0*1*2* shape, the index of the
// highest letter seen so far, and three δ-coded occurrence counters. Each of
// the n messages is Θ(log n) bits, so the total is O(n log n) — a
// context-sensitive, non-context-free language recognized at the non-regular
// lower bound.
type ThreeCounters struct {
	*TokenRecognizer[threeCountersState]
}

var _ Recognizer = (*ThreeCounters)(nil)

// threeCountersState is the token state of the three-counter pass.
type threeCountersState struct {
	valid  bool
	phase  uint64 // highest letter value seen so far (0, 1, or 2)
	counts [3]uint64
}

// NewThreeCounters builds the three-counter recognizer.
func NewThreeCounters() *ThreeCounters {
	return &ThreeCounters{TokenRecognizer: mustTokenRecognizer(TokenAlgo[threeCountersState]{
		AlgoName: "three-counters",
		Language: lang.NewAnBnCn(),
		CheckLetter: func(letter lang.Letter) error {
			if letter != '0' && letter != '1' && letter != '2' {
				return fmt.Errorf("letter %q outside {0,1,2}", letter)
			}
			return nil
		},
		Passes: []TokenPass[threeCountersState]{{
			Begin: func(threeCountersState, int) (threeCountersState, error) {
				return threeCountersState{valid: true}, nil
			},
			Fold: func(s threeCountersState, letter lang.Letter) (threeCountersState, error) {
				idx := uint64(letter - '0')
				s.counts[idx]++
				if idx < s.phase {
					s.valid = false
				}
				if idx > s.phase {
					s.phase = idx
				}
				return s, nil
			},
			Encode: func(w *bits.Writer, s threeCountersState) {
				w.WriteBool(s.valid)
				w.WriteUint(s.phase, 2)
				for _, c := range s.counts {
					w.WriteDeltaValue(c)
				}
			},
			Decode: func(r *bits.Reader) (threeCountersState, error) {
				var s threeCountersState
				var err error
				if s.valid, err = r.ReadBool(); err != nil {
					return s, fmt.Errorf("decode valid flag: %w", err)
				}
				if s.phase, err = r.ReadUint(2); err != nil {
					return s, fmt.Errorf("decode phase: %w", err)
				}
				for i := range s.counts {
					if s.counts[i], err = r.ReadDeltaValue(); err != nil {
						return s, fmt.Errorf("decode counter %d: %w", i, err)
					}
				}
				return s, nil
			},
		}},
		// Every processor, the leader included, has folded in its letter.
		Verdict: func(s threeCountersState) bool {
			return s.valid && s.counts[0] == s.counts[1] && s.counts[1] == s.counts[2]
		},
	})}
}
