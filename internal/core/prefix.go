package core

import (
	"ringlang/internal/lang"
	"ringlang/internal/memo"
	"ringlang/internal/ring"
)

// This file connects the three halves of prefix checkpointing: the engine's
// Checkpoint (ring), the bounded prefix store (memo), and the recognizers'
// knowledge of which deliveries a word prefix pins down (PrefixExtendable,
// implemented once for the whole token framework). A PrefixCache threads
// them together under core.Run: look up the longest checkpointed prefix of
// the word, resume from it, and capture fresh checkpoints at a few
// fractional boundaries for future words to reuse.

// PrefixExtendable is implemented by recognizers whose executions consume
// the word as a prefix: the first k deliveries of a cold run are a pure
// function of the first PrefixDeliveries⁻¹(k) letters, under any
// prefix-stable schedule (ring.ScheduleIsPrefixStable).
type PrefixExtendable interface {
	Recognizer
	// PrefixDeliveries returns how many deliveries of a cold run on a
	// wordLen-letter word are fully determined by its first prefixLen
	// letters — the deepest checkpoint boundary that prefix supports. Zero
	// means the prefix pins down nothing usable (the algorithm reads the
	// word in another order, or the ring is too small).
	PrefixDeliveries(prefixLen, wordLen int) int
}

// PrefixDeliveries implements PrefixExtendable for every token recognizer
// at once — this is a property of the framework, not of the ten individual
// declarations. A forward token's delivery j hands the pass-0 token to
// processor j, which folds letter j: after d ≤ n-1 deliveries the execution
// state (token payload in flight, per-processor pass counters, link stats)
// depends only on letters 0..d, i.e. on the length-(d+1) prefix. Later
// passes re-read the whole word, so the usable boundaries stop at n-1
// deliveries regardless of pass count — and since the leader first hears
// the token back at delivery n, no verdict can fire before a boundary.
//
// A Backward token consumes the word right-to-left: its executions share
// *suffixes*, not prefixes, so it reports zero and runs cold.
//
//ring:deterministic
func (t *TokenRecognizer[S]) PrefixDeliveries(prefixLen, wordLen int) int {
	if t.spec.Dir != ring.Forward {
		return 0
	}
	if prefixLen > wordLen {
		prefixLen = wordLen
	}
	if prefixLen < 1 {
		return 0
	}
	return prefixLen - 1
}

var (
	_ ring.PrefixResumable = (*tokenPassNode[int])(nil)
	_ PrefixExtendable     = (*TokenRecognizer[int])(nil)
)

// prefixNS is one checkpoint namespace: checkpoints are only shared between
// runs of the same algorithm and language on the same schedule and ring
// size (node construction, link counts and stats shapes are all n-bound,
// and "known n" algorithms consult the ring size outright).
type prefixNS struct {
	algo     string
	language string
	schedule string
	n        int
}

// PrefixCache reuses shared-prefix computation across recognition runs: a
// bounded store of engine checkpoints keyed by word prefixes, consulted and
// refilled by core.Run (RunOptions.Prefix). One PrefixCache is safe for
// concurrent use and is meant to be shared — across a batch pool's workers,
// across a server's clients — so every run can extend every other run's
// prefixes. Build one with NewPrefixCache.
type PrefixCache struct {
	store *memo.PrefixStore[prefixNS, lang.Letter, *ring.Checkpoint]
}

// NewPrefixCache builds a prefix cache bounded to roughly maxBytes of
// retained checkpoint state (see ring.Checkpoint.Bytes), LRU-evicted across
// all namespaces.
func NewPrefixCache(maxBytes int64) *PrefixCache {
	return &PrefixCache{
		store: memo.NewPrefixStore[prefixNS, lang.Letter](maxBytes,
			func(cp *ring.Checkpoint) int64 { return cp.Bytes() }),
	}
}

// Stats returns the cache's hit/miss/partial-hit counters.
func (p *PrefixCache) Stats() memo.PrefixStats {
	return p.store.Stats()
}

// prefixCaptureBoundaries is the capture policy: checkpoint at these
// fractions of the word, deepest last. Fractional boundaries (not just the
// deepest) are what make *partially* shared corpora pay off — a word
// sharing half its letters with a stored word resumes from the n/2
// checkpoint; deepest-only storage would give it nothing.
var prefixCaptureBoundaries = [4]struct{ num, den int }{
	{1, 2}, {3, 4}, {7, 8}, {1, 1},
}

// run executes one recognition through the cache: resume from the deepest
// stored prefix of word (if any) and capture the boundaries the store does
// not have yet. handled is false when this run gains nothing from
// checkpointing — not a prefix-extendable recognizer, not a prefix-stable
// checkpoint engine, or a ring too small for any boundary — and the caller
// should fall back to the plain path. The steady-state path (deepest
// boundary already stored) allocates nothing beyond a cold RunWith.
//
//ring:hotpath guard=TestPrefixRunStaysOnColdAllocFloor
func (p *PrefixCache) run(rec PrefixExtendable, word lang.Word, ce ring.CheckpointEngine, st *ring.RunState, cfg ring.Config, nodes []ring.Node) (res *ring.Result, handled bool, err error) {
	n := len(word)
	if rec.PrefixDeliveries(n, n) < 1 {
		return nil, false, nil
	}
	ns := prefixNS{
		algo:     rec.Name(),
		language: rec.Language().Name(),
		schedule: ring.CanonicalScheduleName(ce.Name()),
		n:        n,
	}
	cp, foundDepth, _ := p.store.Lookup(ns, word, n)

	// Plan captures: the policy boundaries strictly deeper than what the
	// store already holds along this word (Lookup returned the deepest).
	// Depth (letters) and delivery counts are tracked side by side so the
	// capture callback can translate back without an inverse function.
	var capDeliveries, capDepths [len(prefixCaptureBoundaries)]int
	planned := 0
	for _, b := range prefixCaptureBoundaries {
		depth := n * b.num / b.den
		if depth <= foundDepth || depth < 2 {
			continue
		}
		// The full-word boundary rides cold runs only: a partial-hit resume
		// would pay a whole-ring capture to store a checkpoint the store
		// already holds all but the tail of, turning every shared-prefix
		// sibling's run into an O(n) copy. The words that boundary serves —
		// exact repeats — get it from their own first, cold run.
		if depth == n && foundDepth > 0 {
			continue
		}
		d := rec.PrefixDeliveries(depth, n)
		if d < 1 || (planned > 0 && capDeliveries[planned-1] >= d) {
			continue
		}
		capDeliveries[planned] = d
		capDepths[planned] = depth
		planned++
	}
	if cp == nil && planned == 0 {
		return nil, false, nil
	}

	run := ring.CheckpointRun{Resume: cp}
	if planned > 0 {
		//ringvet:ignore hotpathalloc -- capture planning runs at most once per distinct prefix; the steady-state resume path takes the planned == 0 branch
		run.CaptureAfter = append([]int(nil), capDeliveries[:planned]...)
		deliveries, depths := capDeliveries, capDepths
		//ringvet:ignore hotpathalloc -- same cold-capture path as above
		run.OnCapture = func(c *ring.Checkpoint) {
			for i := 0; i < planned; i++ {
				if deliveries[i] == c.Deliveries() {
					p.store.Insert(ns, word, depths[i], c)
					return
				}
			}
		}
	}
	res, err = ce.RunCheckpointed(st, cfg, nodes, run)
	return res, true, err
}

// prefixRun is Run's gate into the cache: it checks the engine and
// recognizer support checkpointing at all, and otherwise reports handled ==
// false so Run falls back to the plain path.
func prefixRun(p *PrefixCache, rec Recognizer, word lang.Word, engine ring.Engine, st *ring.RunState, cfg ring.Config, nodes []ring.Node) (*ring.Result, bool, error) {
	if cfg.RecordTrace {
		// A resumed run cannot reconstruct the prefix's trace events.
		return nil, false, nil
	}
	pe, ok := rec.(PrefixExtendable)
	if !ok {
		return nil, false, nil
	}
	ce, ok := engine.(ring.CheckpointEngine)
	if !ok || !ring.ScheduleIsPrefixStable(engine.Name()) {
		return nil, false, nil
	}
	return p.run(pe, word, ce, st, cfg, nodes)
}
