package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

func randomDigits(n int, rng *rand.Rand) lang.Word {
	w := make(lang.Word, n)
	for i := range w {
		w[i] = rune('0' + rng.Intn(10))
	}
	return w
}

func TestComputeAggregateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	kinds := []AggregateKind{AggregateMax, AggregateSum, AggregateCountNonZero}
	for _, kind := range kinds {
		for _, n := range []int{1, 2, 9, 50, 333} {
			word := randomDigits(n, rng)
			want, err := ReferenceAggregate(kind, word)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ComputeAggregate(kind, word, nil)
			if err != nil {
				t.Fatalf("%s n=%d: %v", kind, n, err)
			}
			if got.Value != want {
				t.Errorf("%s(%q) = %d, want %d", kind, word.String(), got.Value, want)
			}
			if got.Stats.Messages != n {
				t.Errorf("%s n=%d: messages = %d, want one pass", kind, n, got.Stats.Messages)
			}
		}
	}
}

func TestComputeAggregateOnAllEngines(t *testing.T) {
	word := lang.WordFromString("3141592653589793")
	engines := []ring.Engine{nil, ring.NewConcurrentEngine(), ring.NewRandomOrderEngine(5)}
	for _, engine := range engines {
		res, err := ComputeAggregate(AggregateSum, word, engine)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 3+1+4+1+5+9+2+6+5+3+5+8+9+7+9+3 {
			t.Errorf("sum = %d", res.Value)
		}
	}
}

func TestComputeAggregateBitComplexityIsNLogN(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{128, 512, 2048} {
		word := randomDigits(n, rng)
		res, err := ComputeAggregate(AggregateSum, word, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Sum ≤ 9n, so every message is O(log n) bits and the total is
		// O(n log n).
		upper := float64(n) * (3*math.Log2(float64(9*n)) + 4)
		if float64(res.Stats.Bits) > upper {
			t.Errorf("n=%d: %d bits exceeds the n·log(9n) envelope %.0f", n, res.Stats.Bits, upper)
		}
	}
}

func TestComputeAggregateValidation(t *testing.T) {
	if _, err := ComputeAggregate(AggregateMax, nil, nil); !errors.Is(err, ErrEmptyWord) {
		t.Errorf("err = %v, want ErrEmptyWord", err)
	}
	if _, err := ComputeAggregate(AggregateMax, lang.WordFromString("12a"), nil); !errors.Is(err, ErrNotADigit) {
		t.Errorf("err = %v, want ErrNotADigit", err)
	}
	if _, err := ReferenceAggregate(AggregateMax, lang.WordFromString("x")); !errors.Is(err, ErrNotADigit) {
		t.Errorf("reference err = %v, want ErrNotADigit", err)
	}
	if _, err := ReferenceAggregate(AggregateKind(99), lang.WordFromString("1")); err == nil {
		t.Error("expected error for unknown kind")
	}
	if AggregateMax.String() == "" || AggregateKind(99).String() != "unknown" {
		t.Error("AggregateKind.String misbehaves")
	}
}

func TestQuickAggregateSumMatchesReference(t *testing.T) {
	f := func(digits []uint8) bool {
		if len(digits) == 0 || len(digits) > 200 {
			return true
		}
		w := make(lang.Word, len(digits))
		for i, d := range digits {
			w[i] = rune('0' + int(d%10))
		}
		want, err := ReferenceAggregate(AggregateSum, w)
		if err != nil {
			return false
		}
		got, err := ComputeAggregate(AggregateSum, w, nil)
		return err == nil && got.Value == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
