package core

import (
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// TestNodeReuseMatchesFreshAcrossCatalog pins the rebuild contract for every
// catalog recognizer: a run on relabelled nodes is bit-identical to a run on
// freshly constructed ones — across consecutive different words of one
// length, and across a ring-size switch (which restocks the slot).
func TestNodeReuseMatchesFreshAcrossCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(0x40de5))
	for _, rec := range allRecognizers(t) {
		if _, ok := rec.(NodeRebuilder); !ok {
			t.Fatalf("%s: every catalog recognizer should support node rebuild", rec.Name())
		}
		reuse := NewNodeReuse()
		for trial := 0; trial < 6; trial++ {
			// Two sizes interleaved, so the slot restocks mid-sequence.
			n := 9 + 8*(trial%2)
			word := lang.RandomWord(rec.Language().Alphabet(), n, rng)
			fresh, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatalf("%s fresh trial %d: %v", rec.Name(), trial, err)
			}
			reused, err := Run(rec, word, RunOptions{Reuse: reuse})
			if err != nil {
				t.Fatalf("%s reused trial %d: %v", rec.Name(), trial, err)
			}
			mustEqualResults(t, rec.Name()+" node reuse", fresh, reused)
		}
	}
}

// TestNodeReuseRejectsForeignNodes pins the misuse errors: rebuilding onto
// another recognizer's ring, or onto the wrong length, must fail loudly
// rather than fold the wrong letters.
func TestNodeReuseRejectsForeignNodes(t *testing.T) {
	maj := NewMajority()
	word := lang.WordFromString("0110")
	nodes, err := maj.NewNodes(word)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := maj.RebuildNodes(lang.WordFromString("01101"), nodes); err == nil {
		t.Error("rebuild across lengths should fail")
	}
	other := NewThreeCounters()
	if _, err := other.RebuildNodes(lang.WordFromString("0011"), nodes); err == nil {
		t.Error("rebuild onto another recognizer's nodes should fail")
	}
	// A second majority instance is a different ring owner too: nodes keep a
	// pointer to the recognizer that built them.
	if _, err := NewMajority().RebuildNodes(word, nodes); err == nil {
		t.Error("rebuild onto another instance's nodes should fail")
	}
}

// TestNodeReuseStaysOnRebuildFloor is the allocation guard for the rebuild
// path (//ring:hotpath in nodes.go and token.go): with a warmed reuse slot
// and a reused run state, a steady-state run must allocate strictly less
// than the fresh-construction floor, because the two O(n) node allocations
// are gone.
func TestNodeReuseStaysOnRebuildFloor(t *testing.T) {
	rec := NewMajority()
	n := 2048
	rng := rand.New(rand.NewSource(7))
	word := lang.RandomWord(rec.Language().Alphabet(), n, rng)

	freshOpts := RunOptions{State: ring.NewRunStateSized(n), Presize: n}
	reusedOpts := RunOptions{State: ring.NewRunStateSized(n), Presize: n, Reuse: NewNodeReuse()}
	for _, opts := range []RunOptions{freshOpts, reusedOpts} {
		if _, err := Run(rec, word, opts); err != nil {
			t.Fatal(err)
		}
	}
	fresh := testing.AllocsPerRun(20, func() {
		if _, err := Run(rec, word, freshOpts); err != nil {
			t.Fatal(err)
		}
	})
	reused := testing.AllocsPerRun(20, func() {
		if _, err := Run(rec, word, reusedOpts); err != nil {
			t.Fatal(err)
		}
	})
	if reused >= fresh {
		t.Errorf("rebuild path allocates %.1f/op, fresh construction %.1f/op — reuse should be cheaper", reused, fresh)
	}
	if reused > 1 {
		t.Errorf("steady-state rebuild run allocates %.1f/op, want at most 1", reused)
	}
}
