package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// CollectAll is the trivial universal algorithm the paper uses as the O(n²)
// upper bound for every language: the message accumulates every letter seen
// so far; after one pass the leader holds the whole word and decides locally.
// Message i carries i letters of ⌈log |Σ|⌉ bits each plus a δ-coded length,
// so the total is Θ(n² log |Σ|) bits.
type CollectAll struct {
	*TokenRecognizer[[]lang.Letter]
	letterBits int
}

var _ Recognizer = (*CollectAll)(nil)

// NewCollectAll builds the collect-everything baseline for any language.
func NewCollectAll(language lang.Language) *CollectAll {
	alphabet := language.Alphabet()
	letterBits := bits.UintWidth(uint64(alphabet.Size() - 1))
	return &CollectAll{
		TokenRecognizer: mustTokenRecognizer(TokenAlgo[[]lang.Letter]{
			AlgoName: "collect-all",
			Language: language,
			Passes: []TokenPass[[]lang.Letter]{{
				Fold: func(letters []lang.Letter, letter lang.Letter) ([]lang.Letter, error) {
					return append(letters, letter), nil
				},
				Encode: func(w *bits.Writer, letters []lang.Letter) {
					w.WriteDeltaValue(uint64(len(letters)))
					for _, l := range letters {
						w.WriteUint(uint64(alphabet.Index(l)), letterBits)
					}
				},
				Decode: func(r *bits.Reader) ([]lang.Letter, error) {
					count, err := r.ReadDeltaValue()
					if err != nil {
						return nil, fmt.Errorf("decode count: %w", err)
					}
					letters := make([]lang.Letter, 0, count)
					for i := uint64(0); i < count; i++ {
						idx, err := r.ReadUint(letterBits)
						if err != nil {
							return nil, fmt.Errorf("decode letter %d: %w", i, err)
						}
						if int(idx) >= alphabet.Size() {
							return nil, fmt.Errorf("letter index %d out of range", idx)
						}
						letters = append(letters, alphabet[idx])
					}
					return letters, nil
				},
			}},
			// The accumulated letters are σ₁ … σ_n in ring order.
			Verdict: func(letters []lang.Letter) bool {
				return language.Contains(lang.Word(letters))
			},
		}),
		letterBits: letterBits,
	}
}
