package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// CollectAll is the trivial universal algorithm the paper uses as the O(n²)
// upper bound for every language: the message accumulates every letter seen
// so far; after one pass the leader holds the whole word and decides locally.
// Message i carries i letters of ⌈log |Σ|⌉ bits each plus a δ-coded length,
// so the total is Θ(n² log |Σ|) bits.
type CollectAll struct {
	language   lang.Language
	letterBits int
}

var _ Recognizer = (*CollectAll)(nil)

// NewCollectAll builds the collect-everything baseline for any language.
func NewCollectAll(language lang.Language) *CollectAll {
	return &CollectAll{
		language:   language,
		letterBits: bits.UintWidth(uint64(language.Alphabet().Size() - 1)),
	}
}

// Name implements Recognizer.
func (c *CollectAll) Name() string { return "collect-all" }

// Language implements Recognizer.
func (c *CollectAll) Language() lang.Language { return c.language }

// Mode implements Recognizer.
func (c *CollectAll) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (c *CollectAll) NewNodes(word lang.Word) ([]ring.Node, error) {
	alphabet := c.language.Alphabet()
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		if !alphabet.Contains(letter) {
			return nil, fmt.Errorf("collect-all: letter %q outside the alphabet", letter)
		}
		nodes[i] = &collectNode{algo: c, letter: letter, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// encodeLetters writes a δ-coded count followed by fixed-width letter
// indices.
func (c *CollectAll) encodeLetters(letters []lang.Letter) bits.String {
	var w bits.Writer
	w.WriteDeltaValue(uint64(len(letters)))
	alphabet := c.language.Alphabet()
	for _, l := range letters {
		w.WriteUint(uint64(alphabet.Index(l)), c.letterBits)
	}
	return w.String()
}

// decodeLetters reverses encodeLetters.
func (c *CollectAll) decodeLetters(payload bits.String) ([]lang.Letter, error) {
	r := bits.NewReader(payload)
	count, err := r.ReadDeltaValue()
	if err != nil {
		return nil, fmt.Errorf("collect-all: decode count: %w", err)
	}
	alphabet := c.language.Alphabet()
	letters := make([]lang.Letter, 0, count)
	for i := uint64(0); i < count; i++ {
		idx, err := r.ReadUint(c.letterBits)
		if err != nil {
			return nil, fmt.Errorf("collect-all: decode letter %d: %w", i, err)
		}
		if int(idx) >= alphabet.Size() {
			return nil, fmt.Errorf("collect-all: letter index %d out of range", idx)
		}
		letters = append(letters, alphabet[idx])
	}
	return letters, nil
}

// collectNode is the per-processor logic of the baseline.
type collectNode struct {
	algo   *CollectAll
	letter lang.Letter
	leader bool
}

// Start implements ring.Node.
func (n *collectNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	return []ring.Send{ring.SendForward(n.algo.encodeLetters([]lang.Letter{n.letter}))}, nil
}

// Receive implements ring.Node.
func (n *collectNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	letters, err := n.algo.decodeLetters(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		// The accumulated letters are σ₁ … σ_n in ring order.
		if n.algo.language.Contains(lang.Word(letters)) {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	letters = append(letters, n.letter)
	return []ring.Send{ring.SendForward(n.algo.encodeLetters(letters))}, nil
}
