package core

import (
	"context"
	"errors"
	"fmt"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// Recognizer is a distributed algorithm that decides membership of the ring's
// pattern in a fixed language. Implementations construct per-processor nodes;
// the engine does the running and the bit accounting.
type Recognizer interface {
	// Name identifies the algorithm (not the language) in reports.
	Name() string
	// Language is the language the recognizer decides.
	Language() lang.Language
	// Mode is the ring topology the algorithm needs.
	Mode() ring.Mode
	// NewNodes builds one node per processor for a ring labelled with word
	// (word[i] is processor i's letter; processor 0 is the leader).
	NewNodes(word lang.Word) ([]ring.Node, error)
}

// ErrEmptyWord is returned when a recognizer is run on an empty ring: the
// model always has at least one processor (the leader).
var ErrEmptyWord = errors.New("core: ring must hold at least one letter")

// RunOptions configures a single recognition run.
type RunOptions struct {
	// Engine to execute on; when nil, Schedule selects a built-in engine,
	// defaulting to the deterministic sequential one.
	Engine ring.Engine
	// Schedule names a built-in delivery schedule — one of
	// ring.ScheduleNames: "sequential", "random", "round-robin",
	// "adversarial", "concurrent", "sharded". Ignored when Engine is non-nil.
	Schedule string
	// Seed drives randomized schedules (Schedule == "random").
	Seed int64
	// RecordTrace enables trace recording for information-state analyses.
	RecordTrace bool
	// State, when non-nil, lets engines that support it (ring.StatefulEngine)
	// reuse the per-run allocations — stats, contexts, scheduler queues —
	// across runs. The returned Result then aliases State and is valid only
	// until State's next run; snapshot Stats with Clone to retain it. Engines
	// without state support (the concurrent engine) ignore it.
	State *ring.RunState
	// Presize, when positive, pre-reserves State's backing arrays for a ring
	// of that many processors before the run starts, so a large-ring run
	// proceeds without queue- or context-growth reallocations. When State is
	// nil and the engine supports reuse, a transient pre-sized state is
	// created for the run. Values smaller than the word length are harmless:
	// the run grows past them as usual.
	Presize int
	// Ctx, when non-nil, cancels the run: the engine aborts with an error
	// matching ring.ErrCanceled (and the context's own error) under
	// errors.Is. Cancellation is checked at amortized cost, so the hot path
	// is unaffected. A nil Ctx means the run cannot be canceled.
	Ctx context.Context
	// Prefix, when non-nil, reuses shared-prefix computation across runs: the
	// run resumes from the deepest checkpoint the cache holds for a prefix of
	// word and deposits checkpoints at the cache's capture boundaries for
	// later runs. Only engaged when the recognizer is PrefixExtendable, the
	// engine checkpoints (ring.CheckpointEngine) on a prefix-stable schedule
	// (ring.ScheduleIsPrefixStable), and RecordTrace is off; otherwise the
	// run proceeds cold exactly as without the cache. Results are bit-for-bit
	// identical either way.
	Prefix *PrefixCache
	// Reuse, when non-nil, reuses node construction across runs: when the
	// same recognizer runs on same-length words back to back and supports
	// in-place relabelling (NodeRebuilder — every token recognizer does),
	// the previous run's ring is relabelled instead of reallocated. Like
	// State, a NodeReuse belongs to one worker at a time.
	Reuse *NodeReuse
	// AllowFaults lets the run proceed when the engine's delivery guarantee
	// is weaker than the recognizer tolerates (see ErrDeliveryNotTolerated).
	// The run then executes faithfully under the faulty network and its
	// outcome — a verdict the language oracle may contradict, ErrNoVerdict,
	// ErrAlreadyDecided, an algorithm decode error — is the measurement.
	AllowFaults bool
}

// engine resolves the options to a concrete engine.
func (o RunOptions) engine() (ring.Engine, error) {
	if o.Engine != nil {
		return o.Engine, nil
	}
	if o.Schedule != "" {
		return ring.NewEngineByName(o.Schedule, o.Seed)
	}
	return ring.NewSequentialEngine(), nil
}

// Run executes the recognizer on a ring labelled with word and returns the
// engine result (verdict plus exact bit accounting).
//
//ring:coldpath -- per-run entry point; the delivery loops below carry their own //ring:hotpath roots
func Run(rec Recognizer, word lang.Word, opts RunOptions) (*ring.Result, error) {
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil, fmt.Errorf("core: %w: %w", ring.ErrCanceled, opts.Ctx.Err())
	}
	if len(word) == 0 {
		return nil, ErrEmptyWord
	}
	if err := rec.Language().Alphabet().ValidWord(word); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nodes, err := buildNodes(rec, word, opts.Reuse)
	if err != nil {
		return nil, fmt.Errorf("core: build nodes for %s: %w", rec.Name(), err)
	}
	if len(nodes) != len(word) {
		return nil, fmt.Errorf("core: %s built %d nodes for %d letters", rec.Name(), len(nodes), len(word))
	}
	engine, err := opts.engine()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if g := ring.EngineDeliveryGuarantee(engine); !opts.AllowFaults && !Tolerates(rec, g) {
		return nil, fmt.Errorf("%w: %s under %s delivery (engine %s); wrap the recognizer with WithDedup or set RunOptions.AllowFaults",
			ErrDeliveryNotTolerated, rec.Name(), g, engine.Name())
	}
	cfg := ring.Config{
		Mode:           rec.Mode(),
		Initiators:     ring.LeaderOnly,
		RecordTrace:    opts.RecordTrace,
		RequireVerdict: true,
		Ctx:            opts.Ctx,
	}
	var res *ring.Result
	if opts.Prefix != nil {
		st := opts.State
		if st != nil && opts.Presize > 0 {
			st.Reserve(opts.Presize)
		}
		if r, handled, perr := prefixRun(opts.Prefix, rec, word, engine, st, cfg, nodes); handled {
			if perr != nil {
				return nil, fmt.Errorf("core: run %s on %d letters: %w", rec.Name(), len(word), perr)
			}
			return r, nil
		}
	}
	if se, ok := engine.(ring.StatefulEngine); ok && (opts.State != nil || opts.Presize > 0) {
		st := opts.State
		if st == nil {
			st = ring.NewRunState()
		}
		if opts.Presize > 0 {
			st.Reserve(opts.Presize)
		}
		res, err = se.RunWith(st, cfg, nodes)
	} else {
		res, err = engine.Run(cfg, nodes)
	}
	if err != nil {
		return nil, fmt.Errorf("core: run %s on %d letters: %w", rec.Name(), len(word), err)
	}
	return res, nil
}

// Check runs the recognizer and verifies the verdict against the language's
// own membership predicate, returning the result on success.
func Check(rec Recognizer, word lang.Word, opts RunOptions) (*ring.Result, error) {
	res, err := Run(rec, word, opts)
	if err != nil {
		return nil, err
	}
	want := ring.VerdictReject
	if rec.Language().Contains(word) {
		want = ring.VerdictAccept
	}
	if res.Verdict != want {
		return nil, fmt.Errorf("core: %s decided %v on %q but the language says %v",
			rec.Name(), res.Verdict, word.String(), want)
	}
	return res, nil
}
