package core

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/election"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// The scenario across the whole recognizer catalog: election in front of
// every algorithm, verdict judged against the rotated word (the ring as the
// winner reads it), election overhead strictly positive and reported.
func TestElectThenRecognizeCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, rec := range allRecognizers(t) {
		language := rec.Language()
		n := 4 + rng.Intn(12)
		word, _, err := lang.MemberOrSkip(language, n, 8, rng)
		if err != nil {
			if nonMember, ok := language.GenerateNonMember(n, rng); ok {
				word = nonMember
			} else {
				t.Fatalf("%s: no test word near n=%d", rec.Name(), n)
			}
		}
		res, err := ElectThenRecognize(election.HirschbergSinclair, rec, word, nil, RunOptions{Seed: 5})
		if err != nil {
			t.Fatalf("%s on %q: %v", rec.Name(), word.String(), err)
		}
		if res.Election.Protocol != "hirschberg-sinclair" {
			t.Errorf("%s: election protocol reported as %q", rec.Name(), res.Election.Protocol)
		}
		if res.Election.Bits <= 0 || res.Election.Messages <= 0 {
			t.Errorf("%s: election overhead %d bits/%d msgs; the leader is not free",
				rec.Name(), res.Election.Bits, res.Election.Messages)
		}
		w := res.Election.WinnerIndex
		if w < 0 || w >= len(word) {
			t.Fatalf("%s: winner index %d out of range", rec.Name(), w)
		}
		for i := range word {
			if res.Rotated[i] != word[(w+i)%len(word)] {
				t.Fatalf("%s: Rotated is not the rotation of %q by %d: %q", rec.Name(), word.String(), w, res.Rotated.String())
			}
		}
		want := ring.VerdictReject
		if language.Contains(res.Rotated) {
			want = ring.VerdictAccept
		}
		if res.Recognition.Verdict != want {
			t.Errorf("%s on rotated %q: decided %v, language says %v",
				rec.Name(), res.Rotated.String(), res.Recognition.Verdict, want)
		}
	}
}

// Under at-least-once delivery the scenario hardens both phases with the
// alternating-bit dedup layer instead of refusing: the verdict still matches
// the oracle, and the composition is deterministic per seed.
func TestElectThenRecognizeUnderFaultSchedules(t *testing.T) {
	rec := NewThreeCounters()
	word := lang.WordFromString("012012")
	for _, schedule := range []string{"lossy", "duplicating", "crash-restart"} {
		for seed := int64(1); seed <= 3; seed++ {
			run := func() *ScenarioResult {
				res, err := ElectThenRecognize(election.ChangRoberts, rec, word, nil,
					RunOptions{Schedule: schedule, Seed: seed})
				if err != nil {
					t.Fatalf("%s seed %d: %v", schedule, seed, err)
				}
				return res
			}
			a, b := run(), run()
			want := ring.VerdictReject
			if rec.Language().Contains(a.Rotated) {
				want = ring.VerdictAccept
			}
			if a.Recognition.Verdict != want {
				t.Errorf("%s seed %d: decided %v on rotated %q, language says %v",
					schedule, seed, a.Recognition.Verdict, a.Rotated.String(), want)
			}
			if a.Election.WinnerIndex != b.Election.WinnerIndex ||
				a.Election.Bits != b.Election.Bits ||
				a.Recognition.Stats.Bits != b.Recognition.Stats.Bits {
				t.Errorf("%s seed %d: two runs disagree (winner %d/%d, election bits %d/%d, recognition bits %d/%d)",
					schedule, seed, a.Election.WinnerIndex, b.Election.WinnerIndex,
					a.Election.Bits, b.Election.Bits, a.Recognition.Stats.Bits, b.Recognition.Stats.Bits)
			}
		}
	}
}

func TestElectThenRecognizeValidation(t *testing.T) {
	rec := NewMajority()
	if _, err := ElectThenRecognize(election.ChangRoberts, rec, nil, nil, RunOptions{}); !errors.Is(err, ErrEmptyWord) {
		t.Errorf("empty word: got %v, want ErrEmptyWord", err)
	}
	word := lang.WordFromString("0110")
	if _, err := ElectThenRecognize(election.ChangRoberts, rec, word, []uint64{1, 2}, RunOptions{}); err == nil {
		t.Error("mismatched ids length must fail")
	}
	// Explicit ids pin the winner: descending ids put the maximum at index 0.
	res, err := ElectThenRecognize(election.ChangRoberts, rec, word, election.DescendingIDs(len(word)), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Election.WinnerIndex != 0 {
		t.Errorf("descending ids elected index %d, want 0", res.Election.WinnerIndex)
	}
	if res.Rotated.String() != word.String() {
		t.Errorf("rotation by 0 changed the word: %q", res.Rotated.String())
	}
}
