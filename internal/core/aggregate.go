package core

import (
	"errors"
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// The paper frames its algorithms as "computing a function or recognizing a
// language" over the ring's pattern. This file provides the
// function-computation side for the classic aggregates: the leader learns
// max, sum, or a letter count of the digit values held by the processors in
// one pass whose messages carry a δ-coded running aggregate — O(n log V)
// bits, the same counting structure as Section 8's example.

// AggregateKind selects the function computed over the ring.
type AggregateKind int

const (
	// AggregateMax computes the maximum digit value on the ring.
	AggregateMax AggregateKind = iota + 1
	// AggregateSum computes the sum of the digit values.
	AggregateSum
	// AggregateCountNonZero counts the processors holding a non-zero digit.
	AggregateCountNonZero
)

// String implements fmt.Stringer.
func (k AggregateKind) String() string {
	switch k {
	case AggregateMax:
		return "max"
	case AggregateSum:
		return "sum"
	case AggregateCountNonZero:
		return "count-nonzero"
	default:
		return "unknown"
	}
}

// ErrNotADigit is returned when an aggregate run is given a non-digit letter.
var ErrNotADigit = errors.New("core: aggregate inputs must be decimal digits")

// AggregateResult is the outcome of one aggregate computation.
type AggregateResult struct {
	// Kind is the function computed.
	Kind AggregateKind
	// Value is the function value the leader learned.
	Value uint64
	// Stats is the engine's exact accounting for the run.
	Stats *ring.Stats
}

// ComputeAggregate runs the single-pass aggregate algorithm on a ring whose
// processors hold the decimal digits of word ('0'..'9'). A nil engine runs on
// the deterministic sequential engine.
func ComputeAggregate(kind AggregateKind, word lang.Word, engine ring.Engine) (*AggregateResult, error) {
	if len(word) == 0 {
		return nil, ErrEmptyWord
	}
	values := make([]uint64, len(word))
	for i, letter := range word {
		if letter < '0' || letter > '9' {
			return nil, fmt.Errorf("%w: %q at position %d", ErrNotADigit, letter, i)
		}
		values[i] = uint64(letter - '0')
	}
	nodes := make([]ring.Node, len(word))
	leader := &aggregateNode{kind: kind, value: values[0], leader: true}
	nodes[0] = leader
	for i := 1; i < len(word); i++ {
		nodes[i] = &aggregateNode{kind: kind, value: values[i]}
	}
	if engine == nil {
		engine = ring.NewSequentialEngine()
	}
	res, err := engine.Run(ring.Config{Mode: ring.Unidirectional, RequireVerdict: true}, nodes)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate %s: %w", kind, err)
	}
	return &AggregateResult{Kind: kind, Value: leader.result, Stats: res.Stats}, nil
}

// ReferenceAggregate computes the same function locally; tests and callers
// use it to validate the distributed result.
func ReferenceAggregate(kind AggregateKind, word lang.Word) (uint64, error) {
	var out uint64
	for i, letter := range word {
		if letter < '0' || letter > '9' {
			return 0, fmt.Errorf("%w: %q at position %d", ErrNotADigit, letter, i)
		}
		v := uint64(letter - '0')
		switch kind {
		case AggregateMax:
			if v > out {
				out = v
			}
		case AggregateSum:
			out += v
		case AggregateCountNonZero:
			if v != 0 {
				out++
			}
		default:
			return 0, fmt.Errorf("core: unknown aggregate kind %d", kind)
		}
	}
	return out, nil
}

// aggregateNode carries the running aggregate around the ring.
type aggregateNode struct {
	kind   AggregateKind
	value  uint64
	leader bool
	result uint64
}

// fold combines the running aggregate with this processor's value.
func (n *aggregateNode) fold(acc uint64) uint64 {
	switch n.kind {
	case AggregateMax:
		if n.value > acc {
			return n.value
		}
		return acc
	case AggregateSum:
		return acc + n.value
	case AggregateCountNonZero:
		if n.value != 0 {
			return acc + 1
		}
		return acc
	default:
		return acc
	}
}

// initial is the aggregate of the empty prefix.
func (n *aggregateNode) initial() uint64 {
	return 0
}

// Start implements ring.Node.
func (n *aggregateNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	var w bits.Writer
	w.WriteDeltaValue(n.fold(n.initial()))
	return []ring.Send{ring.SendForward(w.String())}, nil
}

// Receive implements ring.Node.
func (n *aggregateNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	acc, err := bits.NewReader(payload).ReadDeltaValue()
	if err != nil {
		return nil, fmt.Errorf("aggregate: decode accumulator: %w", err)
	}
	if ctx.IsLeader() {
		n.result = acc
		return nil, ctx.Accept()
	}
	var w bits.Writer
	w.WriteDeltaValue(n.fold(acc))
	return []ring.Send{ring.SendForward(w.String())}, nil
}
