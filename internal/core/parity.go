package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// The two recognizers in this file reproduce Section 7 note 5: the regular
// language over Σ = {σ₀,…,σ_{2ᵏ−1}} whose members are the words in which
// σ_{|w| mod (2ᵏ−1)} occurs an even number of times.
//
//   - ParityTwoPass uses two passes: the first computes |w| mod (2ᵏ−1) with k
//     bits per message, the second carries that index plus a single parity
//     bit, for (2k+1)·n bits in total.
//   - ParityOnePass does everything in one pass but must track the parity of
//     every candidate letter concurrently, for (k + 2ᵏ−1)·n bits.
//
// The crossover between the two is the paper's bits-versus-passes trade-off.

// parityCheckLetter validates membership in the 2ᵏ-letter alphabet.
func parityCheckLetter(language *lang.ParityIndex) func(lang.Letter) error {
	return func(letter lang.Letter) error {
		if language.LetterIndex(letter) < 0 {
			return fmt.Errorf("letter %q outside the alphabet", letter)
		}
		return nil
	}
}

// parityTwoPassState is the union of the two passes' wire states: pass 1 uses
// only count; pass 2 uses target and parity.
type parityTwoPassState struct {
	count  uint64
	target uint64
	parity bool
}

// ParityTwoPass is the (2k+1)·n-bit, two-pass recognizer.
type ParityTwoPass struct {
	*TokenRecognizer[parityTwoPassState]
}

var _ Recognizer = (*ParityTwoPass)(nil)

// NewParityTwoPass builds the two-pass recognizer.
func NewParityTwoPass(language *lang.ParityIndex) *ParityTwoPass {
	k := language.K()
	mod := uint64(language.Modulus())
	return &ParityTwoPass{TokenRecognizer: mustTokenRecognizer(TokenAlgo[parityTwoPassState]{
		AlgoName:    "parity-two-pass",
		Language:    language,
		CheckLetter: parityCheckLetter(language),
		Passes: []TokenPass[parityTwoPassState]{
			{
				// Pass 1 counts the ring length mod 2ᵏ−1 in k bits per message.
				Fold: func(s parityTwoPassState, _ lang.Letter) (parityTwoPassState, error) {
					s.count = (s.count + 1) % mod
					return s, nil
				},
				Encode: func(w *bits.Writer, s parityTwoPassState) {
					w.WriteUint(s.count, k)
				},
				Decode: func(r *bits.Reader) (parityTwoPassState, error) {
					var s parityTwoPassState
					var err error
					if s.count, err = r.ReadUint(k); err != nil {
						return s, fmt.Errorf("decode counter: %w", err)
					}
					return s, nil
				},
			},
			{
				// Pass 2 carries the now-known target index n mod (2ᵏ−1) plus
				// the running parity of that letter's occurrences.
				Begin: func(prev parityTwoPassState, _ int) (parityTwoPassState, error) {
					return parityTwoPassState{target: prev.count}, nil
				},
				Fold: func(s parityTwoPassState, letter lang.Letter) (parityTwoPassState, error) {
					if language.LetterIndex(letter) == int(s.target) {
						s.parity = !s.parity
					}
					return s, nil
				},
				Encode: func(w *bits.Writer, s parityTwoPassState) {
					w.WriteUint(s.target, k)
					w.WriteBool(s.parity)
				},
				Decode: func(r *bits.Reader) (parityTwoPassState, error) {
					var s parityTwoPassState
					var err error
					if s.target, err = r.ReadUint(k); err != nil {
						return s, fmt.Errorf("decode target: %w", err)
					}
					if s.parity, err = r.ReadBool(); err != nil {
						return s, fmt.Errorf("decode parity: %w", err)
					}
					return s, nil
				},
			},
		},
		Verdict: func(s parityTwoPassState) bool { return !s.parity },
	})}
}

// parityOnePassState is the one-pass token state: the length counter mod
// 2ᵏ−1 plus one parity bit for each of the 2ᵏ−1 candidate target letters
// (σ_{2ᵏ−1} can never be the target because the modulus is 2ᵏ−1).
type parityOnePassState struct {
	count    uint64
	parities []bool
}

// ParityOnePass is the (k + 2ᵏ−1)·n-bit, single-pass recognizer.
type ParityOnePass struct {
	*TokenRecognizer[parityOnePassState]
}

var _ Recognizer = (*ParityOnePass)(nil)

// NewParityOnePass builds the one-pass recognizer.
func NewParityOnePass(language *lang.ParityIndex) *ParityOnePass {
	k := language.K()
	mod := uint64(language.Modulus())
	return &ParityOnePass{TokenRecognizer: mustTokenRecognizer(TokenAlgo[parityOnePassState]{
		AlgoName:    "parity-one-pass",
		Language:    language,
		CheckLetter: parityCheckLetter(language),
		Passes: []TokenPass[parityOnePassState]{{
			Begin: func(parityOnePassState, int) (parityOnePassState, error) {
				return parityOnePassState{parities: make([]bool, mod)}, nil
			},
			Fold: func(s parityOnePassState, letter lang.Letter) (parityOnePassState, error) {
				s.count = (s.count + 1) % mod
				if idx := language.LetterIndex(letter); idx < len(s.parities) {
					s.parities[idx] = !s.parities[idx]
				}
				return s, nil
			},
			Encode: func(w *bits.Writer, s parityOnePassState) {
				w.WriteUint(s.count, k)
				for _, b := range s.parities {
					w.WriteBool(b)
				}
			},
			Decode: func(r *bits.Reader) (parityOnePassState, error) {
				var s parityOnePassState
				var err error
				if s.count, err = r.ReadUint(k); err != nil {
					return s, fmt.Errorf("decode counter: %w", err)
				}
				s.parities = make([]bool, mod)
				for i := range s.parities {
					if s.parities[i], err = r.ReadBool(); err != nil {
						return s, fmt.Errorf("decode parity %d: %w", i, err)
					}
				}
				return s, nil
			},
		}},
		// count == n mod (2ᵏ−1); every processor (the leader included) has
		// folded in its letter's parity.
		Verdict: func(s parityOnePassState) bool { return !s.parities[s.count] },
	})}
}
