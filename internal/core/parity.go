package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// The two recognizers in this file reproduce Section 7 note 5: the regular
// language over Σ = {σ₀,…,σ_{2ᵏ−1}} whose members are the words in which
// σ_{|w| mod (2ᵏ−1)} occurs an even number of times.
//
//   - ParityTwoPass uses two passes: the first computes |w| mod (2ᵏ−1) with k
//     bits per message, the second carries that index plus a single parity
//     bit, for (2k+1)·n bits in total.
//   - ParityOnePass does everything in one pass but must track the parity of
//     every candidate letter concurrently, for (k + 2ᵏ−1)·n bits.
//
// The crossover between the two is the paper's bits-versus-passes trade-off.

// ParityTwoPass is the (2k+1)·n-bit, two-pass recognizer.
type ParityTwoPass struct {
	language *lang.ParityIndex
}

var _ Recognizer = (*ParityTwoPass)(nil)

// NewParityTwoPass builds the two-pass recognizer.
func NewParityTwoPass(language *lang.ParityIndex) *ParityTwoPass {
	return &ParityTwoPass{language: language}
}

// Name implements Recognizer.
func (p *ParityTwoPass) Name() string { return "parity-two-pass" }

// Language implements Recognizer.
func (p *ParityTwoPass) Language() lang.Language { return p.language }

// Mode implements Recognizer.
func (p *ParityTwoPass) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (p *ParityTwoPass) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		idx := p.language.LetterIndex(letter)
		if idx < 0 {
			return nil, fmt.Errorf("parity-two-pass: letter %q outside the alphabet", letter)
		}
		nodes[i] = &parityTwoPassNode{algo: p, letterIdx: idx, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// parityTwoPassNode is the per-processor logic of the two-pass algorithm.
type parityTwoPassNode struct {
	algo      *ParityTwoPass
	letterIdx int
	leader    bool
	pass      int
}

// kBits returns k, the width of the modular counter.
func (p *ParityTwoPass) kBits() int { return p.language.K() }

// Start implements ring.Node: pass 1 counts the ring length mod 2ᵏ−1,
// starting from the leader's own contribution of 1.
func (n *parityTwoPassNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	var w bits.Writer
	w.WriteUint(1%uint64(n.algo.language.Modulus()), n.algo.kBits())
	return []ring.Send{ring.SendForward(w.String())}, nil
}

// Receive implements ring.Node.
func (n *parityTwoPassNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	n.pass++
	k := n.algo.kBits()
	mod := uint64(n.algo.language.Modulus())
	r := bits.NewReader(payload)
	if n.pass == 1 {
		count, err := r.ReadUint(k)
		if err != nil {
			return nil, fmt.Errorf("parity-two-pass: decode counter: %w", err)
		}
		if ctx.IsLeader() {
			// count == n mod (2ᵏ−1); start pass 2 with the leader's parity
			// contribution folded in.
			target := count
			parity := n.letterIdx == int(target)
			var w bits.Writer
			w.WriteUint(target, k)
			w.WriteBool(parity)
			return []ring.Send{ring.SendForward(w.String())}, nil
		}
		var w bits.Writer
		w.WriteUint((count+1)%mod, k)
		return []ring.Send{ring.SendForward(w.String())}, nil
	}

	target, err := r.ReadUint(k)
	if err != nil {
		return nil, fmt.Errorf("parity-two-pass: decode target: %w", err)
	}
	parity, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("parity-two-pass: decode parity: %w", err)
	}
	if ctx.IsLeader() {
		if !parity {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	if n.letterIdx == int(target) {
		parity = !parity
	}
	var w bits.Writer
	w.WriteUint(target, k)
	w.WriteBool(parity)
	return []ring.Send{ring.SendForward(w.String())}, nil
}

// ParityOnePass is the (k + 2ᵏ−1)·n-bit, single-pass recognizer.
type ParityOnePass struct {
	language *lang.ParityIndex
}

var _ Recognizer = (*ParityOnePass)(nil)

// NewParityOnePass builds the one-pass recognizer.
func NewParityOnePass(language *lang.ParityIndex) *ParityOnePass {
	return &ParityOnePass{language: language}
}

// Name implements Recognizer.
func (p *ParityOnePass) Name() string { return "parity-one-pass" }

// Language implements Recognizer.
func (p *ParityOnePass) Language() lang.Language { return p.language }

// Mode implements Recognizer.
func (p *ParityOnePass) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (p *ParityOnePass) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		idx := p.language.LetterIndex(letter)
		if idx < 0 {
			return nil, fmt.Errorf("parity-one-pass: letter %q outside the alphabet", letter)
		}
		nodes[i] = &parityOnePassNode{algo: p, letterIdx: idx, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// parityOnePassState is the decoded one-pass message: the length counter mod
// 2ᵏ−1 plus one parity bit for each of the 2ᵏ−1 candidate target letters
// (σ_{2ᵏ−1} can never be the target because the modulus is 2ᵏ−1).
type parityOnePassState struct {
	count    uint64
	parities []bool
}

func (p *ParityOnePass) encode(s parityOnePassState) bits.String {
	var w bits.Writer
	w.WriteUint(s.count, p.language.K())
	for _, b := range s.parities {
		w.WriteBool(b)
	}
	return w.String()
}

func (p *ParityOnePass) decode(payload bits.String) (parityOnePassState, error) {
	r := bits.NewReader(payload)
	var s parityOnePassState
	var err error
	if s.count, err = r.ReadUint(p.language.K()); err != nil {
		return s, fmt.Errorf("parity-one-pass: decode counter: %w", err)
	}
	s.parities = make([]bool, p.language.Modulus())
	for i := range s.parities {
		if s.parities[i], err = r.ReadBool(); err != nil {
			return s, fmt.Errorf("parity-one-pass: decode parity %d: %w", i, err)
		}
	}
	return s, nil
}

// apply folds one processor's letter into the state.
func (p *ParityOnePass) apply(s parityOnePassState, letterIdx int) parityOnePassState {
	out := parityOnePassState{
		count:    (s.count + 1) % uint64(p.language.Modulus()),
		parities: append([]bool(nil), s.parities...),
	}
	if letterIdx < len(out.parities) {
		out.parities[letterIdx] = !out.parities[letterIdx]
	}
	return out
}

// parityOnePassNode is the per-processor logic of the one-pass algorithm.
type parityOnePassNode struct {
	algo      *ParityOnePass
	letterIdx int
	leader    bool
}

// Start implements ring.Node.
func (n *parityOnePassNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	initial := parityOnePassState{count: 0, parities: make([]bool, n.algo.language.Modulus())}
	return []ring.Send{ring.SendForward(n.algo.encode(n.algo.apply(initial, n.letterIdx)))}, nil
}

// Receive implements ring.Node.
func (n *parityOnePassNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	s, err := n.algo.decode(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		// count == n mod (2ᵏ−1); every processor (the leader included) has
		// folded in its letter's parity.
		target := int(s.count)
		if !s.parities[target] {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	return []ring.Send{ring.SendForward(n.algo.encode(n.algo.apply(s, n.letterIdx)))}, nil
}
