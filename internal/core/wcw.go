package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// CompareWcW recognizes the linear language {w c w : w ∈ {a,b}*} from
// Section 7 note 1. The single pass carries the queue of first-half letters
// still waiting to be matched: before the centre 'c' the queue grows by one
// letter per processor, after the 'c' each processor pops the front letter
// and compares it with its own. The message therefore peaks at |w| ≈ n/2
// letters, and the total is Θ(n²) bits — the paper's lower bound for this
// language, met with a ~4× smaller constant than the collect-all baseline.
type CompareWcW struct {
	*TokenRecognizer[wcwState]
}

var _ Recognizer = (*CompareWcW)(nil)

// wcwPhase is the phase field of the streaming comparison message.
type wcwPhase uint64

const (
	wcwBeforeCentre wcwPhase = 0
	wcwAfterCentre  wcwPhase = 1
	wcwFailed       wcwPhase = 2
)

// wcwState is the token state: the phase plus the queue of letters of the
// first half that have not yet been matched (front first).
type wcwState struct {
	phase wcwPhase
	queue []lang.Letter
}

// NewCompareWcW builds the streaming comparison recognizer for {wcw}.
func NewCompareWcW() *CompareWcW {
	return &CompareWcW{TokenRecognizer: mustTokenRecognizer(TokenAlgo[wcwState]{
		AlgoName: "compare-wcw",
		Language: lang.NewWcW(),
		CheckLetter: func(letter lang.Letter) error {
			if letter != 'a' && letter != 'b' && letter != 'c' {
				return fmt.Errorf("letter %q outside {a,b,c}", letter)
			}
			return nil
		},
		Passes: []TokenPass[wcwState]{{
			Fold: func(s wcwState, letter lang.Letter) (wcwState, error) {
				switch s.phase {
				case wcwFailed:
					// Keep relaying the failure; drop the queue so failure
					// messages are cheap.
					s.queue = nil
				case wcwBeforeCentre:
					if letter == 'c' {
						s.phase = wcwAfterCentre
					} else {
						s.queue = append(s.queue, letter)
					}
				case wcwAfterCentre:
					if letter == 'c' || len(s.queue) == 0 || s.queue[0] != letter {
						s.phase = wcwFailed
						s.queue = nil
					} else {
						s.queue = s.queue[1:]
					}
				}
				return s, nil
			},
			Encode: func(w *bits.Writer, s wcwState) {
				w.WriteUint(uint64(s.phase), 2)
				w.WriteDeltaValue(uint64(len(s.queue)))
				for _, l := range s.queue {
					w.WriteBool(l == 'b')
				}
			},
			Decode: func(r *bits.Reader) (wcwState, error) {
				var s wcwState
				phase, err := r.ReadUint(2)
				if err != nil {
					return s, fmt.Errorf("decode phase: %w", err)
				}
				s.phase = wcwPhase(phase)
				count, err := r.ReadDeltaValue()
				if err != nil {
					return s, fmt.Errorf("decode queue length: %w", err)
				}
				s.queue = make([]lang.Letter, 0, count)
				for i := uint64(0); i < count; i++ {
					isB, err := r.ReadBool()
					if err != nil {
						return s, fmt.Errorf("decode queue letter %d: %w", i, err)
					}
					if isB {
						s.queue = append(s.queue, 'b')
					} else {
						s.queue = append(s.queue, 'a')
					}
				}
				return s, nil
			},
		}},
		// Accept iff the centre was seen, nothing is left to match and no
		// mismatch occurred.
		Verdict: func(s wcwState) bool {
			return s.phase == wcwAfterCentre && len(s.queue) == 0
		},
	})}
}
