package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// CompareWcW recognizes the linear language {w c w : w ∈ {a,b}*} from
// Section 7 note 1. The single pass carries the queue of first-half letters
// still waiting to be matched: before the centre 'c' the queue grows by one
// letter per processor, after the 'c' each processor pops the front letter
// and compares it with its own. The message therefore peaks at |w| ≈ n/2
// letters, and the total is Θ(n²) bits — the paper's lower bound for this
// language, met with a ~4× smaller constant than the collect-all baseline.
type CompareWcW struct {
	language *lang.WcW
}

var _ Recognizer = (*CompareWcW)(nil)

// NewCompareWcW builds the streaming comparison recognizer for {wcw}.
func NewCompareWcW() *CompareWcW {
	return &CompareWcW{language: lang.NewWcW()}
}

// Name implements Recognizer.
func (c *CompareWcW) Name() string { return "compare-wcw" }

// Language implements Recognizer.
func (c *CompareWcW) Language() lang.Language { return c.language }

// Mode implements Recognizer.
func (c *CompareWcW) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (c *CompareWcW) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i, letter := range word {
		if letter != 'a' && letter != 'b' && letter != 'c' {
			return nil, fmt.Errorf("compare-wcw: letter %q outside {a,b,c}", letter)
		}
		nodes[i] = &wcwNode{letter: letter, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// wcwPhase is the phase field of the streaming comparison message.
type wcwPhase uint64

const (
	wcwBeforeCentre wcwPhase = 0
	wcwAfterCentre  wcwPhase = 1
	wcwFailed       wcwPhase = 2
)

// wcwState is the decoded message: the phase plus the queue of letters of the
// first half that have not yet been matched (front first).
type wcwState struct {
	phase wcwPhase
	queue []lang.Letter
}

func encodeWcW(s wcwState) bits.String {
	var w bits.Writer
	w.WriteUint(uint64(s.phase), 2)
	w.WriteDeltaValue(uint64(len(s.queue)))
	for _, l := range s.queue {
		w.WriteBool(l == 'b')
	}
	return w.String()
}

func decodeWcW(payload bits.String) (wcwState, error) {
	r := bits.NewReader(payload)
	var s wcwState
	phase, err := r.ReadUint(2)
	if err != nil {
		return s, fmt.Errorf("compare-wcw: decode phase: %w", err)
	}
	s.phase = wcwPhase(phase)
	count, err := r.ReadDeltaValue()
	if err != nil {
		return s, fmt.Errorf("compare-wcw: decode queue length: %w", err)
	}
	s.queue = make([]lang.Letter, 0, count)
	for i := uint64(0); i < count; i++ {
		isB, err := r.ReadBool()
		if err != nil {
			return s, fmt.Errorf("compare-wcw: decode queue letter %d: %w", i, err)
		}
		if isB {
			s.queue = append(s.queue, 'b')
		} else {
			s.queue = append(s.queue, 'a')
		}
	}
	return s, nil
}

// apply folds one processor's letter into the state.
func (s wcwState) apply(letter lang.Letter) wcwState {
	out := wcwState{phase: s.phase, queue: append([]lang.Letter(nil), s.queue...)}
	switch s.phase {
	case wcwFailed:
		// Keep relaying the failure; drop the queue so failure messages are
		// cheap.
		out.queue = nil
	case wcwBeforeCentre:
		if letter == 'c' {
			out.phase = wcwAfterCentre
		} else {
			out.queue = append(out.queue, letter)
		}
	case wcwAfterCentre:
		if letter == 'c' || len(out.queue) == 0 || out.queue[0] != letter {
			out.phase = wcwFailed
			out.queue = nil
		} else {
			out.queue = out.queue[1:]
		}
	}
	return out
}

// wcwNode is the per-processor logic.
type wcwNode struct {
	letter lang.Letter
	leader bool
}

// Start implements ring.Node: the leader folds in its own letter σ₁ first.
func (n *wcwNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	initial := wcwState{phase: wcwBeforeCentre}
	return []ring.Send{ring.SendForward(encodeWcW(initial.apply(n.letter)))}, nil
}

// Receive implements ring.Node.
func (n *wcwNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	s, err := decodeWcW(payload)
	if err != nil {
		return nil, err
	}
	if ctx.IsLeader() {
		// Accept iff the centre was seen, nothing is left to match and no
		// mismatch occurred.
		if s.phase == wcwAfterCentre && len(s.queue) == 0 {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	return []ring.Send{ring.SendForward(encodeWcW(s.apply(n.letter)))}, nil
}
