package core

// The schedule-independence property, stated over the full schedule axis: for
// every paper algorithm, the verdict AND the exact bit/message totals must be
// identical under FIFO, five random-order seeds, round-robin, the
// bounded-delay adversary and the concurrent engine — on a member word and on
// a non-member word. No algorithm in this repository is legitimately
// schedule-sensitive: recognition is leader-initiated with a single token (or
// a fixed pass structure) in flight, so every legal delivery order serializes
// to the same computation. An algorithm that fails here is relying on global
// FIFO delivery, which the asynchronous model does not grant.

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// scheduleAxis is the full set of delivery schedules the property is checked
// under: every built-in engine, with five seeds for the randomized one.
func scheduleAxis(t *testing.T) []ring.Engine {
	t.Helper()
	engines := []ring.Engine{
		ring.NewSequentialEngine(),
		ring.NewRoundRobinEngine(),
		ring.NewAdversarialEngine(ring.DefaultAdversarialBound),
		ring.NewAdversarialEngine(2),
		ring.NewConcurrentEngine(),
	}
	for seed := int64(1); seed <= 5; seed++ {
		engines = append(engines, ring.NewRandomOrderEngine(seed))
	}
	// The sharded engine with forced worker counts: the automatic sizing
	// would fall back to the serial loop on property-sized rings, and the
	// bit-identity claim is about the genuinely parallel path.
	for _, workers := range []int{2, 3, 8} {
		engines = append(engines, ring.NewShardedEngineWorkers(workers))
	}
	// Every named schedule joins the axis by classification, not by name:
	// exactly-once delivery is precisely the guarantee under which the
	// bit-identity property is stated. Fault schedules that only delay or
	// retransmit (lossy, crash-restart) are therefore swept here too;
	// at-least-once and crash-prone delivery have their own property test
	// (fault_property_test.go), because bit-identity is not promised there.
	for _, name := range ring.ScheduleNames() {
		eng, err := ring.NewEngineByName(name, 17)
		if err != nil {
			t.Fatalf("schedule %q from ScheduleNames does not resolve: %v", name, err)
		}
		if ring.ScheduleDeliveryGuarantee(name) != ring.ExactlyOnce {
			continue
		}
		engines = append(engines, eng)
	}
	return engines
}

func TestPropertyFullScheduleAxisAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	engines := scheduleAxis(t)
	for _, rec := range allRecognizers(t) {
		language := rec.Language()
		n := 5 + rng.Intn(24)
		words := make([]lang.Word, 0, 2)
		if member, _, err := lang.MemberOrSkip(language, n, 8, rng); err == nil {
			words = append(words, member)
		}
		if nonMember, ok := language.GenerateNonMember(n, rng); ok {
			words = append(words, nonMember)
		}
		if len(words) == 0 {
			t.Fatalf("%s: no test words near n=%d", rec.Name(), n)
		}
		for _, word := range words {
			var firstBits, firstMessages int
			var firstVerdict ring.Verdict
			for i, engine := range engines {
				res, err := Run(rec, word, RunOptions{Engine: engine})
				if err != nil {
					t.Fatalf("%s under %s on %q: %v", rec.Name(), engine.Name(), word.String(), err)
				}
				if i == 0 {
					firstBits, firstMessages, firstVerdict = res.Stats.Bits, res.Stats.Messages, res.Verdict
					continue
				}
				if res.Verdict != firstVerdict {
					t.Errorf("%s on %q: %s verdict %v, %s verdict %v",
						rec.Name(), word.String(), engines[0].Name(), firstVerdict, engine.Name(), res.Verdict)
				}
				if res.Stats.Bits != firstBits || res.Stats.Messages != firstMessages {
					t.Errorf("%s on %q: %s counted %d bits/%d msgs, %s counted %d bits/%d msgs",
						rec.Name(), word.String(), engines[0].Name(), firstBits, firstMessages,
						engine.Name(), res.Stats.Bits, res.Stats.Messages)
				}
			}
		}
	}
}

func TestRunOptionsScheduleSelection(t *testing.T) {
	rec := NewThreeCounters()
	word := lang.WordFromString("001122")
	base, err := Run(rec, word, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ring.ScheduleNames() {
		res, err := Run(rec, word, RunOptions{Schedule: name, Seed: 3})
		if ring.ScheduleDeliveryGuarantee(name) != ring.ExactlyOnce {
			// The raw recognizer does not tolerate weaker-than-exactly-once
			// delivery; selecting such a schedule must refuse, typed.
			if !errors.Is(err, ErrDeliveryNotTolerated) {
				t.Errorf("schedule %q: got %v, want ErrDeliveryNotTolerated", name, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("schedule %q: %v", name, err)
		}
		if res.Verdict != base.Verdict || res.Stats.Bits != base.Stats.Bits {
			t.Errorf("schedule %q: verdict=%v bits=%d, want %v/%d",
				name, res.Verdict, res.Stats.Bits, base.Verdict, base.Stats.Bits)
		}
	}
	if _, err := Run(rec, word, RunOptions{Schedule: "bogus"}); err == nil {
		t.Error("unknown schedule should fail the run")
	}
}
