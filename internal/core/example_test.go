package core_test

import (
	"fmt"
	"log"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

// ExampleRun shows the lowest-level entry point: build a recognizer, run it
// on a word, and read the engine's exact accounting.
func ExampleRun() {
	language, err := lang.NewRegularFromRegex("ends-abb", "(a|b)*abb")
	if err != nil {
		log.Fatal(err)
	}
	rec := core.NewRegularOnePass(language)
	res, err := core.Run(rec, lang.WordFromString("ababb"), core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d bits over %d messages (%d bits per message)\n",
		res.Verdict, res.Stats.Bits, res.Stats.Messages, rec.StateBits())
	// Output: accept: 10 bits over 5 messages (2 bits per message)
}

// ExampleComputeAggregate shows the function-computation side of the model:
// the leader learns the sum of the digits on the ring in one pass.
func ExampleComputeAggregate() {
	res, err := core.ComputeAggregate(core.AggregateSum, lang.WordFromString("140924"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum=%d messages=%d\n", res.Value, res.Stats.Messages)
	// Output: sum=20 messages=6
}

// ExampleNewLineSimulation shows the Theorem 7 Stage 1 transformation: the
// wrapped bidirectional algorithm never uses the leader–p_n link yet reaches
// the same verdict.
func ExampleNewLineSimulation() {
	inner := core.NewCountBackward(lang.NewPerfectSquareLength())
	sim, err := core.NewLineSimulation(inner)
	if err != nil {
		log.Fatal(err)
	}
	word := lang.WordFromString("aaaaaaaaa") // n = 9, a perfect square
	direct, err := core.Run(inner, word, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	simulated, err := core.Run(sim, word, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct=%s simulated=%s\n", direct.Verdict, simulated.Verdict)
	// Output: direct=accept simulated=accept
}
