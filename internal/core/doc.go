// Package core implements the paper's distributed recognition algorithms —
// the primary contribution of the reproduction. Every algorithm is a
// Recognizer: a factory that, given the word labelling the ring, builds one
// ring.Node per processor (processor 0 being the leader) and whose verdict is
// compared against the language's membership predicate.
//
// Entry points: Run executes a recognizer on a word under RunOptions{Engine,
// Schedule, Seed, RecordTrace, State, Ctx} (State reuses a ring.RunState
// across runs — the batch pool's zero-allocation path; Ctx cancels mid-run
// with ring.ErrCanceled); Check is Run plus a verdict-vs-membership
// cross-check. NewRecognizerByName resolves the AlgorithmNames catalog for
// the cmd tools, the ringlang facade and the serving tier, wrapping lookup
// failures in ErrUnknownAlgorithm / lang.ErrUnknownLanguage.
//
// Most recognizers are declarations over the token-pass framework
// (TokenAlgo/TokenPass/NewTokenRecognizer, see token.go): a spec of per-pass
// Fold/Encode/Decode functions and a final Verdict, from which the framework
// builds the nodes, the leader/pass plumbing and the pooled payload path.
//
// The algorithms, with their bit complexities as analysed in the paper:
//
//   - RegularOnePass (Theorem 1/6): one pass carrying a DFA state, O(n) bits.
//   - CollectAll (Section 1): the universal baseline, the leader collects the
//     whole word, O(n²) bits.
//   - Count (Section 8 example): the leader learns n, O(n log n) bits; used
//     standalone for length languages and as the first phase of others.
//   - ThreeCounters (Section 7 note 2): {0ᵏ1ᵏ2ᵏ} in O(n log n) bits.
//   - CompareWcW (Section 7 note 1): {wcw} in Θ(n²) bits.
//   - LgRecognizer (Section 7 note 3/4): the Θ(g(n)) hierarchy, with an
//     optional known-n mode that removes the counting phase.
//   - ParityOnePass / ParityTwoPass (Section 7 note 5): the passes-vs-bits
//     trade-off for a regular language over 2ᵏ letters.
//   - CountBackward and LineSimulation (Theorem 7 stage 1): bidirectional
//     algorithms and the cut-link line transformation.
//
// Extensions beyond the paper, built on the same framework and held to the
// same golden/property tests: Majority ({w : #₁(w) > |w|/2}, Θ(n log n)),
// BalancedCounter, the Dyck recognizer and the aggregate functions.
package core
