// Package core implements the paper's distributed recognition algorithms —
// the primary contribution of the reproduction. Every algorithm is a
// Recognizer: a factory that, given the word labelling the ring, builds one
// ring.Node per processor (processor 0 being the leader) and whose verdict is
// compared against the language's membership predicate.
//
// The algorithms, with their bit complexities as analysed in the paper:
//
//   - RegularOnePass (Theorem 1/6): one pass carrying a DFA state, O(n) bits.
//   - CollectAll (Section 1): the universal baseline, the leader collects the
//     whole word, O(n²) bits.
//   - Count (Section 8 example): the leader learns n, O(n log n) bits; used
//     standalone for length languages and as the first phase of others.
//   - ThreeCounters (Section 7 note 2): {0ᵏ1ᵏ2ᵏ} in O(n log n) bits.
//   - CompareWcW (Section 7 note 1): {wcw} in Θ(n²) bits.
//   - LgRecognizer (Section 7 note 3/4): the Θ(g(n)) hierarchy, with an
//     optional known-n mode that removes the counting phase.
//   - ParityOnePass / ParityTwoPass (Section 7 note 5): the passes-vs-bits
//     trade-off for a regular language over 2ᵏ letters.
//   - CountBackward and LineSimulation (Theorem 7 stage 1): bidirectional
//     algorithms and the cut-link line transformation.
package core
