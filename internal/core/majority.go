package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// Majority recognizes {w ∈ {0,1}* : #₁(w) > |w|/2} with a single token pass
// carrying two δ-coded counters — ones seen and zeros seen. Strict majority
// of ones is equivalent to #₁ > #₀, so after one circulation the leader just
// compares the counters. Each of the n messages is Θ(log n) bits, so
// BIT(n) = Θ(n log n): like count, a non-regular language sitting exactly on
// the Theorem 4 lower bound.
//
// It is also the smallest complete example of the token-pass framework: the
// whole algorithm is the declaration below — fold, codec, verdict — and the
// framework supplies the nodes, the pass plumbing and the zero-allocation
// payload path.
type Majority struct {
	*TokenRecognizer[majorityState]
}

var _ Recognizer = (*Majority)(nil)

// majorityState is the token state: how many ones and zeros have been folded.
type majorityState struct {
	ones, zeros uint64
}

// NewMajority builds the two-counter majority recognizer.
func NewMajority() *Majority {
	return &Majority{TokenRecognizer: mustTokenRecognizer(TokenAlgo[majorityState]{
		AlgoName: "majority",
		Language: lang.NewMajority(),
		Passes: []TokenPass[majorityState]{{
			Fold: func(s majorityState, letter lang.Letter) (majorityState, error) {
				if letter == '1' {
					s.ones++
				} else {
					s.zeros++
				}
				return s, nil
			},
			Encode: func(w *bits.Writer, s majorityState) {
				w.WriteDeltaValue(s.ones)
				w.WriteDeltaValue(s.zeros)
			},
			Decode: func(r *bits.Reader) (majorityState, error) {
				var s majorityState
				var err error
				if s.ones, err = r.ReadDeltaValue(); err != nil {
					return s, fmt.Errorf("decode ones: %w", err)
				}
				if s.zeros, err = r.ReadDeltaValue(); err != nil {
					return s, fmt.Errorf("decode zeros: %w", err)
				}
				return s, nil
			},
		}},
		Verdict: func(s majorityState) bool { return s.ones > s.zeros },
	})}
}

// ModelMajority is the majority-token envelope: n messages of two δ-coded
// counters each, i.e. Θ(n log n).
func ModelMajority() ComplexityModel {
	return ComplexityModel{
		Algorithm: "majority",
		Claim:     "framework example: BIT(n) = Θ(n log n)",
		Lower:     func(n int) float64 { return 2 * float64(n) },
		Upper:     func(n int) float64 { return float64(n) * 2 * deltaBits(n) },
	}
}
