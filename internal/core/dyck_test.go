package core

import (
	"math"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

func TestBalancedCounterCorrectness(t *testing.T) {
	rec := NewBalancedCounter()
	checkAgainstLanguage(t, rec, []int{1, 2, 3, 4, 8, 16, 64, 200})
	cases := map[string]ring.Verdict{
		"()":     ring.VerdictAccept,
		"(())()": ring.VerdictAccept,
		")(":     ring.VerdictReject,
		"(()":    ring.VerdictReject,
		"())":    ring.VerdictReject,
	}
	for w, want := range cases {
		res := runOn(t, rec, lang.WordFromString(w))
		if res.Verdict != want {
			t.Errorf("balanced-counter(%q) = %v, want %v", w, res.Verdict, want)
		}
	}
}

func TestBalancedCounterBitComplexityIsNLogN(t *testing.T) {
	rec := NewBalancedCounter()
	for _, n := range []int{64, 256, 1024} {
		word, ok := rec.Language().GenerateMember(n, newRng())
		if !ok {
			t.Fatalf("no member of length %d", n)
		}
		res := runOn(t, rec, word)
		upper := float64(n) * (3*math.Log2(float64(n)) + 4)
		if float64(res.Stats.Bits) > upper {
			t.Errorf("n=%d: %d bits above the n log n envelope %.0f", n, res.Stats.Bits, upper)
		}
		if res.Stats.Messages != n {
			t.Errorf("n=%d: expected a single pass, got %d messages", n, res.Stats.Messages)
		}
	}
}

func TestBalancedCounterRejectsForeignLetters(t *testing.T) {
	rec := NewBalancedCounter()
	if _, err := rec.NewNodes(lang.WordFromString("(a)")); err == nil {
		t.Error("expected error for letters outside {(,)}")
	}
}
