package core

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

func newRng() *rand.Rand {
	return rand.New(rand.NewSource(7))
}

// runOn runs a recognizer on a word with the sequential engine and fails the
// test on error.
func runOn(t *testing.T, rec Recognizer, word lang.Word) *ring.Result {
	t.Helper()
	res, err := Run(rec, word, RunOptions{})
	if err != nil {
		t.Fatalf("%s on %q: %v", rec.Name(), word.String(), err)
	}
	return res
}

// checkAgainstLanguage verifies the recognizer's verdict against the
// language's membership predicate on members and non-members across sizes.
func checkAgainstLanguage(t *testing.T, rec Recognizer, sizes []int) {
	t.Helper()
	rng := newRng()
	language := rec.Language()
	for _, n := range sizes {
		if w, ok := language.GenerateMember(n, rng); ok {
			res := runOn(t, rec, w)
			if res.Verdict != ring.VerdictAccept {
				t.Errorf("%s rejected member %q (n=%d)", rec.Name(), w.String(), n)
			}
		}
		if w, ok := language.GenerateNonMember(n, rng); ok {
			res := runOn(t, rec, w)
			if res.Verdict != ring.VerdictReject {
				t.Errorf("%s accepted non-member %q (n=%d)", rec.Name(), w.String(), n)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	rec := NewThreeCounters()
	if _, err := Run(rec, nil, RunOptions{}); !errors.Is(err, ErrEmptyWord) {
		t.Errorf("empty word: err = %v, want ErrEmptyWord", err)
	}
	if _, err := Run(rec, lang.WordFromString("01x"), RunOptions{}); err == nil {
		t.Error("expected error for letters outside the alphabet")
	}
}

func TestCheckDetectsDisagreement(t *testing.T) {
	// Check on a correct recognizer should pass.
	rec := NewThreeCounters()
	if _, err := Check(rec, lang.WordFromString("012"), RunOptions{}); err != nil {
		t.Errorf("Check on member: %v", err)
	}
	if _, err := Check(rec, lang.WordFromString("021"), RunOptions{}); err != nil {
		t.Errorf("Check on non-member: %v", err)
	}
}

func TestRegularOnePassCorrectness(t *testing.T) {
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range regs {
		rec := NewRegularOnePass(reg)
		checkAgainstLanguage(t, rec, []int{1, 2, 3, 5, 8, 16, 33, 64})
	}
}

func TestRegularOnePassBitComplexityIsExactlyLinear(t *testing.T) {
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	rng := newRng()
	for _, reg := range regs {
		rec := NewRegularOnePass(reg)
		for _, n := range []int{8, 64, 256} {
			w, _, err := lang.MemberOrSkip(reg, n, 4, rng)
			if err != nil {
				w, _ = reg.GenerateNonMember(n, rng)
			}
			if w == nil {
				continue
			}
			res := runOn(t, rec, w)
			wantBits := rec.StateBits() * len(w)
			if res.Stats.Bits != wantBits {
				t.Errorf("%s/%s n=%d: bits = %d, want exactly ⌈log|Q|⌉·n = %d",
					rec.Name(), reg.Name(), len(w), res.Stats.Bits, wantBits)
			}
			if res.Stats.Messages != len(w) {
				t.Errorf("%s/%s n=%d: messages = %d, want n", rec.Name(), reg.Name(), len(w), res.Stats.Messages)
			}
		}
	}
}

func TestCollectAllCorrectness(t *testing.T) {
	for _, language := range []lang.Language{lang.NewWcW(), lang.NewAnBnCn(), lang.NewLg(lang.GrowthN15)} {
		rec := NewCollectAll(language)
		checkAgainstLanguage(t, rec, []int{1, 2, 3, 6, 9, 15, 30})
	}
}

func TestCollectAllQuadraticGrowth(t *testing.T) {
	rec := NewCollectAll(lang.NewAnBnCn())
	rng := newRng()
	small, _ := rec.Language().GenerateMember(30, rng)
	big, _ := rec.Language().GenerateMember(120, rng)
	resSmall := runOn(t, rec, small)
	resBig := runOn(t, rec, big)
	ratio := float64(resBig.Stats.Bits) / float64(resSmall.Stats.Bits)
	// Quadrupling n should roughly 16x the bits (quadratic); allow slack for
	// the δ-coded length prefixes.
	if ratio < 10 || ratio > 22 {
		t.Errorf("collect-all scaling ratio = %.1f, expected ≈16 (quadratic)", ratio)
	}
}

func TestCountCorrectness(t *testing.T) {
	rec := NewSquareCount()
	checkAgainstLanguage(t, rec, []int{1, 2, 3, 4, 9, 10, 16, 25, 26, 100})
}

func TestCountBitComplexityIsNLogN(t *testing.T) {
	rec := NewSquareCount()
	rng := newRng()
	for _, n := range []int{64, 256, 1024} {
		w := lang.RandomWord(rec.Language().Alphabet(), n, rng)
		res := runOn(t, rec, w)
		// Each of the n messages carries a δ-coded counter ≤ n, so the total
		// is at most n · (log n + 2 log log n + 2) and at least n·⌊log n⌋/2.
		upper := float64(n) * (3*log2(float64(n)) + 4)
		lower := float64(n) * log2(float64(n)) / 2
		if float64(res.Stats.Bits) > upper || float64(res.Stats.Bits) < lower {
			t.Errorf("count n=%d: bits = %d outside [%f, %f]", n, res.Stats.Bits, lower, upper)
		}
	}
}

func TestThreeCountersCorrectness(t *testing.T) {
	rec := NewThreeCounters()
	checkAgainstLanguage(t, rec, []int{1, 2, 3, 4, 5, 6, 9, 12, 30, 60})
	// Explicit adversarial cases.
	cases := map[string]ring.Verdict{
		"012":       ring.VerdictAccept,
		"001122":    ring.VerdictAccept,
		"010212":    ring.VerdictReject, // right counts, wrong order
		"001022":    ring.VerdictReject,
		"000112222": ring.VerdictReject, // wrong counts, right order
		"222111000": ring.VerdictReject,
	}
	for w, want := range cases {
		res := runOn(t, rec, lang.WordFromString(w))
		if res.Verdict != want {
			t.Errorf("three-counters(%q) = %v, want %v", w, res.Verdict, want)
		}
	}
}

func TestCompareWcWCorrectness(t *testing.T) {
	rec := NewCompareWcW()
	checkAgainstLanguage(t, rec, []int{1, 2, 3, 5, 7, 9, 15, 31, 64})
	cases := map[string]ring.Verdict{
		"c":       ring.VerdictAccept,
		"aca":     ring.VerdictAccept,
		"abcab":   ring.VerdictAccept,
		"abcba":   ring.VerdictReject,
		"abab":    ring.VerdictReject,
		"ccc":     ring.VerdictReject,
		"acacc":   ring.VerdictReject,
		"aacaab":  ring.VerdictReject,
		"aabcaab": ring.VerdictAccept,
	}
	for w, want := range cases {
		res := runOn(t, rec, lang.WordFromString(w))
		if res.Verdict != want {
			t.Errorf("compare-wcw(%q) = %v, want %v", w, res.Verdict, want)
		}
	}
}

func TestCompareWcWCheaperThanCollectAllButStillQuadratic(t *testing.T) {
	rng := newRng()
	language := lang.NewWcW()
	streaming := NewCompareWcW()
	baseline := NewCollectAll(language)
	word, _ := language.GenerateMember(201, rng)
	resStreaming := runOn(t, streaming, word)
	resBaseline := runOn(t, baseline, word)
	if resStreaming.Stats.Bits >= resBaseline.Stats.Bits {
		t.Errorf("streaming (%d bits) should beat collect-all (%d bits)",
			resStreaming.Stats.Bits, resBaseline.Stats.Bits)
	}
	// Quadratic scaling: doubling n should ≈4x the bits.
	word2, _ := language.GenerateMember(401, rng)
	resStreaming2 := runOn(t, streaming, word2)
	ratio := float64(resStreaming2.Stats.Bits) / float64(resStreaming.Stats.Bits)
	if ratio < 3.0 || ratio > 5.0 {
		t.Errorf("compare-wcw scaling ratio = %.2f, expected ≈4 (quadratic)", ratio)
	}
}

func TestLgRecognizerCorrectness(t *testing.T) {
	for _, g := range lang.StandardGrowthFuncs() {
		language := lang.NewLg(g)
		checkAgainstLanguage(t, NewLgRecognizer(language), []int{1, 2, 4, 9, 16, 33, 64})
		checkAgainstLanguage(t, NewLgRecognizerKnownN(language), []int{1, 2, 4, 9, 16, 33, 64})
	}
}

func TestLgKnownNSkipsCountingPass(t *testing.T) {
	language := lang.NewLg(lang.GrowthN15)
	rng := newRng()
	word, _ := language.GenerateMember(256, rng)
	unknown := runOn(t, NewLgRecognizer(language), word)
	known := runOn(t, NewLgRecognizerKnownN(language), word)
	if known.Stats.Messages != len(word) {
		t.Errorf("known-n should use exactly one pass (n messages), got %d", known.Stats.Messages)
	}
	if unknown.Stats.Messages != 2*len(word) {
		t.Errorf("unknown-n should use exactly two passes (2n messages), got %d", unknown.Stats.Messages)
	}
	if known.Stats.Bits >= unknown.Stats.Bits {
		t.Errorf("known-n (%d bits) should be cheaper than unknown-n (%d bits)",
			known.Stats.Bits, unknown.Stats.Bits)
	}
}

func TestParityRecognizersCorrectness(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		pl, err := lang.NewParityIndex(k)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstLanguage(t, NewParityOnePass(pl), []int{1, 2, 3, 7, 16, 40})
		checkAgainstLanguage(t, NewParityTwoPass(pl), []int{1, 2, 3, 7, 16, 40})
	}
}

func TestParityBitFormulasMatchPaper(t *testing.T) {
	rng := newRng()
	n := 120
	for _, k := range []int{1, 2, 3, 4, 6, 8} {
		pl, err := lang.NewParityIndex(k)
		if err != nil {
			t.Fatal(err)
		}
		word, ok := pl.GenerateMember(n, rng)
		if !ok {
			t.Fatalf("k=%d: no member of length %d", k, n)
		}
		two := runOn(t, NewParityTwoPass(pl), word)
		one := runOn(t, NewParityOnePass(pl), word)
		if want := (2*k + 1) * n; two.Stats.Bits != want {
			t.Errorf("k=%d two-pass bits = %d, want (2k+1)n = %d", k, two.Stats.Bits, want)
		}
		if want := (k + (1 << uint(k)) - 1) * n; one.Stats.Bits != want {
			t.Errorf("k=%d one-pass bits = %d, want (k+2^k-1)n = %d", k, one.Stats.Bits, want)
		}
	}
}

func TestParityAgreement(t *testing.T) {
	// The two algorithms must agree on every word.
	pl, err := lang.NewParityIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := newRng()
	one := NewParityOnePass(pl)
	two := NewParityTwoPass(pl)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(60)
		w := lang.RandomWord(pl.Alphabet(), n, rng)
		r1 := runOn(t, one, w)
		r2 := runOn(t, two, w)
		if r1.Verdict != r2.Verdict {
			t.Errorf("one-pass and two-pass disagree on %q", w.String())
		}
		want := ring.VerdictReject
		if pl.Contains(w) {
			want = ring.VerdictAccept
		}
		if r1.Verdict != want {
			t.Errorf("verdict on %q = %v, language says %v", w.String(), r1.Verdict, want)
		}
	}
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}
