package core

import (
	"fmt"
	"math/rand"

	"ringlang/internal/election"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// This file composes the two halves of the paper's model that the rest of
// the repository keeps separate: recognition assumes a distinguished leader
// at position 0, and internal/election is how an anonymous-but-identified
// ring produces one. ElectThenRecognize runs them back to back under one
// engine, so the leader assumption becomes a measured bit/message overhead
// instead of a free axiom — and so the fault schedules stress the whole
// stack, election included, not just the recognition phase.

// ElectionOverhead is the cost of establishing the leader before
// recognition ran.
type ElectionOverhead struct {
	// Protocol is the election protocol that ran.
	Protocol string
	// WinnerIndex is the elected processor's position on the original ring;
	// WinnerID is the identifier it announced.
	WinnerIndex int
	WinnerID    uint64
	// Bits and Messages are the election phase's totals — the price of the
	// leader the recognition phase gets for free.
	Bits     int
	Messages int
	// Faults is the election phase's fault accounting; nil under reliable
	// schedules.
	Faults *ring.FaultReport
}

// ScenarioResult is the outcome of one elect-then-recognize composition.
type ScenarioResult struct {
	// Election is the leader-establishment phase's report.
	Election ElectionOverhead
	// Rotated is the word as the recognition phase saw it: the original
	// ring relabelled so the elected processor sits at the leader position.
	Rotated lang.Word
	// Recognition is the recognition phase's result (verdict, stats, and —
	// under a fault schedule — fault accounting).
	Recognition *ring.Result
}

// ElectThenRecognize elects a leader with protocol p on a ring labelled with
// word, then runs the recognizer on the same ring with the winner as leader,
// under the options' engine for both phases. Since the recognition layer
// fixes the leader at index 0, the ring is rotated so the winner sits there.
// In the leaderless model the ring only defines a circular pattern; the word
// recognition decides is the pattern read from whoever won, so callers must
// judge the verdict against Rotated, not against word.
//
// ids are the processors' election identifiers; nil draws distinct random
// ids seeded by opts.Seed, so the composition stays deterministic per seed.
//
// Under an engine whose delivery guarantee is weaker than the algorithms
// tolerate, both phases are hardened exactly as far as possible rather than
// refused: at-least-once delivery wraps election and recognition with the
// alternating-bit dedup layer (unless the recognizer already tolerates it,
// or opts.AllowFaults asks for the raw faulty run). Crash-prone delivery
// cannot be absorbed by a wrapper and follows opts.AllowFaults.
func ElectThenRecognize(p election.Protocol, rec Recognizer, word lang.Word, ids []uint64, opts RunOptions) (*ScenarioResult, error) {
	if len(word) == 0 {
		return nil, ErrEmptyWord
	}
	if ids == nil {
		ids = election.RandomIDs(len(word), rand.New(rand.NewSource(opts.Seed)))
	}
	if len(ids) != len(word) {
		return nil, fmt.Errorf("core: scenario: %d ids for %d letters", len(ids), len(word))
	}
	engine, err := opts.engine()
	if err != nil {
		return nil, fmt.Errorf("core: scenario: %w", err)
	}

	guarantee := ring.EngineDeliveryGuarantee(engine)
	dedup := guarantee == ring.AtLeastOnce && !opts.AllowFaults
	outcome, err := election.RunWith(p, ids, election.RunOptions{
		Engine:      engine,
		Dedup:       dedup,
		AllowFaults: opts.AllowFaults,
	})
	if err != nil {
		return nil, fmt.Errorf("core: scenario: elect: %w", err)
	}

	// Rotate the ring so the winner holds the leader position: processor i
	// of the recognition ring is processor (winner + i) mod n of the
	// original one.
	w := outcome.WinnerIndex
	rotated := make(lang.Word, 0, len(word))
	rotated = append(rotated, word[w:]...)
	rotated = append(rotated, word[:w]...)

	recRun := rec
	if dedup && !Tolerates(rec, guarantee) {
		recRun = WithDedup(rec)
	}
	recOpts := opts
	recOpts.Engine = engine
	recOpts.Schedule = ""
	res, err := Run(recRun, rotated, recOpts)
	if err != nil {
		return nil, fmt.Errorf("core: scenario: recognize after %s: %w", p, err)
	}
	return &ScenarioResult{
		Election: ElectionOverhead{
			Protocol:    p.String(),
			WinnerIndex: w,
			WinnerID:    outcome.WinnerID,
			Bits:        outcome.Stats.Bits,
			Messages:    outcome.Stats.Messages,
			Faults:      outcome.Faults,
		},
		Rotated:     rotated,
		Recognition: res,
	}, nil
}
