package core

// The fault-axis property, stated over delivery guarantees instead of
// schedule names: (1) every schedule that still guarantees exactly-once
// delivery — however it misbehaves internally — yields verdicts and bit
// totals identical to the sequential run, for every recognizer and seed;
// (2) a schedule that breaks exactly-once is refused with the typed
// ErrDeliveryNotTolerated, never silently run into a wrong verdict; (3) the
// alternating-bit dedup wrapper restores agreement under at-least-once
// delivery; (4) an explicitly allowed faulty run is a deterministic function
// of the seed, so a fault measurement is reproducible. No branch below names
// an individual fault schedule: a new schedule joins the right clause by its
// ScheduleDeliveryGuarantee classification alone.

import (
	"errors"
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// faultAxisWords picks one member and (when the language can produce one) one
// non-member word per recognizer, deterministically.
func faultAxisWords(t *testing.T, rec Recognizer, rng *rand.Rand) []lang.Word {
	t.Helper()
	language := rec.Language()
	n := 4 + rng.Intn(12)
	words := make([]lang.Word, 0, 2)
	if member, _, err := lang.MemberOrSkip(language, n, 8, rng); err == nil {
		words = append(words, member)
	}
	if nonMember, ok := language.GenerateNonMember(n, rng); ok {
		words = append(words, nonMember)
	}
	if len(words) == 0 {
		t.Fatalf("%s: no test words near n=%d", rec.Name(), n)
	}
	return words
}

// seededFaultSchedules returns the catalog's seeded schedules grouped by the
// delivery guarantee they leave standing.
func seededFaultSchedules() (exactlyOnce, weaker []string) {
	for _, name := range ring.ScheduleNames() {
		if !ring.ScheduleUsesSeed(name) {
			continue
		}
		if ring.ScheduleDeliveryGuarantee(name) == ring.ExactlyOnce {
			exactlyOnce = append(exactlyOnce, name)
		} else {
			weaker = append(weaker, name)
		}
	}
	return exactlyOnce, weaker
}

func TestPropertyFaultSchedulesAgreeOrRefuse(t *testing.T) {
	exactlyOnce, weaker := seededFaultSchedules()
	if len(exactlyOnce) < 2 || len(weaker) < 2 {
		t.Fatalf("catalog lost its fault axis: exactly-once %v, weaker %v", exactlyOnce, weaker)
	}
	rng := rand.New(rand.NewSource(231))
	faultReports := 0
	for _, rec := range allRecognizers(t) {
		for _, word := range faultAxisWords(t, rec, rng) {
			base, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatalf("%s on %q: %v", rec.Name(), word.String(), err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				for _, name := range exactlyOnce {
					res, err := Run(rec, word, RunOptions{Schedule: name, Seed: seed})
					if err != nil {
						t.Fatalf("%s under %s seed %d on %q: %v", rec.Name(), name, seed, word.String(), err)
					}
					if res.Verdict != base.Verdict || res.Stats.Bits != base.Stats.Bits ||
						res.Stats.Messages != base.Stats.Messages {
						t.Errorf("%s under %s seed %d on %q: %v/%d bits, sequential %v/%d — exactly-once delivery must be invisible",
							rec.Name(), name, seed, word.String(), res.Verdict, res.Stats.Bits, base.Verdict, base.Stats.Bits)
					}
					if res.Faults != nil {
						faultReports++
					}
				}
				for _, name := range weaker {
					// The raw recognizer must be refused, typed — a wrong
					// verdict with no error would poison every caller that
					// trusts the verdict.
					_, err := Run(rec, word, RunOptions{Schedule: name, Seed: seed})
					if !errors.Is(err, ErrDeliveryNotTolerated) {
						t.Errorf("%s under %s seed %d: got %v, want ErrDeliveryNotTolerated", rec.Name(), name, seed, err)
					}
				}
			}
		}
	}
	// The seeded exactly-once set contains genuinely fault-injecting schedules
	// (not just random delivery order); their runs carry fault reports.
	if faultReports == 0 {
		t.Error("no exactly-once run attached a fault report; the agreement sweep exercised no fault schedule")
	}
}

func TestPropertyDedupRestoresAtLeastOnceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	duplicated := 0
	for _, rec := range allRecognizers(t) {
		wrapped := WithDedup(rec)
		for _, word := range faultAxisWords(t, rec, rng) {
			base, err := Run(wrapped, word, RunOptions{})
			if err != nil {
				t.Fatalf("%s on %q: %v", wrapped.Name(), word.String(), err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				for _, name := range ring.ScheduleNames() {
					if ring.ScheduleDeliveryGuarantee(name) != ring.AtLeastOnce {
						continue
					}
					res, err := Run(wrapped, word, RunOptions{Schedule: name, Seed: seed})
					if err != nil {
						t.Fatalf("%s under %s seed %d on %q: %v", wrapped.Name(), name, seed, word.String(), err)
					}
					if res.Verdict != base.Verdict || res.Stats.Bits != base.Stats.Bits ||
						res.Stats.Messages != base.Stats.Messages {
						t.Errorf("%s under %s seed %d on %q: %v/%d bits, sequential %v/%d — dedup must absorb duplicates",
							wrapped.Name(), name, seed, word.String(), res.Verdict, res.Stats.Bits, base.Verdict, base.Stats.Bits)
					}
					if res.Faults != nil {
						duplicated += res.Faults.Duplicates
					}
				}
			}
		}
	}
	if duplicated == 0 {
		t.Error("no duplicate was injected across the whole sweep; the property is vacuous")
	}
}

func TestPropertyAllowedFaultRunsAreDeterministic(t *testing.T) {
	_, weaker := seededFaultSchedules()
	rec := NewThreeCounters()
	word := lang.WordFromString("001122")
	for _, name := range weaker {
		for seed := int64(1); seed <= 5; seed++ {
			type outcome struct {
				verdict ring.Verdict
				bits    int
				err     string
			}
			run := func() outcome {
				res, err := Run(rec, word, RunOptions{Schedule: name, Seed: seed, AllowFaults: true})
				if err != nil {
					return outcome{err: err.Error()}
				}
				return outcome{verdict: res.Verdict, bits: res.Stats.Bits}
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("%s seed %d: two allowed runs disagree: %+v vs %+v — the fault fate must be a function of the seed",
					name, seed, a, b)
			}
		}
	}
}
