package core

import (
	"fmt"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// This file is the node-reuse path: at large ring sizes the dominant cost of
// a steady-state run is not the deliveries but rebuilding the ring — two
// O(n) allocations per run whose zeroing and page-faulting swamp the engine
// loop at n = 2^20 and whose garbage drives the collector. A NodeReuse slot
// keeps one ring alive across runs and relabels it in place when the
// recognizer knows how (NodeRebuilder), which every token recognizer does.

// NodeRebuilder is implemented by recognizers that can relabel a ring they
// previously built for an equal-length word, reusing its allocations
// instead of constructing fresh nodes.
type NodeRebuilder interface {
	Recognizer
	// RebuildNodes rebuilds prev — nodes this recognizer built for a word of
	// the same length — in place for word, leaving every node exactly as
	// NewNodes would have. It fails if prev is not this recognizer's ring.
	RebuildNodes(word lang.Word, prev []ring.Node) ([]ring.Node, error)
}

// NodeReuse is a single-slot pool of constructed ring nodes, plugged into a
// run through RunOptions.Reuse. When consecutive runs use the same
// recognizer and ring size — a batch worker grinding same-length words, a
// benchmark's timing loop — the nodes are relabelled in place and the run
// performs no node allocation at all; any mismatch (different recognizer,
// different length, a recognizer that cannot rebuild) falls back to a fresh
// construction, which restocks the slot.
//
// A NodeReuse is NOT safe for concurrent use: like ring.RunState, it is
// meant to be owned by one worker and reused run after run.
type NodeReuse struct {
	rec   Recognizer
	n     int
	nodes []ring.Node
}

// NewNodeReuse returns an empty node-reuse slot.
func NewNodeReuse() *NodeReuse { return &NodeReuse{} }

// build returns nodes for word, relabelling the slot's ring when it matches
// and restocking it when it does not.
//
//ring:hotpath guard=TestNodeReuseStaysOnRebuildFloor
func (p *NodeReuse) build(rec Recognizer, word lang.Word) ([]ring.Node, error) {
	rb, ok := rec.(NodeRebuilder)
	if !ok {
		return rec.NewNodes(word)
	}
	if p.rec == rec && p.n == len(word) && p.nodes != nil {
		nodes, err := rb.RebuildNodes(word, p.nodes)
		if err != nil {
			return nil, fmt.Errorf("rebuild nodes: %w", err)
		}
		return nodes, nil
	}
	//ringvet:ignore hotpathalloc -- first run (or a recognizer/size switch) constructs fresh nodes; the steady path above rebuilds in place
	nodes, err := rec.NewNodes(word)
	if err != nil {
		return nil, err
	}
	p.rec, p.n, p.nodes = rec, len(word), nodes
	return nodes, nil
}

// buildNodes is Run's node-construction step: through the reuse slot when
// one is attached, fresh otherwise.
func buildNodes(rec Recognizer, word lang.Word, reuse *NodeReuse) ([]ring.Node, error) {
	if reuse != nil {
		return reuse.build(rec, word)
	}
	return rec.NewNodes(word)
}
