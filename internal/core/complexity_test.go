package core

import (
	"math/rand"
	"testing"

	"ringlang/internal/lang"
)

// TestComplexityEnvelopes runs every recognizer with a declared complexity
// model across a size sweep and asserts the measured bit totals stay inside
// the paper's envelope — the executable form of the per-algorithm analyses.
func TestComplexityEnvelopes(t *testing.T) {
	recs, models, err := StandardModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(models) {
		t.Fatalf("StandardModels returned %d recognizers but %d models", len(recs), len(models))
	}
	rng := rand.New(rand.NewSource(77))
	sizes := []int{8, 33, 65, 129, 257}
	for i, rec := range recs {
		model := models[i]
		for _, n := range sizes {
			word, _, err := lang.MemberOrSkip(rec.Language(), n, 8, rng)
			if err != nil {
				word = lang.RandomWord(rec.Language().Alphabet(), n, rng)
			}
			res, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatalf("%s at n=%d: %v", rec.Name(), n, err)
			}
			if !model.Contains(len(word), res.Stats.Bits) {
				t.Errorf("envelope violated: %s", model.Describe(len(word), res.Stats.Bits))
			}
		}
	}
}

func TestComplexityModelDescribe(t *testing.T) {
	m := ModelCount()
	if !m.Contains(100, 800) {
		t.Error("800 bits at n=100 should be inside the counting envelope")
	}
	if m.Contains(100, 50) || m.Contains(100, 10_000_000) {
		t.Error("values far outside the envelope must be rejected")
	}
	if m.Describe(100, 800) == "" {
		t.Error("Describe should produce a message")
	}
}

func TestParityModelsAreExact(t *testing.T) {
	language, err := lang.NewParityIndex(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	word, _ := language.GenerateMember(96, rng)
	two := runOn(t, NewParityTwoPass(language), word)
	one := runOn(t, NewParityOnePass(language), word)
	if !ModelParityTwoPass(language).Contains(96, two.Stats.Bits) {
		t.Errorf("two-pass formula mismatch: %d bits", two.Stats.Bits)
	}
	if !ModelParityOnePass(language).Contains(96, one.Stats.Bits) {
		t.Errorf("one-pass formula mismatch: %d bits", one.Stats.Bits)
	}
}
