package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// LineSimulation is the Stage 1 transformation of Theorem 7: it takes a
// bidirectional ring algorithm and produces an equivalent algorithm that
// never uses the link between the leader p₁ and its backward neighbour p_n.
// Whenever the wrapped algorithm would use that link, the message instead
// travels the long way around, relayed by the intermediate processors, with a
// one-bit marker distinguishing transit messages from ordinary ones.
//
// The paper's accounting: if the wrapped algorithm sends at most c₁ messages
// per processor out of a finite message set of size c₂, the transformation
// adds at most 2·c₁·(1 + ⌈log c₂⌉)·n bits and otherwise doubles nothing
// beyond the marker bit, so an O(n)-bit algorithm stays O(n). The E8
// experiment measures this overhead.
type LineSimulation struct {
	inner Recognizer
}

var _ Recognizer = (*LineSimulation)(nil)

// ErrNotBidirectional is returned when wrapping an algorithm that does not
// declare bidirectional mode (there would be nothing to reroute).
var ErrNotBidirectional = fmt.Errorf("core: line simulation requires a bidirectional inner algorithm")

// NewLineSimulation wraps a bidirectional recognizer.
func NewLineSimulation(inner Recognizer) (*LineSimulation, error) {
	if inner.Mode() != ring.Bidirectional {
		return nil, ErrNotBidirectional
	}
	return &LineSimulation{inner: inner}, nil
}

// Name implements Recognizer.
//
//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (l *LineSimulation) Name() string { return "line-sim(" + l.inner.Name() + ")" }

// Language implements Recognizer.
func (l *LineSimulation) Language() lang.Language { return l.inner.Language() }

// Mode implements Recognizer. The simulation still runs on a bidirectional
// ring, but the leader–p_n link carries no messages (verified in tests).
func (l *LineSimulation) Mode() ring.Mode { return ring.Bidirectional }

// Inner returns the wrapped recognizer.
func (l *LineSimulation) Inner() Recognizer { return l.inner }

// NewNodes implements Recognizer.
func (l *LineSimulation) NewNodes(word lang.Word) ([]ring.Node, error) {
	if len(word) < 2 {
		return nil, fmt.Errorf("core: line simulation needs a ring of at least 2 processors")
	}
	innerNodes, err := l.inner.NewNodes(word)
	if err != nil {
		return nil, err
	}
	nodes := make([]ring.Node, len(innerNodes))
	for i, in := range innerNodes {
		nodes[i] = &lineNode{
			inner:    in,
			isLeader: i == ring.LeaderIndex,
			isEnd:    i == len(innerNodes)-1,
		}
	}
	return nodes, nil
}

// lineNode wraps one inner node. The paper's setup message "you are the end
// of the line" is modelled by constructing the last node with isEnd set,
// which the paper explicitly excludes from the algorithm's cost.
type lineNode struct {
	inner    ring.Node
	isLeader bool
	isEnd    bool
}

// frame prepends the transit marker to a payload.
func frame(transit bool, payload bits.String) bits.String {
	var w bits.Writer
	w.WriteBool(transit)
	w.WriteString(payload)
	return w.String()
}

// unframe splits the transit marker from a payload.
func unframe(payload bits.String) (bool, bits.String, error) {
	r := bits.NewReader(payload)
	transit, err := r.ReadBool()
	if err != nil {
		return false, bits.Empty(), fmt.Errorf("line-sim: decode marker: %w", err)
	}
	rest, err := r.ReadString(r.Remaining())
	if err != nil {
		return false, bits.Empty(), fmt.Errorf("line-sim: decode body: %w", err)
	}
	return transit, rest, nil
}

// translateSends reroutes the inner node's sends so the p₁–p_n link is never
// used: the leader's backward sends and the end's forward sends become
// transit messages travelling the other way around the line.
func (n *lineNode) translateSends(sends []ring.Send) []ring.Send {
	out := make([]ring.Send, 0, len(sends))
	for _, s := range sends {
		switch {
		case n.isLeader && s.Dir == ring.Backward:
			out = append(out, ring.SendForward(frame(true, s.Payload))) //ring:prealloc -- out is presized by the make above to len(sends)
		case n.isEnd && s.Dir == ring.Forward:
			out = append(out, ring.SendBackward(frame(true, s.Payload))) //ring:prealloc -- out is presized by the make above to len(sends)
		default:
			out = append(out, ring.Send{Dir: s.Dir, Payload: frame(false, s.Payload)}) //ring:prealloc -- out is presized by the make above to len(sends)
		}
	}
	return out
}

// Start implements ring.Node.
func (n *lineNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	sends, err := n.inner.Start(ctx)
	if err != nil {
		return nil, err
	}
	return n.translateSends(sends), nil
}

// Receive implements ring.Node.
func (n *lineNode) Receive(ctx *ring.Context, from ring.Direction, payload bits.String) ([]ring.Send, error) {
	transit, body, err := unframe(payload)
	if err != nil {
		return nil, err
	}
	if !transit {
		sends, err := n.inner.Receive(ctx, from, body)
		if err != nil {
			return nil, err
		}
		return n.translateSends(sends), nil
	}
	switch {
	case n.isLeader:
		// A transit message reaching the leader originated at p_n and would
		// normally have arrived over the (cut) backward link.
		sends, err := n.inner.Receive(ctx, ring.Backward, body)
		if err != nil {
			return nil, err
		}
		return n.translateSends(sends), nil
	case n.isEnd:
		// A transit message reaching the end originated at the leader and
		// would normally have arrived over the (cut) forward link.
		sends, err := n.inner.Receive(ctx, ring.Forward, body)
		if err != nil {
			return nil, err
		}
		return n.translateSends(sends), nil
	default:
		// Intermediate processors relay transit messages unchanged, keeping
		// their travel direction: a message that arrived from our backward
		// neighbour keeps travelling forward, and vice versa.
		travel := from.Opposite()
		return []ring.Send{{Dir: travel, Payload: frame(true, body)}}, nil
	}
}
