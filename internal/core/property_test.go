package core

// Cross-cutting property tests: every recognizer must agree with its
// language's membership predicate on random words, and its verdict and bit
// accounting must be identical under every engine (FIFO, concurrent,
// adversarial random delivery order). These are the schedule-independence and
// correctness invariants the paper's model takes for granted.

import (
	"math/rand"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// allRecognizers returns one instance of every unidirectional recognizer plus
// the bidirectional ones, for table-driven property tests.
func allRecognizers(t *testing.T) []Recognizer {
	t.Helper()
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	parity, err := lang.NewParityIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Recognizer{
		NewRegularOnePass(regs[0]),
		NewRegularOnePass(regs[3]),
		NewCollectAll(lang.NewWcW()),
		NewSquareCount(),
		NewCountBackward(lang.NewPerfectSquareLength()),
		NewThreeCounters(),
		NewMajority(),
		NewBalancedCounter(),
		NewCompareWcW(),
		NewLgRecognizer(lang.NewLg(lang.GrowthN15)),
		NewLgRecognizerKnownN(lang.NewLg(lang.GrowthN175)),
		NewParityOnePass(parity),
		NewParityTwoPass(parity),
	}
	return recs
}

func TestPropertyVerdictMatchesMembershipOnRandomWords(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, rec := range allRecognizers(t) {
		language := rec.Language()
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(48)
			word := lang.RandomWord(language.Alphabet(), n, rng)
			res, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatalf("%s on %q: %v", rec.Name(), word.String(), err)
			}
			want := ring.VerdictReject
			if language.Contains(word) {
				want = ring.VerdictAccept
			}
			if res.Verdict != want {
				t.Errorf("%s on %q: verdict %v, language says %v", rec.Name(), word.String(), res.Verdict, want)
			}
		}
	}
}

func TestPropertyScheduleIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	engines := []ring.Engine{
		ring.NewSequentialEngine(),
		ring.NewConcurrentEngine(),
		ring.NewRandomOrderEngine(1),
		ring.NewRandomOrderEngine(99),
	}
	for _, rec := range allRecognizers(t) {
		language := rec.Language()
		n := 5 + rng.Intn(30)
		word, _, err := lang.MemberOrSkip(language, n, 8, rng)
		if err != nil {
			word = lang.RandomWord(language.Alphabet(), n, rng)
		}
		var firstBits int
		var firstVerdict ring.Verdict
		for i, engine := range engines {
			res, err := Run(rec, word, RunOptions{Engine: engine})
			if err != nil {
				t.Fatalf("%s on %s: %v", rec.Name(), engine.Name(), err)
			}
			if i == 0 {
				firstBits, firstVerdict = res.Stats.Bits, res.Verdict
				continue
			}
			if res.Stats.Bits != firstBits || res.Verdict != firstVerdict {
				t.Errorf("%s: engine %s disagrees (bits %d vs %d, verdict %v vs %v)",
					rec.Name(), engine.Name(), res.Stats.Bits, firstBits, res.Verdict, firstVerdict)
			}
		}
	}
}

func TestPropertyMessageCountIsPassMultipleOfN(t *testing.T) {
	// Every unidirectional recognizer in this repository is organized in
	// whole passes: the total message count must be an exact multiple of n.
	rng := rand.New(rand.NewSource(103))
	for _, rec := range allRecognizers(t) {
		if rec.Mode() != ring.Unidirectional {
			continue
		}
		language := rec.Language()
		for trial := 0; trial < 5; trial++ {
			n := 2 + rng.Intn(40)
			word, _, err := lang.MemberOrSkip(language, n, 8, rng)
			if err != nil {
				word = lang.RandomWord(language.Alphabet(), n, rng)
			}
			res, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Messages%len(word) != 0 {
				t.Errorf("%s on %q: %d messages is not a multiple of n=%d",
					rec.Name(), word.String(), res.Stats.Messages, len(word))
			}
		}
	}
}

func TestPropertyRegularRecognizersStayLinear(t *testing.T) {
	// For every standard regular language, bits/n must not grow with n
	// (Corollary to Theorem 1: the constant is exactly ⌈log|Q|⌉).
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(104))
	for _, reg := range regs {
		rec := NewRegularOnePass(reg)
		var ratios []float64
		for _, n := range []int{32, 128, 512} {
			word := lang.RandomWord(reg.Alphabet(), n, rng)
			res, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ratios = append(ratios, float64(res.Stats.Bits)/float64(n))
		}
		for i := 1; i < len(ratios); i++ {
			if ratios[i] != ratios[0] {
				t.Errorf("%s: bits/n changed from %f to %f", reg.Name(), ratios[0], ratios[i])
			}
		}
	}
}

func TestPropertyNonRegularBitsPerProcessorGrows(t *testing.T) {
	// The flip side of Theorem 4: for the non-regular recognizers bits/n must
	// grow with n (they cannot be O(n)).
	recs := []Recognizer{NewSquareCount(), NewThreeCounters(), NewBalancedCounter(), NewCompareWcW()}
	rng := rand.New(rand.NewSource(105))
	for _, rec := range recs {
		small, _, err := lang.MemberOrSkip(rec.Language(), 32, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		big, _, err := lang.MemberOrSkip(rec.Language(), 1024, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		resSmall, err := Run(rec, small, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resBig, err := Run(rec, big, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if resBig.Stats.BitsPerProcessor() <= resSmall.Stats.BitsPerProcessor() {
			t.Errorf("%s: bits/n did not grow (%f at n=%d vs %f at n=%d)",
				rec.Name(), resSmall.Stats.BitsPerProcessor(), len(small),
				resBig.Stats.BitsPerProcessor(), len(big))
		}
	}
}
