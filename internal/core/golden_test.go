package core

// Golden test pinning the exact bit accounting of every single-token
// recognizer. The goldens were recorded from the pre-framework (hand-written)
// implementations, so the declarative token-pass ports are provably
// byte-identical: verdict, total bits, total messages, max message size and
// the full per-link traffic must all match, word for word.
//
// Regenerate (only when an algorithm's wire format is deliberately changed)
// with:
//
//	RINGLANG_UPDATE_GOLDENS=1 go test ./internal/core -run TestTokenRecognizerGoldens

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// goldenRun is the recorded accounting of one recognizer on one word.
type goldenRun struct {
	Algorithm string           `json:"algorithm"`
	Language  string           `json:"language"`
	Word      string           `json:"word"`
	Verdict   string           `json:"verdict"`
	Messages  int              `json:"messages"`
	Bits      int              `json:"bits"`
	MaxMsg    int              `json:"max_message_bits"`
	Links     []ring.LinkStats `json:"links"`
}

// goldenKey identifies one run in error messages.
func (g goldenRun) key() string {
	return fmt.Sprintf("%s/%s/%q", g.Algorithm, g.Language, g.Word)
}

// goldenRecognizers returns every single-token recognizer covered by the
// goldens, in a fixed order. It must be deterministic: the golden file is
// keyed by position as well as by name.
func goldenRecognizers(t testing.TB) []Recognizer {
	t.Helper()
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		t.Fatal(err)
	}
	parity2, err := lang.NewParityIndex(2)
	if err != nil {
		t.Fatal(err)
	}
	parity3, err := lang.NewParityIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Recognizer{
		NewSquareCount(),
		NewCountWithCoding(lang.NewPerfectSquareLength(), CodingGamma),
		NewCountWithCoding(lang.NewPerfectSquareLength(), CodingUnary),
		NewCountBackward(lang.NewPerfectSquareLength()),
		NewThreeCounters(),
		NewMajority(),
		NewBalancedCounter(),
		NewCompareWcW(),
		NewCollectAll(lang.NewAnBnCn()),
		NewCollectAll(lang.NewWcW()),
		NewLgRecognizer(lang.NewLg(lang.GrowthNLogN)),
		NewLgRecognizer(lang.NewLg(lang.GrowthN15)),
		NewLgRecognizerKnownN(lang.NewLg(lang.GrowthN175)),
		NewParityOnePass(parity2),
		NewParityOnePass(parity3),
		NewParityTwoPass(parity2),
		NewParityTwoPass(parity3),
	}
	for _, reg := range regs {
		recs = append(recs, NewRegularOnePass(reg))
	}
	return recs
}

// goldenWords derives a deterministic set of member and non-member words per
// recognizer; the rng is re-seeded per recognizer so the set is stable under
// reordering.
func goldenWords(rec Recognizer) []lang.Word {
	language := rec.Language()
	rng := rand.New(rand.NewSource(int64(len(rec.Name()) + 7919)))
	var words []lang.Word
	for _, n := range []int{1, 2, 3, 5, 8, 13, 21, 34} {
		if w, ok := language.GenerateMember(n, rng); ok && len(w) == n && n > 0 {
			words = append(words, w)
		}
		if w, ok := language.GenerateNonMember(n, rng); ok && len(w) == n && n > 0 {
			words = append(words, w)
		}
	}
	return words
}

const goldenPath = "testdata/token_goldens.json"

func recordGoldens(t testing.TB) []goldenRun {
	t.Helper()
	var out []goldenRun
	for _, rec := range goldenRecognizers(t) {
		for _, word := range goldenWords(rec) {
			res, err := Run(rec, word, RunOptions{})
			if err != nil {
				t.Fatalf("%s on %q: %v", rec.Name(), word.String(), err)
			}
			out = append(out, goldenRun{
				Algorithm: rec.Name(),
				Language:  rec.Language().Name(),
				Word:      word.String(),
				Verdict:   res.Verdict.String(),
				Messages:  res.Stats.Messages,
				Bits:      res.Stats.Bits,
				MaxMsg:    res.Stats.MaxMessageBits,
				Links:     res.Stats.Links(),
			})
		}
	}
	return out
}

func TestTokenRecognizerGoldens(t *testing.T) {
	got := recordGoldens(t)
	if os.Getenv("RINGLANG_UPDATE_GOLDENS") != "" {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden runs to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with RINGLANG_UPDATE_GOLDENS=1): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden set has %d runs, recorded file has %d — recognizer set drifted", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.key() != w.key() {
			t.Fatalf("run %d is %s, golden is %s — recognizer or word set drifted", i, g.key(), w.key())
		}
		if g.Verdict != w.Verdict || g.Bits != w.Bits || g.Messages != w.Messages || g.MaxMsg != w.MaxMsg {
			t.Errorf("%s: got verdict=%s bits=%d msgs=%d max=%d, golden verdict=%s bits=%d msgs=%d max=%d",
				g.key(), g.Verdict, g.Bits, g.Messages, g.MaxMsg, w.Verdict, w.Bits, w.Messages, w.MaxMsg)
			continue
		}
		if len(g.Links) != len(w.Links) {
			t.Errorf("%s: got %d active links, golden has %d", g.key(), len(g.Links), len(w.Links))
			continue
		}
		for j := range g.Links {
			if g.Links[j] != w.Links[j] {
				t.Errorf("%s: link %d got %+v, golden %+v", g.key(), j, g.Links[j], w.Links[j])
			}
		}
	}
}
