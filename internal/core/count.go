package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// Count is the counting algorithm discussed in Section 8 of the paper: the
// leader sends a counter around the ring, every processor increments it, and
// after one pass the leader knows n. Message i carries the value i in a
// self-delimiting Elias-δ code of Θ(log i) bits, so the total is Θ(n log n)
// bits — the canonical example of the Ω(n log n) class.
//
// As a recognizer it decides a length language (membership depends only on
// n); with a non-regular length set such as the perfect squares this is a
// non-regular language recognized in Θ(n log n) bits, matching Theorem 4's
// lower bound exactly.
type Count struct {
	*TokenRecognizer[uint64]
	language *lang.LengthLanguage
	coding   CounterCoding
}

var _ Recognizer = (*Count)(nil)

// CounterCoding selects how the counter value is encoded in each message.
// The choice is the ablation behind the O(n log n) total: a self-delimiting
// logarithmic code (δ or γ) gives Θ(n log n) bits, while a unary code blows
// the same algorithm up to Θ(n²).
type CounterCoding int

const (
	// CodingDelta uses the Elias-δ code (log n + O(log log n) bits/message).
	CodingDelta CounterCoding = iota + 1
	// CodingGamma uses the Elias-γ code (2 log n + 1 bits/message).
	CodingGamma
	// CodingUnary uses a unary code (n bits/message) — deliberately wasteful,
	// to show the encoding is what keeps the algorithm at Θ(n log n).
	CodingUnary
)

// String implements fmt.Stringer.
func (c CounterCoding) String() string {
	switch c {
	case CodingDelta:
		return "delta"
	case CodingGamma:
		return "gamma"
	case CodingUnary:
		return "unary"
	default:
		return "unknown"
	}
}

// counterPass is the one token pass shared by every counting recognizer: the
// counter starts at zero, every processor adds one, and the wire format is
// the chosen coding.
func counterPass(coding CounterCoding, decodeErr string) TokenPass[uint64] {
	return TokenPass[uint64]{
		Fold: func(v uint64, _ lang.Letter) (uint64, error) { return v + 1, nil },
		Encode: func(w *bits.Writer, v uint64) {
			switch coding {
			case CodingGamma:
				w.WriteGammaValue(v)
			case CodingUnary:
				w.WriteUnary(v)
			default:
				w.WriteDeltaValue(v)
			}
		},
		Decode: func(r *bits.Reader) (uint64, error) {
			var v uint64
			var err error
			switch coding {
			case CodingGamma:
				v, err = r.ReadGammaValue()
			case CodingUnary:
				v, err = r.ReadUnary()
			default:
				v, err = r.ReadDeltaValue()
			}
			if err != nil {
				return 0, fmt.Errorf("%s: %w", decodeErr, err)
			}
			return v, nil
		},
	}
}

// NewCount builds the counting recognizer for a length language using the
// default Elias-δ counter coding.
func NewCount(language *lang.LengthLanguage) *Count {
	return NewCountWithCoding(language, CodingDelta)
}

// NewCountWithCoding builds the counting recognizer with an explicit counter
// coding (used by the encoding ablation).
func NewCountWithCoding(language *lang.LengthLanguage, coding CounterCoding) *Count {
	name := "count"
	if coding != CodingDelta {
		name = "count-" + coding.String()
	}
	predicate := language.Predicate()
	return &Count{
		TokenRecognizer: mustTokenRecognizer(TokenAlgo[uint64]{
			AlgoName: name,
			Language: language,
			Passes:   []TokenPass[uint64]{counterPass(coding, "decode counter")},
			// After one pass the counter has been incremented by all n
			// processors (the leader included), so it equals n.
			Verdict: func(v uint64) bool { return predicate(int(v)) },
		}),
		language: language,
		coding:   coding,
	}
}

// NewSquareCount is shorthand for the counting recognizer of the non-regular
// "length is a perfect square" language.
func NewSquareCount() *Count {
	return NewCount(lang.NewPerfectSquareLength())
}

// CountBackward is the bidirectional twin of Count: the counter travels
// Backward around the ring (the leader's first hop uses the p₁–p_n link), so
// it is a genuinely bidirectional algorithm. It exists to exercise the
// Theorem 7 Stage 1 line simulation, which must reroute that first hop the
// long way around.
type CountBackward struct {
	*TokenRecognizer[uint64]
	language *lang.LengthLanguage
}

var _ Recognizer = (*CountBackward)(nil)

// NewCountBackward builds the backward-travelling counting recognizer.
func NewCountBackward(language *lang.LengthLanguage) *CountBackward {
	predicate := language.Predicate()
	return &CountBackward{
		TokenRecognizer: mustTokenRecognizer(TokenAlgo[uint64]{
			AlgoName: "count-backward",
			Language: language,
			Dir:      ring.Backward,
			Passes:   []TokenPass[uint64]{counterPass(CodingDelta, "decode counter")},
			Verdict:  func(v uint64) bool { return predicate(int(v)) },
		}),
		language: language,
	}
}
