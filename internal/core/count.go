package core

import (
	"fmt"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// Count is the counting algorithm discussed in Section 8 of the paper: the
// leader sends a counter around the ring, every processor increments it, and
// after one pass the leader knows n. Message i carries the value i in a
// self-delimiting Elias-δ code of Θ(log i) bits, so the total is Θ(n log n)
// bits — the canonical example of the Ω(n log n) class.
//
// As a recognizer it decides a length language (membership depends only on
// n); with a non-regular length set such as the perfect squares this is a
// non-regular language recognized in Θ(n log n) bits, matching Theorem 4's
// lower bound exactly.
type Count struct {
	language *lang.LengthLanguage
	coding   CounterCoding
}

var _ Recognizer = (*Count)(nil)

// CounterCoding selects how the counter value is encoded in each message.
// The choice is the ablation behind the O(n log n) total: a self-delimiting
// logarithmic code (δ or γ) gives Θ(n log n) bits, while a unary code blows
// the same algorithm up to Θ(n²).
type CounterCoding int

const (
	// CodingDelta uses the Elias-δ code (log n + O(log log n) bits/message).
	CodingDelta CounterCoding = iota + 1
	// CodingGamma uses the Elias-γ code (2 log n + 1 bits/message).
	CodingGamma
	// CodingUnary uses a unary code (n bits/message) — deliberately wasteful,
	// to show the encoding is what keeps the algorithm at Θ(n log n).
	CodingUnary
)

// String implements fmt.Stringer.
func (c CounterCoding) String() string {
	switch c {
	case CodingDelta:
		return "delta"
	case CodingGamma:
		return "gamma"
	case CodingUnary:
		return "unary"
	default:
		return "unknown"
	}
}

// NewCount builds the counting recognizer for a length language using the
// default Elias-δ counter coding.
func NewCount(language *lang.LengthLanguage) *Count {
	return &Count{language: language, coding: CodingDelta}
}

// NewCountWithCoding builds the counting recognizer with an explicit counter
// coding (used by the encoding ablation).
func NewCountWithCoding(language *lang.LengthLanguage, coding CounterCoding) *Count {
	return &Count{language: language, coding: coding}
}

// writeCounter encodes v with the recognizer's coding.
func (c *Count) writeCounter(w *bits.Writer, v uint64) {
	switch c.coding {
	case CodingGamma:
		w.WriteGammaValue(v)
	case CodingUnary:
		w.WriteUnary(v)
	default:
		w.WriteDeltaValue(v)
	}
}

// readCounter decodes a counter written by writeCounter.
func (c *Count) readCounter(r *bits.Reader) (uint64, error) {
	switch c.coding {
	case CodingGamma:
		return r.ReadGammaValue()
	case CodingUnary:
		return r.ReadUnary()
	default:
		return r.ReadDeltaValue()
	}
}

// NewSquareCount is shorthand for the counting recognizer of the non-regular
// "length is a perfect square" language.
func NewSquareCount() *Count {
	return NewCount(lang.NewPerfectSquareLength())
}

// Name implements Recognizer.
func (c *Count) Name() string {
	if c.coding != CodingDelta {
		return "count-" + c.coding.String()
	}
	return "count"
}

// Language implements Recognizer.
func (c *Count) Language() lang.Language { return c.language }

// Mode implements Recognizer.
func (c *Count) Mode() ring.Mode { return ring.Unidirectional }

// NewNodes implements Recognizer.
func (c *Count) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i := range word {
		nodes[i] = &countNode{algo: c, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// countNode is the per-processor logic of the counting pass.
type countNode struct {
	algo   *Count
	leader bool
}

// Start implements ring.Node: the leader counts itself and sends 1.
func (n *countNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	var w bits.Writer
	n.algo.writeCounter(&w, 1)
	return []ring.Send{ring.SendForward(w.String())}, nil
}

// Receive implements ring.Node.
func (n *countNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	v, err := n.algo.readCounter(bits.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("count: decode counter: %w", err)
	}
	if ctx.IsLeader() {
		// The counter has been incremented by the n-1 followers and started
		// at 1, so it now equals n.
		if n.algo.language.Predicate()(int(v)) {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	var w bits.Writer
	n.algo.writeCounter(&w, v+1)
	return []ring.Send{ring.SendForward(w.String())}, nil
}

// CountBackward is the bidirectional twin of Count: the counter travels
// Backward around the ring (the leader's first hop uses the p₁–p_n link), so
// it is a genuinely bidirectional algorithm. It exists to exercise the
// Theorem 7 Stage 1 line simulation, which must reroute that first hop the
// long way around.
type CountBackward struct {
	language *lang.LengthLanguage
}

var _ Recognizer = (*CountBackward)(nil)

// NewCountBackward builds the backward-travelling counting recognizer.
func NewCountBackward(language *lang.LengthLanguage) *CountBackward {
	return &CountBackward{language: language}
}

// Name implements Recognizer.
func (c *CountBackward) Name() string { return "count-backward" }

// Language implements Recognizer.
func (c *CountBackward) Language() lang.Language { return c.language }

// Mode implements Recognizer.
func (c *CountBackward) Mode() ring.Mode { return ring.Bidirectional }

// NewNodes implements Recognizer.
func (c *CountBackward) NewNodes(word lang.Word) ([]ring.Node, error) {
	nodes := make([]ring.Node, len(word))
	for i := range word {
		nodes[i] = &countBackwardNode{algo: c, leader: i == ring.LeaderIndex}
	}
	return nodes, nil
}

// countBackwardNode mirrors countNode but sends Backward.
type countBackwardNode struct {
	algo   *CountBackward
	leader bool
}

// Start implements ring.Node.
func (n *countBackwardNode) Start(ctx *ring.Context) ([]ring.Send, error) {
	if !ctx.IsLeader() {
		return nil, nil
	}
	var w bits.Writer
	w.WriteDeltaValue(1)
	return []ring.Send{ring.SendBackward(w.String())}, nil
}

// Receive implements ring.Node.
func (n *countBackwardNode) Receive(ctx *ring.Context, _ ring.Direction, payload bits.String) ([]ring.Send, error) {
	v, err := bits.NewReader(payload).ReadDeltaValue()
	if err != nil {
		return nil, fmt.Errorf("count-backward: decode counter: %w", err)
	}
	if ctx.IsLeader() {
		if n.algo.language.Predicate()(int(v)) {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	var w bits.Writer
	w.WriteDeltaValue(v + 1)
	return []ring.Send{ring.SendBackward(w.String())}, nil
}
