package core

import (
	"fmt"
	"math"

	"ringlang/internal/bits"
	"ringlang/internal/lang"
)

// This file states, in code, the bit-complexity formulas the paper assigns to
// each algorithm, as checkable envelopes. Each model predicts a [lower,
// upper] band for BIT(n); the test suite and the verification tool run the
// algorithms and assert the measured totals stay inside the band. This is the
// closest executable analogue of the paper's per-algorithm analyses.

// ComplexityModel is a predicted bit-complexity envelope for one recognizer.
type ComplexityModel struct {
	// Algorithm is the recognizer name the model applies to.
	Algorithm string
	// Claim is the paper's asymptotic statement.
	Claim string
	// Lower and Upper bound BIT(n) for a ring of size n. Lower is allowed to
	// be loose (it exists to catch accidental "too cheap to be true"
	// regressions such as an algorithm silently skipping processors).
	Lower func(n int) float64
	Upper func(n int) float64
}

// Contains reports whether a measured total lies inside the envelope.
func (m ComplexityModel) Contains(n, measuredBits int) bool {
	b := float64(measuredBits)
	return b >= m.Lower(n) && b <= m.Upper(n)
}

// Describe renders the check for error messages.
func (m ComplexityModel) Describe(n, measuredBits int) string {
	return fmt.Sprintf("%s at n=%d: measured %d bits, envelope [%.0f, %.0f] (%s)",
		m.Algorithm, n, measuredBits, m.Lower(n), m.Upper(n), m.Claim)
}

func log2n(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// deltaBits bounds the Elias-δ code length for values up to v.
func deltaBits(v int) float64 {
	if v < 1 {
		v = 1
	}
	return float64(bits.DeltaLen(uint64(v)))
}

// ModelRegularOnePass is the Theorem 1 envelope: exactly ⌈log|Q|⌉ bits per
// processor.
func ModelRegularOnePass(rec *RegularOnePass) ComplexityModel {
	stateBits := float64(rec.StateBits())
	return ComplexityModel{
		Algorithm: rec.Name(),
		Claim:     "Theorem 1: BIT(n) = ⌈log|Q|⌉·n",
		Lower:     func(n int) float64 { return stateBits * float64(n) },
		Upper:     func(n int) float64 { return stateBits * float64(n) },
	}
}

// ModelCount is the counting-pass envelope: n messages of one δ-coded counter
// each, i.e. Θ(n log n).
func ModelCount() ComplexityModel {
	return ComplexityModel{
		Algorithm: "count",
		Claim:     "Section 8 example: BIT(n) = Θ(n log n)",
		Lower:     func(n int) float64 { return float64(n) },
		Upper:     func(n int) float64 { return float64(n) * (deltaBits(n) + 1) },
	}
}

// ModelThreeCounters is the Section 7 note 2 envelope: three δ-coded counters
// plus three header bits per message.
func ModelThreeCounters() ComplexityModel {
	return ComplexityModel{
		Algorithm: "three-counters",
		Claim:     "Section 7.2: BIT(n) = O(n log n)",
		Lower:     func(n int) float64 { return 3 * float64(n) },
		Upper:     func(n int) float64 { return float64(n) * (3*deltaBits(n) + 3) },
	}
}

// ModelBalancedCounter is the Dyck depth-counter envelope.
func ModelBalancedCounter() ComplexityModel {
	return ComplexityModel{
		Algorithm: "balanced-counter",
		Claim:     "extension of Section 7.2: BIT(n) = O(n log n)",
		Lower:     func(n int) float64 { return 2 * float64(n) },
		Upper:     func(n int) float64 { return float64(n) * (deltaBits(n) + 1) },
	}
}

// ModelCompareWcW is the Section 7 note 1 envelope: the queue peaks at
// ⌈n/2⌉ letters, so the total sits between n²/8 and roughly n²/2 plus
// per-message headers.
func ModelCompareWcW() ComplexityModel {
	return ComplexityModel{
		Algorithm: "compare-wcw",
		Claim:     "Section 7.1: BIT(n) = Θ(n²)",
		Lower:     func(n int) float64 { return float64(n) * float64(n) / 8 },
		Upper:     func(n int) float64 { return float64(n)*float64(n)/2 + float64(n)*(deltaBits(n)+4) },
	}
}

// ModelCollectAll is the universal upper bound: message i carries i letters
// of ⌈log|Σ|⌉ bits plus a δ-coded length.
func ModelCollectAll(rec *CollectAll) ComplexityModel {
	letterBits := float64(bits.UintWidth(uint64(rec.Language().Alphabet().Size() - 1)))
	return ComplexityModel{
		Algorithm: "collect-all",
		Claim:     "Section 1: BIT(n) = O(n² log|Σ|)",
		Lower:     func(n int) float64 { return letterBits * float64(n) * float64(n) / 2 },
		Upper: func(n int) float64 {
			return letterBits*float64(n+1)*float64(n)/2 + float64(n)*(deltaBits(n)+1)
		},
	}
}

// ModelLg is the Section 7 note 3 envelope: a counting pass plus a window
// pass of p(n) letters (+ headers) per message; with known n the counting
// pass disappears.
func ModelLg(rec *LgRecognizer) ComplexityModel {
	language, _ := rec.Language().(*lang.Lg)
	return ComplexityModel{
		Algorithm: rec.Name(),
		Claim:     "Section 7.3/7.4: BIT(n) = Θ(g(n)) (+ n log n when n is unknown)",
		Lower: func(n int) float64 {
			return float64(language.Period(n)) * float64(n) / 2
		},
		Upper: func(n int) float64 {
			p := language.Period(n)
			window := float64(n) * (float64(p) + 2*deltaBits(p) + deltaBits(n) + 1)
			if rec.KnownN() {
				return window
			}
			return window + float64(n)*(deltaBits(n)+1)
		},
	}
}

// ModelParityTwoPass is the exact Section 7 note 5 two-pass formula.
func ModelParityTwoPass(language *lang.ParityIndex) ComplexityModel {
	k := language.K()
	return ComplexityModel{
		Algorithm: "parity-two-pass",
		Claim:     "Section 7.5: BIT(n) = (2k+1)·n",
		Lower:     func(n int) float64 { return float64((2*k + 1) * n) },
		Upper:     func(n int) float64 { return float64((2*k + 1) * n) },
	}
}

// ModelParityOnePass is the exact Section 7 note 5 one-pass formula.
func ModelParityOnePass(language *lang.ParityIndex) ComplexityModel {
	k := language.K()
	return ComplexityModel{
		Algorithm: "parity-one-pass",
		Claim:     "Section 7.5: BIT(n) = (k+2^k−1)·n",
		Lower:     func(n int) float64 { return float64((k + (1 << uint(k)) - 1) * n) },
		Upper:     func(n int) float64 { return float64((k + (1 << uint(k)) - 1) * n) },
	}
}

// StandardModels pairs ready-made recognizers with their envelopes; the
// verification test sweeps all of them.
func StandardModels() ([]Recognizer, []ComplexityModel, error) {
	regs, err := lang.StandardRegularLanguages()
	if err != nil {
		return nil, nil, err
	}
	parity3, err := lang.NewParityIndex(3)
	if err != nil {
		return nil, nil, err
	}
	var recs []Recognizer
	var models []ComplexityModel

	for _, reg := range regs {
		rec := NewRegularOnePass(reg)
		recs = append(recs, rec)
		models = append(models, ModelRegularOnePass(rec))
	}
	countRec := NewSquareCount()
	recs = append(recs, countRec)
	models = append(models, ModelCount())

	recs = append(recs, NewThreeCounters())
	models = append(models, ModelThreeCounters())

	recs = append(recs, NewMajority())
	models = append(models, ModelMajority())

	recs = append(recs, NewBalancedCounter())
	models = append(models, ModelBalancedCounter())

	recs = append(recs, NewCompareWcW())
	models = append(models, ModelCompareWcW())

	collect := NewCollectAll(lang.NewAnBnCn())
	recs = append(recs, collect)
	models = append(models, ModelCollectAll(collect))

	for _, g := range lang.StandardGrowthFuncs() {
		unknown := NewLgRecognizer(lang.NewLg(g))
		known := NewLgRecognizerKnownN(lang.NewLg(g))
		recs = append(recs, unknown, known)
		models = append(models, ModelLg(unknown), ModelLg(known))
	}

	recs = append(recs, NewParityTwoPass(parity3))
	models = append(models, ModelParityTwoPass(parity3))
	recs = append(recs, NewParityOnePass(parity3))
	models = append(models, ModelParityOnePass(parity3))

	return recs, models, nil
}
