package bits

// Fuzz targets for the codec round-trips. Every message on the ring is built
// from these primitives, so "whatever the writer emits, the reader recovers,
// at any bit alignment" is the package's load-bearing invariant. CI runs each
// target briefly (see .github/workflows/ci.yml); longer local sessions with
// `go test -fuzz=FuzzX ./internal/bits` extend the corpus.

import (
	"testing"
)

// FuzzUintRoundTrip checks fixed-width fields at every alignment: a prefix of
// `pad` bits shifts the field off byte boundaries, exercising the
// byte-at-a-time fast paths' unaligned branches.
func FuzzUintRoundTrip(f *testing.F) {
	f.Add(uint64(0), 1, uint(0))
	f.Add(uint64(1), 1, uint(1))
	f.Add(uint64(255), 8, uint(3))
	f.Add(uint64(0xDEADBEEF), 32, uint(7))
	f.Add(^uint64(0), 64, uint(5))
	f.Add(uint64(42), 200, uint(2)) // width clamps to 64
	f.Fuzz(func(t *testing.T, v uint64, width int, pad uint) {
		// Mask rather than negate: -math.MinInt overflows back to negative.
		width &= 0x7F
		pad %= 16
		var w Writer
		for i := uint(0); i < pad; i++ {
			w.WriteBool(i%2 == 0)
		}
		w.WriteUint(v, width)
		effWidth := width
		if effWidth > 64 {
			effWidth = 64
		}
		wantLen := int(pad) + effWidth
		if w.Len() != wantLen {
			t.Fatalf("WriteUint(%d, %d) after %d pad bits wrote %d bits, want %d", v, width, pad, w.Len(), wantLen)
		}
		want := v
		if effWidth < 64 {
			want &= 1<<uint(effWidth) - 1
		}
		r := NewReader(w.String())
		for i := uint(0); i < pad; i++ {
			if _, err := r.ReadBool(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := r.ReadUint(effWidth)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip of %d at width %d pad %d: got %d", v, width, pad, got)
		}
		if !r.AtEnd() {
			t.Fatalf("%d bits left over", r.Remaining())
		}
	})
}

// FuzzEliasRoundTrip interleaves the self-delimiting codes (unary, Elias γ,
// Elias δ) with misaligning single bits and checks both the decoded values
// and the documented code lengths.
func FuzzEliasRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), false)
	f.Add(uint64(1), uint64(0), true)
	f.Add(uint64(127), uint64(128), false)
	f.Add(^uint64(0)-1, uint64(1)<<62, true)
	f.Fuzz(func(t *testing.T, a, b uint64, bit bool) {
		// The value codecs encode v+1, so the single value 2^64-1 wraps and
		// does not round-trip; no ring message can carry it (payload values
		// are counters bounded by the ring size), so it is excluded here.
		if a == ^uint64(0) {
			a--
		}
		if b == ^uint64(0) {
			b--
		}
		unary := a % 300
		var w Writer
		w.WriteBool(bit)
		w.WriteGammaValue(a)
		w.WriteDeltaValue(b)
		w.WriteUnary(unary)
		w.WriteDeltaValue(a)
		wantLen := 1 + GammaLen(a) + DeltaLen(b) + int(unary) + 1 + DeltaLen(a)
		if w.Len() != wantLen {
			t.Fatalf("wrote %d bits, length formulas say %d", w.Len(), wantLen)
		}
		r := NewReader(w.String())
		gotBit, err := r.ReadBool()
		if err != nil || gotBit != bit {
			t.Fatalf("bit: %v %v", gotBit, err)
		}
		if got, err := r.ReadGammaValue(); err != nil || got != a {
			t.Fatalf("gamma(%d): got %d, err %v", a, got, err)
		}
		if got, err := r.ReadDeltaValue(); err != nil || got != b {
			t.Fatalf("delta(%d): got %d, err %v", b, got, err)
		}
		if got, err := r.ReadUnary(); err != nil || got != unary {
			t.Fatalf("unary(%d): got %d, err %v", unary, got, err)
		}
		if got, err := r.ReadDeltaValue(); err != nil || got != a {
			t.Fatalf("delta(%d): got %d, err %v", a, got, err)
		}
		if !r.AtEnd() {
			t.Fatalf("%d bits left over", r.Remaining())
		}
	})
}

// FuzzReaderRobust feeds arbitrary bytes to every decoder: they may reject
// the input but must never panic, and must never read past the end.
func FuzzReaderRobust(f *testing.F) {
	f.Add([]byte{}, uint(0))
	f.Add([]byte{0x00}, uint(3))
	f.Add([]byte{0xFF, 0xFF, 0xFF}, uint(24))
	f.Add([]byte{0x55, 0xAA, 0x01, 0x80}, uint(30))
	f.Fuzz(func(t *testing.T, data []byte, nbits uint) {
		n := int(nbits) % (len(data)*8 + 1)
		var w Writer
		for i := 0; i < n; i++ {
			w.WriteBool(data[i/8]>>(7-i%8)&1 == 1)
		}
		s := w.String()
		if s.Len() != n {
			t.Fatalf("built %d bits, want %d", s.Len(), n)
		}
		decoders := []func(r *Reader) error{
			func(r *Reader) error { _, err := r.ReadBool(); return err },
			func(r *Reader) error { _, err := r.ReadUint(17); return err },
			func(r *Reader) error { _, err := r.ReadUnary(); return err },
			func(r *Reader) error { _, err := r.ReadGammaValue(); return err },
			func(r *Reader) error { _, err := r.ReadDeltaValue(); return err },
			func(r *Reader) error { _, err := r.ReadString(r.Remaining()); return err },
		}
		for i, decode := range decoders {
			r := NewReader(s)
			for decode(r) == nil {
				if r.Remaining() < 0 {
					t.Fatalf("decoder %d read past the end", i)
				}
				if r.AtEnd() {
					break
				}
			}
		}
	})
}
