package bits

import "testing"

// TestCodecHotPathAllocs is the guard= target of the //ring:hotpath
// directives on Writer.WriteBool/WriteUint and Reader.ReadBool/ReadUint:
// once a reused Writer's backing has grown past warm-up, a full
// encode/decode round trip performs zero allocations. Every message codec
// in the module funnels through these four functions, so this pins the
// per-message floor the engine alloc guards build on.
func TestCodecHotPathAllocs(t *testing.T) {
	var w Writer
	var r Reader
	round := func() {
		w.Reset()
		w.WriteBool(true)
		w.WriteUint(0xDEAD, 16)
		w.WriteGammaValue(41)
		w.WriteDeltaValue(1023)
		r.Reset(w.BitString())
		if _, err := r.ReadBool(); err != nil {
			t.Fatal(err)
		}
		if v, err := r.ReadUint(16); err != nil || v != 0xDEAD {
			t.Fatalf("ReadUint = %#x, %v", v, err)
		}
		if v, err := r.ReadGammaValue(); err != nil || v != 41 {
			t.Fatalf("ReadGammaValue = %d, %v", v, err)
		}
		if v, err := r.ReadDeltaValue(); err != nil || v != 1023 {
			t.Fatalf("ReadDeltaValue = %d, %v", v, err)
		}
	}
	round() // warm-up: grow the writer's backing once
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("warm codec round trip allocates %.1f times per run; the hot path must be allocation-free", allocs)
	}
}
