package bits

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when a Reader runs out of bits mid-field.
var ErrTruncated = errors.New("bits: truncated payload")

// Reader consumes a bit string field by field, mirroring Writer.
type Reader struct {
	s   String
	pos int
}

// NewReader returns a Reader positioned at the start of s.
func NewReader(s String) *Reader {
	return &Reader{s: s}
}

// Reset repositions the reader at the start of s, allowing one Reader value
// to decode many payloads without a per-message allocation.
func (r *Reader) Reset(s String) {
	r.s = s
	r.pos = 0
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return r.s.n - r.pos
}

// AtEnd reports whether every bit has been consumed.
func (r *Reader) AtEnd() bool {
	return r.Remaining() == 0
}

// ReadBool consumes a single bit.
//
//ring:hotpath guard=TestCodecHotPathAllocs
func (r *Reader) ReadBool() (bool, error) {
	if r.pos >= r.s.n {
		return false, fmt.Errorf("%w: reading bool at %d", ErrTruncated, r.pos)
	}
	b, err := r.s.Bit(r.pos)
	if err != nil {
		return false, err
	}
	r.pos++
	return b, nil
}

// ReadUint consumes `width` bits and returns them as an unsigned integer
// (most significant bit first). Like WriteUint it moves a byte at a time:
// every message decode funnels through here.
//
//ring:hotpath guard=TestCodecHotPathAllocs
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width <= 0 {
		return 0, nil
	}
	if width > 64 {
		width = 64
	}
	if r.pos+width > r.s.n {
		return 0, fmt.Errorf("read uint width %d: %w: reading bool at %d", width, ErrTruncated, r.s.n)
	}
	var v uint64
	for width > 0 {
		off := r.pos % 8
		space := 8 - off
		k := width
		if k > space {
			k = space
		}
		chunk := r.s.data[r.pos/8] >> uint(space-k) & (1<<uint(k) - 1)
		v = v<<uint(k) | uint64(chunk)
		r.pos += k
		width -= k
	}
	return v, nil
}

// ReadString consumes `width` bits and returns them as a bit string.
func (r *Reader) ReadString(width int) (String, error) {
	var w Writer
	for i := 0; i < width; i++ {
		b, err := r.ReadBool()
		if err != nil {
			return String{}, fmt.Errorf("read string width %d: %w", width, err)
		}
		w.WriteBool(b)
	}
	return w.String(), nil
}

// ReadUnary consumes a unary code (ones terminated by a zero). Runs of ones
// grow linearly with the ring size under the unary counter ablation, so
// aligned all-ones bytes are consumed whole, mirroring WriteUnary.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		for r.pos%8 == 0 && r.pos+8 <= r.s.n && r.s.data[r.pos/8] == 0xFF {
			r.pos += 8
			v += 8
		}
		b, err := r.ReadBool()
		if err != nil {
			return 0, fmt.Errorf("read unary: %w", err)
		}
		if !b {
			return v, nil
		}
		v++
	}
}

// ReadEliasGamma consumes an Elias gamma code and returns the positive
// integer it encodes.
func (r *Reader) ReadEliasGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBool()
		if err != nil {
			return 0, fmt.Errorf("read gamma prefix: %w", err)
		}
		if b {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, errors.New("bits: gamma code exceeds 64-bit range")
		}
	}
	// The leading 1 of the value has been consumed; read the remaining bits.
	rest, err := r.ReadUint(zeros)
	if err != nil {
		return 0, fmt.Errorf("read gamma value: %w", err)
	}
	return 1<<uint(zeros) | rest, nil
}

// ReadGammaValue consumes a value written with Writer.WriteGammaValue.
func (r *Reader) ReadGammaValue() (uint64, error) {
	v, err := r.ReadEliasGamma()
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// ReadEliasDelta consumes an Elias delta code and returns the positive
// integer it encodes.
func (r *Reader) ReadEliasDelta() (uint64, error) {
	n, err := r.ReadEliasGamma()
	if err != nil {
		return 0, fmt.Errorf("read delta length: %w", err)
	}
	if n == 0 || n > 64 {
		return 0, errors.New("bits: delta code length out of range")
	}
	rest, err := r.ReadUint(int(n - 1))
	if err != nil {
		return 0, fmt.Errorf("read delta value: %w", err)
	}
	return 1<<uint(n-1) | rest, nil
}

// ReadDeltaValue consumes a value written with Writer.WriteDeltaValue.
func (r *Reader) ReadDeltaValue() (uint64, error) {
	v, err := r.ReadEliasDelta()
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}
