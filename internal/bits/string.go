package bits

import (
	"errors"
	"fmt"
	"strings"
)

// String is an immutable-by-convention sequence of bits. The zero value is an
// empty string. It is the payload type carried by every ring message; its
// Len is the quantity the complexity results count.
type String struct {
	// data holds the bits packed most-significant-bit first within each byte.
	data []byte
	// n is the number of valid bits in data.
	n int
}

// ErrOutOfRange is returned when a bit index is outside [0, Len).
var ErrOutOfRange = errors.New("bits: index out of range")

// Empty returns an empty bit string.
func Empty() String {
	return String{}
}

// FromBools builds a String from a slice of booleans, one bit per element.
func FromBools(bs []bool) String {
	var w Writer
	for _, b := range bs {
		w.WriteBool(b)
	}
	return w.String()
}

// FromBinary parses a string of '0' and '1' runes (other runes are rejected).
func FromBinary(s string) (String, error) {
	var w Writer
	for _, r := range s {
		switch r {
		case '0':
			w.WriteBool(false)
		case '1':
			w.WriteBool(true)
		default:
			return String{}, fmt.Errorf("bits: invalid binary rune %q", r)
		}
	}
	return w.String(), nil
}

// MustFromBinary is FromBinary that panics on malformed input. It is intended
// for constant test fixtures only.
func MustFromBinary(s string) String {
	bs, err := FromBinary(s)
	if err != nil {
		panic(err)
	}
	return bs
}

// View wraps the first n bits of data (packed MSB-first, the layout Raw
// returns) as a String without copying. The view aliases data: it is valid
// only for as long as the caller keeps those bytes intact. The engine's
// payload arenas use it to hand queued messages back out of flat storage.
func View(data []byte, n int) String {
	return String{data: data, n: n}
}

// Raw returns the packed backing bytes of the string — ceil(Len/8) bytes,
// MSB-first, with any trailing bits of the last byte unspecified. The slice
// aliases the string's storage and must not be mutated; pair with View to
// move payloads through flat byte arenas without re-encoding bit by bit.
func (s String) Raw() []byte {
	return s.data[:(s.n+7)/8]
}

// Len returns the number of bits in the string.
func (s String) Len() int {
	return s.n
}

// IsEmpty reports whether the string contains no bits.
func (s String) IsEmpty() bool {
	return s.n == 0
}

// Bit returns the i-th bit (0-indexed from the first written bit).
func (s String) Bit(i int) (bool, error) {
	if i < 0 || i >= s.n {
		return false, fmt.Errorf("%w: %d (len %d)", ErrOutOfRange, i, s.n)
	}
	byteIdx := i / 8
	bitIdx := uint(7 - i%8)
	return s.data[byteIdx]>>bitIdx&1 == 1, nil
}

// Bools expands the string into a slice of booleans.
func (s String) Bools() []bool {
	out := make([]bool, s.n)
	for i := 0; i < s.n; i++ {
		b, _ := s.Bit(i)
		out[i] = b
	}
	return out
}

// Binary renders the string as a sequence of '0'/'1' characters.
func (s String) Binary() string {
	var sb strings.Builder
	sb.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b, _ := s.Bit(i)
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// String implements fmt.Stringer; it shows the length and a (possibly
// truncated) binary rendering, which keeps traces readable.
func (s String) String() string {
	const maxShown = 64
	bin := s.Binary()
	if len(bin) > maxShown {
		bin = bin[:maxShown] + "..."
	}
	return fmt.Sprintf("bits[%d]{%s}", s.n, bin)
}

// Equal reports whether two bit strings have identical length and content.
func (s String) Equal(other String) bool {
	if s.n != other.n {
		return false
	}
	full := s.n / 8
	for i := 0; i < full; i++ {
		if s.data[i] != other.data[i] {
			return false
		}
	}
	rem := s.n % 8
	if rem == 0 {
		return true
	}
	mask := byte(0xFF << uint(8-rem))
	return s.data[full]&mask == other.data[full]&mask
}

// Concat returns the concatenation s followed by other.
func (s String) Concat(other String) String {
	var w Writer
	w.WriteString(s)
	w.WriteString(other)
	return w.String()
}

// Clone returns a deep copy of the string. Because String is treated as
// immutable this is rarely necessary, but the engine clones payloads at trust
// boundaries so a misbehaving algorithm cannot mutate recorded traces.
func (s String) Clone() String {
	data := make([]byte, len(s.data))
	copy(data, s.data)
	return String{data: data, n: s.n}
}

// Key returns a compact comparable representation usable as a map key. Two
// strings have the same key iff Equal reports true.
func (s String) Key() string {
	full := s.n / 8
	rem := s.n % 8
	buf := make([]byte, 0, len(s.data)+2)
	buf = append(buf, byte(s.n>>8), byte(s.n))
	buf = append(buf, s.data[:full]...)
	if rem != 0 {
		mask := byte(0xFF << uint(8-rem))
		buf = append(buf, s.data[full]&mask)
	}
	return string(buf)
}
