package bits

import "math/bits"

// Writer composes a bit string field by field. The zero value is ready to
// use. Writers are not safe for concurrent use.
type Writer struct {
	data []byte
	n    int
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int {
	return w.n
}

// WriteBool appends a single bit.
//
//ring:hotpath guard=TestCodecHotPathAllocs
func (w *Writer) WriteBool(b bool) {
	byteIdx := w.n / 8
	if byteIdx == len(w.data) {
		w.data = append(w.data, 0) //ring:prealloc -- the writer's backing is reused scratch; growth is warm-up only
	}
	if b {
		bitIdx := uint(7 - w.n%8)
		w.data[byteIdx] |= 1 << bitIdx
	}
	w.n++
}

// WriteUint appends the low `width` bits of v, most significant bit first.
// Width zero writes nothing. Widths above 64 are clamped to 64.
//
// The write proceeds a byte at a time regardless of the writer's current bit
// alignment: every message codec funnels through here (fixed-width fields and
// the binary tails of the Elias codes), so this is the encode hot path.
//
//ring:hotpath guard=TestCodecHotPathAllocs
func (w *Writer) WriteUint(v uint64, width int) {
	if width <= 0 {
		return
	}
	if width > 64 {
		width = 64
	} else {
		v &= 1<<uint(width) - 1
	}
	for width > 0 {
		off := w.n % 8
		if off == 0 {
			w.data = append(w.data, 0) //ring:prealloc -- the writer's backing is reused scratch; growth is warm-up only
		}
		space := 8 - off
		k := width
		if k > space {
			k = space
		}
		chunk := byte(v >> uint(width-k))
		w.data[len(w.data)-1] |= chunk << uint(space-k)
		w.n += k
		width -= k
	}
}

// WriteString appends an existing bit string, a byte at a time.
func (w *Writer) WriteString(s String) {
	full := s.n / 8
	for i := 0; i < full; i++ {
		w.WriteUint(uint64(s.data[i]), 8)
	}
	if rem := s.n % 8; rem > 0 {
		w.WriteUint(uint64(s.data[full]>>uint(8-rem)), rem)
	}
}

// WriteUnary appends v as a unary code: v ones followed by a zero. It is used
// only by tests and by deliberately wasteful baseline encodings, whose runs of
// ones grow linearly with the ring size — hence the whole-byte fast path.
func (w *Writer) WriteUnary(v uint64) {
	for v > 0 && w.n%8 != 0 {
		w.WriteBool(true)
		v--
	}
	for v >= 8 {
		w.data = append(w.data, 0xFF)
		w.n += 8
		v -= 8
	}
	for ; v > 0; v-- {
		w.WriteBool(true)
	}
	w.WriteBool(false)
}

// WriteEliasGamma appends v >= 1 using the Elias gamma code
// (⌊log2 v⌋ zeros, then the binary representation of v). The code length is
// 2⌊log2 v⌋ + 1 bits.
func (w *Writer) WriteEliasGamma(v uint64) {
	if v == 0 {
		// Gamma is defined for positive integers; shift by one so that the
		// full uint64 range round-trips. Decoders undo the shift.
		v = 1
	}
	n := bits.Len64(v) - 1 // ⌊log2 v⌋
	w.WriteUint(0, n)
	w.WriteUint(v, n+1)
}

// WriteGammaValue appends an arbitrary uint64 (including zero) by encoding
// v+1 with Elias gamma.
func (w *Writer) WriteGammaValue(v uint64) {
	w.WriteEliasGamma(v + 1)
}

// WriteEliasDelta appends v >= 1 using the Elias delta code (the length of v
// is itself gamma coded). Asymptotically log2 v + O(log log v) bits.
func (w *Writer) WriteEliasDelta(v uint64) {
	if v == 0 {
		v = 1
	}
	n := bits.Len64(v) // number of binary digits of v
	w.WriteEliasGamma(uint64(n))
	// Emit v without its leading 1 bit (the gamma code of n carries it).
	w.WriteUint(v, n-1)
}

// WriteDeltaValue appends an arbitrary uint64 (including zero) by encoding
// v+1 with Elias delta.
func (w *Writer) WriteDeltaValue(v uint64) {
	w.WriteEliasDelta(v + 1)
}

// String returns the accumulated bit string. The Writer may continue to be
// used afterwards; the returned String is a snapshot.
func (w *Writer) String() String {
	data := make([]byte, len(w.data))
	copy(data, w.data)
	return String{data: data, n: w.n}
}

// BitString returns the accumulated bits as a String that aliases the
// writer's buffer — no copy is made. The returned String is valid only until
// the writer's next Write or Reset; callers that hand it to longer-lived
// consumers must uphold that discipline themselves (the ring engine's
// single-token payload path does) or snapshot with String instead.
func (w *Writer) BitString() String {
	return String{data: w.data, n: w.n}
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.data = w.data[:0]
	w.n = 0
}

// GammaLen returns the number of bits WriteGammaValue(v) would emit.
func GammaLen(v uint64) int {
	return 2*(bits.Len64(v+1)-1) + 1
}

// DeltaLen returns the number of bits WriteDeltaValue(v) would emit.
func DeltaLen(v uint64) int {
	n := bits.Len64(v + 1)
	return GammaLenPositive(uint64(n)) + n - 1
}

// GammaLenPositive returns the gamma code length of a positive integer.
func GammaLenPositive(v uint64) int {
	if v == 0 {
		v = 1
	}
	return 2*(bits.Len64(v)-1) + 1
}

// UintWidth returns the minimum fixed width (in bits) able to represent every
// value in [0, max]. It is the ⌈log₂(max+1)⌉ quantity that appears throughout
// the paper as ⌈log |Q|⌉.
func UintWidth(max uint64) int {
	if max == 0 {
		return 1
	}
	return bits.Len64(max)
}
