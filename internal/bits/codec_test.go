package bits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWriteReadUint(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
	}{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9}, {1 << 20, 21},
		{math.MaxUint64, 64}, {12345, 64},
	}
	for _, c := range cases {
		var w Writer
		w.WriteUint(c.v, c.width)
		if w.Len() != c.width {
			t.Errorf("WriteUint(%d,%d) wrote %d bits", c.v, c.width, w.Len())
		}
		r := NewReader(w.String())
		got, err := r.ReadUint(c.width)
		if err != nil {
			t.Fatalf("ReadUint: %v", err)
		}
		if got != c.v {
			t.Errorf("round trip %d width %d = %d", c.v, c.width, got)
		}
		if !r.AtEnd() {
			t.Errorf("reader not at end after reading %d bits", c.width)
		}
	}
}

func TestEliasGammaKnownCodes(t *testing.T) {
	// Canonical gamma codewords.
	want := map[uint64]string{
		1: "1",
		2: "010",
		3: "011",
		4: "00100",
		5: "00101",
		8: "0001000",
	}
	for v, code := range want {
		var w Writer
		w.WriteEliasGamma(v)
		if got := w.String().Binary(); got != code {
			t.Errorf("gamma(%d) = %s, want %s", v, got, code)
		}
	}
}

func TestEliasDeltaKnownCodes(t *testing.T) {
	want := map[uint64]string{
		1:  "1",
		2:  "0100",
		3:  "0101",
		4:  "01100",
		10: "00100010",
	}
	for v, code := range want {
		var w Writer
		w.WriteEliasDelta(v)
		if got := w.String().Binary(); got != code {
			t.Errorf("delta(%d) = %s, want %s", v, got, code)
		}
	}
}

func TestGammaDeltaRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 100, 1023, 1024, 1 << 30, 1<<62 - 1}
	for _, v := range values {
		var w Writer
		w.WriteGammaValue(v)
		w.WriteDeltaValue(v)
		r := NewReader(w.String())
		g, err := r.ReadGammaValue()
		if err != nil {
			t.Fatalf("ReadGammaValue(%d): %v", v, err)
		}
		d, err := r.ReadDeltaValue()
		if err != nil {
			t.Fatalf("ReadDeltaValue(%d): %v", v, err)
		}
		if g != v || d != v {
			t.Errorf("round trip %d: gamma=%d delta=%d", v, g, d)
		}
		if !r.AtEnd() {
			t.Errorf("leftover bits after decoding %d", v)
		}
	}
}

func TestGammaDeltaLengths(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 5, 63, 64, 1000, 1 << 20} {
		var w Writer
		w.WriteGammaValue(v)
		if w.Len() != GammaLen(v) {
			t.Errorf("GammaLen(%d) = %d, actual %d", v, GammaLen(v), w.Len())
		}
		var w2 Writer
		w2.WriteDeltaValue(v)
		if w2.Len() != DeltaLen(v) {
			t.Errorf("DeltaLen(%d) = %d, actual %d", v, DeltaLen(v), w2.Len())
		}
	}
}

func TestGammaLengthIsLogarithmic(t *testing.T) {
	// 2⌊log2(v+1)⌋+1 ≤ 2 log2(v+1) + 1.
	for _, v := range []uint64{10, 100, 1000, 1 << 20, 1 << 40} {
		bound := 2*math.Log2(float64(v+1)) + 1.0001
		if float64(GammaLen(v)) > bound {
			t.Errorf("GammaLen(%d) = %d exceeds 2log2(v+1)+1 = %f", v, GammaLen(v), bound)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 17, 100} {
		var w Writer
		w.WriteUnary(v)
		if w.Len() != int(v)+1 {
			t.Errorf("unary(%d) length = %d", v, w.Len())
		}
		r := NewReader(w.String())
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary: %v", err)
		}
		if got != v {
			t.Errorf("unary round trip %d = %d", v, got)
		}
	}
}

func TestReaderTruncation(t *testing.T) {
	var w Writer
	w.WriteUint(3, 2)
	r := NewReader(w.String())
	if _, err := r.ReadUint(5); err == nil {
		t.Fatal("expected truncation error")
	}
	r2 := NewReader(Empty())
	if _, err := r2.ReadBool(); err == nil {
		t.Fatal("expected truncation error on empty payload")
	}
	if _, err := NewReader(Empty()).ReadEliasGamma(); err == nil {
		t.Fatal("expected truncation error for gamma on empty payload")
	}
}

func TestUintWidth(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9}
	for v, want := range cases {
		if got := UintWidth(v); got != want {
			t.Errorf("UintWidth(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteUint(0xFF, 8)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("after Reset len = %d", w.Len())
	}
	w.WriteBool(true)
	if got := w.String().Binary(); got != "1" {
		t.Fatalf("after Reset write = %q", got)
	}
}

func TestQuickGammaRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		var w Writer
		w.WriteGammaValue(uint64(v))
		got, err := NewReader(w.String()).ReadGammaValue()
		return err == nil && got == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var w Writer
		w.WriteDeltaValue(v)
		got, err := NewReader(w.String()).ReadDeltaValue()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMixedFieldsRoundTrip(t *testing.T) {
	f := func(a uint16, b bool, c uint32, width8 uint8) bool {
		width := int(width8%16) + 1
		var w Writer
		w.WriteUint(uint64(a)&(1<<uint(width)-1), width)
		w.WriteBool(b)
		w.WriteDeltaValue(uint64(c))
		r := NewReader(w.String())
		ga, err1 := r.ReadUint(width)
		gb, err2 := r.ReadBool()
		gc, err3 := r.ReadDeltaValue()
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return ga == uint64(a)&(1<<uint(width)-1) && gb == b && gc == uint64(c) && r.AtEnd()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
