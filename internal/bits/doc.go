// Package bits provides bit-exact message payloads for the ring algorithms.
//
// The bit complexity results of Mansour & Zaks are stated in terms of the
// total number of bits transmitted over the ring, so every message payload in
// this repository is a bits.String whose length is accounted exactly by the
// ring engine. The package offers a Writer/Reader pair for composing and
// parsing payloads out of fixed-width fields, booleans, letters, and
// self-delimiting Elias gamma/delta encoded integers. Self-delimiting codes
// are what make the O(n log n) counter-based algorithms honest: a counter of
// value v costs Θ(log v) bits and can be decoded without out-of-band length
// information.
package bits
