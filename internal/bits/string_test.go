package bits

import (
	"testing"
	"testing/quick"
)

func TestEmptyString(t *testing.T) {
	s := Empty()
	if s.Len() != 0 {
		t.Fatalf("empty length = %d, want 0", s.Len())
	}
	if !s.IsEmpty() {
		t.Fatal("empty string should report IsEmpty")
	}
	if s.Binary() != "" {
		t.Fatalf("empty binary = %q, want empty", s.Binary())
	}
}

func TestFromBinaryRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "0101", "11111111", "101010101010101010101", "000000001"}
	for _, c := range cases {
		s, err := FromBinary(c)
		if err != nil {
			t.Fatalf("FromBinary(%q): %v", c, err)
		}
		if got := s.Binary(); got != c {
			t.Errorf("Binary() = %q, want %q", got, c)
		}
		if s.Len() != len(c) {
			t.Errorf("Len() = %d, want %d", s.Len(), len(c))
		}
	}
}

func TestFromBinaryRejectsGarbage(t *testing.T) {
	if _, err := FromBinary("01x0"); err == nil {
		t.Fatal("expected error for invalid rune")
	}
}

func TestBitOutOfRange(t *testing.T) {
	s := MustFromBinary("101")
	if _, err := s.Bit(3); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := s.Bit(-1); err == nil {
		t.Fatal("expected out-of-range error for negative index")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := MustFromBinary("10110")
	b := MustFromBinary("10110")
	c := MustFromBinary("10111")
	d := MustFromBinary("101100")
	if !a.Equal(b) {
		t.Error("identical strings should be Equal")
	}
	if a.Equal(c) {
		t.Error("different content should not be Equal")
	}
	if a.Equal(d) {
		t.Error("different lengths should not be Equal")
	}
	if a.Key() != b.Key() {
		t.Error("equal strings must share a Key")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("unequal strings must not share a Key")
	}
}

func TestConcat(t *testing.T) {
	a := MustFromBinary("101")
	b := MustFromBinary("0011")
	got := a.Concat(b)
	if got.Binary() != "1010011" {
		t.Fatalf("Concat = %q, want 1010011", got.Binary())
	}
	if got.Len() != 7 {
		t.Fatalf("Concat length = %d, want 7", got.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	var w Writer
	w.WriteUint(0xAB, 8)
	s := w.String()
	cl := s.Clone()
	if !s.Equal(cl) {
		t.Fatal("clone should be equal to the original")
	}
	// Mutating the writer afterwards must not affect either snapshot.
	w.WriteUint(0xFF, 8)
	if s.Len() != 8 || cl.Len() != 8 {
		t.Fatal("snapshots must be unaffected by further writes")
	}
}

func TestFromBools(t *testing.T) {
	in := []bool{true, false, true, true}
	s := FromBools(in)
	out := s.Bools()
	if len(out) != len(in) {
		t.Fatalf("Bools length = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestStringerTruncates(t *testing.T) {
	var w Writer
	for i := 0; i < 200; i++ {
		w.WriteBool(true)
	}
	s := w.String().String()
	if len(s) > 100 {
		t.Fatalf("String() should truncate long payloads, got %d chars", len(s))
	}
}

func TestQuickBoolsRoundTrip(t *testing.T) {
	f := func(in []bool) bool {
		s := FromBools(in)
		out := s.Bools()
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyConsistency(t *testing.T) {
	f := func(a, b []bool) bool {
		sa, sb := FromBools(a), FromBools(b)
		return sa.Equal(sb) == (sa.Key() == sb.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
