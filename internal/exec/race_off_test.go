//go:build !race

package exec

// raceEnabled reports whether the race detector is compiled in; the timing
// test skips under -race, where the instrumentation overhead (not the pool)
// dominates the ratio.
const raceEnabled = false
