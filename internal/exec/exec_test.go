package exec

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// statsEqual compares the externally observable accounting of two runs.
func statsEqual(a, b *ring.Stats) bool {
	if a.Processors != b.Processors || a.Messages != b.Messages ||
		a.Bits != b.Bits || a.MaxMessageBits != b.MaxMessageBits {
		return false
	}
	return reflect.DeepEqual(flattenPerLink(a), flattenPerLink(b))
}

func flattenPerLink(s *ring.Stats) map[[2]int]ring.LinkStats {
	out := make(map[[2]int]ring.LinkStats)
	for k, v := range s.PerLink() {
		out[k] = *v
	}
	return out
}

// TestPropertyBatchMatchesSerial is the batch-equivalence property: RunBatch
// results must be bit-for-bit identical to serial core.Check across
// algorithms, schedules and worker counts. Run it with -race to cover the
// pool and the concurrent engine.
func TestPropertyBatchMatchesSerial(t *testing.T) {
	recs := []core.Recognizer{
		core.NewThreeCounters(),
		core.NewBalancedCounter(),
		core.NewCompareWcW(),
	}
	schedules := []struct {
		name string
		seed int64
	}{
		{"", 0},
		{"sequential", 0},
		{"random", 3},
		{"random", 11},
		{"round-robin", 0},
		{"adversarial", 0},
		{"concurrent", 0},
	}
	sizes := []int{3, 9, 21}

	// Build the job grid and the serial baseline.
	var jobs []Job
	var want []Result
	rng := rand.New(rand.NewSource(42))
	for _, rec := range recs {
		for _, n := range sizes {
			member, _, err := lang.MemberOrSkip(rec.Language(), n, 8, rng)
			if err != nil {
				t.Fatalf("%s: no member near %d: %v", rec.Name(), n, err)
			}
			words := []lang.Word{member}
			if nonMember, ok := rec.Language().GenerateNonMember(n, rng); ok {
				words = append(words, nonMember)
			}
			for _, word := range words {
				for _, s := range schedules {
					res, err := core.Check(rec, word, core.RunOptions{Schedule: s.name, Seed: s.seed})
					if err != nil {
						t.Fatalf("serial %s n=%d schedule=%q: %v", rec.Name(), n, s.name, err)
					}
					jobs = append(jobs, Job{Rec: rec, Word: word, Schedule: s.name, Seed: s.seed, Check: true})
					want = append(want, Result{Verdict: res.Verdict, Stats: res.Stats.Clone()})
				}
			}
		}
	}

	for _, workers := range []int{1, 2, 4, 7} {
		pool := NewPool(workers)
		// Two batches per pool: the second exercises fully warmed state.
		for round := 0; round < 2; round++ {
			got := pool.RunBatch(jobs)
			if len(got) != len(jobs) {
				t.Fatalf("workers=%d: %d results for %d jobs", workers, len(got), len(jobs))
			}
			for i, g := range got {
				if g.Err != nil {
					t.Fatalf("workers=%d round=%d job %d (%s %q %q): %v",
						workers, round, i, jobs[i].Rec.Name(), jobs[i].Word.String(), jobs[i].Schedule, g.Err)
				}
				if g.Verdict != want[i].Verdict {
					t.Errorf("workers=%d job %d: verdict %v, serial %v", workers, i, g.Verdict, want[i].Verdict)
				}
				if !statsEqual(g.Stats, want[i].Stats) {
					t.Errorf("workers=%d job %d (%s %q %q): batch stats %+v != serial %+v",
						workers, i, jobs[i].Rec.Name(), jobs[i].Word.String(), jobs[i].Schedule,
						*g.Stats, *want[i].Stats)
				}
			}
		}
		pool.Close()
	}
}

// TestRunBatchResultsAreIndependent pins the snapshot semantics: results of
// one batch must not share per-link state with each other or with later
// batches run on the same (reused) worker state.
func TestRunBatchResultsAreIndependent(t *testing.T) {
	rec := core.NewThreeCounters()
	w1 := lang.WordFromString("012")
	w2 := lang.WordFromString("001122")
	pool := NewPool(1)
	defer pool.Close()

	first := pool.RunBatch([]Job{{Rec: rec, Word: w1, Check: true}, {Rec: rec, Word: w2, Check: true}})
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	snapshot := flattenPerLink(first[0].Stats)
	// A second batch on the same worker reuses and resets the state; the
	// already-returned results must not change.
	pool.RunBatch([]Job{{Rec: rec, Word: w2, Check: true}})
	if !reflect.DeepEqual(snapshot, flattenPerLink(first[0].Stats)) {
		t.Fatal("a later batch mutated an earlier result's stats")
	}
	if first[0].Stats.Bits == first[1].Stats.Bits {
		t.Fatal("distinct words produced identical bit totals; snapshotting is suspect")
	}
}

// TestRunBatchErrors checks that bad jobs fail in place without failing the
// batch.
func TestRunBatchErrors(t *testing.T) {
	rec := core.NewThreeCounters()
	results := RunBatch([]Job{
		{Rec: rec, Word: lang.WordFromString("012"), Check: true},
		{Rec: rec, Word: lang.WordFromString("012"), Schedule: "no-such-schedule"},
		{Word: lang.WordFromString("012")},
		{Rec: rec, Word: nil},
	}, Options{Workers: 2})
	if results[0].Err != nil {
		t.Errorf("good job failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown schedule did not error")
	}
	if results[2].Err == nil {
		t.Error("job without recognizer did not error")
	}
	if !errors.Is(results[3].Err, core.ErrEmptyWord) {
		t.Errorf("empty word error = %v, want core.ErrEmptyWord", results[3].Err)
	}
}

// TestRunBatchEmpty covers the degenerate batch.
func TestRunBatchEmpty(t *testing.T) {
	if got := RunBatch(nil, Options{}); len(got) != 0 {
		t.Fatalf("RunBatch(nil) = %v", got)
	}
}
