package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// batchJobs builds count identical three-counters jobs on a member word.
func batchJobs(count, size int) []Job {
	word := make(lang.Word, 0, 3*size)
	for _, letter := range []rune{'0', '1', '2'} {
		for i := 0; i < size; i++ {
			word = append(word, letter)
		}
	}
	rec := core.NewThreeCounters()
	jobs := make([]Job, count)
	for i := range jobs {
		jobs[i] = Job{Rec: rec, Word: word}
	}
	return jobs
}

// TestRunBatchContextPreCanceled pins that a batch under an already-canceled
// context dispatches nothing: every result reports ErrCanceled (and the
// context sentinel) without running a single word.
func TestRunBatchContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := RunBatchContext(ctx, batchJobs(16, 4), Options{Workers: 2})
	if len(results) != 16 {
		t.Fatalf("got %d results, want 16", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, ring.ErrCanceled) {
			t.Errorf("result %d does not wrap ring.ErrCanceled: %v", i, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d does not wrap context.Canceled: %v", i, r.Err)
		}
		if r.Stats != nil {
			t.Errorf("result %d carries stats despite cancellation", i)
		}
	}
}

// TestRunEachCancelMidBatch cancels from the delivery callback after the
// first completed job: with one worker, every later job must resolve as
// canceled (before dispatch, or at the engine's pre-run check) while the
// completed job keeps its report — no fail-all, no lost work.
func TestRunEachCancelMidBatch(t *testing.T) {
	const jobs = 32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed, canceled atomic.Int64
	var mu sync.Mutex
	out := make([]Result, jobs)
	RunEach(ctx, batchJobs(jobs, 8), Options{Workers: 1}, func(i int, r Result) {
		mu.Lock()
		out[i] = r
		mu.Unlock()
		if r.Err == nil {
			if completed.Add(1) == 1 {
				cancel()
			}
			return
		}
		canceled.Add(1)
	})
	if completed.Load() == 0 {
		t.Fatal("no job completed before the cancel")
	}
	if canceled.Load() == 0 {
		t.Fatal("cancel mid-batch canceled nothing")
	}
	if completed.Load()+canceled.Load() != jobs {
		t.Fatalf("delivered %d+%d results, want %d", completed.Load(), canceled.Load(), jobs)
	}
	for i, r := range out {
		if r.Err != nil && !errors.Is(r.Err, ring.ErrCanceled) {
			t.Errorf("result %d failed with a non-cancellation error: %v", i, r.Err)
		}
		if r.Err == nil && r.Verdict != ring.VerdictAccept {
			t.Errorf("result %d verdict = %v", i, r.Verdict)
		}
	}
}

// TestRunBatchContextNilContext pins that a nil context means "not
// cancelable" and the batch behaves exactly like RunBatch.
func TestRunBatchContextNilContext(t *testing.T) {
	want := RunBatch(batchJobs(4, 4), Options{Workers: 2})
	got := RunBatchContext(nil, batchJobs(4, 4), Options{Workers: 2})
	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("unexpected error: %v / %v", got[i].Err, want[i].Err)
		}
		if got[i].Verdict != want[i].Verdict || got[i].Stats.Bits != want[i].Stats.Bits {
			t.Errorf("result %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestPoolSurvivesCanceledBatch checks a persistent pool stays usable after
// serving a canceled batch: the next batch on the same workers succeeds.
func TestPoolSurvivesCanceledBatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range p.RunBatchContext(ctx, batchJobs(8, 4)) {
		if !errors.Is(r.Err, ring.ErrCanceled) {
			t.Fatalf("expected cancellation, got %v", r.Err)
		}
	}
	for i, r := range p.RunBatch(batchJobs(8, 4)) {
		if r.Err != nil {
			t.Fatalf("job %d after canceled batch: %v", i, r.Err)
		}
		if r.Verdict != ring.VerdictAccept {
			t.Errorf("job %d verdict = %v", i, r.Verdict)
		}
	}
}

// TestJobRecordTrace pins the per-job trace plumbing added for the facade's
// WithTrace option: traced jobs return an independent event sequence.
func TestJobRecordTrace(t *testing.T) {
	jobs := batchJobs(2, 3)
	jobs[0].RecordTrace = true
	results := RunBatch(jobs, Options{Workers: 1})
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("unexpected errors: %v / %v", results[0].Err, results[1].Err)
	}
	if len(results[0].Trace) == 0 {
		t.Error("traced job returned no trace")
	}
	if results[1].Trace != nil {
		t.Error("untraced job returned a trace")
	}
}
