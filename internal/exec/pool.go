package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ringlang/internal/core"
	"ringlang/internal/lang"
	"ringlang/internal/ring"
)

// Job is one execution of a recognizer on a word under a delivery schedule.
type Job struct {
	// Rec is the recognizer to run. Required.
	Rec core.Recognizer
	// Word labels the ring, one letter per processor, leader first. Required.
	Word lang.Word
	// Engine pins the engine. When nil, Schedule/Seed name a built-in one
	// (see ring.ScheduleNames); an empty Schedule means sequential. A pinned
	// engine may be shared by many jobs — engines are safe for concurrent
	// use — and still benefits from per-worker state reuse when it
	// implements ring.StatefulEngine.
	Engine ring.Engine
	// Schedule names the delivery schedule when Engine is nil.
	Schedule string
	// Seed drives randomized schedules (Schedule == "random").
	Seed int64
	// Check cross-checks the verdict against the language's own membership
	// predicate (core.Check); otherwise the run is core.Run.
	Check bool
	// AllowFaults lets the job run when the engine's delivery guarantee is
	// weaker than the recognizer tolerates, instead of refusing with
	// core.ErrDeliveryNotTolerated (see core.RunOptions.AllowFaults).
	AllowFaults bool
	// RecordTrace records the full event trace of the run. The returned
	// trace is freshly built per run and safe to retain.
	RecordTrace bool
	// Presize, when positive, pre-reserves the worker's reusable run state
	// for a ring of that many processors before the run, so large-ring jobs
	// proceed without growth reallocations (see core.RunOptions.Presize).
	Presize int
	// Prefix, when non-nil, reuses shared-prefix computation across the
	// batch's runs (and any other runs sharing the cache): each job resumes
	// from the deepest checkpoint the cache holds for a prefix of its word
	// (see core.RunOptions.Prefix). Sharing one cache across all jobs of a
	// pool is the intended shape — workers populate it for each other.
	Prefix *core.PrefixCache
}

// Result is the outcome of one Job. Stats is an independent snapshot: it
// never aliases worker state and stays valid after the pool moves on.
type Result struct {
	Verdict ring.Verdict
	Stats   *ring.Stats
	// Faults is the run's fault accounting — nil under reliable schedules,
	// always non-nil under fault-injecting ones (see ring.Result.Faults).
	// Like Stats it is freshly built per run and safe to retain.
	Faults *ring.FaultReport
	// Trace is the recorded event sequence (nil unless Job.RecordTrace).
	Trace ring.Trace
	Err   error
}

// Options configures package-level RunBatch calls.
type Options struct {
	// Workers is the number of worker goroutines; values < 1 mean
	// runtime.GOMAXPROCS(0).
	Workers int
}

// task is one queued job plus where its result goes.
type task struct {
	ctx     context.Context
	job     Job
	idx     int
	deliver func(idx int, res Result)
	done    *sync.WaitGroup
}

// Pool is a set of persistent worker goroutines, each owning reusable run
// state. A Pool may serve many RunBatch calls (also concurrently); Close
// releases the workers.
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup
}

// NewPool starts a pool. workers < 1 means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan task)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w := newWorker()
			for t := range p.tasks {
				t.deliver(t.idx, w.run(t.ctx, t.job))
				t.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the workers down. The pool must not be used afterwards.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// RunEach executes every job and hands each Result to deliver as soon as its
// worker finishes — completion order, not job order. deliver is called
// concurrently from worker goroutines (and, for jobs canceled before
// dispatch, from the calling goroutine) and must be safe for that; every job
// is delivered exactly once. When ctx is canceled, jobs not yet handed to a
// worker are delivered immediately with an error wrapping ring.ErrCanceled,
// and in-flight runs abort through the engines' own cancellation checks.
// RunEach returns only after every job has been delivered.
func (p *Pool) RunEach(ctx context.Context, jobs []Job, deliver func(idx int, res Result)) {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	canceledFrom := len(jobs)
dispatch:
	for i := range jobs {
		if done != nil {
			select {
			case <-done:
				canceledFrom = i
				break dispatch
			default:
			}
		}
		wg.Add(1)
		select {
		case p.tasks <- task{ctx: ctx, job: jobs[i], idx: i, deliver: deliver, done: &wg}:
		case <-done:
			wg.Done()
			canceledFrom = i
			break dispatch
		}
	}
	for i := canceledFrom; i < len(jobs); i++ {
		deliver(i, Result{Err: fmt.Errorf("exec: job not dispatched: %w: %w", ring.ErrCanceled, ctx.Err())})
	}
	wg.Wait()
}

// RunBatchContext executes every job and returns one Result per job, in job
// order. Job errors (including cancellation) land in the corresponding
// Result; the call itself never fails, so a canceled batch still reports
// every word that completed before the cancel.
func (p *Pool) RunBatchContext(ctx context.Context, jobs []Job) []Result {
	out := make([]Result, len(jobs))
	p.RunEach(ctx, jobs, func(i int, r Result) { out[i] = r })
	return out
}

// RunBatch executes every job without cancellation; see RunBatchContext.
func (p *Pool) RunBatch(jobs []Job) []Result {
	//ringvet:ignore ctxflow -- v1-style convenience wrapper documented as running without cancellation; RunBatchContext is the ctx-aware form
	return p.RunBatchContext(context.Background(), jobs)
}

// RunBatch executes the jobs on a transient pool.
func RunBatch(jobs []Job, opts Options) []Result {
	//ringvet:ignore ctxflow -- v1-style convenience wrapper documented as running without cancellation; RunBatchContext is the ctx-aware form
	return RunBatchContext(context.Background(), jobs, opts)
}

// RunBatchContext executes the jobs on a transient pool under ctx.
func RunBatchContext(ctx context.Context, jobs []Job, opts Options) []Result {
	p := NewPool(opts.Workers)
	defer p.Close()
	return p.RunBatchContext(ctx, jobs)
}

// RunEach executes the jobs on a transient pool, streaming each Result to
// deliver in completion order; see Pool.RunEach.
func RunEach(ctx context.Context, jobs []Job, opts Options, deliver func(idx int, res Result)) {
	p := NewPool(opts.Workers)
	defer p.Close()
	p.RunEach(ctx, jobs, deliver)
}

// engineKey identifies a by-name engine in a worker's cache.
type engineKey struct {
	schedule string
	seed     int64
}

// worker is the reusable state one pool goroutine owns: resolved engines and
// one ring.RunState per engine, so repeated jobs under the same schedule
// reuse stats, contexts and scheduler queues run after run.
type worker struct {
	named  map[engineKey]ring.Engine
	states map[ring.Engine]*ring.RunState
	// reuse relabels the previous job's ring in place when consecutive jobs
	// run the same recognizer at the same ring size (core.NodeReuse) — the
	// common shape of a batch, where node construction would otherwise be
	// the dominant per-word allocation.
	reuse *core.NodeReuse
}

func newWorker() *worker {
	return &worker{
		named:  make(map[engineKey]ring.Engine),
		states: make(map[ring.Engine]*ring.RunState),
		reuse:  core.NewNodeReuse(),
	}
}

// engine resolves a job to an engine, caching by-name resolutions.
func (w *worker) engine(job Job) (ring.Engine, error) {
	if job.Engine != nil {
		return job.Engine, nil
	}
	name := job.Schedule
	if name == "" {
		name = "sequential"
	}
	key := engineKey{schedule: name, seed: job.Seed}
	if e, ok := w.named[key]; ok {
		return e, nil
	}
	e, err := ring.NewEngineByName(name, job.Seed)
	if err != nil {
		return nil, err
	}
	w.named[key] = e
	return e, nil
}

// run executes one job with this worker's reusable state.
//
//ring:hotpath guard=TestBatchAllocatesLessThanSerial
func (w *worker) run(ctx context.Context, job Job) Result {
	if job.Rec == nil {
		return Result{Err: fmt.Errorf("exec: job has no recognizer")}
	}
	engine, err := w.engine(job)
	if err != nil {
		return Result{Err: err}
	}
	st := w.states[engine]
	if st == nil {
		st = ring.NewRunState()
		w.states[engine] = st
	}
	opts := core.RunOptions{Engine: engine, State: st, Ctx: ctx, RecordTrace: job.RecordTrace, Presize: job.Presize, Prefix: job.Prefix, Reuse: w.reuse, AllowFaults: job.AllowFaults}
	var res *ring.Result
	if job.Check {
		res, err = core.Check(job.Rec, job.Word, opts)
	} else {
		res, err = core.Run(job.Rec, job.Word, opts)
	}
	if err != nil {
		return Result{Err: err}
	}
	// Snapshot: res.Stats aliases st and the next run on this worker resets
	// it. The trace and fault report do not — both are freshly built per run.
	return Result{Verdict: res.Verdict, Stats: res.Stats.Clone(), Faults: res.Faults, Trace: res.Trace}
}
