// Package exec is the batch-execution subsystem: a worker pool that fans
// (recognizer × word × schedule) jobs across GOMAXPROCS goroutines.
//
// The Mansour–Zaks bounds are per-execution, so executions are
// embarrassingly parallel across words, sizes and schedules. What makes the
// pool more than a bare errgroup is state reuse: each worker owns one
// ring.RunState per engine it runs — the stats accounting with its dense
// per-link array, the processor contexts and the scheduler's deque backing
// arrays — so a worker's steady-state run allocates only what the algorithm
// itself sends plus one snapshot of the results. Batch results are
// bit-for-bit identical to serial core.Run/core.Check calls under every
// built-in schedule; internal/exec's property tests enforce this.
//
// Entry points: NewPool/Pool.RunBatchContext for a long-lived pool,
// RunBatch/RunBatchContext for one-shot batches, RunEach to stream results
// in completion order (what ringlang.Client.Stream is built on). Dispatch is
// context-aware: a canceled batch stops handing out jobs, reports the
// undispatched ones with ring.ErrCanceled, and never discards the words that
// completed. The facade (ringlang.Client.Batch/Stream), the bench sweeps
// (bench.MeasureOptions.Workers) and the cmd tools' -workers flags all go
// through here — including the serving tier, whose per-key clients each own
// one of these pools, making Pool the engine-concurrency bound behind
// ringserve's admission limit.
package exec
