package exec

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ringlang/internal/core"
	"ringlang/internal/lang"
)

// throughputWorkload is the n=1024 workload of the acceptance criteria: the
// three-counters recognizer on member words near 1024 letters (the language
// has no word of exactly that length; the generator lands on 1026).
func throughputWorkload(tb testing.TB, words int) (core.Recognizer, []Job) {
	tb.Helper()
	rec := core.NewThreeCounters()
	rng := rand.New(rand.NewSource(20260726))
	word, _, err := lang.MemberOrSkip(rec.Language(), 1024, 8, rng)
	if err != nil {
		tb.Fatal(err)
	}
	jobs := make([]Job, words)
	for i := range jobs {
		jobs[i] = Job{Rec: rec, Word: word, Check: true}
	}
	return rec, jobs
}

// runSerial is the pre-batch per-run path: one core.Check per word, fresh
// engine state every time.
func runSerial(tb testing.TB, rec core.Recognizer, jobs []Job) {
	tb.Helper()
	for i := range jobs {
		if _, err := core.Check(rec, jobs[i].Word, core.RunOptions{}); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestBatchThroughput enforces the headline speedup: with at least four
// cores, the pooled RunBatch must push at least 3× the words/sec of the
// serial per-run loop at n=1024. On smaller machines the parallel speedup
// cannot exist and the test skips.
func TestBatchThroughput(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("throughput floor needs >= 4 cores, have %d", cores)
	}
	if raceEnabled {
		t.Skip("timing test skipped under -race: instrumentation overhead, not the pool, dominates the ratio")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	rec, jobs := throughputWorkload(t, 96)
	pool := NewPool(cores)
	defer pool.Close()

	// Warm both paths (page cache, pool state, scheduler buffers).
	runSerial(t, rec, jobs[:8])
	pool.RunBatch(jobs[:8])

	// Best of two measurements per path, to shrug off one-off scheduler or
	// GC hiccups on shared CI runners.
	timeIt := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for attempt := 0; attempt < 2; attempt++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serialDur := timeIt(func() { runSerial(t, rec, jobs) })
	pooledDur := timeIt(func() {
		for i, r := range pool.RunBatch(jobs) {
			if r.Err != nil {
				t.Fatalf("job %d: %v", i, r.Err)
			}
		}
	})

	ratio := float64(serialDur) / float64(pooledDur)
	t.Logf("n=%d words=%d cores=%d: serial %v, pooled %v, speedup %.2fx",
		len(jobs[0].Word), len(jobs), cores, serialDur, pooledDur, ratio)
	if ratio < 3.0 {
		t.Errorf("pooled RunBatch is %.2fx serial, want >= 3x on %d cores", ratio, cores)
	}
}

// TestBatchAllocatesLessThanSerial pins the state-reuse payoff in the spirit
// of TestLoopAllocatesLessThanSeedLoop: per word at n=1024, the pooled path
// (reused stats, contexts and scheduler queues, plus the result snapshot)
// must allocate strictly less than the per-run path it replaces. The margin
// is the engine bookkeeping only — the algorithm's own message allocations
// dominate both sides identically — so the comparison is deterministic.
func TestBatchAllocatesLessThanSerial(t *testing.T) {
	const batch = 16
	rec, jobs := throughputWorkload(t, batch)
	serial := testing.AllocsPerRun(5, func() {
		runSerial(t, rec, jobs)
	}) / batch

	pool := NewPool(1)
	defer pool.Close()
	pool.RunBatch(jobs) // warm the worker state
	pooled := testing.AllocsPerRun(5, func() {
		for i, r := range pool.RunBatch(jobs) {
			if r.Err != nil {
				t.Fatalf("job %d: %v", i, r.Err)
			}
		}
	}) / batch

	t.Logf("allocs/word at n=%d: serial=%.1f pooled=%.1f", len(jobs[0].Word), serial, pooled)
	if pooled >= serial {
		t.Errorf("pooled path allocates %.1f/word, serial %.1f/word — state reuse should win", pooled, serial)
	}
}

// BenchmarkRunBatch is the words/sec throughput benchmark of the acceptance
// criteria: serial per-run loop vs pooled RunBatch at n=1024, one word per
// op so ns/op is ns/word.
func BenchmarkRunBatch(b *testing.B) {
	rec, jobs := throughputWorkload(b, 64)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runSerial(b, rec, jobs[:1])
		}
	})
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		pool := NewPool(workers)
		pool.RunBatch(jobs) // warm
		b.Run("pooled/workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; {
				batch := jobs
				if rem := b.N - i; rem < len(batch) {
					batch = jobs[:rem]
				}
				for _, r := range pool.RunBatch(batch) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				i += len(batch)
			}
		})
		defer pool.Close()
	}
}

// itoa avoids importing strconv for two benchmark labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
