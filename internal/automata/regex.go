package automata

import (
	"errors"
	"fmt"
	"sort"
)

// The regular-expression compiler supports the operators needed by the test
// languages in this repository:
//
//	a b 0 1 ...   literal symbols (any rune except the metacharacters)
//	(e)           grouping
//	e1|e2         alternation
//	e1e2          concatenation (juxtaposition)
//	e*            Kleene star
//	e+            one or more
//	e?            optional
//
// The compiler produces an NFA via the Thompson construction; callers usually
// follow with Determinize and Minimize.

// ErrBadRegex is wrapped by CompileRegex for any syntax error.
var ErrBadRegex = errors.New("automata: bad regular expression")

// regexParser is a recursive-descent parser over the expression runes.
type regexParser struct {
	input []rune
	pos   int
}

// regexNode is a node of the regex syntax tree.
type regexNode struct {
	kind     regexKind
	sym      rune
	children []*regexNode
}

type regexKind int

const (
	kindLiteral regexKind = iota + 1
	kindConcat
	kindAlt
	kindStar
	kindPlus
	kindOpt
	kindEmpty // matches the empty word
)

// CompileRegex compiles the expression into an NFA whose alphabet is the set
// of literal symbols appearing in the expression, plus any extra symbols
// given (so the automaton can later be completed over a larger alphabet).
func CompileRegex(expr string, extraAlphabet ...rune) (*NFA, error) {
	p := &regexParser{input: []rune(expr)}
	root, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("%w: unexpected %q at position %d", ErrBadRegex, p.input[p.pos], p.pos)
	}
	alphabet := map[rune]bool{}
	collectSymbols(root, alphabet)
	for _, r := range extraAlphabet {
		alphabet[r] = true
	}
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("%w: expression has no symbols and no alphabet was supplied", ErrBadRegex)
	}
	syms := make([]rune, 0, len(alphabet))
	for r := range alphabet {
		syms = append(syms, r)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	b := &thompsonBuilder{alphabet: syms}
	start, accept := b.build(root)
	nfa := NewNFA(b.next, syms)
	nfa.Start = start
	nfa.SetAccepting(accept)
	for _, tr := range b.edges {
		nfa.AddTransition(tr.from, tr.sym, tr.to)
	}
	return nfa, nil
}

// CompileRegexDFA compiles, determinizes and minimizes the expression.
func CompileRegexDFA(expr string, extraAlphabet ...rune) (*DFA, error) {
	nfa, err := CompileRegex(expr, extraAlphabet...)
	if err != nil {
		return nil, err
	}
	return Minimize(Determinize(nfa)), nil
}

func collectSymbols(n *regexNode, into map[rune]bool) {
	if n == nil {
		return
	}
	if n.kind == kindLiteral {
		into[n.sym] = true
	}
	for _, c := range n.children {
		collectSymbols(c, into)
	}
}

// parseAlt parses e1|e2|...
func (p *regexParser) parseAlt() (*regexNode, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = &regexNode{kind: kindAlt, children: []*regexNode{left, right}}
	}
	return left, nil
}

// parseConcat parses a juxtaposition of factors.
func (p *regexParser) parseConcat() (*regexNode, error) {
	var parts []*regexNode
	for {
		r := p.peek()
		if r == 0 || r == ')' || r == '|' {
			break
		}
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	switch len(parts) {
	case 0:
		return &regexNode{kind: kindEmpty}, nil
	case 1:
		return parts[0], nil
	default:
		return &regexNode{kind: kindConcat, children: parts}, nil
	}
}

// parseFactor parses an atom followed by optional postfix operators.
func (p *regexParser) parseFactor() (*regexNode, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = &regexNode{kind: kindStar, children: []*regexNode{atom}}
		case '+':
			p.pos++
			atom = &regexNode{kind: kindPlus, children: []*regexNode{atom}}
		case '?':
			p.pos++
			atom = &regexNode{kind: kindOpt, children: []*regexNode{atom}}
		default:
			return atom, nil
		}
	}
}

func (p *regexParser) parseAtom() (*regexNode, error) {
	r := p.peek()
	switch r {
	case 0:
		return nil, fmt.Errorf("%w: unexpected end of expression", ErrBadRegex)
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("%w: missing ')' at position %d", ErrBadRegex, p.pos)
		}
		p.pos++
		return inner, nil
	case ')', '|', '*', '+', '?':
		return nil, fmt.Errorf("%w: unexpected %q at position %d", ErrBadRegex, r, p.pos)
	case '\\':
		p.pos++
		esc := p.peek()
		if esc == 0 {
			return nil, fmt.Errorf("%w: dangling escape", ErrBadRegex)
		}
		p.pos++
		return &regexNode{kind: kindLiteral, sym: esc}, nil
	default:
		p.pos++
		return &regexNode{kind: kindLiteral, sym: r}, nil
	}
}

func (p *regexParser) peek() rune {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

// thompsonBuilder accumulates NFA fragments.
type thompsonBuilder struct {
	alphabet []rune
	next     int
	edges    []thompsonEdge
}

type thompsonEdge struct {
	from State
	sym  rune
	to   State
}

func (b *thompsonBuilder) newState() State {
	s := State(b.next)
	b.next++
	return s
}

func (b *thompsonBuilder) addEdge(from State, sym rune, to State) {
	b.edges = append(b.edges, thompsonEdge{from: from, sym: sym, to: to})
}

// build returns the (start, accept) states of the fragment for node n.
func (b *thompsonBuilder) build(n *regexNode) (State, State) {
	switch n.kind {
	case kindEmpty:
		s, a := b.newState(), b.newState()
		b.addEdge(s, Epsilon, a)
		return s, a
	case kindLiteral:
		s, a := b.newState(), b.newState()
		b.addEdge(s, n.sym, a)
		return s, a
	case kindConcat:
		start, accept := b.build(n.children[0])
		for _, c := range n.children[1:] {
			cs, ca := b.build(c)
			b.addEdge(accept, Epsilon, cs)
			accept = ca
		}
		return start, accept
	case kindAlt:
		s, a := b.newState(), b.newState()
		for _, c := range n.children {
			cs, ca := b.build(c)
			b.addEdge(s, Epsilon, cs)
			b.addEdge(ca, Epsilon, a)
		}
		return s, a
	case kindStar:
		s, a := b.newState(), b.newState()
		cs, ca := b.build(n.children[0])
		b.addEdge(s, Epsilon, cs)
		b.addEdge(s, Epsilon, a)
		b.addEdge(ca, Epsilon, cs)
		b.addEdge(ca, Epsilon, a)
		return s, a
	case kindPlus:
		s, a := b.newState(), b.newState()
		cs, ca := b.build(n.children[0])
		b.addEdge(s, Epsilon, cs)
		b.addEdge(ca, Epsilon, cs)
		b.addEdge(ca, Epsilon, a)
		return s, a
	case kindOpt:
		s, a := b.newState(), b.newState()
		cs, ca := b.build(n.children[0])
		b.addEdge(s, Epsilon, cs)
		b.addEdge(s, Epsilon, a)
		b.addEdge(ca, Epsilon, a)
		return s, a
	default:
		// Unreachable by construction of the parser.
		s, a := b.newState(), b.newState()
		b.addEdge(s, Epsilon, a)
		return s, a
	}
}
