package automata

import (
	"testing"
	"testing/quick"
)

func countOnes(w []rune) int {
	n := 0
	for _, r := range w {
		if r == '1' {
			n++
		}
	}
	return n
}

func TestParityDFA(t *testing.T) {
	d := NewParityDFA()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := []struct {
		in   string
		want bool
	}{
		{"", true}, {"0", true}, {"1", false}, {"11", true},
		{"101", true}, {"111", false}, {"0000", true}, {"010101", false},
	}
	for _, c := range cases {
		if got := d.Accepts([]rune(c.in)); got != c.want {
			t.Errorf("parity(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestModCounterDFA(t *testing.T) {
	d, err := NewModCounterDFA(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	words := []string{"", "1", "11", "111", "0101", "110110", "111111"}
	for _, w := range words {
		want := countOnes([]rune(w))%3 == 0
		if got := d.Accepts([]rune(w)); got != want {
			t.Errorf("mod3(%q) = %v, want %v", w, got, want)
		}
	}
	if _, err := NewModCounterDFA(0); err == nil {
		t.Error("expected error for modulus 0")
	}
}

func TestLengthModDFA(t *testing.T) {
	d, err := NewLengthModDFA([]rune{'a', 'b'}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "a", "ab", "aba", "abab", "ababab"} {
		want := len(w)%4 == 2
		if got := d.Accepts([]rune(w)); got != want {
			t.Errorf("lenmod(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestContainsSubstringDFA(t *testing.T) {
	d, err := NewContainsSubstringDFA([]rune{'a', 'b'}, []rune("abab"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := map[string]bool{
		"":        false,
		"abab":    true,
		"aabab":   true,
		"ababab":  true,
		"abba":    false,
		"aabbab":  false,
		"bababab": true,
		"abaabab": true,
	}
	for w, want := range cases {
		if got := d.Accepts([]rune(w)); got != want {
			t.Errorf("contains-abab(%q) = %v, want %v", w, got, want)
		}
	}
	if _, err := NewContainsSubstringDFA([]rune{'a'}, []rune("ab")); err == nil {
		t.Error("expected error for pattern outside alphabet")
	}
}

func TestAllSameLetterDFA(t *testing.T) {
	d, err := NewAllSameLetterDFA([]rune{'x', 'y', 'z'})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{"": true, "x": true, "yyyy": true, "xy": false, "zzzy": false}
	for w, want := range cases {
		if got := d.Accepts([]rune(w)); got != want {
			t.Errorf("allsame(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestDFAValidateCatchesMissingTransitions(t *testing.T) {
	d := NewDFA(2, []rune{'a'})
	d.Start = 0
	d.SetTransition(0, 'a', 1)
	// transition from state 1 missing
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for partial transition function")
	}
	d.SetTransition(1, 'a', 5)
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range target")
	}
}

func TestDFARejectsForeignSymbols(t *testing.T) {
	d := NewParityDFA()
	if d.Accepts([]rune("01x")) {
		t.Fatal("words with foreign symbols must be rejected")
	}
}

func TestDFACloneIsDeep(t *testing.T) {
	d := NewParityDFA()
	c := d.Clone()
	c.SetTransition(0, '1', 0)
	c.Accepting[1] = true
	if got, _ := d.Step(0, '1'); got != 1 {
		t.Error("mutating the clone changed the original's transitions")
	}
	if d.Accepting[1] {
		t.Error("mutating the clone changed the original's accepting set")
	}
}

func TestReachable(t *testing.T) {
	d := NewDFA(3, []rune{'a'})
	d.Start = 0
	d.SetTransition(0, 'a', 0)
	d.SetTransition(1, 'a', 2)
	d.SetTransition(2, 'a', 1)
	reach := d.Reachable()
	if !reach[0] || reach[1] || reach[2] {
		t.Fatalf("Reachable = %v, want only state 0", reach)
	}
}

func TestQuickParityMatchesReference(t *testing.T) {
	d := NewParityDFA()
	f := func(w []bool) bool {
		word := make([]rune, len(w))
		ones := 0
		for i, b := range w {
			if b {
				word[i] = '1'
				ones++
			} else {
				word[i] = '0'
			}
		}
		return d.Accepts(word) == (ones%2 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
