package automata

import "math/rand"

// RandomDFA generates a pseudo-random complete DFA with the given number of
// states over the alphabet. Roughly a third of the states are accepting (at
// least one, unless numStates is zero). It is used by the property-based
// tests to exercise minimization and the boolean constructions on automata
// that were not hand-written.
func RandomDFA(numStates int, alphabet []rune, rng *rand.Rand) *DFA {
	if numStates < 1 {
		numStates = 1
	}
	d := NewDFA(numStates, alphabet)
	d.Start = State(rng.Intn(numStates))
	for s := 0; s < numStates; s++ {
		if rng.Intn(3) == 0 {
			d.SetAccepting(State(s))
		}
		for _, sym := range d.Alphabet {
			d.SetTransition(State(s), sym, State(rng.Intn(numStates)))
		}
	}
	if len(d.Accepting) == 0 {
		d.SetAccepting(State(rng.Intn(numStates)))
	}
	return d
}

// RandomWordOver returns a uniformly random word of the given length over the
// alphabet (a convenience for automata-level property tests that do not want
// to depend on the lang package).
func RandomWordOver(alphabet []rune, length int, rng *rand.Rand) []rune {
	w := make([]rune, length)
	for i := range w {
		w[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return w
}
