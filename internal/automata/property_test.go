package automata

import (
	"math/rand"
	"testing"
)

// Property-based tests over randomly generated automata: minimization must
// preserve the language and be idempotent, the boolean constructions must
// satisfy their defining pointwise laws, and Equivalent must behave like an
// equivalence relation on the languages involved.

const propertyTrials = 40

func alphabetAB() []rune { return []rune{'a', 'b'} }

func TestPropertyMinimizePreservesRandomDFAs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < propertyTrials; trial++ {
		d := RandomDFA(1+rng.Intn(12), alphabetAB(), rng)
		if err := d.Validate(); err != nil {
			t.Fatalf("RandomDFA produced an invalid automaton: %v", err)
		}
		m := Minimize(d)
		if err := m.Validate(); err != nil {
			t.Fatalf("Minimize produced an invalid automaton: %v", err)
		}
		if m.NumStates > d.NumStates {
			t.Errorf("minimization grew the automaton: %d -> %d", d.NumStates, m.NumStates)
		}
		if !Equivalent(d, m) {
			t.Error("minimization changed the language")
		}
		for i := 0; i < 30; i++ {
			w := RandomWordOver(alphabetAB(), rng.Intn(12), rng)
			if d.Accepts(w) != m.Accepts(w) {
				t.Errorf("trial %d: disagreement on %q", trial, string(w))
			}
		}
	}
}

func TestPropertyMinimizeIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < propertyTrials; trial++ {
		d := RandomDFA(1+rng.Intn(10), alphabetAB(), rng)
		once := Minimize(d)
		twice := Minimize(once)
		if once.NumStates != twice.NumStates {
			t.Errorf("minimization is not idempotent: %d vs %d states", once.NumStates, twice.NumStates)
		}
		if !Equivalent(once, twice) {
			t.Error("second minimization changed the language")
		}
	}
}

func TestPropertyComplementIsInvolutive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < propertyTrials; trial++ {
		d := RandomDFA(1+rng.Intn(10), alphabetAB(), rng)
		back := Complement(Complement(d))
		if !Equivalent(d, back) {
			t.Error("double complement changed the language")
		}
		comp := Complement(d)
		for i := 0; i < 20; i++ {
			w := RandomWordOver(alphabetAB(), rng.Intn(10), rng)
			if d.Accepts(w) == comp.Accepts(w) {
				t.Errorf("complement agrees with original on %q", string(w))
			}
		}
	}
}

func TestPropertyBooleanConstructionsPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < propertyTrials; trial++ {
		a := RandomDFA(1+rng.Intn(8), alphabetAB(), rng)
		b := RandomDFA(1+rng.Intn(8), alphabetAB(), rng)
		inter, err := Intersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := Union(a, b)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := Difference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			w := RandomWordOver(alphabetAB(), rng.Intn(10), rng)
			inA, inB := a.Accepts(w), b.Accepts(w)
			if inter.Accepts(w) != (inA && inB) {
				t.Errorf("intersection law fails on %q", string(w))
			}
			if uni.Accepts(w) != (inA || inB) {
				t.Errorf("union law fails on %q", string(w))
			}
			if diff.Accepts(w) != (inA && !inB) {
				t.Errorf("difference law fails on %q", string(w))
			}
		}
	}
}

func TestPropertyEquivalentIsReflexiveAndDetectsDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < propertyTrials; trial++ {
		a := RandomDFA(1+rng.Intn(8), alphabetAB(), rng)
		if !Equivalent(a, a.Clone()) {
			t.Error("an automaton must be equivalent to its clone")
		}
		// A ∖ B empty and B ∖ A empty ⇔ equivalent.
		b := RandomDFA(1+rng.Intn(8), alphabetAB(), rng)
		diffAB, err := Difference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		diffBA, err := Difference(b, a)
		if err != nil {
			t.Fatal(err)
		}
		bothEmpty := IsEmptyLanguage(diffAB) && IsEmptyLanguage(diffBA)
		if bothEmpty != Equivalent(a, b) {
			t.Error("Equivalent disagrees with the symmetric-difference emptiness check")
		}
	}
}

func TestPropertySubsetConstructionMatchesNFASimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	exprs := []string{"(a|b)*a(a|b)(a|b)", "(ab|b)*(a|ba)*", "a*b|b*a", "((a|b)(a|b)(a|b))*"}
	for _, expr := range exprs {
		nfa, err := CompileRegex(expr)
		if err != nil {
			t.Fatal(err)
		}
		dfa := Determinize(nfa)
		min := Minimize(dfa)
		for i := 0; i < 200; i++ {
			w := RandomWordOver(alphabetAB(), rng.Intn(14), rng)
			nfaAns := nfa.Accepts(w)
			if dfa.Accepts(w) != nfaAns || min.Accepts(w) != nfaAns {
				t.Errorf("%q: NFA/DFA/minimal disagree on %q", expr, string(w))
			}
		}
	}
}
