package automata

import "fmt"

// Complement returns a DFA accepting exactly the words rejected by d.
func Complement(d *DFA) *DFA {
	out := d.Clone()
	out.Accepting = make(map[State]bool, d.NumStates)
	for s := State(0); int(s) < d.NumStates; s++ {
		if !d.Accepting[s] {
			out.Accepting[s] = true
		}
	}
	return out
}

// productMode selects the acceptance rule of the product construction.
type productMode int

const (
	productIntersect productMode = iota + 1
	productUnion
	productDifference
)

// Intersect returns a DFA for L(a) ∩ L(b). Both inputs must share an
// alphabet.
func Intersect(a, b *DFA) (*DFA, error) {
	return product(a, b, productIntersect)
}

// Union returns a DFA for L(a) ∪ L(b).
func Union(a, b *DFA) (*DFA, error) {
	return product(a, b, productUnion)
}

// Difference returns a DFA for L(a) \ L(b).
func Difference(a, b *DFA) (*DFA, error) {
	return product(a, b, productDifference)
}

func product(a, b *DFA, mode productMode) (*DFA, error) {
	if !sameAlphabet(a.Alphabet, b.Alphabet) {
		return nil, fmt.Errorf("%w: product of DFAs over different alphabets", ErrInvalidDFA)
	}
	numStates := a.NumStates * b.NumStates
	out := NewDFA(numStates, a.Alphabet)
	id := func(x, y State) State { return State(int(x)*b.NumStates + int(y)) }
	out.Start = id(a.Start, b.Start)
	for x := State(0); int(x) < a.NumStates; x++ {
		for y := State(0); int(y) < b.NumStates; y++ {
			accA, accB := a.Accepting[x], b.Accepting[y]
			var acc bool
			switch mode {
			case productIntersect:
				acc = accA && accB
			case productUnion:
				acc = accA || accB
			case productDifference:
				acc = accA && !accB
			}
			if acc {
				out.SetAccepting(id(x, y))
			}
			for _, sym := range a.Alphabet {
				ax, _ := a.Step(x, sym)
				by, _ := b.Step(y, sym)
				out.SetTransition(id(x, y), sym, id(ax, by))
			}
		}
	}
	return out, nil
}

// IsEmptyLanguage reports whether the DFA accepts no word at all.
func IsEmptyLanguage(d *DFA) bool {
	reach := d.Reachable()
	for s := range reach {
		if d.Accepting[s] {
			return false
		}
	}
	return true
}

// EnumerateAccepted returns every accepted word of length at most maxLen, in
// shortlex order. It is a brute-force helper used by tests to cross-check
// automata against reference language predicates.
//
//ring:deterministic
func EnumerateAccepted(d *DFA, maxLen int) [][]rune {
	var out [][]rune
	var cur []rune
	var rec func(depth int)
	rec = func(depth int) {
		if d.Accepts(cur) {
			word := make([]rune, len(cur))
			copy(word, cur)
			out = append(out, word)
		}
		if depth == maxLen {
			return
		}
		for _, sym := range d.Alphabet {
			cur = append(cur, sym)
			rec(depth + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
