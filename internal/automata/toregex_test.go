package automata

import (
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, d *DFA) *DFA {
	t.Helper()
	expr, err := ToRegex(d)
	if err != nil {
		t.Fatalf("ToRegex: %v", err)
	}
	back, err := CompileRegexDFA(expr, d.Alphabet...)
	if err != nil {
		t.Fatalf("recompile %q: %v", expr, err)
	}
	return back
}

func TestToRegexRoundTripHandwrittenDFAs(t *testing.T) {
	mod3, err := NewModCounterDFA(3)
	if err != nil {
		t.Fatal(err)
	}
	substr, err := NewContainsSubstringDFA([]rune{'a', 'b'}, []rune("aba"))
	if err != nil {
		t.Fatal(err)
	}
	lenMod, err := NewLengthModDFA([]rune{'a', 'b'}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*DFA{NewParityDFA(), mod3, substr, lenMod} {
		back := roundTrip(t, d)
		if !Equivalent(d, back) {
			t.Errorf("round trip changed the language of a %d-state DFA", d.NumStates)
		}
	}
}

func TestToRegexRoundTripRandomDFAs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		d := RandomDFA(1+rng.Intn(5), []rune{'a', 'b'}, rng)
		if IsEmptyLanguage(d) {
			if _, err := ToRegex(d); err == nil {
				t.Error("expected an error for the empty language")
			}
			continue
		}
		back := roundTrip(t, d)
		if !Equivalent(d, back) {
			t.Errorf("trial %d: round trip changed the language", trial)
		}
	}
}

func TestToRegexEscapesMetacharacters(t *testing.T) {
	// A DFA over the Dyck alphabet {(, )} accepting words of even length.
	d, err := NewLengthModDFA([]rune{'(', ')'}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, d)
	if !Equivalent(d, back) {
		t.Error("round trip over a metacharacter alphabet changed the language")
	}
}

func TestToRegexEmptyLanguage(t *testing.T) {
	d := NewDFA(1, []rune{'a'})
	d.Start = 0
	d.SetTransition(0, 'a', 0)
	if _, err := ToRegex(d); err == nil {
		t.Error("the empty language should be rejected")
	}
}

func TestToRegexInvalidDFA(t *testing.T) {
	d := NewDFA(2, []rune{'a'})
	d.Start = 0
	// missing transitions
	if _, err := ToRegex(d); err == nil {
		t.Error("expected validation error")
	}
}
