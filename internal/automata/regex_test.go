package automata

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustCompileDFA(t *testing.T, expr string, extra ...rune) *DFA {
	t.Helper()
	d, err := CompileRegexDFA(expr, extra...)
	if err != nil {
		t.Fatalf("CompileRegexDFA(%q): %v", expr, err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("compiled DFA invalid: %v", err)
	}
	return d
}

func TestRegexBasics(t *testing.T) {
	cases := []struct {
		expr    string
		yes, no []string
	}{
		{"ab", []string{"ab"}, []string{"", "a", "b", "abab"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab", "ba"}},
		{"(ab)*", []string{"", "ab", "abab", "ababab"}, []string{"a", "b", "aba", "ba"}},
		{"a*b*", []string{"", "a", "b", "aaabb"}, []string{"ba", "aba"}},
		{"(a|b)*abb", []string{"abb", "aabb", "babb", "abababb"}, []string{"", "ab", "abba"}},
		{"a+", []string{"a", "aa", "aaa"}, []string{"", "ab"}},
		{"a?b", []string{"b", "ab"}, []string{"", "a", "aab"}},
		{"((0|1)(0|1))*", []string{"", "01", "0011", "101010"}, []string{"0", "011"}},
	}
	for _, c := range cases {
		d := mustCompileDFA(t, c.expr)
		for _, w := range c.yes {
			if !d.Accepts([]rune(w)) {
				t.Errorf("%q should accept %q", c.expr, w)
			}
		}
		for _, w := range c.no {
			if d.Accepts([]rune(w)) {
				t.Errorf("%q should reject %q", c.expr, w)
			}
		}
	}
}

func TestRegexSyntaxErrors(t *testing.T) {
	for _, expr := range []string{"(", ")", "*a", "a(", "a)b", "\\"} {
		if _, err := CompileRegex(expr); err == nil {
			t.Errorf("expected syntax error for %q", expr)
		}
	}
}

func TestRegexEmptyNeedsAlphabet(t *testing.T) {
	if _, err := CompileRegex(""); err == nil {
		t.Error("empty expression without alphabet should fail")
	}
	nfa, err := CompileRegex("", 'a')
	if err != nil {
		t.Fatalf("empty expression with alphabet: %v", err)
	}
	if !nfa.Accepts(nil) {
		t.Error("empty expression should accept the empty word")
	}
	if nfa.Accepts([]rune("a")) {
		t.Error("empty expression should reject non-empty words")
	}
}

func TestRegexExtraAlphabetCompletesDFA(t *testing.T) {
	d := mustCompileDFA(t, "a*", 'b')
	if !d.HasSymbol('b') {
		t.Fatal("extra alphabet symbol missing from DFA")
	}
	if d.Accepts([]rune("ab")) {
		t.Error("a* must reject ab even with b in the alphabet")
	}
}

func TestNFADirectSimulationAgreesWithDFA(t *testing.T) {
	exprs := []string{"(a|b)*abb", "(ab|ba)*", "a(a|b)*b"}
	words := []string{"", "a", "b", "ab", "ba", "abb", "aabb", "abab", "abba", "bbaabb", "ababab"}
	for _, expr := range exprs {
		nfa, err := CompileRegex(expr)
		if err != nil {
			t.Fatal(err)
		}
		dfa := Determinize(nfa)
		for _, w := range words {
			if nfa.Accepts([]rune(w)) != dfa.Accepts([]rune(w)) {
				t.Errorf("NFA and DFA disagree on %q for %q", w, expr)
			}
		}
	}
}

func TestMinimizePreservesLanguageAndShrinks(t *testing.T) {
	nfa, err := CompileRegex("(a|b)*abb")
	if err != nil {
		t.Fatal(err)
	}
	big := Determinize(nfa)
	small := Minimize(big)
	if small.NumStates > big.NumStates {
		t.Errorf("minimized DFA has %d states, more than input %d", small.NumStates, big.NumStates)
	}
	if small.NumStates != 4 {
		t.Errorf("minimal DFA for (a|b)*abb should have 4 states, got %d", small.NumStates)
	}
	if !Equivalent(big, small) {
		t.Error("minimization changed the language")
	}
}

func TestMinimizeHandlesUniformAcceptance(t *testing.T) {
	// All words accepted.
	d := mustCompileDFA(t, "(a|b)*")
	m := Minimize(d)
	if m.NumStates != 1 {
		t.Errorf("(a|b)* should minimize to 1 state, got %d", m.NumStates)
	}
	// No words accepted: complement of everything.
	none := Complement(m)
	mn := Minimize(none)
	if mn.NumStates != 1 || !IsEmptyLanguage(mn) {
		t.Errorf("complement of Σ* should be the 1-state empty language")
	}
}

func TestEquivalentDistinguishes(t *testing.T) {
	a := mustCompileDFA(t, "(ab)*")
	b := mustCompileDFA(t, "(ab)*ab")
	if Equivalent(a, b) {
		t.Error("(ab)* and (ab)*ab are different languages")
	}
	c := mustCompileDFA(t, "(ab)*(ab)?")
	// (ab)*(ab)? == (ab)*
	if !Equivalent(a, c) {
		t.Error("(ab)* and (ab)*(ab)? are the same language")
	}
}

func TestBooleanOperations(t *testing.T) {
	evenOnes := NewParityDFA()
	div3, err := NewModCounterDFA(3)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Intersect(evenOnes, div3)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Union(evenOnes, div3)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Difference(evenOnes, div3)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"", "1", "11", "111", "111111", "101010", "1111", "010"}
	for _, w := range words {
		ones := countOnes([]rune(w))
		even, m3 := ones%2 == 0, ones%3 == 0
		if inter.Accepts([]rune(w)) != (even && m3) {
			t.Errorf("intersect wrong on %q", w)
		}
		if uni.Accepts([]rune(w)) != (even || m3) {
			t.Errorf("union wrong on %q", w)
		}
		if diff.Accepts([]rune(w)) != (even && !m3) {
			t.Errorf("difference wrong on %q", w)
		}
	}
	comp := Complement(evenOnes)
	if comp.Accepts([]rune("11")) || !comp.Accepts([]rune("1")) {
		t.Error("complement wrong")
	}
	if _, err := Intersect(evenOnes, mustCompileDFA(t, "a*")); err == nil {
		t.Error("expected alphabet mismatch error")
	}
}

func TestEnumerateAccepted(t *testing.T) {
	d := mustCompileDFA(t, "(ab)*")
	words := EnumerateAccepted(d, 4)
	got := make(map[string]bool)
	for _, w := range words {
		got[string(w)] = true
	}
	for _, want := range []string{"", "ab", "abab"} {
		if !got[want] {
			t.Errorf("EnumerateAccepted missing %q", want)
		}
	}
	if len(got) != 3 {
		t.Errorf("EnumerateAccepted found %d words, want 3", len(got))
	}
}

func TestQuickRegexAgainstStringsPackage(t *testing.T) {
	// (a|b)*abb : accept iff the word over {a,b} ends with "abb".
	d := mustCompileDFA(t, "(a|b)*abb")
	f := func(pattern []bool) bool {
		var sb strings.Builder
		for _, b := range pattern {
			if b {
				sb.WriteByte('a')
			} else {
				sb.WriteByte('b')
			}
		}
		w := sb.String()
		return d.Accepts([]rune(w)) == strings.HasSuffix(w, "abb")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimizationEquivalence(t *testing.T) {
	exprs := []string{"(a|b)*abb", "(ab|ba)+", "a*b*a*", "((a|b)(a|b))*", "a(a|b)*b|b(a|b)*a"}
	for _, expr := range exprs {
		nfa, err := CompileRegex(expr)
		if err != nil {
			t.Fatal(err)
		}
		dfa := Determinize(nfa)
		min := Minimize(dfa)
		f := func(pattern []bool) bool {
			word := make([]rune, len(pattern))
			for i, b := range pattern {
				if b {
					word[i] = 'a'
				} else {
					word[i] = 'b'
				}
			}
			return dfa.Accepts(word) == min.Accepts(word)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%q: %v", expr, err)
		}
	}
}
