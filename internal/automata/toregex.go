package automata

import (
	"fmt"
	"sort"
	"strings"
)

// ToRegex converts a DFA into a regular expression accepted by CompileRegex,
// using the classic state-elimination (generalized NFA) construction. The
// output is fully parenthesized and therefore verbose, but it is exact: the
// round-trip property  Equivalent(d, CompileRegexDFA(ToRegex(d)))  holds and
// is enforced by the property tests.
//
// Together with Minimize this closes the loop behind the paper's open problem
// 3 ("given a regular language, construct an optimal algorithm"): from any
// description of a regular language — DFA, NFA or regex — the repository can
// produce the minimal automaton and hence the one-pass algorithm with the
// smallest ⌈log|Q|⌉ constant.
//
//ring:deterministic
func ToRegex(d *DFA) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	// gnfa state ids: 0 = new start, 1 = new accept, 2+i = original state i.
	start, accept := 0, 1
	stateID := func(s State) int { return 2 + int(s) }

	type edgeKey struct{ from, to int }
	edges := make(map[edgeKey]gnfaExpr)
	addEdge := func(from, to int, e gnfaExpr) {
		key := edgeKey{from, to}
		if existing, ok := edges[key]; ok {
			edges[key] = gnfaUnion(existing, e)
			return
		}
		edges[key] = e
	}

	addEdge(start, stateID(d.Start), gnfaEpsilon())
	for s := State(0); int(s) < d.NumStates; s++ {
		if d.Accepting[s] {
			addEdge(stateID(s), accept, gnfaEpsilon())
		}
		for _, sym := range d.Alphabet {
			to, ok := d.Step(s, sym)
			if !ok {
				return "", fmt.Errorf("%w: missing transition (%d, %q)", ErrInvalidDFA, s, sym)
			}
			addEdge(stateID(s), stateID(to), gnfaLiteral(sym))
		}
	}

	// Eliminate the original states one by one (ascending id keeps the output
	// deterministic).
	order := make([]int, 0, d.NumStates)
	for s := 0; s < d.NumStates; s++ {
		order = append(order, stateID(State(s)))
	}
	sort.Ints(order)
	remaining := map[int]bool{start: true, accept: true}
	for _, id := range order {
		remaining[id] = true
	}

	for _, k := range order {
		loop, hasLoop := edges[edgeKey{k, k}]
		var preds, succs []int
		//ring:ordered -- preds and succs are sorted below before any edge is built
		for key := range edges {
			if key.to == k && key.from != k && remaining[key.from] {
				preds = append(preds, key.from)
			}
			if key.from == k && key.to != k && remaining[key.to] {
				succs = append(succs, key.to)
			}
		}
		sort.Ints(preds)
		sort.Ints(succs)
		for _, p := range preds {
			for _, q := range succs {
				through := gnfaConcat(edges[edgeKey{p, k}], edges[edgeKey{k, q}])
				if hasLoop {
					through = gnfaConcat(edges[edgeKey{p, k}], gnfaConcat(gnfaStar(loop), edges[edgeKey{k, q}]))
				}
				addEdge(p, q, through)
			}
		}
		// Remove every edge touching k.
		//ring:ordered -- deletion by predicate; the surviving map does not depend on visit order
		for key := range edges {
			if key.from == k || key.to == k {
				delete(edges, key)
			}
		}
		delete(remaining, k)
	}

	final, ok := edges[edgeKey{start, accept}]
	if !ok {
		// The DFA accepts nothing. CompileRegex cannot express the empty
		// language directly, so report it as an error the caller can handle.
		return "", fmt.Errorf("automata: the automaton accepts no word; the empty language has no regex in this syntax")
	}
	return final.render(), nil
}

// gnfaExpr is a regular expression fragment of the state-elimination
// construction. epsilon-ness is tracked separately so concatenation and star
// can simplify the common cases and keep the output length manageable.
type gnfaExpr struct {
	isEpsilon bool
	expr      string
}

func gnfaEpsilon() gnfaExpr {
	return gnfaExpr{isEpsilon: true}
}

func gnfaLiteral(sym rune) gnfaExpr {
	return gnfaExpr{expr: escapeRegexLiteral(sym)}
}

func gnfaUnion(a, b gnfaExpr) gnfaExpr {
	if a.isEpsilon && b.isEpsilon {
		return a
	}
	return gnfaExpr{expr: "(" + a.render() + "|" + b.render() + ")"}
}

func gnfaConcat(a, b gnfaExpr) gnfaExpr {
	if a.isEpsilon {
		return b
	}
	if b.isEpsilon {
		return a
	}
	return gnfaExpr{expr: "(" + a.expr + b.expr + ")"}
}

func gnfaStar(a gnfaExpr) gnfaExpr {
	if a.isEpsilon {
		return a
	}
	return gnfaExpr{expr: "(" + a.expr + ")*"}
}

// render emits the fragment in CompileRegex syntax; epsilon renders as the
// empty group "()".
func (e gnfaExpr) render() string {
	if e.isEpsilon {
		return "()"
	}
	return e.expr
}

// escapeRegexLiteral escapes the CompileRegex metacharacters so alphabets
// such as Dyck's {'(', ')'} survive the round trip.
func escapeRegexLiteral(sym rune) string {
	if strings.ContainsRune(`()|*+?\`, sym) {
		return `\` + string(sym)
	}
	return string(sym)
}
