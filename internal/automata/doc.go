// Package automata implements the finite-automata substrate used throughout
// the reproduction: deterministic and nondeterministic finite automata, a
// small regular-expression compiler (Thompson construction), the subset
// construction, Hopcroft minimization, and boolean product constructions.
//
// The paper's Theorem 1 algorithm transmits the state of a finite automaton
// around the ring in ⌈log |Q|⌉ bits per message, so the DFA type here is the
// direct input to core.RegularOnePass, and minimization directly reduces the
// measured bit complexity of that algorithm.
package automata
