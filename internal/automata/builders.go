package automata

import "fmt"

// The builders in this file produce the concrete regular languages used by
// the experiments: they are small, well-understood DFAs whose state counts
// (and therefore whose ⌈log |Q|⌉ message widths in Theorem 1's algorithm)
// are easy to reason about.

// NewParityDFA returns a DFA over {0,1} accepting words with an even number
// of 1s. Two states.
func NewParityDFA() *DFA {
	d := NewDFA(2, []rune{'0', '1'})
	d.Start = 0
	d.SetAccepting(0)
	d.SetTransition(0, '0', 0)
	d.SetTransition(0, '1', 1)
	d.SetTransition(1, '0', 1)
	d.SetTransition(1, '1', 0)
	return d
}

// NewModCounterDFA returns a DFA over {0,1} accepting words in which the
// number of 1s is divisible by mod. It has `mod` states.
func NewModCounterDFA(mod int) (*DFA, error) {
	if mod < 1 {
		return nil, fmt.Errorf("%w: modulus must be positive, got %d", ErrInvalidDFA, mod)
	}
	d := NewDFA(mod, []rune{'0', '1'})
	d.Start = 0
	d.SetAccepting(0)
	for s := 0; s < mod; s++ {
		d.SetTransition(State(s), '0', State(s))
		d.SetTransition(State(s), '1', State((s+1)%mod))
	}
	return d, nil
}

// NewLengthModDFA returns a DFA over the given alphabet accepting words whose
// length is congruent to residue modulo mod.
func NewLengthModDFA(alphabet []rune, mod, residue int) (*DFA, error) {
	if mod < 1 || residue < 0 || residue >= mod {
		return nil, fmt.Errorf("%w: bad modulus/residue %d/%d", ErrInvalidDFA, mod, residue)
	}
	d := NewDFA(mod, alphabet)
	d.Start = 0
	d.SetAccepting(State(residue))
	for s := 0; s < mod; s++ {
		for _, sym := range d.Alphabet {
			d.SetTransition(State(s), sym, State((s+1)%mod))
		}
	}
	return d, nil
}

// NewContainsSubstringDFA returns a DFA over the given alphabet accepting
// words containing `pattern` as a (contiguous) substring. Built with the
// Knuth-Morris-Pratt failure function, it has len(pattern)+1 states.
func NewContainsSubstringDFA(alphabet []rune, pattern []rune) (*DFA, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("%w: empty pattern", ErrInvalidDFA)
	}
	for _, p := range pattern {
		found := false
		for _, a := range alphabet {
			if a == p {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: pattern symbol %q not in alphabet", ErrInvalidDFA, p)
		}
	}
	m := len(pattern)
	// failure[i] = length of the longest proper prefix of pattern[:i] that is
	// also a suffix.
	failure := make([]int, m+1)
	for i := 1; i < m; i++ {
		j := failure[i]
		for j > 0 && pattern[i] != pattern[j] {
			j = failure[j]
		}
		if pattern[i] == pattern[j] {
			j++
		}
		failure[i+1] = j
	}

	d := NewDFA(m+1, alphabet)
	d.Start = 0
	d.SetAccepting(State(m))
	step := func(state int, sym rune) int {
		if state == m {
			return m // absorbing accept state
		}
		j := state
		for j > 0 && pattern[j] != sym {
			j = failure[j]
		}
		if pattern[j] == sym {
			return j + 1
		}
		return 0
	}
	for s := 0; s <= m; s++ {
		for _, sym := range d.Alphabet {
			d.SetTransition(State(s), sym, State(step(s, sym)))
		}
	}
	return d, nil
}

// NewAllSameLetterDFA returns a DFA over the alphabet accepting words whose
// letters are all identical (including the empty word).
func NewAllSameLetterDFA(alphabet []rune) (*DFA, error) {
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("%w: empty alphabet", ErrInvalidDFA)
	}
	// State 0: empty so far. States 1..k: saw only letter i so far. State k+1: dead.
	k := len(alphabet)
	d := NewDFA(k+2, alphabet)
	d.Start = 0
	d.SetAccepting(0)
	dead := State(k + 1)
	for i, sym := range d.Alphabet {
		d.SetAccepting(State(i + 1))
		d.SetTransition(0, sym, State(i+1))
		d.SetTransition(dead, sym, dead)
		for j := range d.Alphabet {
			if i == j {
				d.SetTransition(State(j+1), sym, State(j+1))
			} else {
				d.SetTransition(State(j+1), sym, dead)
			}
		}
	}
	return d, nil
}
