package automata

import (
	"fmt"
	"sort"
)

// Epsilon is the pseudo-symbol used for ε-transitions in NFAs.
const Epsilon rune = 0

// NFA is a nondeterministic finite automaton with ε-transitions.
type NFA struct {
	NumStates int
	Alphabet  []rune
	Start     State
	Accepting map[State]bool
	// Trans maps (state, symbol) to the set of successor states. Epsilon is a
	// valid symbol key for ε-moves.
	Trans map[TransKey][]State
}

// NewNFA allocates an empty NFA.
func NewNFA(numStates int, alphabet []rune) *NFA {
	sorted := make([]rune, len(alphabet))
	copy(sorted, alphabet)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &NFA{
		NumStates: numStates,
		Alphabet:  sorted,
		Accepting: make(map[State]bool),
		Trans:     make(map[TransKey][]State),
	}
}

// AddTransition records that `to` is reachable from `from` on `symbol`
// (Epsilon for ε-moves).
func (n *NFA) AddTransition(from State, symbol rune, to State) {
	k := TransKey{From: from, Symbol: symbol}
	n.Trans[k] = append(n.Trans[k], to)
}

// SetAccepting marks a state as accepting.
func (n *NFA) SetAccepting(s State) {
	n.Accepting[s] = true
}

// Successors returns the states reachable from `from` on `symbol` in one step
// (no ε-closure applied).
func (n *NFA) Successors(from State, symbol rune) []State {
	return n.Trans[TransKey{From: from, Symbol: symbol}]
}

// EpsilonClosure returns the ε-closure of the given state set as a sorted
// slice without duplicates.
func (n *NFA) EpsilonClosure(states []State) []State {
	seen := make(map[State]bool, len(states))
	stack := make([]State, 0, len(states))
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range n.Successors(s, Epsilon) {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Move returns the set of states reachable from any state in `states` by one
// `symbol` transition, before ε-closure.
func (n *NFA) Move(states []State, symbol rune) []State {
	seen := make(map[State]bool)
	for _, s := range states {
		for _, to := range n.Successors(s, symbol) {
			seen[to] = true
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accepts reports whether the NFA accepts the word, by direct subset
// simulation.
func (n *NFA) Accepts(word []rune) bool {
	current := n.EpsilonClosure([]State{n.Start})
	for _, sym := range word {
		current = n.EpsilonClosure(n.Move(current, sym))
		if len(current) == 0 {
			return false
		}
	}
	for _, s := range current {
		if n.Accepting[s] {
			return true
		}
	}
	return false
}

// Validate performs basic structural checks.
func (n *NFA) Validate() error {
	if n.NumStates <= 0 {
		return fmt.Errorf("%w: no states", ErrInvalidDFA)
	}
	if n.Start < 0 || int(n.Start) >= n.NumStates {
		return fmt.Errorf("%w: start state out of range", ErrInvalidDFA)
	}
	for k, tos := range n.Trans {
		if k.From < 0 || int(k.From) >= n.NumStates {
			return fmt.Errorf("%w: transition from invalid state %d", ErrInvalidDFA, k.From)
		}
		for _, to := range tos {
			if to < 0 || int(to) >= n.NumStates {
				return fmt.Errorf("%w: transition to invalid state %d", ErrInvalidDFA, to)
			}
		}
	}
	return nil
}
