package automata

import (
	"sort"
	"strconv"
	"strings"
)

// Determinize converts an NFA into an equivalent DFA by the subset
// construction. The resulting DFA is complete over the NFA's alphabet (a
// dead state is added if necessary).
//
//ring:deterministic
func Determinize(n *NFA) *DFA {
	type subset struct {
		key    string
		states []State
	}
	keyOf := func(states []State) string {
		var sb strings.Builder
		for i, s := range states {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(int(s)))
		}
		return sb.String()
	}

	startSet := n.EpsilonClosure([]State{n.Start})
	startKey := keyOf(startSet)

	index := map[string]State{startKey: 0}
	order := []subset{{key: startKey, states: startSet}}
	type edge struct {
		from State
		sym  rune
		to   State
	}
	var edges []edge

	for i := 0; i < len(order); i++ {
		cur := order[i]
		for _, sym := range n.Alphabet {
			nextSet := n.EpsilonClosure(n.Move(cur.states, sym))
			k := keyOf(nextSet)
			id, ok := index[k]
			if !ok {
				id = State(len(order))
				index[k] = id
				order = append(order, subset{key: k, states: nextSet})
			}
			edges = append(edges, edge{from: State(i), sym: sym, to: id})
		}
	}

	d := NewDFA(len(order), n.Alphabet)
	d.Start = 0
	for i, sub := range order {
		for _, s := range sub.states {
			if n.Accepting[s] {
				d.SetAccepting(State(i))
				break
			}
		}
	}
	for _, e := range edges {
		d.SetTransition(e.from, e.sym, e.to)
	}
	return d
}

// Minimize returns the minimal DFA equivalent to d, using partition
// refinement (Hopcroft-style splitting on sorted signatures, which is
// adequate for the automaton sizes in this repository). Unreachable states
// are removed first.
//
//ring:deterministic
func Minimize(d *DFA) *DFA {
	reach := d.Reachable()
	// Remap reachable states to a dense range.
	remap := make(map[State]State, len(reach))
	var orderedReach []State
	for s := State(0); int(s) < d.NumStates; s++ {
		if reach[s] {
			remap[s] = State(len(orderedReach))
			orderedReach = append(orderedReach, s)
		}
	}

	numReach := len(orderedReach)
	// partition[i] is the block id of reachable state i (dense index).
	partition := make([]int, numReach)
	for i, old := range orderedReach {
		if d.Accepting[old] {
			partition[i] = 1
		}
	}
	numBlocks := 2
	// Degenerate cases: all accepting or none accepting.
	if allSame(partition) {
		numBlocks = 1
		for i := range partition {
			partition[i] = 0
		}
	}

	for {
		// Signature of a state: its block plus the blocks of its successors.
		sigs := make([]string, numReach)
		for i, old := range orderedReach {
			var sb strings.Builder
			sb.WriteString(strconv.Itoa(partition[i]))
			for _, sym := range d.Alphabet {
				to, _ := d.Step(old, sym)
				sb.WriteByte('|')
				sb.WriteString(strconv.Itoa(partition[remap[to]]))
			}
			sigs[i] = sb.String()
		}
		sigIndex := map[string]int{}
		newPartition := make([]int, numReach)
		for i, sig := range sigs {
			id, ok := sigIndex[sig]
			if !ok {
				id = len(sigIndex)
				sigIndex[sig] = id
			}
			newPartition[i] = id
		}
		newBlocks := len(sigIndex)
		copy(partition, newPartition)
		if newBlocks == numBlocks {
			break
		}
		numBlocks = newBlocks
	}

	out := NewDFA(numBlocks, d.Alphabet)
	out.Start = State(partition[remap[d.Start]])
	for i, old := range orderedReach {
		block := State(partition[i])
		if d.Accepting[old] {
			out.SetAccepting(block)
		}
		for _, sym := range d.Alphabet {
			to, _ := d.Step(old, sym)
			out.SetTransition(block, sym, State(partition[remap[to]]))
		}
	}
	return out
}

func allSame(xs []int) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

// Equivalent reports whether two DFAs over the same alphabet accept the same
// language, by checking that no reachable pair of the product automaton
// disagrees on acceptance.
//
//ring:deterministic
func Equivalent(a, b *DFA) bool {
	if !sameAlphabet(a.Alphabet, b.Alphabet) {
		return false
	}
	type pair struct{ x, y State }
	seen := map[pair]bool{}
	frontier := []pair{{a.Start, b.Start}}
	seen[frontier[0]] = true
	for len(frontier) > 0 {
		p := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if a.Accepting[p.x] != b.Accepting[p.y] {
			return false
		}
		for _, sym := range a.Alphabet {
			ax, _ := a.Step(p.x, sym)
			by, _ := b.Step(p.y, sym)
			np := pair{ax, by}
			if !seen[np] {
				seen[np] = true
				frontier = append(frontier, np)
			}
		}
	}
	return true
}

func sameAlphabet(a, b []rune) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]rune(nil), a...)
	bc := append([]rune(nil), b...)
	sort.Slice(ac, func(i, j int) bool { return ac[i] < ac[j] })
	sort.Slice(bc, func(i, j int) bool { return bc[i] < bc[j] })
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}
