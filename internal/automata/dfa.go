package automata

import (
	"errors"
	"fmt"
	"sort"
)

// State identifies a DFA or NFA state. States are small non-negative
// integers; the DFA start state may be any valid state.
type State int

// DFA is a deterministic finite automaton over an alphabet of runes. The
// transition function must be total over Alphabet × States.
type DFA struct {
	// NumStates is the number of states; valid states are 0..NumStates-1.
	NumStates int
	// Alphabet lists the input symbols in a canonical (sorted) order.
	Alphabet []rune
	// Start is the initial state.
	Start State
	// Accepting marks the accepting states.
	Accepting map[State]bool
	// Trans maps (state, symbol) to the next state.
	Trans map[TransKey]State
}

// TransKey is the key of a DFA transition table entry.
type TransKey struct {
	From   State
	Symbol rune
}

// ErrInvalidDFA is wrapped by Validate for any structural problem.
var ErrInvalidDFA = errors.New("automata: invalid DFA")

// NewDFA allocates an empty DFA with the given number of states and
// alphabet. Transitions and accepting states are filled in by the caller.
func NewDFA(numStates int, alphabet []rune) *DFA {
	sorted := make([]rune, len(alphabet))
	copy(sorted, alphabet)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &DFA{
		NumStates: numStates,
		Alphabet:  sorted,
		Accepting: make(map[State]bool),
		Trans:     make(map[TransKey]State, numStates*len(alphabet)),
	}
}

// SetTransition records δ(from, symbol) = to.
func (d *DFA) SetTransition(from State, symbol rune, to State) {
	d.Trans[TransKey{From: from, Symbol: symbol}] = to
}

// SetAccepting marks a state as accepting.
func (d *DFA) SetAccepting(s State) {
	d.Accepting[s] = true
}

// Step returns δ(from, symbol). The boolean is false if the transition is
// missing (which Validate would reject).
func (d *DFA) Step(from State, symbol rune) (State, bool) {
	to, ok := d.Trans[TransKey{From: from, Symbol: symbol}]
	return to, ok
}

// Validate checks that the DFA is structurally sound: states in range, the
// transition function total, and the start state valid.
func (d *DFA) Validate() error {
	if d.NumStates <= 0 {
		return fmt.Errorf("%w: no states", ErrInvalidDFA)
	}
	if len(d.Alphabet) == 0 {
		return fmt.Errorf("%w: empty alphabet", ErrInvalidDFA)
	}
	if d.Start < 0 || int(d.Start) >= d.NumStates {
		return fmt.Errorf("%w: start state %d out of range", ErrInvalidDFA, d.Start)
	}
	for s := range d.Accepting {
		if s < 0 || int(s) >= d.NumStates {
			return fmt.Errorf("%w: accepting state %d out of range", ErrInvalidDFA, s)
		}
	}
	for s := State(0); int(s) < d.NumStates; s++ {
		for _, sym := range d.Alphabet {
			to, ok := d.Step(s, sym)
			if !ok {
				return fmt.Errorf("%w: missing transition (%d, %q)", ErrInvalidDFA, s, sym)
			}
			if to < 0 || int(to) >= d.NumStates {
				return fmt.Errorf("%w: transition (%d, %q) -> %d out of range", ErrInvalidDFA, s, sym, to)
			}
		}
	}
	return nil
}

// Run returns the state reached from Start after reading word, or an error if
// a symbol is outside the alphabet.
func (d *DFA) Run(word []rune) (State, error) {
	s := d.Start
	for i, sym := range word {
		next, ok := d.Step(s, sym)
		if !ok {
			return 0, fmt.Errorf("automata: symbol %q at position %d has no transition from state %d", sym, i, s)
		}
		s = next
	}
	return s, nil
}

// Accepts reports whether the DFA accepts word. Symbols outside the alphabet
// cause rejection.
func (d *DFA) Accepts(word []rune) bool {
	s, err := d.Run(word)
	if err != nil {
		return false
	}
	return d.Accepting[s]
}

// IsAccepting reports whether s is an accepting state.
func (d *DFA) IsAccepting(s State) bool {
	return d.Accepting[s]
}

// Clone returns a deep copy of the DFA.
func (d *DFA) Clone() *DFA {
	cp := NewDFA(d.NumStates, d.Alphabet)
	cp.Start = d.Start
	for s := range d.Accepting {
		cp.Accepting[s] = true
	}
	for k, v := range d.Trans {
		cp.Trans[k] = v
	}
	return cp
}

// Reachable returns the set of states reachable from Start.
func (d *DFA) Reachable() map[State]bool {
	seen := map[State]bool{d.Start: true}
	frontier := []State{d.Start}
	for len(frontier) > 0 {
		s := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, sym := range d.Alphabet {
			if to, ok := d.Step(s, sym); ok && !seen[to] {
				seen[to] = true
				frontier = append(frontier, to)
			}
		}
	}
	return seen
}

// HasSymbol reports whether sym belongs to the DFA's alphabet.
func (d *DFA) HasSymbol(sym rune) bool {
	for _, s := range d.Alphabet {
		if s == sym {
			return true
		}
	}
	return false
}
