package ring

import (
	"fmt"
	"math/rand"

	"ringlang/internal/bits"
)

// This file extends the schedule axis from "delivery order" to "delivery
// fate". The paper (and every schedule in scheduler.go) assumes reliable
// exactly-once FIFO links; the schedulers here break that assumption in
// controlled, seeded ways so the same algorithms, tests and sweeps can
// measure what each reliability guarantee is worth:
//
//   - lossy: frames are dropped in transit and retransmitted by the link
//     layer (go-back-N with the frame retained at the sender). The algorithm
//     still observes exactly-once per-link FIFO delivery, so verdicts and
//     bit totals match every reliable schedule; the retransmission overhead
//     is reported separately in FaultReport.
//   - duplicating: at-least-once delivery. A delivered message may be
//     delivered again before the link's next message. Algorithms that do not
//     deduplicate (see WithDedup) observe a network the paper never
//     promised them.
//   - crash-restart: one processor stops receiving at a seeded delivery
//     index and restarts after a seeded outage; frames addressed to it are
//     buffered at the link layer and replayed in order. Pure delay — a legal
//     asynchronous schedule, so results match the reliable axis.
//   - crash-repair: one processor fail-stops at a seeded delivery index and
//     the ring is spliced around it; in-flight and future frames addressed
//     to it are rerouted to the next processor in their direction of travel.
//     The ring the algorithm runs on is no longer the ring it was built for.

// DeliveryGuarantee classifies what a schedule promises about message
// delivery. It is the axis recognizers declare tolerance against (see the
// core package's DeliveryTolerant): the zero value is the paper's model.
type DeliveryGuarantee int

const (
	// ExactlyOnce is the paper's model: every sent message is delivered
	// exactly once, in per-link FIFO order, to the processor it was sent to.
	ExactlyOnce DeliveryGuarantee = iota
	// AtLeastOnce means a message may be delivered more than once (duplicates
	// arrive on the same link, before that link's next message); no message
	// is lost.
	AtLeastOnce
	// CrashProne means a processor may permanently fail and the ring be
	// repaired around it: messages can be delivered to a different processor
	// than they were sent to, and the crashed processor's state is lost.
	CrashProne
)

// String implements fmt.Stringer.
func (g DeliveryGuarantee) String() string {
	switch g {
	case ExactlyOnce:
		return "exactly-once"
	case AtLeastOnce:
		return "at-least-once"
	case CrashProne:
		return "crash-prone"
	default:
		return "unknown"
	}
}

// DeliveryGuaranteed is implemented by schedulers and engines whose delivery
// fate differs from the paper's reliable exactly-once model.
type DeliveryGuaranteed interface {
	// DeliveryGuarantee reports the delivery guarantee the implementation
	// upholds.
	DeliveryGuarantee() DeliveryGuarantee
}

// EngineDeliveryGuarantee reports the delivery guarantee of an engine:
// engines that do not declare one (every engine predating the fault axis)
// uphold the paper's exactly-once model.
func EngineDeliveryGuarantee(e Engine) DeliveryGuarantee {
	if g, ok := e.(DeliveryGuaranteed); ok {
		return g.DeliveryGuarantee()
	}
	return ExactlyOnce
}

// FaultReport is the fault accounting of one execution under a
// fault-injecting schedule. Stats counts what the algorithm paid (each
// logical message once, at send time); FaultReport counts what the unreliable
// network added on top — retransmitted and duplicated frames never appear in
// Stats, because the algorithm did not send them.
type FaultReport struct {
	// Dropped is the number of frames lost in transit and retransmitted;
	// RetransmitBits is the payload volume those retransmissions carried.
	Dropped        int
	RetransmitBits int
	// Duplicates is the number of extra deliveries performed;
	// DuplicateBits is their payload volume.
	Duplicates    int
	DuplicateBits int
	// Crashed lists the processors that crashed during the run, in crash
	// order (at most one for the built-in crash schedules).
	Crashed []int
	// Rerouted is the number of deliveries spliced past a crashed processor
	// (crash-repair); Deferred is the number of delivery offers held back
	// while a crashed processor was down (crash-restart).
	Rerouted int
	Deferred int
}

// faultReporter is the unexported hook runLoop harvests fault accounting
// through after the delivery loop completes.
type faultReporter interface {
	// takeFaultReport returns an independent snapshot of the run's fault
	// accounting; safe to retain after the scheduler is reset or reused.
	takeFaultReport() *FaultReport
}

// Defaults for the by-name fault schedules (see NewEngineByName). One in
// eight offers dropping or duplicating is high for a real network but low
// enough that fault-free and faulty executions stay the same order of
// magnitude; three retransmissions bound the worst-case delay of one frame.
const (
	DefaultDropRate       = 0.125
	DefaultMaxRetransmits = 3
	DefaultDuplicateRate  = 0.125
)

// lossyScheduler drops the head frame of a link with probability dropRate at
// each delivery offer, capped at maxRetransmits consecutive drops per frame
// so every frame is eventually delivered. A dropped frame stays at the head
// of its link — the link layer retransmits it, go-back-N style — so the
// algorithm observes exactly-once per-link FIFO delivery and the run's
// verdict and Stats match the reliable schedules exactly; only FaultReport
// sees the drops. Offers cycle over the links round-robin, and the seeded
// generator makes the whole fate sequence reproducible.
type lossyScheduler struct {
	seed           int64
	dropRate       float64
	maxRetransmits int

	rng     *rand.Rand
	links   linkQueues
	cursor  int
	dropsAt []int32 // consecutive drops of the current head frame, per link
	faults  FaultReport
}

// NewLossyScheduler returns the seeded lossy schedule. Rates outside (0, 1)
// fall back to DefaultDropRate; maxRetransmits below 1 falls back to
// DefaultMaxRetransmits.
func NewLossyScheduler(seed int64, dropRate float64, maxRetransmits int) Scheduler {
	if dropRate <= 0 || dropRate >= 1 {
		dropRate = DefaultDropRate
	}
	if maxRetransmits < 1 {
		maxRetransmits = DefaultMaxRetransmits
	}
	return &lossyScheduler{seed: seed, dropRate: dropRate, maxRetransmits: maxRetransmits}
}

//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (s *lossyScheduler) Name() string {
	return fmt.Sprintf("lossy(seed=%d,drop=%g)", s.seed, s.dropRate)
}

func (s *lossyScheduler) DeliveryGuarantee() DeliveryGuarantee { return ExactlyOnce }

func (s *lossyScheduler) takeFaultReport() *FaultReport {
	fr := s.faults
	return &fr
}

func (s *lossyScheduler) Reset(links int) {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.links.reset(links)
	s.cursor = 0
	if cap(s.dropsAt) >= links {
		s.dropsAt = s.dropsAt[:links]
		for i := range s.dropsAt {
			s.dropsAt[i] = 0
		}
	} else {
		s.dropsAt = make([]int32, links)
	}
	s.faults = FaultReport{}
}

func (s *lossyScheduler) Push(link int, d Delivery) { s.links.push(link, d) }

// Next offers the next non-empty link in rotation and rolls the drop fate of
// its head frame. Termination: pending is fixed within one call and each
// iteration either delivers or increments a per-frame drop counter that is
// capped, so the loop always delivers while messages pend.
//
//ring:deterministic
func (s *lossyScheduler) Next() (Delivery, bool) {
	for s.links.pending > 0 {
		link := s.nextNonEmpty()
		if int(s.dropsAt[link]) < s.maxRetransmits && s.rng.Float64() < s.dropRate {
			s.dropsAt[link]++
			s.faults.Dropped++
			s.faults.RetransmitBits += s.links.peek(link).Len()
			continue
		}
		s.dropsAt[link] = 0
		return s.links.pop(link), true
	}
	return Delivery{}, false
}

// nextNonEmpty advances the round-robin cursor to the next non-empty link.
// Callers must ensure pending > 0.
func (s *lossyScheduler) nextNonEmpty() int {
	n := len(s.links.head)
	for i := 0; i < n; i++ {
		link := s.cursor + i
		if link >= n {
			link -= n
		}
		if !s.links.empty(link) {
			s.cursor = link + 1
			if s.cursor == n {
				s.cursor = 0
			}
			return link
		}
	}
	// Unreachable: pending > 0 implies some link is non-empty.
	return 0
}

// duplicatingScheduler delivers every message at least once: with
// probability dupRate a delivered message is scheduled for one extra
// delivery on the same link, performed before that link's next message — so
// per-link order is m, m, m' (duplicates are adjacent per link, as a
// retransmitting sender that missed an ack would produce). Duplicates are
// never themselves duplicated, which bounds the run at twice the message
// count. The duplicate's payload is snapshotted at schedule time: the
// original may alias the sender's scratch writer, which the sender is free
// to overwrite once its message has been delivered.
type duplicatingScheduler struct {
	seed    int64
	dupRate float64

	rng        *rand.Rand
	links      linkQueues
	cursor     int
	dup        []bits.String // pending duplicate per link
	dupSet     []bool
	dupPending int
	faults     FaultReport
}

// NewDuplicatingScheduler returns the seeded at-least-once schedule. Rates
// outside (0, 1) fall back to DefaultDuplicateRate.
func NewDuplicatingScheduler(seed int64, dupRate float64) Scheduler {
	if dupRate <= 0 || dupRate >= 1 {
		dupRate = DefaultDuplicateRate
	}
	return &duplicatingScheduler{seed: seed, dupRate: dupRate}
}

//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (s *duplicatingScheduler) Name() string {
	return fmt.Sprintf("duplicating(seed=%d,dup=%g)", s.seed, s.dupRate)
}

func (s *duplicatingScheduler) DeliveryGuarantee() DeliveryGuarantee { return AtLeastOnce }

func (s *duplicatingScheduler) takeFaultReport() *FaultReport {
	fr := s.faults
	return &fr
}

func (s *duplicatingScheduler) Reset(links int) {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.links.reset(links)
	s.cursor = 0
	// Release stale duplicate payloads so retained capacity never pins a
	// previous run's buffers.
	for i := range s.dup {
		s.dup[i] = bits.Empty()
		s.dupSet[i] = false
	}
	if cap(s.dup) >= links {
		s.dup = s.dup[:links]
		s.dupSet = s.dupSet[:links]
	} else {
		s.dup = make([]bits.String, links)
		s.dupSet = make([]bool, links)
	}
	s.dupPending = 0
	s.faults = FaultReport{}
}

func (s *duplicatingScheduler) Push(link int, d Delivery) { s.links.push(link, d) }

// Next cycles over the links round-robin; a link with a pending duplicate
// redelivers it before its next queued message.
//
//ring:deterministic
func (s *duplicatingScheduler) Next() (Delivery, bool) {
	if s.links.pending == 0 && s.dupPending == 0 {
		return Delivery{}, false
	}
	n := len(s.links.head)
	for i := 0; i < n; i++ {
		link := s.cursor + i
		if link >= n {
			link -= n
		}
		if !s.dupSet[link] && s.links.empty(link) {
			continue
		}
		s.cursor = link + 1
		if s.cursor == n {
			s.cursor = 0
		}
		if s.dupSet[link] {
			d := Delivery{To: link >> 1, From: Direction(link&1 + 1), Payload: s.dup[link]}
			s.dup[link] = bits.Empty()
			s.dupSet[link] = false
			s.dupPending--
			return d, true
		}
		d := s.links.pop(link)
		if s.rng.Float64() < s.dupRate {
			s.dup[link] = d.Payload.Clone()
			s.dupSet[link] = true
			s.dupPending++
			s.faults.Duplicates++
			s.faults.DuplicateBits += d.Payload.Len()
		}
		return d, true
	}
	// Unreachable: a pending message or duplicate implies a schedulable link.
	return Delivery{}, false
}

// crashMode selects what happens to the crashed processor's traffic.
type crashMode int

const (
	// crashRepair: fail-stop plus ring splice. The processor is permanently
	// removed; frames addressed to it are rerouted to the next processor in
	// their direction of travel, as if its neighbours had been reconnected.
	crashRepair crashMode = iota
	// crashRestart: the processor stops receiving for a bounded outage and
	// then resumes with its state intact; its frames are buffered at the
	// link layer and replayed in order. A pure delay — a legal schedule.
	crashRestart
)

// crashScheduler crashes one seeded processor (never the leader) at a seeded
// delivery index. All fate draws happen at Reset, so the execution is a
// deterministic function of (seed, ring size) alone.
type crashScheduler struct {
	mode crashMode
	seed int64

	links  linkQueues
	cursor int
	n      int

	crashProc int // crashed processor, -1 when the ring is too small
	crashAt   int // delivered count at which the crash fires
	downUntil int // crashRestart: delivered count at which the outage ends
	delivered int
	crashed   bool
	faults    FaultReport
}

// NewCrashRepairScheduler returns the seeded fail-stop-and-splice schedule.
func NewCrashRepairScheduler(seed int64) Scheduler {
	return &crashScheduler{mode: crashRepair, seed: seed}
}

// NewCrashRestartScheduler returns the seeded crash-and-restart schedule:
// the self-stabilizing variant, whose outage is a pure delivery delay.
func NewCrashRestartScheduler(seed int64) Scheduler {
	return &crashScheduler{mode: crashRestart, seed: seed}
}

//ring:coldpath -- label rendering; called at setup and in error reports, never per message
func (s *crashScheduler) Name() string {
	if s.mode == crashRepair {
		return fmt.Sprintf("crash-repair(seed=%d)", s.seed)
	}
	return fmt.Sprintf("crash-restart(seed=%d)", s.seed)
}

func (s *crashScheduler) DeliveryGuarantee() DeliveryGuarantee {
	if s.mode == crashRepair {
		return CrashProne
	}
	return ExactlyOnce
}

func (s *crashScheduler) takeFaultReport() *FaultReport {
	fr := s.faults
	if s.faults.Crashed != nil {
		//ringvet:ignore allocflow -- result snapshot, once per completed run after the delivery loop
		fr.Crashed = append([]int(nil), s.faults.Crashed...)
	}
	return &fr
}

func (s *crashScheduler) Reset(links int) {
	s.links.reset(links)
	s.cursor = 0
	s.n = links / 2
	s.delivered = 0
	s.crashed = false
	s.faults = FaultReport{}
	// All randomness is drawn here: the victim (never the leader at index 0,
	// who holds the verdict), the crash point within the first two ring
	// tours, and the outage length of the restart variant.
	rng := rand.New(rand.NewSource(s.seed))
	if s.n < 2 {
		s.crashProc = -1
		return
	}
	s.crashProc = 1 + rng.Intn(s.n-1)
	s.crashAt = 1 + rng.Intn(2*s.n)
	s.downUntil = s.crashAt + s.n + rng.Intn(2*s.n)
}

func (s *crashScheduler) Push(link int, d Delivery) { s.links.push(link, d) }

// Next delivers round-robin by link, applying the crash fate to links that
// target the crashed processor: repair reroutes them past it, restart defers
// them until the outage ends. When only deferred traffic remains, the outage
// ends early — the network around the crashed processor has quiesced, and
// holding its frames any longer would deadlock a live run.
//
//ring:deterministic
func (s *crashScheduler) Next() (Delivery, bool) {
	if s.links.pending == 0 {
		return Delivery{}, false
	}
	if !s.crashed && s.crashProc >= 0 && s.delivered >= s.crashAt {
		s.crashed = true
		//ringvet:ignore allocflow -- the crash fires once per run; one single-element append
		s.faults.Crashed = append(s.faults.Crashed, s.crashProc)
	}
	for {
		n := len(s.links.head)
		deferred := false
		for i := 0; i < n; i++ {
			link := s.cursor + i
			if link >= n {
				link -= n
			}
			if s.links.empty(link) {
				continue
			}
			if s.crashed && link>>1 == s.crashProc {
				if s.mode == crashRestart && s.delivered < s.downUntil {
					s.faults.Deferred++
					deferred = true
					continue
				}
				if s.mode == crashRepair {
					s.advanceCursor(link)
					s.delivered++
					d := s.links.pop(link)
					// The frame keeps travelling in its direction past the
					// spliced-out processor; the arrival direction the new
					// receiver perceives is unchanged.
					travel := d.From.Opposite()
					d.To = neighbour(s.crashProc, travel, s.n)
					s.faults.Rerouted++
					return d, true
				}
			}
			s.advanceCursor(link)
			s.delivered++
			return s.links.pop(link), true
		}
		if !deferred {
			// Unreachable: pending > 0 implies some link is non-empty.
			return Delivery{}, false
		}
		// Only the crashed processor's frames remain: restart it now.
		s.downUntil = s.delivered
	}
}

func (s *crashScheduler) advanceCursor(link int) {
	s.cursor = link + 1
	if s.cursor == len(s.links.head) {
		s.cursor = 0
	}
}

// NewLossyEngine returns an engine running the lossy schedule (see
// NewLossyScheduler for the parameter fallbacks).
func NewLossyEngine(seed int64, dropRate float64, maxRetransmits int) *ScheduledEngine {
	factory := func() Scheduler { return NewLossyScheduler(seed, dropRate, maxRetransmits) }
	return NewScheduledEngine(factory().Name(), factory)
}

// NewDuplicatingEngine returns an engine running the at-least-once schedule
// (see NewDuplicatingScheduler for the rate fallback).
func NewDuplicatingEngine(seed int64, dupRate float64) *ScheduledEngine {
	factory := func() Scheduler { return NewDuplicatingScheduler(seed, dupRate) }
	return NewScheduledEngine(factory().Name(), factory)
}

// NewCrashRepairEngine returns an engine running the fail-stop-and-splice
// schedule.
func NewCrashRepairEngine(seed int64) *ScheduledEngine {
	factory := func() Scheduler { return NewCrashRepairScheduler(seed) }
	return NewScheduledEngine(factory().Name(), factory)
}

// NewCrashRestartEngine returns an engine running the crash-and-restart
// schedule.
func NewCrashRestartEngine(seed int64) *ScheduledEngine {
	factory := func() Scheduler { return NewCrashRestartScheduler(seed) }
	return NewScheduledEngine(factory().Name(), factory)
}
