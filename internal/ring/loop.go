package ring

import "fmt"

// loopState is the mutable per-run state of the shared event loop: verdict,
// accounting, trace. It implements verdictSink, so processor contexts carry a
// plain pointer to it instead of one closure per processor — a reused
// loopState makes the loop allocation-free apart from the algorithm's own
// sends.
type loopState struct {
	cfg     Config
	stats   Stats
	trace   Trace
	seq     int
	verdict Verdict
}

// reset prepares the state for a fresh run.
func (lp *loopState) reset(cfg Config, n int) {
	lp.cfg = cfg
	lp.stats.reset(n)
	lp.trace = nil
	lp.seq = 0
	lp.verdict = VerdictNone
}

// decide implements verdictSink for the single-goroutine loop.
//
//ring:hotpath guard=TestEngineLoopAllocRegressionGuard
func (lp *loopState) decide(proc int, v Verdict) error {
	if lp.verdict != VerdictNone {
		return ErrAlreadyDecided
	}
	lp.verdict = v
	if lp.cfg.RecordTrace {
		//ringvet:ignore hotpathalloc -- trace recording is opt-in and excluded from the alloc budget
		lp.trace = append(lp.trace, Event{Seq: lp.seq, Kind: EventVerdict, Processor: proc, Verdict: v})
		lp.seq++
	}
	return nil
}

// runLoop is the single event loop behind every scheduler-backed engine. It
// owns everything the seed engines used to triplicate: processor contexts,
// send validation and routing, stats accounting, trace recording, the start
// phase, the message budget and termination. The scheduler decides nothing
// but the delivery order.
//
// st may be nil (a transient state is used) or a caller-owned RunState whose
// allocations are reused across runs; see RunState for the aliasing rules.
//
// Trace recording is gated at every site so a run with Config.RecordTrace
// off never constructs an Event.
//
//ring:deterministic
//ring:hotpath guard=TestEngineLoopAllocRegressionGuard,TestLoopAllocatesLessThanSeedLoop
func runLoop(cfg Config, nodes []Node, sched Scheduler, st *RunState) (*Result, error) {
	return runLoopFrom(cfg, nodes, sched, st, CheckpointRun{})
}

// runLoopFrom is runLoop extended with prefix checkpointing: run.Resume
// skips the start phase and reinstates a captured execution, and
// run.CaptureAfter freezes checkpoints at the requested delivery counts. A
// zero run is exactly runLoop; the hot delivery loop pays one integer
// compare for the capture boundary and nothing for resume.
//
//ring:deterministic
//ring:hotpath guard=TestEngineLoopAllocRegressionGuard,TestLoopAllocatesLessThanSeedLoop,TestCheckpointResumeAllocRegressionGuard
func runLoopFrom(cfg Config, nodes []Node, sched Scheduler, st *RunState, run CheckpointRun) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	var ck checkpointableScheduler
	if run.Resume != nil || (run.OnCapture != nil && len(run.CaptureAfter) > 0) {
		var ok bool
		if ck, ok = sched.(checkpointableScheduler); !ok {
			return nil, fmt.Errorf("%w: schedule %q cannot capture or resume checkpoints", ErrNotPrefixStable, sched.Name())
		}
	}
	var ctxDone <-chan struct{}
	if cfg.Ctx != nil {
		if cfg.Ctx.Err() != nil {
			return nil, canceledRun(cfg.Ctx)
		}
		ctxDone = cfg.Ctx.Done()
	}
	if st == nil {
		st = &RunState{}
	}
	n := len(nodes)
	lp := &st.loop
	lp.reset(cfg, n)
	contexts := st.resetContexts(n)
	for i := range contexts {
		// Field-wise reset keeps each context's scratch writer (and its grown
		// buffer) alive across the runs of a reused RunState.
		contexts[i].isLeader = i == LeaderIndex
		contexts[i].proc = i
		contexts[i].sink = lp
	}

	sched.Reset(numLinks(n))
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			to, arrival, err := routeSend(cfg, fromProc, s, n)
			if err != nil {
				return err
			}
			if cfg.RecordTrace {
				// The trace retains payloads beyond the delivery, but a payload
				// built on a Context scratch writer is only valid until the
				// sender's next message — snapshot it.
				s.Payload = s.Payload.Clone()
			}
			lp.stats.record(to, arrival, s.Payload)
			if cfg.RecordTrace {
				//ringvet:ignore hotpathalloc -- trace recording is opt-in and excluded from the alloc budget
				lp.trace = append(lp.trace, Event{Seq: lp.seq, Kind: EventSend, Processor: fromProc, Dir: s.Dir, Payload: s.Payload})
				lp.seq++
			}
			sched.Push(linkIndex(to, arrival), Delivery{To: to, From: arrival, Payload: s.Payload})
		}
		return nil
	}

	delivered := 0
	if run.Resume != nil {
		// Resume: the start phase (and the checkpointed prefix of the
		// delivery loop) already happened in the captured execution; install
		// its state instead of replaying it.
		if err := restoreCheckpoint(run.Resume, cfg, nodes, ck, lp); err != nil {
			return nil, err
		}
		delivered = run.Resume.delivered
	} else {
		// Start phase.
		for i := 0; i < n; i++ {
			if cfg.Initiators == LeaderOnly && i != LeaderIndex {
				continue
			}
			if cfg.RecordTrace {
				//ringvet:ignore hotpathalloc -- trace recording is opt-in and excluded from the alloc budget
				lp.trace = append(lp.trace, Event{Seq: lp.seq, Kind: EventStart, Processor: i})
				lp.seq++
			}
			//ringvet:ignore allocflow -- Start runs once per node at run begin, before the delivery loop
			sends, err := nodes[i].Start(&contexts[i])
			if err != nil {
				return nil, fmt.Errorf("ring: start of processor %d: %w", i, err)
			}
			if err := dispatch(i, sends); err != nil {
				return nil, err
			}
			if lp.verdict != VerdictNone {
				break
			}
		}
	}

	// Capture plan: stopAt is the next boundary (or -1, which delivered
	// never equals), so the hot loop below pays a single compare per
	// delivery whether or not captures are requested.
	capAfter := run.CaptureAfter
	if run.OnCapture == nil {
		capAfter = nil
	}
	stopAt := -1
	for len(capAfter) > 0 && (capAfter[0] <= delivered || capAfter[0] < 1) {
		capAfter = capAfter[1:]
	}
	if len(capAfter) > 0 {
		stopAt = capAfter[0]
	}

	// Delivery loop. Cancellation is polled every ctxCheckInterval deliveries:
	// a non-blocking receive on a prefetched Done channel, so runs with a
	// context pay no allocation and runs without one pay a nil test.
	for lp.verdict == VerdictNone {
		if ctxDone != nil && delivered&(ctxCheckInterval-1) == 0 {
			select {
			case <-ctxDone:
				return nil, canceledRun(cfg.Ctx)
			default:
			}
		}
		d, ok := sched.Next()
		if !ok {
			break
		}
		if delivered >= cfg.MaxMessages {
			return nil, fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, delivered)
		}
		delivered++
		if cfg.RecordTrace {
			// A payload popped from the FIFO arena is recycled a couple of
			// deliveries later; the trace outlives that, so snapshot it.
			//ringvet:ignore hotpathalloc -- trace recording is opt-in and excluded from the alloc budget
			lp.trace = append(lp.trace, Event{Seq: lp.seq, Kind: EventReceive, Processor: d.To, Dir: d.From, Payload: d.Payload.Clone()})
			lp.seq++
		}
		sends, err := nodes[d.To].Receive(&contexts[d.To], d.From, d.Payload)
		if err != nil {
			return nil, fmt.Errorf("ring: receive at processor %d: %w", d.To, err)
		}
		if lp.verdict != VerdictNone {
			// The leader decided while processing this delivery; the paper's
			// model terminates the execution at that point.
			break
		}
		if err := dispatch(d.To, sends); err != nil {
			return nil, err
		}
		if delivered == stopAt {
			// The delivery and its dispatches are complete and no verdict
			// fired: freeze the undecided state between deliveries.
			cp, err := captureCheckpoint(ck, lp, nodes, delivered)
			if err != nil {
				return nil, err
			}
			run.OnCapture(cp)
			stopAt = -1
			for capAfter = capAfter[1:]; len(capAfter) > 0; capAfter = capAfter[1:] {
				if capAfter[0] > delivered {
					stopAt = capAfter[0]
					break
				}
			}
		}
	}

	if cfg.RequireVerdict && lp.verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	res := &Result{Verdict: lp.verdict, Stats: &lp.stats, Trace: lp.trace}
	if fr, ok := sched.(faultReporter); ok {
		// Fault-injecting schedules attach their accounting; the snapshot is
		// independent of the scheduler, which the next run resets.
		//ringvet:ignore hotpathalloc -- once per completed run, after the delivery loop; reliable schedules skip it entirely
		res.Faults = fr.takeFaultReport()
	}
	return res, nil
}

// ScheduledEngine drives the shared event loop with a fresh scheduler per
// run, so one engine value stays reusable (and as goroutine-safe as the seed
// engines) no matter how much state its schedule keeps.
type ScheduledEngine struct {
	name      string
	factory   func() Scheduler
	guarantee DeliveryGuarantee
}

// NewScheduledEngine wraps a scheduler factory as an Engine. This is the
// extension point for schedules the built-in names do not cover: implement
// Scheduler, wrap it here, and every recognizer, experiment and test can run
// under it — no fourth engine copy required. The engine inherits the
// scheduler's delivery guarantee (probed from one factory call); schedulers
// that declare none uphold the exactly-once model.
func NewScheduledEngine(name string, factory func() Scheduler) *ScheduledEngine {
	e := &ScheduledEngine{name: name, factory: factory}
	if g, ok := factory().(DeliveryGuaranteed); ok {
		e.guarantee = g.DeliveryGuarantee()
	}
	return e
}

// DeliveryGuarantee implements DeliveryGuaranteed: the guarantee of the
// engine's scheduler (see EngineDeliveryGuarantee).
func (e *ScheduledEngine) DeliveryGuarantee() DeliveryGuarantee { return e.guarantee }

var _ StatefulEngine = (*ScheduledEngine)(nil)

// Name implements Engine.
func (e *ScheduledEngine) Name() string { return e.name }

// Run implements Engine.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *ScheduledEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, e.factory(), nil)
}

// RunWith implements StatefulEngine.
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *ScheduledEngine) RunWith(st *RunState, cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, st.scheduler(e, e.factory), st)
}

var _ CheckpointEngine = (*ScheduledEngine)(nil)

// RunCheckpointed implements CheckpointEngine. It fails with
// ErrNotPrefixStable when the engine's scheduler cannot checkpoint (capture
// or resume under a schedule that is not prefix-stable).
//
//ring:coldpath -- per-run entry point; the delivery loop below carries its own //ring:hotpath roots
func (e *ScheduledEngine) RunCheckpointed(st *RunState, cfg Config, nodes []Node, run CheckpointRun) (*Result, error) {
	if st == nil {
		st = &RunState{}
	}
	return runLoopFrom(cfg, nodes, st.scheduler(e, e.factory), st, run)
}

// NewRoundRobinEngine returns an engine delivering round-robin by link.
func NewRoundRobinEngine() *ScheduledEngine {
	return NewScheduledEngine("round-robin", NewRoundRobinScheduler)
}

// NewAdversarialEngine returns an engine running the bounded-delay adversary
// (see adversarialScheduler). Bounds below 1 fall back to
// DefaultAdversarialBound.
func NewAdversarialEngine(bound int) *ScheduledEngine {
	if bound < 1 {
		bound = DefaultAdversarialBound
	}
	return NewScheduledEngine(fmt.Sprintf("adversarial(bound=%d)", bound),
		func() Scheduler { return NewAdversarialScheduler(bound) })
}
