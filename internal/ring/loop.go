package ring

import "fmt"

// runLoop is the single event loop behind every scheduler-backed engine. It
// owns everything the seed engines used to triplicate: processor contexts,
// send validation and routing, stats accounting, trace recording, the start
// phase, the message budget and termination. The scheduler decides nothing
// but the delivery order.
//
// Trace recording is gated at every site so a run with Config.RecordTrace
// off never constructs an Event.
func runLoop(cfg Config, nodes []Node, sched Scheduler) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	stats := newStats(n)
	var trace Trace
	seq := 0

	verdict := VerdictNone
	contexts := make([]Context, n)
	for i := range contexts {
		idx := i
		contexts[i] = Context{
			isLeader: idx == LeaderIndex,
			decide: func(v Verdict) error {
				if verdict != VerdictNone {
					return ErrAlreadyDecided
				}
				verdict = v
				if cfg.RecordTrace {
					trace = append(trace, Event{Seq: seq, Kind: EventVerdict, Processor: idx, Verdict: v})
					seq++
				}
				return nil
			},
		}
	}

	sched.Reset(numLinks(n))
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			to, arrival, err := routeSend(cfg, fromProc, s, n)
			if err != nil {
				return err
			}
			stats.record(fromProc, to, s.Payload)
			if cfg.RecordTrace {
				trace = append(trace, Event{Seq: seq, Kind: EventSend, Processor: fromProc, Dir: s.Dir, Payload: s.Payload})
				seq++
			}
			sched.Push(linkIndex(to, arrival), Delivery{To: to, From: arrival, Payload: s.Payload})
		}
		return nil
	}

	// Start phase.
	for i := 0; i < n; i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		if cfg.RecordTrace {
			trace = append(trace, Event{Seq: seq, Kind: EventStart, Processor: i})
			seq++
		}
		sends, err := nodes[i].Start(&contexts[i])
		if err != nil {
			return nil, fmt.Errorf("ring: start of processor %d: %w", i, err)
		}
		if err := dispatch(i, sends); err != nil {
			return nil, err
		}
		if verdict != VerdictNone {
			break
		}
	}

	// Delivery loop.
	delivered := 0
	for verdict == VerdictNone {
		d, ok := sched.Next()
		if !ok {
			break
		}
		if delivered >= cfg.MaxMessages {
			return nil, fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, delivered)
		}
		delivered++
		if cfg.RecordTrace {
			trace = append(trace, Event{Seq: seq, Kind: EventReceive, Processor: d.To, Dir: d.From, Payload: d.Payload})
			seq++
		}
		sends, err := nodes[d.To].Receive(&contexts[d.To], d.From, d.Payload)
		if err != nil {
			return nil, fmt.Errorf("ring: receive at processor %d: %w", d.To, err)
		}
		if verdict != VerdictNone {
			// The leader decided while processing this delivery; the paper's
			// model terminates the execution at that point.
			break
		}
		if err := dispatch(d.To, sends); err != nil {
			return nil, err
		}
	}

	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: stats, Trace: trace}, nil
}

// ScheduledEngine drives the shared event loop with a fresh scheduler per
// run, so one engine value stays reusable (and as goroutine-safe as the seed
// engines) no matter how much state its schedule keeps.
type ScheduledEngine struct {
	name    string
	factory func() Scheduler
}

// NewScheduledEngine wraps a scheduler factory as an Engine. This is the
// extension point for schedules the built-in names do not cover: implement
// Scheduler, wrap it here, and every recognizer, experiment and test can run
// under it — no fourth engine copy required.
func NewScheduledEngine(name string, factory func() Scheduler) *ScheduledEngine {
	return &ScheduledEngine{name: name, factory: factory}
}

var _ Engine = (*ScheduledEngine)(nil)

// Name implements Engine.
func (e *ScheduledEngine) Name() string { return e.name }

// Run implements Engine.
func (e *ScheduledEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	return runLoop(cfg, nodes, e.factory())
}

// NewRoundRobinEngine returns an engine delivering round-robin by link.
func NewRoundRobinEngine() *ScheduledEngine {
	return NewScheduledEngine("round-robin", NewRoundRobinScheduler)
}

// NewAdversarialEngine returns an engine running the bounded-delay adversary
// (see adversarialScheduler). Bounds below 1 fall back to
// DefaultAdversarialBound.
func NewAdversarialEngine(bound int) *ScheduledEngine {
	if bound < 1 {
		bound = DefaultAdversarialBound
	}
	return NewScheduledEngine(fmt.Sprintf("adversarial(bound=%d)", bound),
		func() Scheduler { return NewAdversarialScheduler(bound) })
}
