package ring

import (
	"fmt"

	"ringlang/internal/bits"
)

// WithDedup wraps a node with an alternating-bit deduplication layer, the
// classical fix for at-least-once links: every outgoing payload is prefixed
// with a one-bit sequence number that alternates per send direction, and an
// arriving payload whose bit repeats the previous one on that link is a
// duplicate and is dropped without waking the inner node.
//
// One bit suffices because the duplicating schedule (like a retransmitting
// sender) redelivers a message before the link's next message: a duplicate
// is always adjacent to its original on its link, so equal consecutive bits
// identify it exactly. The cost is one extra bit per message, which the
// engine accounts like any other payload bit — a dedup-wrapped run has
// identical Stats under every schedule, duplicating included, because
// duplicates are delivered by the network, not sent by the algorithm.
//
// Wrapped payloads are built on fresh buffers, never on the Context scratch
// writer, so wrapping is safe for nodes with several sends in flight (the
// election protocols); the price is one allocation per send, which keeps the
// wrapper off the reliable hot path and on the fault axis where it belongs.
func WithDedup(n Node) Node {
	return &dedupNode{inner: n, lastIn: [2]int8{-1, -1}}
}

// WithDedupAll wraps every node of a ring with WithDedup.
func WithDedupAll(nodes []Node) []Node {
	wrapped := make([]Node, len(nodes))
	for i, n := range nodes {
		wrapped[i] = WithDedup(n)
	}
	return wrapped
}

type dedupNode struct {
	inner Node
	// lastIn is the last sequence bit accepted per arrival direction
	// (index Direction-1); -1 before the first message. On a ring each
	// arrival direction maps to exactly one sender, so per-direction state
	// is per-link state.
	lastIn [2]int8
	// outBit is the next sequence bit to stamp per send direction.
	outBit [2]bool
}

// Start implements Node.
func (n *dedupNode) Start(ctx *Context) ([]Send, error) {
	sends, err := n.inner.Start(ctx)
	if err != nil {
		return nil, err
	}
	return n.frame(sends), nil
}

// Receive implements Node.
func (n *dedupNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	if payload.Len() == 0 {
		return nil, fmt.Errorf("ring: dedup: empty payload carries no sequence bit")
	}
	r := bits.NewReader(payload)
	seq, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("ring: dedup: read sequence bit: %w", err)
	}
	bit := int8(0)
	if seq {
		bit = 1
	}
	if n.lastIn[from-1] == bit {
		// The alternating bit repeated: a redelivery of the message we
		// already processed. Swallow it.
		return nil, nil
	}
	n.lastIn[from-1] = bit
	inner, err := r.ReadString(payload.Len() - 1)
	if err != nil {
		return nil, fmt.Errorf("ring: dedup: unframe payload: %w", err)
	}
	sends, err := n.inner.Receive(ctx, from, inner)
	if err != nil {
		return nil, err
	}
	return n.frame(sends), nil
}

// frame prefixes each send's payload with the direction's next sequence bit,
// on a fresh buffer (the inner payload may alias the context scratch writer,
// which stays untouched).
func (n *dedupNode) frame(sends []Send) []Send {
	for i := range sends {
		dir := sends[i].Dir
		var w bits.Writer
		w.WriteBool(n.outBit[dir-1])
		w.WriteString(sends[i].Payload)
		sends[i].Payload = w.String()
		n.outBit[dir-1] = !n.outBit[dir-1]
	}
	return sends
}
