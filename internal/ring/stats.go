package ring

import (
	"sort"

	"ringlang/internal/bits"
)

// LinkStats accumulates traffic over one directed link of the ring.
type LinkStats struct {
	// From and To are processor indices; the link carries messages From → To.
	From int
	To   int
	// Messages is the number of messages sent over the link.
	Messages int
	// Bits is the total payload length sent over the link.
	Bits int
}

// Stats is the bit/message accounting of one execution. It is computed by
// the engine; algorithms never report their own costs.
//
// Per-link traffic is stored struct-of-arrays: two flat counter arrays
// indexed by directed link id (see linkIndex), so the hot path touches two
// dense cache lines per message instead of a 4-field struct slot — and the
// endpoints are never stored at all, because a link id already encodes its
// receiver and arrival direction (the sender follows from the ring
// topology). The map the seed code exposed survives as the lazily-built view
// returned by PerLink; LinkStats values are materialized only there.
type Stats struct {
	// Processors is the ring size n.
	Processors int
	// Messages is the total number of messages delivered.
	Messages int
	// Bits is the total number of payload bits transmitted — the quantity
	// BIT_A(n) of the paper.
	Bits int
	// MaxMessageBits is the largest single message payload.
	MaxMessageBits int

	// linkMsgs and linkBits are indexed by linkIndex(to, arrival); a slot
	// with zero messages never carried traffic. They are allocated lazily on
	// the first record so a run that sends nothing allocates nothing. The
	// sharded engine writes them directly from its workers — every directed
	// link has exactly one sending processor, hence exactly one writing
	// worker, so the arrays need no synchronization beyond the final join.
	linkMsgs []int32
	linkBits []int64
	// view is the cached result of PerLink, invalidated on every record.
	view map[[2]int]*LinkStats

	// oversizedRuns counts consecutive resets that needed far less per-link
	// capacity than is retained, driving the shrink policy (see maybeShrink).
	oversizedRuns int
}

// newStats allocates a Stats for a ring of n processors.
func newStats(n int) *Stats {
	return &Stats{Processors: n}
}

// reset prepares the Stats for a fresh run on a ring of n processors, keeping
// the per-link backing arrays when their capacity suffices. This is what
// makes a Stats reusable across the runs of a batch worker. Capacity far
// beyond the new size is released after enough consecutive small runs (the
// RunState shrink policy), so one huge run does not pin its arrays forever.
func (s *Stats) reset(n int) {
	s.Processors = n
	s.Messages = 0
	s.Bits = 0
	s.MaxMessageBits = 0
	s.view = nil
	links := numLinks(n)
	if shouldShrink(cap(s.linkMsgs), links, &s.oversizedRuns) {
		s.linkMsgs = nil
		s.linkBits = nil
	}
	if cap(s.linkMsgs) >= links {
		s.linkMsgs = s.linkMsgs[:links]
		s.linkBits = s.linkBits[:links]
		for i := range s.linkMsgs {
			s.linkMsgs[i] = 0
			s.linkBits[i] = 0
		}
	} else {
		s.linkMsgs = nil // reallocated lazily at the new size
		s.linkBits = nil
	}
}

// ensureLinks materializes the per-link counter arrays at full size. The
// serial loop lets record do this lazily; the sharded engine calls it before
// launching workers so no two workers race the allocation.
func (s *Stats) ensureLinks() {
	if s.linkMsgs == nil {
		s.linkMsgs = make([]int32, numLinks(s.Processors))
		s.linkBits = make([]int64, numLinks(s.Processors))
	}
}

// record accounts one message sent to processor `to`, arriving from
// direction `arrival` as the receiver perceives it (the pair (to, arrival)
// names the directed link, see linkIndex; the sender is implied by the
// topology).
//
//ring:deterministic
//ring:hotpath guard=TestEngineLoopAllocRegressionGuard
func (s *Stats) record(to int, arrival Direction, payload bits.String) {
	n := payload.Len()
	s.Messages++
	s.Bits += n
	if n > s.MaxMessageBits {
		s.MaxMessageBits = n
	}
	s.ensureLinks()
	link := linkIndex(to, arrival)
	s.linkMsgs[link]++
	s.linkBits[link] += int64(n)
	s.view = nil
}

// linkStatsAt materializes the LinkStats of one directed link id, deriving
// the endpoints from the id: the receiver is link>>1, the arrival direction
// is the low bit, and the sender is the receiver's neighbour in the arrival
// direction.
func (s *Stats) linkStatsAt(link int) LinkStats {
	to := link >> 1
	arrival := Direction(link&1 + 1)
	return LinkStats{
		From:     neighbour(to, arrival, s.Processors),
		To:       to,
		Messages: int(s.linkMsgs[link]),
		Bits:     int(s.linkBits[link]),
	}
}

// Links returns the links that carried at least one message, ordered by
// (From, To) — the PerLink view as a deterministic slice, including its
// merge of the two link directions that share a key on 1- and 2-rings. The
// returned slice is freshly allocated and safe to retain.
//
//ring:deterministic
func (s *Stats) Links() []LinkStats {
	view := s.PerLink()
	out := make([]LinkStats, 0, len(view))
	//ring:ordered -- collected into a slice and sorted by (From, To) below
	for _, ls := range view {
		out = append(out, *ls)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// PerLink returns the traffic per directed link, keyed by (From, To) — the
// view the seed Stats stored directly. It is built on first call and cached
// until the next record. On rings of one or two processors the forward and
// backward link between a pair of processors share a (From, To) key; their
// traffic is merged, matching the seed behaviour.
func (s *Stats) PerLink() map[[2]int]*LinkStats {
	if s.view != nil {
		return s.view
	}
	view := make(map[[2]int]*LinkStats)
	for i := range s.linkMsgs {
		if s.linkMsgs[i] == 0 {
			continue
		}
		ls := s.linkStatsAt(i)
		key := [2]int{ls.From, ls.To}
		if prev, ok := view[key]; ok {
			prev.Messages += ls.Messages
			prev.Bits += ls.Bits
			continue
		}
		entry := ls
		view[key] = &entry
	}
	s.view = view
	return view
}

// Clone returns an independent deep copy. Batch executors that reuse one
// Stats across runs snapshot each run's accounting with it.
//
//ring:coldpath -- result snapshot, taken once per completed run
func (s *Stats) Clone() *Stats {
	c := *s
	c.view = nil
	if s.linkMsgs != nil {
		c.linkMsgs = append([]int32(nil), s.linkMsgs...)
		c.linkBits = append([]int64(nil), s.linkBits...)
	}
	return &c
}

// BitsPerProcessor returns Bits / n, the per-processor average used when
// checking linear (O(n)) scaling.
func (s *Stats) BitsPerProcessor() float64 {
	if s.Processors == 0 {
		return 0
	}
	return float64(s.Bits) / float64(s.Processors)
}

// MinLinkBits returns the smallest bit count over all links that carried
// traffic, and the link itself; this is the quantity the Theorem 5
// transformation cuts the ring at. It works on the PerLink view, so a cut on
// a degenerate 1- or 2-ring sees a processor pair's two directions as one
// merged link, like the seed accounting did. Ties are broken
// deterministically towards the lowest (From, To) pair, so the cut link of
// two identical runs is always the same link. The boolean is false if no
// link carried any message.
//
//ring:deterministic
func (s *Stats) MinLinkBits() (LinkStats, bool) {
	var best *LinkStats
	//ring:ordered -- the comparison below breaks ties towards the lowest (From, To) pair, so the minimum is order-independent
	for _, ls := range s.PerLink() {
		if best == nil || ls.Bits < best.Bits ||
			(ls.Bits == best.Bits && (ls.From < best.From ||
				(ls.From == best.From && ls.To < best.To))) {
			best = ls
		}
	}
	if best == nil {
		return LinkStats{}, false
	}
	return *best, true
}

// EventKind classifies trace events.
type EventKind int

const (
	// EventStart marks a processor's Start invocation.
	EventStart EventKind = iota + 1
	// EventSend marks a message leaving a processor.
	EventSend
	// EventReceive marks a message delivered to a processor.
	EventReceive
	// EventVerdict marks the leader's decision.
	EventVerdict
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventSend:
		return "send"
	case EventReceive:
		return "receive"
	case EventVerdict:
		return "verdict"
	default:
		return "unknown"
	}
}

// Event is a single entry of an execution trace. Seq is a global sequence
// number establishing the total order of the recorded execution (for the
// concurrent engine this is the observation order at the engine, which is a
// legal serialization).
type Event struct {
	Seq       int
	Kind      EventKind
	Processor int
	// Dir is the direction of the send/receive relative to the processor
	// (meaningless for start/verdict events).
	Dir Direction
	// Payload is the message content for send/receive events.
	Payload bits.String
	// Verdict is set for EventVerdict events.
	Verdict Verdict
}

// Trace is the ordered list of recorded events.
type Trace []Event

// Result is what an engine returns for one execution.
type Result struct {
	// Verdict is the leader's decision, or VerdictNone for algorithms that
	// terminate by quiescence.
	Verdict Verdict
	// Stats is the exact bit/message accounting of the execution. When the
	// run reused caller-owned state (see RunState), Stats aliases that state
	// and is only valid until the state's next run; snapshot with Clone to
	// retain it.
	Stats *Stats
	// Trace is the recorded event sequence (nil unless Config.RecordTrace).
	Trace Trace
	// Faults is the fault accounting of the run — drops, duplicates,
	// crashes and their overheads. It is nil under every reliable schedule
	// and always non-nil (even when all-zero) under a fault-injecting one,
	// and is an independent snapshot, safe to retain.
	Faults *FaultReport
}
