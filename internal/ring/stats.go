package ring

import "ringlang/internal/bits"

// LinkStats accumulates traffic over one directed link of the ring.
type LinkStats struct {
	// From and To are processor indices; the link carries messages From → To.
	From int
	To   int
	// Messages is the number of messages sent over the link.
	Messages int
	// Bits is the total payload length sent over the link.
	Bits int
}

// Stats is the bit/message accounting of one execution. It is computed by
// the engine; algorithms never report their own costs.
type Stats struct {
	// Processors is the ring size n.
	Processors int
	// Messages is the total number of messages delivered.
	Messages int
	// Bits is the total number of payload bits transmitted — the quantity
	// BIT_A(n) of the paper.
	Bits int
	// MaxMessageBits is the largest single message payload.
	MaxMessageBits int
	// PerLink holds one entry per directed link that carried at least one
	// message, keyed by (From, To).
	PerLink map[[2]int]*LinkStats
}

// newStats allocates a Stats for a ring of n processors.
func newStats(n int) *Stats {
	return &Stats{Processors: n, PerLink: make(map[[2]int]*LinkStats)}
}

// record accounts one message sent from processor `from` to processor `to`.
func (s *Stats) record(from, to int, payload bits.String) {
	n := payload.Len()
	s.Messages++
	s.Bits += n
	if n > s.MaxMessageBits {
		s.MaxMessageBits = n
	}
	key := [2]int{from, to}
	ls := s.PerLink[key]
	if ls == nil {
		ls = &LinkStats{From: from, To: to}
		s.PerLink[key] = ls
	}
	ls.Messages++
	ls.Bits += n
}

// BitsPerProcessor returns Bits / n, the per-processor average used when
// checking linear (O(n)) scaling.
func (s *Stats) BitsPerProcessor() float64 {
	if s.Processors == 0 {
		return 0
	}
	return float64(s.Bits) / float64(s.Processors)
}

// MinLinkBits returns the smallest bit count over all links that carried
// traffic, and the link itself; this is the quantity the Theorem 5
// transformation cuts the ring at. The boolean is false if no link carried
// any message.
func (s *Stats) MinLinkBits() (LinkStats, bool) {
	var best *LinkStats
	for _, ls := range s.PerLink {
		if best == nil || ls.Bits < best.Bits {
			best = ls
		}
	}
	if best == nil {
		return LinkStats{}, false
	}
	return *best, true
}

// EventKind classifies trace events.
type EventKind int

const (
	// EventStart marks a processor's Start invocation.
	EventStart EventKind = iota + 1
	// EventSend marks a message leaving a processor.
	EventSend
	// EventReceive marks a message delivered to a processor.
	EventReceive
	// EventVerdict marks the leader's decision.
	EventVerdict
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventSend:
		return "send"
	case EventReceive:
		return "receive"
	case EventVerdict:
		return "verdict"
	default:
		return "unknown"
	}
}

// Event is a single entry of an execution trace. Seq is a global sequence
// number establishing the total order of the recorded execution (for the
// concurrent engine this is the observation order at the engine, which is a
// legal serialization).
type Event struct {
	Seq       int
	Kind      EventKind
	Processor int
	// Dir is the direction of the send/receive relative to the processor
	// (meaningless for start/verdict events).
	Dir Direction
	// Payload is the message content for send/receive events.
	Payload bits.String
	// Verdict is set for EventVerdict events.
	Verdict Verdict
}

// Trace is the ordered list of recorded events.
type Trace []Event

// Result is what an engine returns for one execution.
type Result struct {
	// Verdict is the leader's decision, or VerdictNone for algorithms that
	// terminate by quiescence.
	Verdict Verdict
	// Stats is the exact bit/message accounting of the execution.
	Stats *Stats
	// Trace is the recorded event sequence (nil unless Config.RecordTrace).
	Trace Trace
}
