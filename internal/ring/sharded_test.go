package ring

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ringlang/internal/bits"
)

// shardedWorkerCounts are the forced segmentations the identity tests run:
// even splits, odd splits, and more workers than some of the tested rings
// have processors (the engine clamps).
var shardedWorkerCounts = []int{2, 3, 4, 7}

// roundsNode circulates a single delta-coded countdown token: the leader
// starts it at `rounds`, every follower forwards it, and the leader
// decrements it on each return, accepting at zero. With a 2-processor ring
// and 2 workers every single hop crosses a shard boundary, which is what the
// boundary-handoff allocation test needs.
type roundsNode struct {
	leader bool
	rounds uint64
}

func (r *roundsNode) Start(ctx *Context) ([]Send, error) {
	if !r.leader {
		return nil, nil
	}
	w := ctx.Writer()
	w.WriteDeltaValue(r.rounds)
	return ctx.Reply(Forward, w.BitString()), nil
}

func (r *roundsNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	if !r.leader {
		return ctx.Reply(Forward, payload), nil
	}
	v, err := bits.NewReader(payload).ReadDeltaValue()
	if err != nil {
		return nil, err
	}
	if v <= 1 {
		return nil, ctx.Accept()
	}
	w := ctx.Writer()
	w.WriteDeltaValue(v - 1)
	return ctx.Reply(Forward, w.BitString()), nil
}

func roundsNodes(n int, rounds uint64) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &roundsNode{leader: i == LeaderIndex, rounds: rounds}
	}
	return nodes
}

// TestShardedIdenticalToSequential is the engine-level half of the
// bit-identity pin (the catalog-wide half lives in the core schedule
// property test): for schedule-independent algorithms the sharded engine
// must produce the exact Result and Stats of the serial loop — totals,
// per-link counters and all — for every worker count and ring size.
func TestShardedIdenticalToSequential(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		build func(n int) []Node
	}{
		{"token", Config{RequireVerdict: true}, tokenNodes},
		{"rounds", Config{RequireVerdict: true}, func(n int) []Node { return roundsNodes(n, 5) }},
		{"increment", Config{RequireVerdict: true}, func(n int) []Node {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &incrementNode{leader: i == LeaderIndex, want: uint64(n)}
			}
			return nodes
		}},
		{"flood", Config{Initiators: AllProcessors}, func(n int) []Node {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &floodOnceNode{}
			}
			return nodes
		}},
	}
	for _, tc := range cases {
		for _, n := range []int{2, 3, 5, 8, 64, 257} {
			want, err := NewSequentialEngine().Run(tc.cfg, tc.build(n))
			if err != nil {
				t.Fatalf("%s n=%d sequential: %v", tc.name, n, err)
			}
			for _, workers := range shardedWorkerCounts {
				eng := NewShardedEngineWorkers(workers)
				got, err := eng.Run(tc.cfg, tc.build(n))
				if err != nil {
					t.Fatalf("%s n=%d w=%d: %v", tc.name, n, workers, err)
				}
				if got.Verdict != want.Verdict {
					t.Errorf("%s n=%d w=%d: verdict %v, sequential %v", tc.name, n, workers, got.Verdict, want.Verdict)
				}
				if got.Stats.Messages != want.Stats.Messages || got.Stats.Bits != want.Stats.Bits ||
					got.Stats.MaxMessageBits != want.Stats.MaxMessageBits {
					t.Errorf("%s n=%d w=%d: totals %d/%d/%d, sequential %d/%d/%d",
						tc.name, n, workers,
						got.Stats.Messages, got.Stats.Bits, got.Stats.MaxMessageBits,
						want.Stats.Messages, want.Stats.Bits, want.Stats.MaxMessageBits)
				}
				if !reflect.DeepEqual(got.Stats.Links(), want.Stats.Links()) {
					t.Errorf("%s n=%d w=%d: per-link stats diverge from sequential", tc.name, n, workers)
				}
			}
		}
	}
}

// TestShardedBidirectionalBounce checks boundary handoff in both directions.
func TestShardedBidirectionalBounce(t *testing.T) {
	for _, n := range []int{2, 3, 7, 64} {
		build := func() []Node {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &bounceNode{leader: i == LeaderIndex}
			}
			return nodes
		}
		want, err := NewSequentialEngine().Run(Config{Mode: Bidirectional, RequireVerdict: true}, build())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range shardedWorkerCounts {
			res, err := NewShardedEngineWorkers(workers).Run(Config{Mode: Bidirectional, RequireVerdict: true}, build())
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, workers, err)
			}
			if res.Verdict != want.Verdict || res.Stats.Messages != want.Stats.Messages || res.Stats.Bits != want.Stats.Bits {
				t.Errorf("n=%d w=%d: verdict=%v messages=%d bits=%d, sequential %v/%d/%d",
					n, workers, res.Verdict, res.Stats.Messages, res.Stats.Bits,
					want.Verdict, want.Stats.Messages, want.Stats.Bits)
			}
		}
	}
}

// TestShardedGuardsAndQuiescence mirrors the guard suite every other engine
// passes: quiescent termination, the message budget, empty rings and
// topology violations.
func TestShardedGuardsAndQuiescence(t *testing.T) {
	eng := NewShardedEngineWorkers(3)

	flood := make([]Node, 5)
	for i := range flood {
		flood[i] = &floodOnceNode{}
	}
	res, err := eng.Run(Config{Initiators: AllProcessors}, flood)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictNone || res.Stats.Messages != 5 {
		t.Errorf("flood: verdict=%v messages=%d", res.Verdict, res.Stats.Messages)
	}

	loop := make([]Node, 4)
	for i := range loop {
		loop[i] = &loopForeverNode{leader: i == LeaderIndex}
	}
	if _, err := eng.Run(Config{MaxMessages: 50}, loop); !errors.Is(err, ErrMessageBudgetExceeded) {
		t.Errorf("budget: err = %v, want ErrMessageBudgetExceeded", err)
	}

	if _, err := eng.Run(Config{}, nil); !errors.Is(err, ErrNoProcessors) {
		t.Errorf("empty ring: err = %v, want ErrNoProcessors", err)
	}

	bad := []Node{&illegalBackwardNode{leader: true}, &illegalBackwardNode{}}
	if _, err := eng.Run(Config{Mode: Unidirectional}, bad); !errors.Is(err, ErrBackwardInUnidirectional) {
		t.Errorf("backward send: err = %v, want ErrBackwardInUnidirectional", err)
	}

	if _, err := eng.Run(Config{Initiators: AllProcessors, RequireVerdict: true}, flood); !errors.Is(err, ErrNoVerdict) {
		t.Errorf("require verdict: err = %v, want ErrNoVerdict", err)
	}
}

// TestShardedCancellation checks the workers' amortized context polls: a
// non-terminating run under a canceled context must come back with an error
// matching both ErrCanceled and the context's own error.
func TestShardedCancellation(t *testing.T) {
	eng := NewShardedEngineWorkers(2)
	loop := make([]Node, 4)
	for i := range loop {
		loop[i] = &loopForeverNode{leader: i == LeaderIndex}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := eng.Run(Config{Ctx: ctx, MaxMessages: 1 << 40}, loop)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := eng.Run(Config{Ctx: pre}, tokenNodes(8)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run: err = %v, want ErrCanceled", err)
	}
}

// TestShardedReusableAcrossRuns drives one engine and one RunState through
// repeated runs of different sizes, checking no state leaks between them.
func TestShardedReusableAcrossRuns(t *testing.T) {
	eng := NewShardedEngineWorkers(4)
	st := NewRunState()
	for run := 0; run < 3; run++ {
		for _, n := range []int{10, 64, 7} {
			res, err := eng.RunWith(st, Config{RequireVerdict: true}, tokenNodes(n))
			if err != nil {
				t.Fatalf("run %d n=%d: %v", run, n, err)
			}
			if res.Stats.Messages != n || res.Stats.Bits != n {
				t.Errorf("run %d n=%d: messages=%d bits=%d (state leaked between runs?)",
					run, n, res.Stats.Messages, res.Stats.Bits)
			}
		}
	}
}

// TestShardedTraceFallback: trace recording needs one global delivery order,
// so it runs on the serial loop and must match the sequential engine's trace
// shape exactly.
func TestShardedTraceFallback(t *testing.T) {
	res, err := NewShardedEngineWorkers(4).Run(Config{RecordTrace: true, RequireVerdict: true}, tokenNodes(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("expected a recorded trace from the serial fallback")
	}
	if res.Trace[len(res.Trace)-1].Kind != EventVerdict {
		t.Error("last trace event should be the verdict")
	}
	want, err := NewSequentialEngine().Run(Config{RecordTrace: true, RequireVerdict: true}, tokenNodes(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(want.Trace) {
		t.Errorf("fallback trace has %d events, sequential %d", len(res.Trace), len(want.Trace))
	}
}

// shardedSteadyStateAllocCeiling bounds the allocations of one steady-state
// sharded run. The run below pushes >1000 messages across shard boundaries,
// so the ceiling being a small constant is what proves the boundary handoff
// (SPSC slot buffers + spill arena) allocates nothing per message; what
// remains is the per-run fixed cost — worker goroutines and the Result.
const shardedSteadyStateAllocCeiling = 48

// TestShardedSteadyStateAllocFloor is the sharded counterpart of
// TestEngineLoopAllocRegressionGuard: on a reused RunState, allocations per
// run must not scale with the message count.
func TestShardedSteadyStateAllocFloor(t *testing.T) {
	eng := NewShardedEngineWorkers(2)
	st := NewRunState()
	cfg := Config{RequireVerdict: true}
	// n=2 with 2 workers: every hop of the 1024-round token crosses a
	// boundary, exercising the SPSC rings and (once full) the spill queue.
	nodes := roundsNodes(2, 1024)
	if _, err := eng.RunWith(st, cfg, nodes); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		res, err := eng.RunWith(st, cfg, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != VerdictAccept {
			t.Fatalf("unexpected verdict %v", res.Verdict)
		}
	})
	t.Logf("sharded steady-state allocs/run (≈2048 boundary messages): %.0f (ceiling %d)",
		allocs, shardedSteadyStateAllocCeiling)
	if allocs > shardedSteadyStateAllocCeiling {
		t.Errorf("steady-state sharded run allocates %.0f/run, ceiling is %d — boundary handoff is allocating per message",
			allocs, shardedSteadyStateAllocCeiling)
	}
}

// TestShardedLargeRing is the scale pin of this engine: a one-million-plus
// processor token circulation must complete under the sharded engine, and —
// with a pre-sized, reused RunState — repeat runs must stay within a small
// per-run allocation budget that scales with the worker count, never with n
// or the message count (i.e. no queue-growth reallocations at steady state).
func TestShardedLargeRing(t *testing.T) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 16
	}
	nodes := tokenNodes(n)
	// Force at least two workers: on a single-core host the automatic sizing
	// would fall back to the serial loop, and this test pins the genuinely
	// sharded path at scale.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	eng := NewShardedEngineWorkers(workers)
	st := NewRunStateSized(n)
	cfg := Config{RequireVerdict: true}

	start := time.Now()
	res, err := eng.RunWith(st, cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictAccept || res.Stats.Messages != n || res.Stats.Bits != n {
		t.Fatalf("n=%d: verdict=%v messages=%d bits=%d", n, res.Verdict, res.Stats.Messages, res.Stats.Bits)
	}
	t.Logf("n=%d count-style circulation completed in %v under %q", n, time.Since(start), eng.Name())

	ceiling := float64(16 + 8*workers)
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := eng.RunWith(st, cfg, nodes); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("n=%d steady-state allocs/run: %.0f (ceiling %.0f, %d workers)", n, allocs, ceiling, workers)
	if allocs > ceiling {
		t.Errorf("n=%d reused-state run allocates %.0f/run (ceiling %.0f): backing arrays are re-growing per run", n, allocs, ceiling)
	}
}

// TestShardedSegmentation pins the segment partition helpers: contiguous,
// exhaustive, and consistent with workerOf.
func TestShardedSegmentation(t *testing.T) {
	for _, n := range []int{2, 3, 7, 64, 1000} {
		for _, wn := range []int{2, 3, 4, 7} {
			if wn > n {
				continue
			}
			next := 0
			for w := 0; w < wn; w++ {
				lo, hi := segmentBounds(w, wn, n)
				if lo != next {
					t.Fatalf("n=%d wn=%d: segment %d starts at %d, want %d", n, wn, w, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d wn=%d: segment %d empty (%d..%d)", n, wn, w, lo, hi)
				}
				for i := lo; i <= hi; i++ {
					if got := workerOf(i, wn, n); got != w {
						t.Fatalf("n=%d wn=%d: workerOf(%d) = %d, want %d", n, wn, i, got, w)
					}
				}
				next = hi + 1
			}
			if next != n {
				t.Fatalf("n=%d wn=%d: segments cover %d processors", n, wn, next)
			}
		}
	}
}
