package ring

import (
	"errors"
	"fmt"
	"testing"

	"ringlang/internal/bits"
)

// hopNode is a stateful test algorithm for the checkpoint machinery: a
// counter token circulates forward, every processor adds one to it and
// remembers how many tokens it handled, and the leader accepts when the
// returned count equals the ring size. Unlike tokenNode it has real per-run
// state, so a resume that failed to reinstate node state would flip the
// verdict or the bit totals.
type hopNode struct {
	leader bool
	n      int
	seen   int64
}

func (h *hopNode) Start(ctx *Context) ([]Send, error) {
	if !h.leader {
		return nil, nil
	}
	w := ctx.Writer()
	w.WriteUint(1, 32)
	return ctx.Reply(Forward, w.BitString()), nil
}

func (h *hopNode) Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error) {
	r := bits.NewReader(payload)
	v, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	h.seen++
	if h.leader {
		if int(v) == h.n {
			return nil, ctx.Accept()
		}
		return nil, ctx.Reject()
	}
	w := ctx.Writer()
	w.WriteUint(v+1, 32)
	return ctx.Reply(Forward, w.BitString()), nil
}

func (h *hopNode) ResumeState() int64 { return h.seen }
func (h *hopNode) Resume(s int64)     { h.seen = s }

func hopNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &hopNode{leader: i == LeaderIndex, n: n}
	}
	return nodes
}

// checkpointEngines returns the engines that must support capture/resume,
// one per prefix-stable schedule.
func checkpointEngines() map[string]CheckpointEngine {
	return map[string]CheckpointEngine{
		"sequential":  NewSequentialEngine(),
		"round-robin": NewRoundRobinEngine(),
	}
}

// TestCheckpointResumeMatchesColdRun captures a checkpoint at every
// reachable boundary and resumes each onto fresh nodes, requiring the
// resumed run to reproduce the cold run bit for bit: verdict, totals,
// per-link stats, and final node states.
func TestCheckpointResumeMatchesColdRun(t *testing.T) {
	const n = 17
	cfg := Config{RequireVerdict: true}
	for name, eng := range checkpointEngines() {
		t.Run(name, func(t *testing.T) {
			cold, err := eng.RunWith(NewRunState(), cfg, hopNodes(n))
			if err != nil {
				t.Fatal(err)
			}
			coldStats := cold.Stats.Clone()
			coldLinks := coldStats.Links()

			// Capture at every delivery of the circulation except the final
			// (verdict) one.
			boundaries := make([]int, 0, n-1)
			for k := 1; k < n; k++ {
				boundaries = append(boundaries, k)
			}
			var cps []*Checkpoint
			res, err := eng.RunCheckpointed(NewRunState(), cfg, hopNodes(n), CheckpointRun{
				CaptureAfter: boundaries,
				OnCapture:    func(cp *Checkpoint) { cps = append(cps, cp) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != cold.Verdict {
				t.Fatalf("capture run verdict %v, cold %v", res.Verdict, cold.Verdict)
			}
			if len(cps) != len(boundaries) {
				t.Fatalf("captured %d checkpoints, want %d", len(cps), len(boundaries))
			}

			for _, cp := range cps {
				nodes := hopNodes(n)
				warm, err := eng.RunCheckpointed(NewRunState(), cfg, nodes, CheckpointRun{Resume: cp})
				if err != nil {
					t.Fatalf("resume at %d: %v", cp.Deliveries(), err)
				}
				if warm.Verdict != cold.Verdict {
					t.Errorf("resume at %d: verdict %v, cold %v", cp.Deliveries(), warm.Verdict, cold.Verdict)
				}
				if warm.Stats.Messages != coldStats.Messages || warm.Stats.Bits != coldStats.Bits ||
					warm.Stats.MaxMessageBits != coldStats.MaxMessageBits {
					t.Errorf("resume at %d: totals (%d msgs, %d bits, max %d) vs cold (%d, %d, %d)",
						cp.Deliveries(), warm.Stats.Messages, warm.Stats.Bits, warm.Stats.MaxMessageBits,
						coldStats.Messages, coldStats.Bits, coldStats.MaxMessageBits)
				}
				warmLinks := warm.Stats.Links()
				if len(warmLinks) != len(coldLinks) {
					t.Fatalf("resume at %d: %d links vs cold %d", cp.Deliveries(), len(warmLinks), len(coldLinks))
				}
				for i := range warmLinks {
					if warmLinks[i] != coldLinks[i] {
						t.Errorf("resume at %d: link %d = %+v, cold %+v", cp.Deliveries(), i, warmLinks[i], coldLinks[i])
					}
				}
				for i, node := range nodes {
					if got, want := node.(*hopNode).seen, int64(1); got != want {
						t.Errorf("resume at %d: node %d handled %d tokens, want %d", cp.Deliveries(), i, got, want)
					}
				}
			}
		})
	}
}

// TestCheckpointCopyOnResume resumes one checkpoint several times, from used
// and fresh nodes alike, proving the checkpoint itself is never consumed or
// mutated.
func TestCheckpointCopyOnResume(t *testing.T) {
	const n = 9
	cfg := Config{RequireVerdict: true}
	eng := NewSequentialEngine()
	var cp *Checkpoint
	if _, err := eng.RunCheckpointed(nil, cfg, hopNodes(n), CheckpointRun{
		CaptureAfter: []int{n / 2},
		OnCapture:    func(c *Checkpoint) { cp = c },
	}); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	wantBytes := cp.Bytes()
	nodes := hopNodes(n) // deliberately reused across resumes
	st := NewRunState()
	for i := 0; i < 5; i++ {
		res, err := eng.RunCheckpointed(st, cfg, nodes, CheckpointRun{Resume: cp})
		if err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
		if res.Verdict != VerdictAccept {
			t.Fatalf("resume %d: verdict %v", i, res.Verdict)
		}
		if cp.Bytes() != wantBytes || cp.Deliveries() != n/2 || cp.Processors() != n {
			t.Fatalf("resume %d mutated the checkpoint", i)
		}
	}
}

// TestCheckpointRejectsMismatchedRuns pins the defensive checks: wrong ring
// size, wrong schedule, trace recording, unstable schedules, and nodes
// without resume support must all fail loudly instead of corrupting a run.
func TestCheckpointRejectsMismatchedRuns(t *testing.T) {
	const n = 8
	cfg := Config{RequireVerdict: true}
	eng := NewSequentialEngine()
	var cp *Checkpoint
	if _, err := eng.RunCheckpointed(nil, cfg, hopNodes(n), CheckpointRun{
		CaptureAfter: []int{3},
		OnCapture:    func(c *Checkpoint) { cp = c },
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := eng.RunCheckpointed(nil, cfg, hopNodes(n+1), CheckpointRun{Resume: cp}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("ring-size mismatch: got %v, want ErrCheckpointMismatch", err)
	}
	if _, err := NewRoundRobinEngine().RunCheckpointed(nil, cfg, hopNodes(n), CheckpointRun{Resume: cp}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("schedule mismatch: got %v, want ErrCheckpointMismatch", err)
	}
	traceCfg := cfg
	traceCfg.RecordTrace = true
	if _, err := eng.RunCheckpointed(nil, traceCfg, hopNodes(n), CheckpointRun{Resume: cp}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("trace resume: got %v, want ErrCheckpointMismatch", err)
	}
	adv := NewAdversarialEngine(DefaultAdversarialBound)
	if _, err := adv.RunCheckpointed(nil, cfg, hopNodes(n), CheckpointRun{Resume: cp}); !errors.Is(err, ErrNotPrefixStable) {
		t.Errorf("adversarial resume: got %v, want ErrNotPrefixStable", err)
	}
	if _, err := adv.RunCheckpointed(nil, cfg, hopNodes(n), CheckpointRun{
		CaptureAfter: []int{3}, OnCapture: func(*Checkpoint) {},
	}); !errors.Is(err, ErrNotPrefixStable) {
		t.Errorf("adversarial capture: got %v, want ErrNotPrefixStable", err)
	}
	if _, err := eng.RunCheckpointed(nil, cfg, tokenNodes(n), CheckpointRun{
		CaptureAfter: []int{3}, OnCapture: func(*Checkpoint) {},
	}); !errors.Is(err, ErrNotResumable) {
		t.Errorf("non-resumable capture: got %v, want ErrNotResumable", err)
	}
}

// TestCheckpointCaptureSkipsDecidedBoundaries asks for boundaries past the
// verdict: the run must complete normally and simply not capture them.
func TestCheckpointCaptureSkipsDecidedBoundaries(t *testing.T) {
	const n = 6
	cfg := Config{RequireVerdict: true}
	var got []int
	res, err := NewSequentialEngine().RunCheckpointed(nil, cfg, hopNodes(n), CheckpointRun{
		CaptureAfter: []int{2, n, n + 50}, // delivery n decides; n and beyond must not capture
		OnCapture:    func(cp *Checkpoint) { got = append(got, cp.Deliveries()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictAccept {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("captured boundaries %v, want [2]", got)
	}
}

// TestScheduleIsPrefixStable pins the stable set: exactly the schedules the
// checkpoint design argument covers, with aliases folded.
func TestScheduleIsPrefixStable(t *testing.T) {
	stable := map[string]bool{
		"sequential": true, "fifo": true, "round-robin": true,
	}
	for _, name := range append(ScheduleNames(), "fifo", "random-order", "bounded-delay") {
		if got := ScheduleIsPrefixStable(name); got != stable[name] {
			t.Errorf("ScheduleIsPrefixStable(%q) = %v, want %v", name, got, stable[name])
		}
	}
	for _, name := range PrefixStableScheduleNames() {
		if !ScheduleIsPrefixStable(name) {
			t.Errorf("PrefixStableScheduleNames lists %q but ScheduleIsPrefixStable rejects it", name)
		}
	}
}

// TestCheckpointResumeAllocRegressionGuard is the resume-path twin of
// TestEngineLoopAllocRegressionGuard: steady-state resumes on a reused
// RunState must stay at or below the cold steady-state floor — restoring a
// checkpoint may not allocate at all.
func TestCheckpointResumeAllocRegressionGuard(t *testing.T) {
	n := 4096
	cfg := Config{RequireVerdict: true}
	for name, eng := range checkpointEngines() {
		t.Run(name, func(t *testing.T) {
			var cp *Checkpoint
			if _, err := eng.RunCheckpointed(NewRunState(), cfg, hopNodes(n), CheckpointRun{
				CaptureAfter: []int{n / 2},
				OnCapture:    func(c *Checkpoint) { cp = c },
			}); err != nil {
				t.Fatal(err)
			}
			if cp == nil {
				t.Fatal("no checkpoint captured")
			}

			nodes := hopNodes(n)
			st := NewRunState()
			coldSt := NewRunState()
			coldNodes := hopNodes(n)
			if _, err := eng.RunCheckpointed(st, cfg, nodes, CheckpointRun{Resume: cp}); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RunWith(coldSt, cfg, coldNodes); err != nil {
				t.Fatal(err)
			}
			resume := testing.AllocsPerRun(10, func() {
				if _, err := eng.RunCheckpointed(st, cfg, nodes, CheckpointRun{Resume: cp}); err != nil {
					t.Fatal(err)
				}
			})
			cold := testing.AllocsPerRun(10, func() {
				// Cold runs on used hopNodes work (they ignore seen), so this
				// is the exact steady-state floor the resume path races.
				if _, err := eng.RunWith(coldSt, cfg, coldNodes); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("allocs/run at n=%d: resume=%.0f cold=%.0f (ceiling %d)", n, resume, cold, allocCeilingSteadyStateN4096)
			if resume > cold {
				t.Errorf("steady-state resume allocates %.0f/run, cold floor is %.0f", resume, cold)
			}
			if resume > allocCeilingSteadyStateN4096 {
				t.Errorf("steady-state resume allocates %.0f/run, recorded ceiling is %d", resume, allocCeilingSteadyStateN4096)
			}
		})
	}
}

// BenchmarkCheckpointResume measures the warm path against the cold path at
// a 50% boundary.
func BenchmarkCheckpointResume(b *testing.B) {
	for _, n := range []int{512, 4096} {
		cfg := Config{RequireVerdict: true}
		eng := NewSequentialEngine()
		var cp *Checkpoint
		if _, err := eng.RunCheckpointed(NewRunState(), cfg, hopNodes(n), CheckpointRun{
			CaptureAfter: []int{n / 2},
			OnCapture:    func(c *Checkpoint) { cp = c },
		}); err != nil {
			b.Fatal(err)
		}
		nodes := hopNodes(n)
		st := NewRunState()
		b.Run(fmt.Sprintf("cold/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunWith(st, cfg, nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("resume50/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunCheckpointed(st, cfg, nodes, CheckpointRun{Resume: cp}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
