package ring

import (
	"errors"

	"ringlang/internal/bits"
)

// Node is the algorithm logic running at a single processor. The engine
// constructs one Node per processor (via whatever factory the algorithm
// provides) and drives it purely through Start and Receive. A Node must not
// communicate with other Nodes except by returning Sends.
type Node interface {
	// Start is called once, before any message delivery, on every initiator
	// processor (by default only the leader). It returns the initial
	// messages to transmit.
	Start(ctx *Context) ([]Send, error)
	// Receive is called for every message delivered to the processor. The
	// `from` argument names the neighbour the message arrived from, seen from
	// this processor: a message travelling Forward around the ring (p_i to
	// p_{i+1}) is delivered with from == Backward, because it came from the
	// receiver's backward neighbour. Receive returns any messages to transmit
	// in response.
	Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error)
}

// verdictSink receives the leader's decision. Both the single-goroutine loop
// state and the concurrent engine's shared state implement it; contexts hold
// one shared sink pointer instead of one decide closure per processor, which
// keeps a reused context slice allocation-free.
type verdictSink interface {
	decide(proc int, v Verdict) error
}

// Context is the engine-provided handle a Node uses to report decisions.
// It is scoped to a single processor and valid only for the duration of the
// run that provided it.
type Context struct {
	isLeader bool
	proc     int
	sink     verdictSink
}

// ErrNotLeader is returned when a non-leader processor attempts to decide.
var ErrNotLeader = errors.New("ring: only the leader may accept or reject")

// IsLeader reports whether this processor is the leader. The paper's model
// gives the leader (and only the leader) a distinguished role; all other
// processors run identical code.
func (c *Context) IsLeader() bool {
	return c.isLeader
}

// Accept records the leader's accepting decision and terminates the
// execution. Calling it from a non-leader is an error.
func (c *Context) Accept() error {
	if !c.isLeader {
		return ErrNotLeader
	}
	return c.sink.decide(c.proc, VerdictAccept)
}

// Reject records the leader's rejecting decision and terminates the
// execution. Calling it from a non-leader is an error.
func (c *Context) Reject() error {
	if !c.isLeader {
		return ErrNotLeader
	}
	return c.sink.decide(c.proc, VerdictReject)
}

// Decide records an explicit verdict value (used by simulation wrappers that
// replay another algorithm's decision).
func (c *Context) Decide(v Verdict) error {
	if !c.isLeader {
		return ErrNotLeader
	}
	return c.sink.decide(c.proc, v)
}
