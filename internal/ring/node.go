package ring

import (
	"errors"

	"ringlang/internal/bits"
)

// Node is the algorithm logic running at a single processor. The engine
// constructs one Node per processor (via whatever factory the algorithm
// provides) and drives it purely through Start and Receive. A Node must not
// communicate with other Nodes except by returning Sends.
type Node interface {
	// Start is called once, before any message delivery, on every initiator
	// processor (by default only the leader). It returns the initial
	// messages to transmit.
	Start(ctx *Context) ([]Send, error)
	// Receive is called for every message delivered to the processor. The
	// `from` argument names the neighbour the message arrived from, seen from
	// this processor: a message travelling Forward around the ring (p_i to
	// p_{i+1}) is delivered with from == Backward, because it came from the
	// receiver's backward neighbour. Receive returns any messages to transmit
	// in response.
	Receive(ctx *Context, from Direction, payload bits.String) ([]Send, error)
}

// verdictSink receives the leader's decision. Both the single-goroutine loop
// state and the concurrent engine's shared state implement it; contexts hold
// one shared sink pointer instead of one decide closure per processor, which
// keeps a reused context slice allocation-free.
type verdictSink interface {
	decide(proc int, v Verdict) error
}

// Context is the engine-provided handle a Node uses to report decisions and
// to build outgoing payloads without allocating. It is scoped to a single
// processor and valid only for the duration of the run that provided it.
type Context struct {
	isLeader bool
	proc     int
	sink     verdictSink
	// scratch is the processor's reusable payload writer (see Writer). It is
	// pooled across runs when the engine executes inside a RunState.
	scratch *bits.Writer
	// sendBuf backs the single-send slices returned by Reply.
	sendBuf [1]Send
}

// Writer returns this processor's scratch payload writer, reset and ready for
// a fresh message. Payloads built on it and sent via Writer().BitString()
// alias the scratch buffer, so they are valid only until this processor's
// next Writer call — which is exactly the discipline of a single-token
// algorithm: a processor sends at most one message per delivery and does not
// send again until the token returns. Algorithms that keep several messages
// in flight per processor must snapshot with bits.Writer.String instead.
// Engines snapshot payloads themselves when recording traces, so trace
// retention never extends a payload's lifetime.
func (c *Context) Writer() *bits.Writer {
	if c.scratch == nil {
		c.scratch = new(bits.Writer)
	}
	c.scratch.Reset()
	return c.scratch
}

// Reply returns a single-element send slice backed by per-processor storage,
// avoiding the per-message []Send allocation of a slice literal. The returned
// slice is valid until this processor's next Reply call; the engine consumes
// it before the next delivery, so handlers may return it directly.
func (c *Context) Reply(dir Direction, payload bits.String) []Send {
	c.sendBuf[0] = Send{Dir: dir, Payload: payload}
	return c.sendBuf[:1]
}

// ErrNotLeader is returned when a non-leader processor attempts to decide.
var ErrNotLeader = errors.New("ring: only the leader may accept or reject")

// IsLeader reports whether this processor is the leader. The paper's model
// gives the leader (and only the leader) a distinguished role; all other
// processors run identical code.
func (c *Context) IsLeader() bool {
	return c.isLeader
}

// Accept records the leader's accepting decision and terminates the
// execution. Calling it from a non-leader is an error.
func (c *Context) Accept() error {
	if !c.isLeader {
		return ErrNotLeader
	}
	return c.sink.decide(c.proc, VerdictAccept)
}

// Reject records the leader's rejecting decision and terminates the
// execution. Calling it from a non-leader is an error.
func (c *Context) Reject() error {
	if !c.isLeader {
		return ErrNotLeader
	}
	return c.sink.decide(c.proc, VerdictReject)
}

// Decide records an explicit verdict value (used by simulation wrappers that
// replay another algorithm's decision).
func (c *Context) Decide(v Verdict) error {
	if !c.isLeader {
		return ErrNotLeader
	}
	return c.sink.decide(c.proc, v)
}
