package ring

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ringlang/internal/bits"
)

// ConcurrentEngine runs one goroutine per processor, connected by unbounded
// FIFO links (one pump goroutine per directed link). It realizes the paper's
// asynchronous model: messages experience arbitrary finite delays, and the
// execution observed is whatever serialization the scheduler produces.
//
// The engine detects termination in three ways: the leader decides, the
// system quiesces (no message in flight and none being processed), or the
// message budget is exceeded.
type ConcurrentEngine struct{}

var _ Engine = (*ConcurrentEngine)(nil)

// NewConcurrentEngine returns a goroutine-per-processor engine.
func NewConcurrentEngine() *ConcurrentEngine {
	return &ConcurrentEngine{}
}

// Name implements Engine.
func (e *ConcurrentEngine) Name() string { return "concurrent" }

// concDelivery is one in-flight message of the concurrent engine.
type concDelivery struct {
	from    Direction
	payload bits.String
}

// concState is the shared mutable state of one concurrent run.
type concState struct {
	cfg   Config
	n     int
	stats *Stats
	trace Trace
	seq   int

	mu      sync.Mutex
	verdict Verdict

	outstanding atomic.Int64
	delivered   atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	runErr   error
}

var _ verdictSink = (*concState)(nil)

// finish records the terminal error (possibly nil) exactly once and releases
// every goroutine.
func (st *concState) finish(err error) {
	st.stopOnce.Do(func() {
		st.runErr = err
		close(st.stop)
	})
}

// record accounts a send under the state lock. dir is the direction the
// message travels (for the trace); arrival is how the receiver perceives it
// (for the per-link accounting).
func (st *concState) record(fromProc, toProc int, dir, arrival Direction, payload bits.String) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stats.record(toProc, arrival, payload)
	if st.cfg.RecordTrace {
		st.trace = append(st.trace, Event{Seq: st.seq, Kind: EventSend, Processor: fromProc, Dir: dir, Payload: payload})
		st.seq++
	}
}

// recordEvent appends a non-send trace event under the state lock.
func (st *concState) recordEvent(ev Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cfg.RecordTrace {
		ev.Seq = st.seq
		st.trace = append(st.trace, ev)
		st.seq++
	}
}

// decide implements the leader's Accept/Reject under the state lock.
//
//ring:coldpath -- the verdict transition runs at most once per run (ErrAlreadyDecided), not per message
func (st *concState) decide(proc int, v Verdict) error {
	st.mu.Lock()
	if st.verdict != VerdictNone {
		st.mu.Unlock()
		return ErrAlreadyDecided
	}
	st.verdict = v
	if st.cfg.RecordTrace {
		st.trace = append(st.trace, Event{Seq: st.seq, Kind: EventVerdict, Processor: proc, Verdict: v})
		st.seq++
	}
	st.mu.Unlock()
	st.finish(nil)
	return nil
}

// currentVerdict reads the verdict under the lock.
func (st *concState) currentVerdict() Verdict {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.verdict
}

// stopped reports whether finish has already released the run.
func (st *concState) stopped() bool {
	select {
	case <-st.stop:
		return true
	default:
		return false
	}
}

// Run implements Engine.
//
//ring:coldpath -- per-run orchestration (goroutines, channels); the lock-based reference engine is pinned by race tests, not the alloc floor
func (e *ConcurrentEngine) Run(cfg Config, nodes []Node) (*Result, error) {
	cfg, err := cfg.normalize(len(nodes))
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	st := &concState{
		cfg:   cfg,
		n:     n,
		stats: newStats(n),
		stop:  make(chan struct{}),
	}

	// Cancellation: one watcher goroutine per run turns a context cancel into
	// the usual finish path, so processor goroutines and pumps drain exactly
	// as they do for a verdict. The watcher exits with the run.
	if cfg.Ctx != nil {
		if cfg.Ctx.Err() != nil {
			return nil, canceledRun(cfg.Ctx)
		}
		if done := cfg.Ctx.Done(); done != nil {
			go func() {
				select {
				case <-done:
					st.finish(canceledRun(cfg.Ctx))
				case <-st.stop:
				}
			}()
		}
	}

	// Per-processor inboxes and per-directed-link pumps providing unbounded
	// FIFO buffering so no send can ever deadlock the system.
	//
	// Shutdown is two-phase: `stop` releases the processor goroutines, and
	// only after all of them have returned does `pumpDone` release the pumps.
	// A pump therefore outlives every processor that may be blocked handing
	// it a message, which is what lets dispatch enqueue unconditionally (see
	// below) without risking a send into a dead pump.
	pumpDone := make(chan struct{})
	inboxes := make([]chan concDelivery, n)
	for i := range inboxes {
		inboxes[i] = make(chan concDelivery)
	}
	type linkKey struct {
		from int
		dir  Direction
	}
	linkIn := make(map[linkKey]chan concDelivery, 2*n)
	var wgProcs, wgPumps sync.WaitGroup
	startPump := func(src chan concDelivery, dst chan concDelivery) {
		wgPumps.Add(1)
		go func() {
			defer wgPumps.Done()
			var queue []concDelivery
			for {
				var out chan concDelivery
				var head concDelivery
				if len(queue) > 0 {
					out = dst
					head = queue[0]
				}
				select {
				case <-pumpDone:
					return
				case d := <-src:
					queue = append(queue, d)
				case out <- head:
					queue = queue[1:]
				}
			}
		}()
	}
	directions := []Direction{Forward}
	if cfg.Mode == Bidirectional {
		directions = []Direction{Forward, Backward}
	}
	for i := 0; i < n; i++ {
		for _, dir := range directions {
			src := make(chan concDelivery)
			linkIn[linkKey{from: i, dir: dir}] = src
			startPump(src, inboxes[neighbour(i, dir, n)])
		}
	}

	// dispatch validates, accounts and enqueues the sends of processor i.
	// Mirroring runLoop's record-then-deliver semantics, the slice is handled
	// atomically with respect to termination: every send of it is recorded
	// and enqueued, even when a verdict lands mid-slice, so the stats never
	// count a message that was not actually put on its link and never drop a
	// suffix of a response. The enqueue cannot block indefinitely: pumps stay
	// alive until every processor (including the dispatching one) has
	// returned.
	dispatch := func(fromProc int, sends []Send) error {
		for _, s := range sends {
			to, arrival, err := routeSend(cfg, fromProc, s, n)
			if err != nil {
				return err
			}
			if cfg.RecordTrace {
				// Traces retain payloads beyond the delivery; payloads built on
				// a Context scratch writer are reused after it, so snapshot.
				s.Payload = s.Payload.Clone()
			}
			st.record(fromProc, to, s.Dir, arrival, s.Payload)
			st.outstanding.Add(1)
			linkIn[linkKey{from: fromProc, dir: s.Dir}] <- concDelivery{from: arrival, payload: s.Payload}
		}
		return nil
	}

	contexts := make([]Context, n)
	for i := range contexts {
		contexts[i] = Context{isLeader: i == LeaderIndex, proc: i, sink: st}
	}

	// Start phase (serialized; a legal asynchronous prefix). Pumps are already
	// running, so initial sends are buffered without blocking. The extra
	// "start token" on the outstanding counter prevents a processor from
	// declaring quiescence while later initiators are still being started.
	st.outstanding.Add(1)
	for i := 0; i < n && st.currentVerdict() == VerdictNone && !st.stopped(); i++ {
		if cfg.Initiators == LeaderOnly && i != LeaderIndex {
			continue
		}
		st.recordEvent(Event{Kind: EventStart, Processor: i})
		sends, err := nodes[i].Start(&contexts[i])
		if err != nil {
			st.finish(fmt.Errorf("ring: start of processor %d: %w", i, err))
			break
		}
		if err := dispatch(i, sends); err != nil {
			st.finish(err)
			break
		}
	}

	// Processor goroutines.
	for i := 0; i < n; i++ {
		idx := i
		wgProcs.Add(1)
		go func() {
			defer wgProcs.Done()
			for {
				select {
				case <-st.stop:
					return
				case d := <-inboxes[idx]:
					if st.delivered.Add(1) > int64(cfg.MaxMessages) {
						st.finish(fmt.Errorf("%w: %d messages", ErrMessageBudgetExceeded, cfg.MaxMessages))
						return
					}
					st.recordEvent(Event{Kind: EventReceive, Processor: idx, Dir: d.from, Payload: d.payload})
					sends, err := nodes[idx].Receive(&contexts[idx], d.from, d.payload)
					if err != nil {
						st.finish(fmt.Errorf("ring: receive at processor %d: %w", idx, err))
						return
					}
					if st.currentVerdict() == VerdictNone {
						if err := dispatch(idx, sends); err != nil {
							st.finish(err)
							return
						}
					}
					if st.outstanding.Add(-1) == 0 {
						// Quiescent: nothing in flight and (by the accounting
						// order: sends are counted before this decrement) no
						// processor holds undispatched work.
						st.finish(nil)
						return
					}
				}
			}
		}()
	}

	// Release the start token; if the start phase produced no messages at all
	// (or every one of them has already been fully processed) the system is
	// quiescent.
	if st.outstanding.Add(-1) == 0 {
		st.finish(nil)
	}

	<-st.stop
	wgProcs.Wait()
	close(pumpDone)
	wgPumps.Wait()

	if st.runErr != nil {
		return nil, st.runErr
	}
	verdict := st.currentVerdict()
	if cfg.RequireVerdict && verdict == VerdictNone {
		return nil, ErrNoVerdict
	}
	return &Result{Verdict: verdict, Stats: st.stats, Trace: st.trace}, nil
}
