package ring

import "ringlang/internal/bits"

// Direction identifies the two ring directions from a processor's point of
// view. In the paper's unidirectional model processor p_i sends to p_{i+1};
// we call that Forward.
type Direction int

const (
	// Forward is the direction of increasing processor index (p_i → p_{i+1},
	// with p_n → p_1). Unidirectional algorithms may only send Forward.
	Forward Direction = iota + 1
	// Backward is the direction of decreasing processor index (p_i → p_{i-1},
	// with p_1 → p_n). Only valid in bidirectional mode.
	Backward
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return "unknown"
	}
}

// Opposite returns the other direction.
func (d Direction) Opposite() Direction {
	if d == Forward {
		return Backward
	}
	return Forward
}

// Send is an instruction returned by a Node: transmit the payload to the
// neighbour in the given direction.
type Send struct {
	Dir     Direction
	Payload bits.String
}

// SendForward is shorthand for a forward send.
func SendForward(payload bits.String) Send {
	return Send{Dir: Forward, Payload: payload}
}

// SendBackward is shorthand for a backward send.
func SendBackward(payload bits.String) Send {
	return Send{Dir: Backward, Payload: payload}
}

// Verdict is the leader's decision about the pattern on the ring.
type Verdict int

const (
	// VerdictNone means the algorithm has not (yet) decided. Algorithms that
	// compute something other than language membership (e.g. leader election)
	// finish with VerdictNone.
	VerdictNone Verdict = iota
	// VerdictAccept means the leader accepted the pattern.
	VerdictAccept
	// VerdictReject means the leader rejected the pattern.
	VerdictReject
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "accept"
	case VerdictReject:
		return "reject"
	case VerdictNone:
		return "none"
	default:
		return "invalid"
	}
}

// Mode selects the communication topology.
type Mode int

const (
	// Unidirectional: messages travel only Forward around the ring.
	Unidirectional Mode = iota + 1
	// Bidirectional: messages may travel in both directions.
	Bidirectional
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Unidirectional:
		return "unidirectional"
	case Bidirectional:
		return "bidirectional"
	default:
		return "unknown"
	}
}
