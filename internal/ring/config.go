package ring

import (
	"context"
	"errors"
	"fmt"
)

// LeaderIndex is the index of the leader processor. The paper numbers
// processors p_1..p_n with p_1 the leader; we use 0-based indices, so the
// leader is processor 0 and "forward" goes 0 → 1 → … → n-1 → 0.
const LeaderIndex = 0

// Initiators selects which processors have Start called on them.
type Initiators int

const (
	// LeaderOnly: only the leader initiates (the paper's recognition model).
	LeaderOnly Initiators = iota + 1
	// AllProcessors: every processor initiates (used by leader election).
	AllProcessors
)

// Config describes a single execution of an algorithm on a ring.
type Config struct {
	// Mode selects unidirectional or bidirectional links.
	Mode Mode
	// Initiators selects which processors receive a Start call.
	Initiators Initiators
	// RecordTrace enables full per-message trace recording (needed by the
	// information-state analyses, expensive for very large rings).
	RecordTrace bool
	// MaxMessages aborts the run after this many deliveries, as a protection
	// against non-terminating algorithms. Zero means the engine default.
	MaxMessages int
	// RequireVerdict makes the run fail if the algorithm quiesces without the
	// leader having decided. Recognition algorithms set this; election does
	// not.
	RequireVerdict bool
	// Ctx, when non-nil, lets the caller cancel the run. Engines check it at
	// amortized cost (every ctxCheckInterval deliveries for the event loop, a
	// watcher goroutine for the concurrent engine), so the steady-state hot
	// path stays allocation-free; a canceled run fails with an error matching
	// both ErrCanceled and the context's own error under errors.Is.
	Ctx context.Context
}

// DefaultMaxMessagesPerProcessor bounds runaway executions: an execution may
// deliver at most this many messages times the ring size before the engine
// aborts it.
const DefaultMaxMessagesPerProcessor = 4096

// ErrNoProcessors is returned when an engine is run with an empty ring.
var ErrNoProcessors = errors.New("ring: ring must contain at least one processor")

// ErrBackwardInUnidirectional is returned when an algorithm sends backward on
// a unidirectional ring.
var ErrBackwardInUnidirectional = errors.New("ring: backward send on a unidirectional ring")

// ErrMessageBudgetExceeded is returned when an execution exceeds MaxMessages.
var ErrMessageBudgetExceeded = errors.New("ring: message budget exceeded (non-terminating algorithm?)")

// ErrNoVerdict is returned when RequireVerdict is set and the execution
// quiesced without a leader decision.
var ErrNoVerdict = errors.New("ring: execution quiesced without a verdict")

// ErrCanceled is returned when Config.Ctx is canceled before or during a run.
// Errors wrapping it also wrap the context's own error, so callers can test
// either errors.Is(err, ErrCanceled) or errors.Is(err, context.Canceled).
var ErrCanceled = errors.New("ring: run canceled")

// canceledRun builds the terminal error of a canceled execution.
func canceledRun(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
}

// ctxCheckInterval is how often (in deliveries) the event loop polls
// Config.Ctx. A power of two, so the check compiles to a mask test; at 256
// the n=4096 token circulation pays 16 channel polls per run and the
// allocation floor guarded by TestEngineLoopAllocRegressionGuard is
// unchanged.
const ctxCheckInterval = 256

// normalize validates the configuration and fills in defaults for a ring of
// the given size.
func (c Config) normalize(numProcessors int) (Config, error) {
	if numProcessors < 1 {
		return c, ErrNoProcessors
	}
	if c.Mode == 0 {
		c.Mode = Unidirectional
	}
	if c.Mode != Unidirectional && c.Mode != Bidirectional {
		return c, fmt.Errorf("ring: invalid mode %d", c.Mode)
	}
	if c.Initiators == 0 {
		c.Initiators = LeaderOnly
	}
	if c.Initiators != LeaderOnly && c.Initiators != AllProcessors {
		return c, fmt.Errorf("ring: invalid initiators %d", c.Initiators)
	}
	if c.MaxMessages == 0 {
		c.MaxMessages = DefaultMaxMessagesPerProcessor * numProcessors
	}
	return c, nil
}
